//! Vision-Transformer inference across the paper's four system
//! configurations (Section V-C): one encoder layer is simulated in full
//! and scaled to the model depth, with the GEMM / Non-GEMM phase split
//! that drives the paper's memory-placement recommendation.
//!
//! Run with `cargo run --release --example vit_inference`.

use gem5_accesys::prelude::*;

fn systems() -> Vec<(&'static str, SystemConfig)> {
    vec![
        ("PCIe-2GB", SystemConfig::pcie_host(2.0, MemTech::Ddr4)),
        ("PCIe-8GB", SystemConfig::pcie_host(8.0, MemTech::Ddr4)),
        ("PCIe-64GB", SystemConfig::pcie_host(64.0, MemTech::Hbm2)),
        ("DevMem", SystemConfig::devmem(MemTech::Hbm2)),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = VitModel::Base;
    println!(
        "{model}: {} layers, hidden {}, {} heads\n",
        model.layers(),
        model.hidden(),
        model.heads()
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12}",
        "system", "layer (us)", "model (ms)", "gemm (us)", "non-gemm"
    );
    for (label, config) in systems() {
        let mut sim = Simulation::new(config)?;
        let report = sim.run_vit_layer(model)?;
        println!(
            "{label:>10} {:>12.1} {:>12.2} {:>12.1} {:>12.1}",
            report.total_time_ns() / 1000.0,
            report.full_model_ns(model.layers()) / 1e6,
            report.gemm_ns() / 1000.0,
            report.non_gemm_ns() / 1000.0,
        );
    }
    println!();
    println!("DevMem wins every GEMM but pays ~4x on CPU-side Non-GEMM operators");
    println!("(LayerNorm/Softmax/GELU stream over PCIe in that configuration),");
    println!("which is why a fast host-memory link can beat device-side memory.");
    Ok(())
}
