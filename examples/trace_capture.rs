//! Packet-trace example: attach the kernel tracer to a run and dump the
//! first PCIe endpoint packets as CSV — the gem5 trace-flag workflow.
//!
//! Run with `cargo run --release --example trace_capture`.

use gem5_accesys::prelude::*;
use gem5_accesys::sim::PacketTrace;

fn main() -> Result<(), Error> {
    let mut sim = Simulation::new(SystemConfig::paper_baseline())?;
    // Record up to 64 packet deliveries to PCIe modules only.
    sim.kernel_mut()
        .set_tracer(Box::new(PacketTrace::new(64).with_filter("pcie")));
    let report = sim.run_gemm(GemmSpec::square(64))?;
    let trace = sim
        .kernel()
        .tracer::<PacketTrace>()
        .expect("tracer installed");
    println!(
        "GEMM 64x64x64 finished in {:.1} µs; captured {} PCIe packet deliveries ({} beyond capacity)\n",
        report.total_time_ns() / 1000.0,
        trace.rows().len(),
        trace.dropped()
    );
    // First 20 rows of the CSV: doorbell write, DMA reads, completions.
    for line in trace.to_csv().lines().take(20) {
        println!("{line}");
    }
    println!("...");
    println!("\nEach row is one TLP delivery: time, receiving module, command,");
    println!("address, size, DMA stream and packet id. Filters and capacity are");
    println!("configurable; a custom `Tracer` can observe every event instead.");
    Ok(())
}
