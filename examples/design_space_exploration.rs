//! Design-space exploration: the kind of study the framework exists for.
//! Sweeps PCIe bandwidth × memory technology × memory location for a
//! fixed GEMM and prints the grid, so a system architect can pick the
//! cheapest configuration that meets a latency target (the paper's
//! "balanced approach to performance and cost").
//!
//! Run with `cargo run --release --example design_space_exploration`.

use gem5_accesys::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = GemmSpec::square(256);
    let bandwidths = [2.0, 8.0, 32.0];
    let techs = [MemTech::Ddr4, MemTech::Gddr6, MemTech::Hbm2];

    println!("GEMM {spec}: execution time in us\n");
    print!("{:>22}", "config");
    for bw in bandwidths {
        print!("{:>14}", format!("PCIe {bw} GB/s"));
    }
    println!("{:>14}", "DevMem");

    for tech in techs {
        print!("{:>22}", format!("host/device {tech}"));
        for bw in bandwidths {
            let mut sim = Simulation::new(SystemConfig::pcie_host(bw, tech))?;
            let t = sim.run_gemm(spec)?.total_time_ns() / 1000.0;
            print!("{t:>14.1}");
        }
        let mut sim = Simulation::new(SystemConfig::devmem(tech))?;
        let t = sim.run_gemm(spec)?.total_time_ns() / 1000.0;
        println!("{t:>14.1}");
    }

    println!();
    println!("reading: host-side memory with a fast link closes most of the");
    println!("gap to device-side memory for GEMM-like streaming workloads.");
    Ok(())
}
