//! Design-space exploration: the kind of study the framework exists for.
//! Sweeps PCIe bandwidth × memory technology × memory location for a
//! fixed GEMM — in parallel, through the `accesys-exp` engine — and
//! prints the grid, so a system architect can pick the cheapest
//! configuration that meets a latency target (the paper's "balanced
//! approach to performance and cost").
//!
//! Run with `cargo run --release --example design_space_exploration`
//! (`ACCESYS_JOBS=N` to pin the worker count).

use gem5_accesys::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = GemmSpec::square(256);
    let bandwidths = [2.0, 8.0, 32.0];
    let techs = [MemTech::Ddr4, MemTech::Gddr6, MemTech::Hbm2];

    // One grid point per (tech, link) cell; `None` is the DevMem column.
    let links: Vec<Option<f64>> = bandwidths.iter().copied().map(Some).chain([None]).collect();
    let result = Grid::cross2("dse", techs, links)
        .sweep(|&(tech, link)| {
            let cfg = match link {
                Some(bw) => SystemConfig::pcie_host(bw, tech),
                None => SystemConfig::devmem(tech),
            };
            Simulation::measure_gemm(cfg, spec)
                .map(|r| r.total_time_ns() / 1000.0)
                .expect("config valid and run completes")
        })
        .run(Jobs::from_env());
    eprintln!(
        "# dse: {} points in {:.2}s (jobs={})",
        result.points.len(),
        result.wall_secs(),
        result.jobs
    );

    println!("GEMM {spec}: execution time in us\n");
    print!("{:>22}", "config");
    for bw in bandwidths {
        print!("{:>14}", format!("PCIe {bw} GB/s"));
    }
    println!("{:>14}", "DevMem");
    for tech in techs {
        print!("{:>22}", format!("host/device {tech}"));
        for (_, us) in result.points.iter().filter(|((t, _), _)| *t == tech) {
            print!("{us:>14.1}");
        }
        println!();
    }

    println!();
    println!("reading: host-side memory with a fast link closes most of the");
    println!("gap to device-side memory for GEMM-like streaming workloads.");
    Ok(())
}
