//! The serving layer end to end: open-loop traffic, continuous
//! batching, and the latency/goodput numbers a serving system is
//! judged by.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_serve::{serve, ArrivalSpec, Policy, RequestShape, ServeConfig};

fn main() -> Result<(), accesys::Error> {
    // A depth-1 tree with four accelerator leaves, each with local
    // device memory (job DMA off the shared uplink, compute pinned) —
    // the serving testbed of the `serve_scaling` experiment.
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(50_000.0);
    cfg.smmu = None;
    let tree = |cfg: &SystemConfig| {
        switch_tree_with(cfg, &[4], |_| EndpointOptions {
            accel: None,
            dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
        })
    };

    // Every client sends the same request: a two-layer encoder, small
    // enough that per-job compute dominates.
    let shape = RequestShape {
        seq: 16,
        hidden: 64,
        heads: 4,
        mlp: 128,
        slices: 2,
    };
    // 800 req/s of two-tenant Poisson traffic over 50 virtual ms —
    // past what one leaf can serve, within reach of four.
    let arrivals = ArrivalSpec::poisson(800.0, 2, 42).generate(50_000_000);
    let config = ServeConfig::new(8, 32).with_slo_ns(20e6);

    println!("== serving 800 req/s on a 4-leaf switch tree ==\n");
    println!(
        "{:<16} {:>9} {:>9} {:>10} {:>10} {:>10} {:>9}",
        "policy", "admitted", "rejected", "p50 (µs)", "p99 (µs)", "goodput", "rounds"
    );

    // The same trace under each batching policy.
    let policies: [(&str, Policy); 3] = [
        ("fifo", Policy::Fifo),
        ("round-robin", Policy::round_robin()),
        ("weighted 3:1", Policy::weighted_share(&[3, 1])),
    ];
    for (name, policy) in policies {
        let spec = tree(&cfg)?;
        let mut sim = Simulation::from_topology(cfg.clone(), &spec)?;
        let report = serve(&mut sim, &shape, &arrivals, &policy, &config)?;
        println!(
            "{:<16} {:>9} {:>9} {:>10.0} {:>10.0} {:>10.1} {:>9}",
            name,
            report.admitted,
            report.rejected,
            report.latency.p50_ns / 1e3,
            report.latency.p99_ns / 1e3,
            report.goodput_rps,
            report.rounds,
        );
    }

    // One request at a time on the same hardware: what serving looked
    // like before the batching engine.
    let spec = tree(&cfg)?;
    let mut sim = Simulation::from_topology(cfg.clone(), &spec)?;
    let sequential = serve(
        &mut sim,
        &shape,
        &arrivals,
        &Policy::Fifo,
        &ServeConfig::new(1, 32).with_slo_ns(20e6),
    )?;
    println!(
        "{:<16} {:>9} {:>9} {:>10.0} {:>10.0} {:>10.1} {:>9}",
        "one-at-a-time",
        sequential.admitted,
        sequential.rejected,
        sequential.latency.p50_ns / 1e3,
        sequential.latency.p99_ns / 1e3,
        sequential.goodput_rps,
        sequential.rounds,
    );

    // Per-tenant tails under the weighted policy.
    let spec = tree(&cfg)?;
    let mut sim = Simulation::from_topology(cfg.clone(), &spec)?;
    let weighted = serve(
        &mut sim,
        &shape,
        &arrivals,
        &Policy::weighted_share(&[3, 1]),
        &config,
    )?;
    println!("\nper-tenant tails under weighted 3:1 share:");
    for t in &weighted.tenants {
        println!(
            "  tenant {}: {:>4} served, p99 {:>8.0} µs",
            t.tenant,
            t.latency.count,
            t.latency.p99_ns / 1e3
        );
    }
    Ok(())
}
