//! Standard-interconnect exploration: the same accelerator attached over
//! the paper's PCIe hierarchy versus a CXL.mem-style flit link.
//!
//! Run with `cargo run --release --example cxl_exploration`.

use gem5_accesys::accesys::InterconnectKind;
use gem5_accesys::prelude::*;

fn main() -> Result<(), Error> {
    // A CXL ×8 port and a PCIe hierarchy tuned to the same effective
    // bandwidth, so the remaining difference is pure protocol/topology.
    let cxl_cfg = SystemConfig::cxl_host(8, MemTech::Ddr4);
    let equal_bw = cxl_cfg.cxl_link.payload_bandwidth_gbps();
    println!(
        "CXL ×8 payload bandwidth: {equal_bw:.1} GB/s — comparing against PCIe at the same rate\n"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "matrix", "PCIe (µs)", "CXL (µs)", "CXL gain"
    );
    for matrix in [32u32, 64, 128, 256] {
        let spec = GemmSpec::square(matrix);
        let mut pcie = Simulation::new(SystemConfig::pcie_host(equal_bw, MemTech::Ddr4))?;
        let mut cxl = Simulation::new(cxl_cfg.clone())?;
        assert_eq!(cxl.config().interconnect, InterconnectKind::Cxl);
        let t_pcie = pcie.run_gemm(spec)?.total_time_ns();
        let t_cxl = cxl.run_gemm(spec)?.total_time_ns();
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>9.2}x",
            matrix,
            t_pcie / 1000.0,
            t_cxl / 1000.0,
            t_pcie / t_cxl
        );
    }
    println!("\nSmall jobs are hop-latency bound: dropping the switch and the 150 ns");
    println!("root-complex turnaround is worth more than any bandwidth knob. Large");
    println!("jobs converge — both links serialize the same bytes.");
    Ok(())
}
