//! The LLM serving family end to end: mixed prefill/decode continuous
//! batching, KV-cache pressure lowered to host-memory transfers, and
//! the one-shot autoregressive graph shapes (speculative decode, MoE
//! routing).
//!
//! ```sh
//! cargo run --release --example llm_decode
//! ```

use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_serve::{serve_llm, ArrivalSpec, LlmRequestShape, LlmServeConfig, Policy};
use accesys_workload::llm::{moe_token_route, speculative_fork_verify, LlmSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A depth-1 tree with four leaves, each with local device memory —
    // the KV cache of every request lives in its device's slice.
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(5_000.0);
    cfg.smmu = None;
    let tree = |cfg: &SystemConfig| {
        switch_tree_with(cfg, &[4], |_| EndpointOptions {
            accel: None,
            dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
        })
    };

    // Every client sends the same autoregressive request: a tiny
    // two-layer model, 12-token prompt, 6 generated tokens.
    let shape = LlmRequestShape {
        spec: LlmSpec::tiny(),
        prompt: 12,
        decode: 6,
    };
    println!(
        "request: {} prompt tokens -> {} decode tokens, {} KV bytes/token, {} KV bytes max",
        shape.prompt,
        shape.decode,
        shape.spec.kv_bytes_per_token(),
        shape.max_kv_bytes()
    );

    // 1200 req/s of two-tenant Poisson traffic over 50 virtual ms —
    // enough to keep the batch full and prefills folding in next to
    // veterans' decode slices.
    let arrivals = ArrivalSpec::poisson(1200.0, 2, 42).generate(50_000_000);

    // The same trace under an ample and a tight per-device KV budget:
    // tight holds 1.5 requests' worth, so concurrent decoders must
    // evict each other and the pressure shows up as Transfer traffic.
    let budgets: [(&str, u64); 2] = [("ample", 1 << 20), ("tight", shape.max_kv_bytes() * 3 / 2)];
    println!("\n== serving 1200 req/s on a 4-leaf switch tree ==\n");
    println!(
        "{:<8} {:>8} {:>7} {:>7} {:>10} {:>10} {:>9} {:>9} {:>10}",
        "budget",
        "admitted",
        "rounds",
        "mixed",
        "ttft (µs)",
        "p50 (µs)",
        "tok/s",
        "goodput",
        "evictions"
    );
    for (name, budget) in budgets {
        let spec = tree(&cfg)?;
        let mut sim = Simulation::from_topology(cfg.clone(), &spec)?;
        let report = serve_llm(
            &mut sim,
            &shape,
            &arrivals,
            &Policy::round_robin(),
            &LlmServeConfig::new(8, 32, budget).with_slo_ns(50e6),
        )?;
        println!(
            "{:<8} {:>8} {:>7} {:>7} {:>10.0} {:>10.0} {:>9.0} {:>9.1} {:>10}",
            name,
            report.admitted,
            report.rounds,
            report.mixed_rounds,
            report.ttft.p50_ns / 1e3,
            report.latency.p50_ns / 1e3,
            report.decode_tps,
            report.goodput_rps,
            report.kv.evictions,
        );
    }

    // The one-shot autoregressive shapes, dispatched directly: a
    // speculative fork-verify round (draft chain + per-device verify)
    // and an MoE token-routing layer (router, per-expert transfers and
    // FFNs, combine).
    println!("\n== one-shot autoregressive graph shapes ==\n");
    let spec = tree(&cfg)?;
    let mut sim = Simulation::from_topology(cfg.clone(), &spec)?;
    let speculative = speculative_fork_verify(&shape.spec, shape.prompt, 4, 4);
    let run = sim.run_graph(&speculative)?;
    println!(
        "speculative fork-verify (4 draft tokens, 4 devices): {} tasks, {} ticks",
        speculative.len(),
        run.total_ticks
    );
    let moe = moe_token_route(&shape.spec, 16, 4, 4);
    let run = sim.run_graph(&moe)?;
    println!(
        "moe token route (16 tokens over 4 experts):          {} tasks, {} ticks",
        moe.len(),
        run.total_ticks
    );
    Ok(())
}
