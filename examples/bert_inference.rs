//! NLP workload example: BERT encoder layers at growing sequence
//! lengths. Attention (GEMM on S×S scores plus softmax over S² elements)
//! grows quadratically while the MLP grows linearly, shifting the
//! GEMM/Non-GEMM balance the paper's Fig. 8/9 analysis turns on.
//!
//! Run with `cargo run --release --example bert_inference`.

use gem5_accesys::prelude::*;
use gem5_accesys::workload::BertModel;

fn main() -> Result<(), Error> {
    let cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    println!("BERT-Base encoder layer on PCIe-8GB / DDR4\n");
    println!(
        "{:>7} {:>12} {:>12} {:>14} {:>12}",
        "seq", "total (µs)", "gemm (µs)", "nongemm (µs)", "nongemm %"
    );
    for seq in [64u32, 128, 256, 512] {
        let mut sim = Simulation::new(cfg.clone())?;
        let report = sim.run_bert_layer(BertModel::Base, seq)?;
        println!(
            "{:>7} {:>12.1} {:>12.1} {:>14.1} {:>11.1}%",
            seq,
            report.total_time_ns() / 1000.0,
            report.gemm_ns() / 1000.0,
            report.non_gemm_ns() / 1000.0,
            100.0 * report.non_gemm_fraction()
        );
    }
    println!("\nLonger sequences push work into attention: softmax traffic grows");
    println!("with S², so the Non-GEMM share rises — which (per Fig. 9) moves the");
    println!("device-memory-vs-PCIe decision toward fast host links.");
    Ok(())
}
