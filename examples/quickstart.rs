//! Quickstart: build the paper's Table II baseline system, run one GEMM
//! through the full stack (driver doorbell → PCIe → SMMU → caches → DRAM
//! → systolic array → MSI), verify the numerical result, and print the
//! headline statistics.
//!
//! Run with `cargo run --release --example quickstart`.

use gem5_accesys::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SystemConfig::paper_baseline();
    println!(
        "system: PCIe {:.1} GB/s, host {} GB/s memory, DC mode, SMMU on",
        config.pcie.bandwidth_gbps(),
        config.host_mem.bandwidth_gbps()
    );

    let mut sim = Simulation::new(config)?;
    let spec = GemmSpec::square(256);
    let (report, passed) = sim.run_gemm_verified(spec)?;

    println!("workload: {spec}");
    println!("functional result correct: {passed}");
    println!(
        "end-to-end time:   {:>10.1} us",
        report.total_time_ns() / 1000.0
    );
    println!(
        "accelerator time:  {:>10.1} us",
        report.gemm_time_ns() / 1000.0
    );
    println!(
        "bytes moved:       {:>10.1} MiB",
        report.bytes_moved() as f64 / (1 << 20) as f64
    );
    println!("achieved DMA BW:   {:>10.2} GB/s", report.achieved_gbps());
    println!(
        "SMMU: {} translations, {} walks, {:.1}% miss rate",
        report.smmu.translations,
        report.smmu.ptw_count,
        report.smmu.miss_rate() * 100.0
    );

    // A few interesting counters from the full stats map.
    for key in [
        "pcie.ep0.reads_sent",
        "pcie.ep0.tag_stalls",
        "link.sw_up.wire_bytes",
        "iocache.hits",
        "llc.hits",
        "host_mem.bytes",
    ] {
        println!("{key:<24} {}", report.stats.get_or_zero(key));
    }
    Ok(())
}
