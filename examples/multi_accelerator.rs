//! Accelerator-cluster example: shard one GEMM across several MatrixFlow
//! instances behind the PCIe switch and watch the scaling regime change.
//!
//! Run with `cargo run --release --example multi_accelerator`.

use gem5_accesys::prelude::*;

fn main() -> Result<(), Error> {
    let spec = GemmSpec::square(256);
    println!("Sharding {spec} across 1..=8 accelerators\n");
    println!(
        "{:>7} {:>12} {:>9} {:>12} {:>14}",
        "accels", "time (µs)", "speedup", "jobs", "uplink stalls"
    );
    let mut base_ns = 0.0;
    for accels in [1u32, 2, 4, 8] {
        let cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4).with_accel_count(accels);
        let mut sim = Simulation::new(cfg)?;
        let report = sim.run_gemm_sharded(spec)?;
        let t = report.total_time_ns();
        if accels == 1 {
            base_ns = t;
        }
        // Credit stalls on the shared switch→RC uplink mark saturation.
        let stalls = report.stats.get_or_zero("link.sw_up.credit_stall_tlps");
        println!(
            "{:>7} {:>12.1} {:>8.2}x {:>12} {:>14.0}",
            accels,
            t / 1000.0,
            base_ns / t,
            report.jobs.len(),
            stalls
        );
    }
    println!("\nWith the default (fast) array the job is transfer-bound, so extra");
    println!("members mostly contend for the shared 8 GB/s uplink. Re-run the");
    println!("`cluster_scaling` bench to see the compute-bound regime scale near-linearly.");
    Ok(())
}
