//! Topology-layer example: build multi-level PCIe switch trees from the
//! declarative IR, shard a GEMM across every leaf, and watch what tree
//! shape costs — and what the validator refuses to build.
//!
//! Run with `cargo run --release --example topology_tree`.

use gem5_accesys::accesys::topology::{self, EndpointOptions};
use gem5_accesys::prelude::*;
use gem5_accesys::workload::GemmSpec;

fn main() -> Result<(), Error> {
    let spec = GemmSpec::square(256);
    println!("Sharding {spec} across PCIe switch trees\n");
    println!(
        "{:>8} {:>6} {:>10} {:>12} {:>14}",
        "shape", "depth", "leaves", "time (µs)", "root up TLPs"
    );
    for levels in [vec![4], vec![8], vec![2, 4], vec![2, 2, 2]] {
        let shape = levels
            .iter()
            .map(u32::to_string)
            .collect::<Vec<_>>()
            .join("x");
        let cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
        let tree = topology::switch_tree(&cfg, &levels)?;
        let mut sim = Simulation::from_topology(cfg, &tree)?;
        let report = sim.run_gemm_sharded(spec)?;
        println!(
            "{:>8} {:>6} {:>10} {:>12.1} {:>14.0}",
            shape,
            levels.len(),
            sim.accel_count(),
            report.total_time_ns() / 1000.0,
            report.stats.get_or_zero("pcie.sw0.up_tlps"),
        );
    }

    // Heterogeneous endpoints: leaf 1 gets HBM2 next to the array, so
    // its shard never crosses PCIe while leaf 0 streams from host DRAM.
    let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    cfg.smmu = None;
    let tree = topology::switch_tree_with(&cfg, &[2], |i| EndpointOptions {
        accel: None,
        dev_mem: (i == 1).then_some(gem5_accesys::accesys::MemBackendConfig::Dram(MemTech::Hbm2)),
    })?;
    let mut sim = Simulation::from_topology(cfg, &tree)?;
    let report = sim.run_gemm_sharded(spec)?;
    println!("\nHeterogeneous 2-leaf tree (leaf 1 has local HBM2):");
    println!(
        "  ep0 PCIe reads: {:>6.0}   ep1 PCIe reads: {:>6.0}   dev_mem1 bytes: {:.0}",
        report.stats.get_or_zero("pcie.ep0.reads_sent"),
        report.stats.get_or_zero("pcie.ep1.reads_sent"),
        report.stats.get_or_zero("dev_mem1.bytes"),
    );

    // The validator rejects shapes the route stack cannot carry —
    // at build time, not as a panic mid-run.
    let cfg = SystemConfig::paper_baseline();
    let err = topology::switch_tree(&cfg, &[2, 2, 1, 1, 1, 1]).unwrap_err();
    println!("\n6-level tree rejected up front: {err}");
    Ok(())
}
