//! Packet-size tuning: reproduce the paper's Key Takeaway #2 for one
//! link speed — the DMA request size has a convex effect on execution
//! time, so neither tiny nor huge packets are optimal.
//!
//! Run with `cargo run --release --example packet_size_tuning`.

use gem5_accesys::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = GemmSpec::square(256);
    let bandwidth = 16.0;
    println!("GEMM {spec} over a {bandwidth} GB/s PCIe link\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "packet", "time (us)", "vs best", "EP tag stalls"
    );

    let mut results = Vec::new();
    for packet in [64u32, 128, 256, 512, 1024, 2048, 4096] {
        let config = SystemConfig::pcie_host(bandwidth, MemTech::Ddr4).with_request_bytes(packet);
        let mut sim = Simulation::new(config)?;
        let report = sim.run_gemm(spec)?;
        results.push((
            packet,
            report.total_time_ns(),
            report.stats.get_or_zero("pcie.ep0.tag_stalls"),
        ));
    }
    let best = results
        .iter()
        .map(|&(_, t, _)| t)
        .fold(f64::INFINITY, f64::min);
    for (packet, t, stalls) in &results {
        println!(
            "{packet:>10} {:>12.1} {:>11.1}% {stalls:>14}",
            t / 1000.0,
            (t / best - 1.0) * 100.0
        );
    }
    println!();
    println!("small packets pay per-TLP header and TLP-rate overhead; large");
    println!("packets exhaust per-hop credits and stall store-and-forward hops.");
    Ok(())
}
