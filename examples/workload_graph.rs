//! The workload graph layer end to end: one switch-tree system, three
//! schedules the flat op lists could never express.
//!
//! ```sh
//! cargo run --release --example workload_graph
//! ```

use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_workload::graph::{
    head_parallel_attention, pipelined_encoder, two_tenant_mix, PipelineSpec,
};
use accesys_workload::{BertModel, VitModel};

fn main() -> Result<(), accesys::Error> {
    // A depth-1 tree with four accelerator leaves, each with local
    // device memory for its working set (job DMA stays off the shared
    // uplink; compute pinned so scheduling shape dominates).
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(50_000.0);
    cfg.smmu = None;
    let tree = |cfg: &SystemConfig| {
        switch_tree_with(cfg, &[4], |_| EndpointOptions {
            accel: None,
            dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
        })
    };

    println!("== workload graphs on a 4-leaf switch tree ==\n");

    // 1. Pipelined encoder: 4 layers over 4 stages, 3 images in flight.
    let spec = tree(&cfg)?;
    let mut sim = Simulation::from_topology(cfg.clone(), &spec)?;
    let pipeline = pipelined_encoder(
        64,
        128,
        4,
        512,
        &PipelineSpec {
            layers: 4,
            images: 3,
            devices: 4,
        },
    );
    let (report, plan) = sim.run_graph_planned(&pipeline)?;
    println!(
        "pipelined encoder   : {:8.1} µs  ({} tasks, peak {} jobs in flight, {} handoffs)",
        report.total_time_ns() / 1000.0,
        plan.tasks,
        plan.max_in_flight,
        plan.transfers,
    );

    // 2. Head-parallel attention: QKV heads fan out over the pool.
    let spec = tree(&cfg)?;
    let mut sim = Simulation::from_topology(cfg.clone(), &spec)?;
    let (report, plan) = sim.run_graph_planned(&head_parallel_attention(VitModel::Base))?;
    println!(
        "head-parallel attn  : {:8.1} µs  ({} tasks, peak {} jobs in flight)",
        report.total_time_ns() / 1000.0,
        plan.tasks,
        plan.max_in_flight,
    );

    // 3. Two tenants (a ViT and a BERT) interleaved on shared devices.
    let spec = tree(&cfg)?;
    let mut sim = Simulation::from_topology(cfg.clone(), &spec)?;
    let (report, plan) =
        sim.run_graph_planned(&two_tenant_mix(VitModel::Base, BertModel::Base, 128))?;
    println!(
        "two-tenant mix      : {:8.1} µs  ({} tasks, peak {} jobs in flight)",
        report.total_time_ns() / 1000.0,
        plan.tasks,
        plan.max_in_flight,
    );

    println!("\nphases of the tenant mix, first five:");
    for (label, ns) in report.phases.iter().take(5) {
        println!("  {label:<24} {:10.1} µs", ns / 1000.0);
    }
    Ok(())
}
