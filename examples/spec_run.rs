//! The spec front-end end to end: load a text scenario file through
//! the staged loader (parse → resolve → validate), run it through the
//! driver of its kind, and see what a typed diagnostic looks like.
//!
//! ```sh
//! cargo run --release --example spec_run
//! ```
//!
//! The same flow is available from the shell as the `accesys` CLI:
//!
//! ```sh
//! cargo run --release -p accesys-bench --bin accesys -- run specs/paper_baseline.spec
//! ```

use accesys_bench::{fig2, Scale};
use accesys_exp::cli::Cli;
use accesys_exp::Jobs;
use accesys_spec::Scenario;

fn main() {
    // 1. Load a committed scenario file. `load_file` runs the whole
    //    staged loader; the `Spec` it returns holds the resolved
    //    scenario plus the canonical re-serialization of the text.
    let spec = accesys_spec::load_file(std::path::Path::new("specs/paper_baseline.spec"))
        .expect("the committed baseline loads");
    println!(
        "== specs/paper_baseline.spec: kind {}, scenario `{}` ==\n",
        spec.scenario.kind(),
        spec.scenario.name()
    );

    // 2. Dry-build it: instantiate every topology, workload and trace
    //    the sweep would touch, without running anything. This is what
    //    `accesys validate` does.
    spec.dry_build(Scale::Quick).expect("baseline dry-builds");

    // 3. Run it through the driver of its kind — the text file is the
    //    single source of truth for the testbed and the swept axis.
    if let Scenario::Roofline(sc) = &spec.scenario {
        fig2::run_cli_for(sc, &Cli::new(Scale::Quick, Jobs::new(2)));
    }

    // 4. Every way a spec can be wrong is a typed, span-carrying
    //    diagnostic — never a panic. Misspell a key:
    let broken = spec.canonical.replace("matrix", "matrrix");
    let err = accesys_spec::load_str(&broken).expect_err("misspelled key is rejected");
    println!("\n== a misspelled key, as the loader reports it ==");
    println!("  {err}");
    println!(
        "  (line {:?}, field {:?})",
        err.line(),
        err.field().unwrap_or_default()
    );
}
