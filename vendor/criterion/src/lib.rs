//! Minimal criterion shim, vendored because the crates.io registry is
//! unreachable in this build environment.
//!
//! Provides the harness surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a
//! simple wall-clock measurement loop instead of criterion's statistical
//! machinery. Results print as `<name> ... <mean time>/iter`.
//!
//! ```
//! use criterion::{criterion_group, criterion_main, Criterion};
//!
//! fn bench(c: &mut Criterion) {
//!     c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
//! }
//!
//! criterion_group!(benches, bench);
//! # fn main() { benches(); }
//! ```

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("latency", 150)` → `latency/150`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// `BenchmarkId::from_parameter(64)` → `64`.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its return value alive so the computation
    /// is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness state, handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, &id.into(), self.sample_size, f);
        self
    }
}

/// A named group; benches within it share sample-size settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each bench runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (formatting hook in real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    mut f: F,
) {
    let full_name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    let mut bencher = Bencher {
        // One warm-up pass plus a few timed iterations; the real criterion
        // sampling machinery is overkill for a smoke harness.
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.iterations = sample_size.clamp(1, 10) as u64;
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    println!("bench: {full_name:<48} {:>12.3} ms/iter", per_iter * 1e3);
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a bench binary (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
