//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! vendored serde shim.
//!
//! The crates.io registry is unreachable in this build environment, so this
//! crate re-implements just enough of serde's derive machinery — by
//! hand-parsing the `proc_macro` token stream, since `syn` is equally
//! unavailable — to cover the type shapes the workspace actually uses:
//!
//! * structs with named fields,
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! Generated impls target the shim's self-describing `Value` model rather
//! than serde's visitor architecture; `serde_json` in this tree speaks the
//! same model, so round-trips work end to end.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field list of a struct or struct-like enum variant.
type Fields = Vec<String>;

enum Shape {
    /// `struct S { a: A, b: B }`
    Struct(Fields),
    /// `struct S(A, B);`
    TupleStruct(usize),
    /// `enum E { Unit, Tuple(A), Named { a: A } }`
    Enum(Vec<(String, VariantShape)>),
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Fields),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_type(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect::<String>();
            format!("::serde::Value::Map(vec![{entries}])")
        }
        Shape::TupleStruct(arity) => {
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect::<String>();
            format!("::serde::Value::Seq(vec![{items}])")
        }
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|(v, vs)| serialize_variant_arm(&name, v, vs))
                .collect::<String>();
            format!("match self {{ {arms} }}")
        }
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_type(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_field(map, \"{f}\", \"{name}\")?)?,"
                    )
                })
                .collect::<String>();
            format!(
                "let map = value.as_map().ok_or_else(|| ::serde::DeError::custom(\
                     \"expected map for struct {name}\"))?;\n\
                 Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(arity) => {
            let inits = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(::serde::seq_item(seq, {i}, \"{name}\")?)?,"
                    )
                })
                .collect::<String>();
            format!(
                "let seq = value.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                     \"expected sequence for tuple struct {name}\"))?;\n\
                 Ok({name}({inits}))"
            )
        }
        Shape::Enum(variants) => deserialize_enum_body(&name, variants),
    };
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

fn serialize_variant_arm(name: &str, variant: &str, shape: &VariantShape) -> String {
    match shape {
        VariantShape::Unit => {
            format!("{name}::{variant} => ::serde::Value::Str(\"{variant}\".to_string()),")
        }
        VariantShape::Tuple(1) => format!(
            "{name}::{variant}(f0) => ::serde::Value::Map(vec![(\"{variant}\".to_string(), \
                 ::serde::Serialize::to_value(f0))]),"
        ),
        VariantShape::Tuple(arity) => {
            let binds = (0..*arity).map(|i| format!("f{i},")).collect::<String>();
            let items = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(f{i}),"))
                .collect::<String>();
            format!(
                "{name}::{variant}({binds}) => ::serde::Value::Map(vec![(\"{variant}\".to_string(), \
                     ::serde::Value::Seq(vec![{items}]))]),"
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.iter().map(|f| format!("{f},")).collect::<String>();
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),"))
                .collect::<String>();
            format!(
                "{name}::{variant} {{ {binds} }} => ::serde::Value::Map(vec![(\"{variant}\".to_string(), \
                     ::serde::Value::Map(vec![{entries}]))]),"
            )
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[(String, VariantShape)]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|(_, vs)| matches!(vs, VariantShape::Unit))
        .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
        .collect::<String>();
    let data_arms = variants
        .iter()
        .filter_map(|(v, vs)| match vs {
            VariantShape::Unit => None,
            VariantShape::Tuple(1) => Some(format!(
                "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),"
            )),
            VariantShape::Tuple(arity) => {
                let inits = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(::serde::seq_item(seq, {i}, \"{name}::{v}\")?)?,"
                        )
                    })
                    .collect::<String>();
                Some(format!(
                    "\"{v}\" => {{\n\
                         let seq = inner.as_seq().ok_or_else(|| ::serde::DeError::custom(\
                             \"expected sequence for variant {name}::{v}\"))?;\n\
                         Ok({name}::{v}({inits}))\n\
                     }}"
                ))
            }
            VariantShape::Named(fields) => {
                let inits = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::map_field(map, \"{f}\", \"{name}::{v}\")?)?,"
                        )
                    })
                    .collect::<String>();
                Some(format!(
                    "\"{v}\" => {{\n\
                         let map = inner.as_map().ok_or_else(|| ::serde::DeError::custom(\
                             \"expected map for variant {name}::{v}\"))?;\n\
                         Ok({name}::{v} {{ {inits} }})\n\
                     }}"
                ))
            }
        })
        .collect::<String>();
    format!(
        "match value {{\n\
             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 other => Err(::serde::DeError::custom(format!(\
                     \"unknown unit variant {{other}} for enum {name}\"))),\n\
             }},\n\
             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n\
                     {data_arms}\n\
                     other => Err(::serde::DeError::custom(format!(\
                         \"unknown data variant {{other}} for enum {name}\"))),\n\
                 }}\n\
             }}\n\
             _ => Err(::serde::DeError::custom(\
                 \"expected string or single-entry map for enum {name}\")),\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Token-stream parsing (no syn available).
// ---------------------------------------------------------------------------

fn parse_type(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Struct(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                (name, Shape::TupleStruct(count_tuple_fields(g.stream())))
            }
            _ => panic!("serde_derive shim: unsupported struct body for `{name}`"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                (name, Shape::Enum(parse_variants(g.stream())))
            }
            _ => panic!("serde_derive shim: missing enum body for `{name}`"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Advance past any number of `#[...]` (or `#![...]`) attributes.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            _ => panic!("serde_derive shim: malformed attribute"),
        }
    }
}

/// Advance past `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

/// Skip tokens until a comma at angle-bracket depth zero (commas inside
/// `<...>` generic argument lists belong to the current field's type).
/// Returns with `i` positioned after the comma, or at end of input.
fn skip_past_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{field}`, found {other:?}")
            }
        }
        skip_past_comma(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_past_comma(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_past_comma(&tokens, &mut i);
        variants.push((name, shape));
    }
    variants
}
