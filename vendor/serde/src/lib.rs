//! Minimal serde shim, vendored because the crates.io registry is
//! unreachable in this build environment.
//!
//! It keeps serde's two public names — [`Serialize`] and [`Deserialize`],
//! each both a trait and a derive macro — but swaps the visitor
//! architecture for a small self-describing [`Value`] model. The in-tree
//! `serde_json` shim serializes that model to JSON text and back, which is
//! all this workspace needs (config round-trips and report dumps).
//!
//! ```
//! #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
//! struct Point {
//!     x: u32,
//!     y: u32,
//! }
//!
//! let v = serde::Serialize::to_value(&Point { x: 3, y: 4 });
//! let back: Point = serde::Deserialize::from_value(&v).unwrap();
//! assert_eq!(back, Point { x: 3, y: 4 });
//! ```

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized form: the intermediate every [`Serialize`]
/// impl produces and every [`Deserialize`] impl consumes.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map; keys are field or variant names.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a [`Value::Map`], if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The items of a [`Value::Seq`], if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the shape a
/// [`Deserialize`] impl expects.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialize to the shim's [`Value`] model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

/// Deserialize from the shim's [`Value`] model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Look up a struct field in a serialized map (derive-macro helper).
pub fn map_field<'a>(
    map: &'a [(String, Value)],
    field: &str,
    type_name: &str,
) -> Result<&'a Value, DeError> {
    map.iter()
        .find(|(k, _)| k == field)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{field}` for {type_name}")))
}

/// Index into a serialized sequence (derive-macro helper).
pub fn seq_item<'a>(seq: &'a [Value], index: usize, type_name: &str) -> Result<&'a Value, DeError> {
    seq.get(index)
        .ok_or_else(|| DeError::custom(format!("missing element {index} for {type_name}")))
}

macro_rules! impl_serde_int {
    ($($ty:ty => $variant:ident as $wide:ty),+ $(,)?) => {
        $(
            impl Serialize for $ty {
                fn to_value(&self) -> Value {
                    Value::$variant(*self as $wide)
                }
            }

            impl Deserialize for $ty {
                fn from_value(value: &Value) -> Result<Self, DeError> {
                    let wide: $wide = match *value {
                        Value::I64(v) => v
                            .try_into()
                            .map_err(|_| DeError::custom("signed value out of range"))?,
                        Value::U64(v) => v
                            .try_into()
                            .map_err(|_| DeError::custom("unsigned value out of range"))?,
                        _ => {
                            return Err(DeError::custom(concat!(
                                "expected integer for ",
                                stringify!($ty)
                            )))
                        }
                    };
                    wide.try_into()
                        .map_err(|_| DeError::custom(concat!("value out of range for ", stringify!($ty))))
                }
            }
        )+
    };
}

impl_serde_int!(
    i8 => I64 as i64,
    i16 => I64 as i64,
    i32 => I64 as i64,
    i64 => I64 as i64,
    isize => I64 as i64,
    u8 => U64 as u64,
    u16 => U64 as u64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
);

macro_rules! impl_serde_float {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Serialize for $ty {
                fn to_value(&self) -> Value {
                    Value::F64(f64::from(*self))
                }
            }

            impl Deserialize for $ty {
                fn from_value(value: &Value) -> Result<Self, DeError> {
                    match *value {
                        Value::F64(v) => Ok(v as $ty),
                        Value::I64(v) => Ok(v as $ty),
                        Value::U64(v) => Ok(v as $ty),
                        _ => Err(DeError::custom(concat!("expected number for ", stringify!($ty)))),
                    }
                }
            }
        )+
    };
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::from_value(value)?;
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected sequence of length {N}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $arity:literal),+ $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_value(&self) -> Value {
                    Value::Seq(vec![$(self.$idx.to_value()),+])
                }
            }

            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn from_value(value: &Value) -> Result<Self, DeError> {
                    let seq = value
                        .as_seq()
                        .ok_or_else(|| DeError::custom("expected sequence for tuple"))?;
                    if seq.len() != $arity {
                        return Err(DeError::custom(concat!(
                            "expected sequence of length ",
                            stringify!($arity)
                        )));
                    }
                    Ok(($($name::from_value(&seq[$idx])?,)+))
                }
            }
        )+
    };
}

impl_serde_tuple!(
    (A: 0, B: 1) with 2,
    (A: 0, B: 1, C: 2) with 3,
    (A: 0, B: 1, C: 2, D: 3) with 4,
);
