//! Minimal proptest shim, vendored because the crates.io registry is
//! unreachable in this build environment.
//!
//! Supports the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), numeric range strategies, [`collection::vec`], [`any`] for
//! `bool`, and the `prop_assert*` macros. Cases are generated from a
//! deterministic per-test seed so failures reproduce across runs; there is
//! no shrinking — the failing inputs are printed instead.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//!
//! addition_commutes();
//! ```

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-block configuration, set via `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a generated case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.message.fmt(f)
    }
}

/// Deterministic per-test random source handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeded from the test name so each test sees a stable stream.
    pub fn deterministic(test_name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

/// Generates values of `Self::Value`. The shim has no shrinking; a
/// strategy is just a sampler.
pub trait Strategy {
    type Value: std::fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.inner.gen_range(self.clone())
                }
            }
        )+
    };
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.inner.gen_range(self.clone())
                }
            }
        )+
    };
}

impl_range_inclusive_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.inner.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_uint {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl Strategy for Any<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.inner.next_u64() as $ty
                }
            }
        )+
    };
}

impl_any_uint!(u8, u16, u32, u64, usize);

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Define property tests. Mirrors `proptest::proptest!` syntax for plain
/// `name in strategy` argument lists.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    panic!(
                        "proptest case {case} of {} failed: {err}\ninputs: {:?}",
                        stringify!($name),
                        ($(&$arg,)+)
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", ..)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!(left, right)` with an optional message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `(left == right)`\n  left: {left:?}\n right: {right:?}"
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  left: {left:?}\n right: {right:?}",
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// `prop_assert_ne!(left, right)` with an optional message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `(left != right)`\n  both: {left:?}"
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "{}\n  both: {left:?}",
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}
