//! Minimal rand shim, vendored because the crates.io registry is
//! unreachable in this build environment.
//!
//! Mirrors the rand 0.8 surface the workspace uses — [`SeedableRng`],
//! [`Rng::gen_range`], and [`rngs::StdRng`] — backed by splitmix64, which
//! passes the reproducibility and bounded-range needs of the workload
//! generators without external dependencies.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let x: i32 = rng.gen_range(-8..=8);
//! assert!((-8..=8).contains(&x));
//! // Same seed, same stream.
//! assert_eq!(StdRng::seed_from_u64(42).gen_range(-8..=8), x);
//! ```

/// A source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range, e.g. `rng.gen_range(-8..=8)`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }

            impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $ty
                }
            }
        )+
    };
}

impl_sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($ty:ty),+ $(,)?) => {
        $(
            impl SampleRange<$ty> for std::ops::Range<$ty> {
                fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample empty range");
                    // 53 uniform mantissa bits in [0, 1).
                    let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                    let sample = self.start + unit * (self.end - self.start);
                    // Rounding (notably the f32 cast of 53-bit values) can
                    // land exactly on `end`; keep the range half-open.
                    if sample < self.end {
                        sample
                    } else {
                        self.end.next_down().max(self.start)
                    }
                }
            }
        )+
    };
}

impl_sample_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64), standing in for rand's
    /// `StdRng`. Not cryptographically secure — neither consumer needs that.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}
