//! Minimal JSON front-end for the vendored serde shim: [`to_string`] /
//! [`to_string_pretty`] / [`from_str`] over [`serde::Value`].
//!
//! ```
//! #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
//! struct Pair {
//!     label: String,
//!     score: f64,
//! }
//!
//! let pair = Pair { label: "a/b".to_string(), score: 0.5 };
//! let json = serde_json::to_string(&pair).unwrap();
//! let back: Pair = serde_json::from_str(&json).unwrap();
//! assert_eq!(back, pair);
//! ```

use serde::{DeError, Value};

/// Serialization or parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Serialize `value` as human-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&value.to_value(), 0, &mut out)?;
    Ok(out)
}

/// Parse a JSON string into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(*v, out)?,
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(value: &Value, indent: usize, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_value_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
            Ok(())
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_value_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
            Ok(())
        }
        other => write_value(other, out),
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity literals; floats print in Rust's shortest
/// round-trip form, forced to carry `.0` so they parse back as floats.
fn write_f64(v: f64, out: &mut String) -> Result<(), Error> {
    if !v.is_finite() {
        return Err(Error::new("cannot serialize non-finite float"));
    }
    let text = v.to_string();
    if text.contains(['.', 'e', 'E']) {
        out.push_str(&text);
    } else {
        out.push_str(&text);
        out.push_str(".0");
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("bad float `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        }
    }
}
