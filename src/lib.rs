//! # gem5-accesys
//!
//! Facade crate for the Gem5-AcceSys reproduction. Re-exports the
//! [`accesys`] framework crate and each subsystem crate so the repository
//! root can host integration tests and runnable examples.
//!
//! Start with [`accesys::SystemConfig`] and [`accesys::Simulation`]:
//!
//! ```
//! use gem5_accesys::prelude::*;
//!
//! # fn main() -> Result<(), accesys::Error> {
//! let config = SystemConfig::paper_baseline();
//! let report = Simulation::new(config)?.run_gemm(GemmSpec::square(64))?;
//! assert!(report.total_time_ns() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use accesys;
pub use accesys_accel as accel;
pub use accesys_cache as cache;
pub use accesys_cpu as cpu;
pub use accesys_dma as dma;
pub use accesys_exp as exp;
pub use accesys_interconnect as interconnect;
pub use accesys_mem as mem;
pub use accesys_sim as sim;
pub use accesys_smmu as smmu;
pub use accesys_workload as workload;

/// Commonly used types for examples and tests.
pub mod prelude {
    pub use accesys::{AccessMode, Error, MemoryLocation, RunReport, Simulation, SystemConfig};
    pub use accesys_exp::{Experiment, Grid, Jobs};
    pub use accesys_mem::MemTech;
    pub use accesys_workload::{GemmSpec, VitModel};
}
