//! Property-based tests over core invariants, spanning crates.

use gem5_accesys::accesys::analytic::{PhaseTimes, ThresholdModel};
use gem5_accesys::accesys::{Simulation, SystemConfig};
use gem5_accesys::dma::{DmaDescriptor, DmaDone, DmaEngine, DmaEngineConfig};
use gem5_accesys::mem::{SimpleMemory, SimpleMemoryConfig};
use gem5_accesys::sim::{Ctx, Kernel, Module, Msg, Tick};
use gem5_accesys::workload::GemmSpec;
use proptest::prelude::*;

/// Records delivery times of timer messages.
struct Recorder {
    log: Vec<(Tick, u64)>,
}

impl Module for Recorder {
    fn name(&self) -> &str {
        "recorder"
    }
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        if let Msg::Timer(tag) = msg {
            self.log.push((ctx.now(), tag));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The kernel delivers events in nondecreasing time order, and ties
    /// fire in schedule order.
    #[test]
    fn kernel_delivers_in_time_order(times in prop::collection::vec(0u64..10_000, 1..64)) {
        let mut kernel = Kernel::new();
        let rec = kernel.add_module(Box::new(Recorder { log: vec![] }));
        for (i, &t) in times.iter().enumerate() {
            kernel.schedule(t, rec, Msg::Timer(i as u64));
        }
        kernel.run_until_idle().unwrap();
        let log = &kernel.module::<Recorder>(rec).unwrap().log;
        prop_assert_eq!(log.len(), times.len());
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time went backwards");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "tie broke schedule order");
            }
        }
    }

    /// DMA segmentation is exact: request count and byte totals match
    /// the descriptor for any size/request combination.
    #[test]
    fn dma_segments_exactly(
        bytes in 1u64..100_000,
        request_shift in 6u32..13, // 64..8192
        write in any::<bool>(),
    ) {
        let request_bytes = 1u32 << request_shift;
        struct Waiter { done: Option<DmaDone> }
        impl Module for Waiter {
            fn name(&self) -> &str { "w" }
            fn handle(&mut self, msg: Msg, _ctx: &mut Ctx) {
                if let Ok(d) = msg.into_custom::<DmaDone>() {
                    self.done = Some(d);
                }
            }
        }
        let mut kernel = Kernel::new();
        let mem = kernel.add_module(Box::new(SimpleMemory::new(
            "m",
            SimpleMemoryConfig { latency_ns: 10.0, bandwidth_gbps: 16.0 },
        )));
        let dma = kernel.add_module(Box::new(DmaEngine::new("dma", DmaEngineConfig {
            channels: 1,
            request_bytes,
            max_inflight: 8,
            desc_latency_ns: 0.0,
        })));
        let w = kernel.add_module(Box::new(Waiter { done: None }));
        kernel.schedule(0, dma, Msg::custom(DmaDescriptor {
            channel: 0,
            addr: 0x1000,
            bytes,
            write,
            virt: false,
            target: mem,
            notify: w,
            cookie: 42,
        }));
        kernel.run_until_idle().unwrap();
        let stats = kernel.stats();
        let expected_requests = bytes.div_ceil(u64::from(request_bytes)) as f64;
        prop_assert_eq!(stats.get_or_zero("dma.requests"), expected_requests);
        let moved = if write { stats.get_or_zero("dma.bytes_written") }
                    else { stats.get_or_zero("dma.bytes_read") };
        prop_assert_eq!(moved, bytes as f64);
        let done = kernel.module::<Waiter>(w).unwrap().done;
        prop_assert_eq!(done, Some(DmaDone { channel: 0, cookie: 42, bytes }));
    }

    /// Table IV footprint arithmetic holds for any square size.
    #[test]
    fn gemm_footprint_pages(n in 1u32..4096) {
        let spec = GemmSpec::square(n);
        let bytes = 3 * u64::from(n) * u64::from(n) * 4;
        prop_assert_eq!(spec.footprint_bytes(), bytes);
        prop_assert_eq!(spec.footprint_pages(4096), bytes.div_ceil(4096));
    }

    /// The analytic crossover, when it exists, is a true tie point and
    /// the preferred system flips around it.
    #[test]
    fn threshold_model_crossover_is_a_tie(
        pg in 100.0f64..10_000.0,
        pn in 100.0f64..10_000.0,
        dg_scale in 0.05f64..1.0,
        dn_scale in 1.0f64..20.0,
        t_other in 0.0f64..1_000.0,
    ) {
        // DevMem: faster GEMM, slower Non-GEMM by construction.
        let model = ThresholdModel {
            pcie: PhaseTimes { gemm_ns: pg, non_gemm_ns: pn },
            devmem: PhaseTimes { gemm_ns: pg * dg_scale, non_gemm_ns: pn * dn_scale },
            t_other_ns: t_other,
        };
        let w = model.crossover_non_gemm_fraction();
        prop_assert!(w.is_some(), "opposed phase times must cross");
        let w = w.unwrap();
        let pcie = model.total_ns(w, false);
        let devmem = model.total_ns(w, true);
        prop_assert!((pcie - devmem).abs() <= 1e-6 * pcie.max(devmem));
        // Below the crossover (more GEMM), DevMem wins; above, PCIe wins.
        if w > 0.01 {
            prop_assert!(model.total_ns(w - 0.01, true) < model.total_ns(w - 0.01, false));
        }
        if w < 0.99 {
            prop_assert!(model.total_ns(w + 0.01, true) > model.total_ns(w + 0.01, false));
        }
    }
}

proptest! {
    /// Histogram invariants: count/sum exact, percentiles monotone in p,
    /// p100 bounds the max, merge equals bulk observation.
    #[test]
    fn histogram_percentiles_are_monotone_bounds(
        samples in prop::collection::vec(0.0f64..1e9, 1..200),
        split in 0usize..200,
    ) {
        use accesys_sim::Histogram;
        let mut h = Histogram::new();
        for &s in &samples {
            h.observe(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let total: f64 = samples.iter().sum();
        prop_assert!((h.sum() - total).abs() <= 1e-6 * total.max(1.0));
        let mut last = 0.0;
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let v = h.percentile(p);
            prop_assert!(v >= last, "percentile not monotone at p{p}");
            last = v;
        }
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(h.percentile(100.0) >= max);
        // Merge of a split equals the whole (sum only to float tolerance:
        // summation order differs between the two constructions).
        let at = split.min(samples.len());
        let (left, right) = samples.split_at(at);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        left.iter().for_each(|&s| a.observe(s));
        right.iter().for_each(|&s| b.observe(s));
        a.merge(&b);
        prop_assert_eq!(a.count(), h.count());
        prop_assert_eq!(a.min(), h.min());
        prop_assert_eq!(a.max(), h.max());
        prop_assert!((a.sum() - h.sum()).abs() <= 1e-9 * h.sum().max(1.0));
        prop_assert_eq!(a.iter().collect::<Vec<_>>(), h.iter().collect::<Vec<_>>());
    }

    /// Flit segmentation: every data packet takes ceil(size/64) flits,
    /// requests exactly one; payload bandwidth scales accordingly.
    #[test]
    fn flit_counts_match_payload(size in 1u32..16384) {
        use accesys_interconnect::FlitLinkConfig;
        use accesys_sim::{MemCmd, Packet};
        let cfg = FlitLinkConfig::cxl2(8);
        let write = Packet::request(0, MemCmd::WriteReq, 0, size, 0);
        prop_assert_eq!(cfg.flits_of(&write), size.div_ceil(64));
        let read = Packet::request(1, MemCmd::ReadReq, 0, size, 0);
        prop_assert_eq!(cfg.flits_of(&read), 1);
        let cpl = read.to_response();
        prop_assert_eq!(cfg.flits_of(&cpl), size.div_ceil(64));
    }

    /// CreditUnit accounting: flit credits equal flit occupancy for any
    /// packet, so terminal receivers conserve the link's pool.
    #[test]
    fn credit_unit_conserves_flit_pools(size in 1u32..8192, is_write in any::<bool>()) {
        use accesys_interconnect::{CreditUnit, FlitLinkConfig};
        use accesys_sim::{MemCmd, Packet};
        let cfg = FlitLinkConfig::cxl2(8);
        let unit = CreditUnit::Flits { payload_per_flit: 64 };
        let cmd = if is_write { MemCmd::WriteReq } else { MemCmd::ReadReq };
        let pkt = Packet::request(0, cmd, 0, size, 0);
        prop_assert_eq!(unit.credit_for(&pkt), cfg.flits_of(&pkt));
    }

    /// ViT full-graph bookkeeping: op count and MAC totals compose from
    /// embed + layers + head for every model.
    #[test]
    fn vit_full_graph_composes(idx in 0usize..3) {
        use accesys_workload::{vit_embed_ops, vit_full_ops, vit_head_ops, vit_ops, VitModel};
        let model = VitModel::ALL[idx];
        let macs = |ops: &[accesys_workload::Op]| -> u64 {
            ops.iter().map(|o| o.total_macs()).sum()
        };
        let full = vit_full_ops(model);
        let expect = macs(&vit_embed_ops(model))
            + u64::from(model.layers()) * macs(&vit_ops(model))
            + macs(&vit_head_ops(model));
        prop_assert_eq!(macs(&full), expect);
    }
}

proptest! {
    // Full-system runs are expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The functional GEMM result is correct through the full system for
    /// arbitrary (array-aligned) shapes, including non-square ones.
    #[test]
    fn full_system_gemm_matches_golden(
        m in 1u32..5,
        n in 1u32..5,
        k in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let spec = GemmSpec {
            m: m * 16,
            n: n * 16,
            k: k * 16,
            dtype_bytes: 4,
            seed,
        };
        let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
        let (_, ok) = sim.run_gemm_verified(spec).unwrap();
        prop_assert!(ok, "functional mismatch for {spec}");
    }

    /// Sharding conserves work: for any shape and cluster size, shard C
    /// bytes sum to m×n×d and every member gets at most ceil(m/N) rows.
    #[test]
    fn sharded_gemm_conserves_output(
        m in 17u32..200,
        accels in 1u32..5,
    ) {
        use accesys_mem::MemTech;
        let cfg = accesys::SystemConfig::pcie_host(16.0, MemTech::Ddr4)
            .with_accel_count(accels);
        let mut sim = Simulation::new(cfg).unwrap();
        let spec = GemmSpec::new(m, 64, 64);
        let report = sim.run_gemm_sharded(spec).unwrap();
        let stored: u64 = report.jobs.iter().map(|j| j.bytes_stored).sum();
        prop_assert_eq!(stored, u64::from(m) * 64 * 4);
        let shards = u64::from(m.div_ceil(m.div_ceil(accels)));
        prop_assert_eq!(report.jobs.len() as u64, shards.min(u64::from(accels)));
    }
}
