//! Integration tests for the framework extensions: CXL attachment,
//! accelerator clusters, DRAM energy/refresh/policies, packet tracing
//! and link error injection — all through the public API.

use accesys::{InterconnectKind, Simulation, SystemConfig};
use accesys_mem::{AddressMapping, MemTech, PagePolicy};
use accesys_sim::PacketTrace;
use accesys_workload::GemmSpec;

#[test]
fn cxl_and_pcie_topologies_agree_functionally() {
    let spec = GemmSpec::square(48);
    let (_, ok_pcie) = Simulation::new(SystemConfig::paper_baseline())
        .unwrap()
        .run_gemm_verified(spec)
        .unwrap();
    let (_, ok_cxl) = Simulation::new(SystemConfig::cxl_host(8, MemTech::Ddr4))
        .unwrap()
        .run_gemm_verified(spec)
        .unwrap();
    assert!(ok_pcie && ok_cxl);
}

#[test]
fn cxl_moves_no_pcie_tlps() {
    let mut sim = Simulation::new(SystemConfig::cxl_host(8, MemTech::Ddr4)).unwrap();
    assert_eq!(sim.config().interconnect, InterconnectKind::Cxl);
    let report = sim.run_gemm(GemmSpec::square(64)).unwrap();
    assert!(report.stats.get_or_zero("cxl.up.flits") > 0.0);
    assert!(report.stats.get_or_zero("cxl.down.flits") > 0.0);
    assert_eq!(report.stats.sum_prefix("link."), 0.0);
    assert_eq!(report.stats.sum_prefix("pcie.switch."), 0.0);
}

#[test]
fn sharded_cluster_produces_every_shard_once() {
    let cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_accel_count(3);
    let mut sim = Simulation::new(cfg).unwrap();
    // 200 rows over 3 members: shards of 67/67/66.
    let report = sim.run_gemm_sharded(GemmSpec::new(200, 128, 128)).unwrap();
    assert_eq!(report.jobs.len(), 3);
    let stored: u64 = report.jobs.iter().map(|j| j.bytes_stored).sum();
    assert_eq!(stored, 200 * 128 * 4);
    // Three distinct doorbells were rung.
    assert_eq!(report.stats.get_or_zero("cpu.jobs_launched"), 3.0);
    assert_eq!(report.stats.get_or_zero("cpu.irqs"), 3.0);
}

#[test]
fn cluster_members_share_the_switch_uplink() {
    let cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4).with_accel_count(2);
    let mut sim = Simulation::new(cfg).unwrap();
    let report = sim.run_gemm_sharded(GemmSpec::square(128)).unwrap();
    // Each member has its own downstream link; the upstream is shared.
    assert!(report.stats.get_or_zero("link.ep_up0.tlps") > 0.0);
    assert!(report.stats.get_or_zero("link.ep_up1.tlps") > 0.0);
    let up = report.stats.get_or_zero("link.sw_up.tlps");
    let down0 = report.stats.get_or_zero("link.ep_up0.tlps");
    let down1 = report.stats.get_or_zero("link.ep_up1.tlps");
    assert_eq!(up, down0 + down1);
}

#[test]
fn dram_energy_appears_in_gemm_reports() {
    let mut sim = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
    let report = sim.run_gemm(GemmSpec::square(128)).unwrap();
    assert!(report.host_mem_energy_nj() > 0.0);
    assert_eq!(report.dev_mem_energy_nj(), 0.0);
    assert!(report.dram_pj_per_byte() > 0.0);
    // Refresh fired at least once over a >7.8 µs run.
    if report.total_time_ns() > 10_000.0 {
        assert!(report.stats.get_or_zero("host_mem.refreshes") > 0.0);
    }
}

#[test]
fn hbm_system_consumes_less_dram_energy_than_ddr3() {
    let energy = |tech: MemTech| {
        let mut sim = Simulation::new(SystemConfig::pcie_host(16.0, tech)).unwrap();
        sim.run_gemm(GemmSpec::square(128))
            .unwrap()
            .host_mem_energy_nj()
    };
    assert!(energy(MemTech::Hbm2) < energy(MemTech::Ddr3));
}

#[test]
fn packet_trace_sees_the_doorbell_first() {
    let mut sim = Simulation::new(SystemConfig::paper_baseline()).unwrap();
    sim.kernel_mut()
        .set_tracer(Box::new(PacketTrace::new(4096).with_filter("pcie.ep")));
    sim.run_gemm(GemmSpec::square(32)).unwrap();
    let trace = sim.kernel().tracer::<PacketTrace>().unwrap();
    let rows = trace.rows();
    assert!(!rows.is_empty());
    // The first EP delivery is the doorbell MMIO write at the BAR base.
    assert_eq!(rows[0].addr, 0x10_0000_0000);
    assert!(rows.iter().all(|r| r.module.starts_with("pcie.ep")));
    // Times never go backwards.
    for pair in rows.windows(2) {
        assert!(pair[1].time_ns >= pair[0].time_ns);
    }
}

#[test]
fn link_errors_slow_but_do_not_break_a_run() {
    let spec = GemmSpec::square(96);
    let clean = {
        let mut sim = Simulation::new(SystemConfig::pcie_host(4.0, MemTech::Ddr4)).unwrap();
        sim.run_gemm(spec).unwrap()
    };
    let noisy = {
        let mut cfg = SystemConfig::pcie_host(4.0, MemTech::Ddr4);
        cfg.pcie.link.error_rate = 0.05;
        cfg.pcie.link.replay_ns = 300.0;
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run_gemm(spec).unwrap()
    };
    assert_eq!(
        noisy.jobs.len(),
        1,
        "replays must stay invisible to software"
    );
    assert!(noisy.stats.sum_prefix("link.") > 0.0);
    let replays: f64 = ["link.rc_down", "link.sw_down0", "link.ep_up0", "link.sw_up"]
        .iter()
        .map(|l| noisy.stats.get_or_zero(&format!("{l}.replayed_tlps")))
        .sum();
    assert!(replays > 0.0, "no replays at 5% error rate");
    assert!(noisy.total_time_ns() > clean.total_time_ns());
}

#[test]
fn page_policy_and_mapping_are_reachable_through_the_public_api() {
    // Build a system, swap in an ablated DRAM controller, and check the
    // policy takes effect end to end.
    let mut dram = MemTech::Ddr4.dram_config();
    dram.page_policy = PagePolicy::Closed;
    dram.mapping = AddressMapping::LineChannelLineBank;
    let mut sim = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
    let (_, _, host_mem, ..) = sim.debug_handles();
    sim.kernel_mut()
        .set_module(host_mem, Box::new(accesys_mem::Dram::new("host_mem", dram)));
    let report = sim.run_gemm(GemmSpec::square(64)).unwrap();
    assert_eq!(report.stats.get_or_zero("host_mem.row_hits"), 0.0);
    assert!(report.stats.get_or_zero("host_mem.row_misses") > 0.0);
}

#[test]
fn full_vit_runs_end_to_end_on_a_tiny_budget() {
    // The full-graph API on ViT-Base would take minutes; exercise the
    // embed → layers → head plumbing shape via a single layer + the
    // full-graph op list instead.
    let ops = accesys_workload::vit_full_ops(accesys_workload::VitModel::Base);
    assert_eq!(ops.len(), 2 + 12 * 12 + 2);
    let mut sim = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
    let layer = sim.run_vit_layer(accesys_workload::VitModel::Base).unwrap();
    assert!(layer.gemm_ns() > 0.0 && layer.non_gemm_ns() > 0.0);
}
