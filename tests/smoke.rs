//! Tier-1 smoke test: the paper-baseline system must build, run a small
//! GEMM end to end, and produce a self-consistent [`RunReport`]. CI runs
//! this on every push; if it breaks, everything downstream is suspect.

use gem5_accesys::prelude::*;

#[test]
fn paper_baseline_runs_a_small_gemm() {
    let config = SystemConfig::paper_baseline();
    let mut sim = Simulation::new(config).expect("paper baseline must validate and build");
    let report: RunReport = sim
        .run_gemm(GemmSpec::square(64))
        .expect("64x64 GEMM must complete");

    // Time advanced and is internally consistent.
    assert!(report.total_time_ns() > 0.0, "simulated time must advance");
    assert!(
        report.gemm_time_ns() > 0.0 && report.gemm_time_ns() <= report.total_time_ns(),
        "GEMM phase must fit inside the run"
    );

    // One job ran and moved at least the operand + result footprint.
    assert_eq!(report.jobs.len(), 1, "square(64) is a single job");
    let footprint = GemmSpec::square(64).footprint_bytes();
    assert!(
        report.bytes_moved() >= footprint,
        "moved {} bytes, below the {footprint}-byte footprint",
        report.bytes_moved()
    );

    // Achieved bandwidth is positive and below any plausible PCIe ceiling.
    assert!(report.achieved_gbps() > 0.0);
    assert!(report.achieved_gbps() < 1024.0);

    // The SMMU saw traffic (the baseline translates accelerator accesses).
    assert!(report.smmu.translations > 0, "baseline runs with SMMU on");
}
