//! Cross-crate integration tests: whole-system behaviours that no single
//! crate can check alone.

use gem5_accesys::accesys::{AccessMode, Simulation, SystemConfig};
use gem5_accesys::prelude::*;

fn baseline() -> SystemConfig {
    SystemConfig::paper_baseline()
}

#[test]
fn functional_gemm_is_correct_in_every_access_path() {
    // DC over PCIe with SMMU.
    let mut dc = Simulation::new(baseline()).unwrap();
    let (_, ok) = dc.run_gemm_verified(GemmSpec::square(64)).unwrap();
    assert!(ok, "DC mode result wrong");

    // DM over PCIe (cache bypass).
    let mut cfg = baseline();
    cfg.access_mode = AccessMode::DirectMemory;
    let mut dm = Simulation::new(cfg).unwrap();
    let (_, ok) = dm.run_gemm_verified(GemmSpec::square(64)).unwrap();
    assert!(ok, "DM mode result wrong");

    // Device-side memory (PCIe bypassed for data).
    let mut dev = Simulation::new(SystemConfig::devmem(MemTech::Hbm2)).unwrap();
    let (_, ok) = dev.run_gemm_verified(GemmSpec::square(64)).unwrap();
    assert!(ok, "DevMem result wrong");
}

#[test]
fn simulation_is_deterministic() {
    let run = || {
        let mut sim = Simulation::new(baseline()).unwrap();
        let r = sim.run_gemm(GemmSpec::square(96)).unwrap();
        (r.total_ticks, r.stats.get_or_zero("kernel.events"))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same config + workload must replay identically");
}

#[test]
fn driver_handshake_is_balanced() {
    let mut sim = Simulation::new(baseline()).unwrap();
    let report = sim.run_gemm(GemmSpec::square(64)).unwrap();
    let s = &report.stats;
    assert_eq!(s.get_or_zero("cpu.jobs_launched"), 1.0);
    assert_eq!(s.get_or_zero("accel0.doorbells"), 1.0);
    assert_eq!(s.get_or_zero("accel0.msis"), 1.0);
    assert_eq!(s.get_or_zero("cpu.irqs"), 1.0);
    assert_eq!(s.get_or_zero("accel0.jobs_done"), 1.0);
}

#[test]
fn dma_traffic_matches_controller_accounting() {
    let mut sim = Simulation::new(baseline()).unwrap();
    let report = sim.run_gemm(GemmSpec::square(128)).unwrap();
    let s = &report.stats;
    let loaded: f64 = report.jobs.iter().map(|j| j.bytes_loaded as f64).sum();
    let stored: f64 = report.jobs.iter().map(|j| j.bytes_stored as f64).sum();
    assert_eq!(s.get_or_zero("dma0.bytes_read"), loaded);
    assert_eq!(s.get_or_zero("dma0.bytes_written"), stored);
    // Every DMA request crossed the PCIe endpoint in a host-memory
    // config; the one extra write is the completion MSI.
    assert_eq!(
        s.get_or_zero("pcie.ep0.reads_sent") + s.get_or_zero("pcie.ep0.writes_sent"),
        s.get_or_zero("dma0.requests") + 1.0
    );
}

#[test]
fn smmu_translates_every_dma_request() {
    let mut sim = Simulation::new(baseline()).unwrap();
    let report = sim.run_gemm(GemmSpec::square(64)).unwrap();
    assert_eq!(
        report.smmu.translations as f64,
        report.stats.get_or_zero("dma0.requests"),
        "each DMA request needs exactly one translation"
    );
    assert!(report.smmu.utlb_lookups >= report.smmu.translations);
}

#[test]
fn disabling_the_smmu_removes_walks_and_helps_latency() {
    let mut with = Simulation::new(baseline()).unwrap();
    let r_with = with.run_gemm(GemmSpec::square(96)).unwrap();
    let mut cfg = baseline();
    cfg.smmu = None;
    let mut without = Simulation::new(cfg).unwrap();
    let r_without = without.run_gemm(GemmSpec::square(96)).unwrap();
    assert!(r_with.smmu.ptw_count > 0);
    assert_eq!(r_without.smmu.ptw_count, 0);
    assert!(
        r_without.total_ticks <= r_with.total_ticks,
        "translation cannot make things faster"
    );
}

#[test]
fn devmem_numa_penalizes_cpu_streams() {
    // The same Non-GEMM stream is much slower when the data lives in
    // device memory (CPU reaches it over PCIe) — the Fig. 8 mechanism.
    let mut host = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
    let t_host = host.run_stream(512 << 10, 512 << 10, 0).unwrap();
    let mut dev = Simulation::new(SystemConfig::devmem(MemTech::Hbm2)).unwrap();
    let t_dev = dev.run_stream(512 << 10, 512 << 10, 0).unwrap();
    let ratio = t_dev / t_host;
    assert!(
        ratio > 2.0,
        "NUMA penalty should be large: {ratio:.2}x ({t_host} vs {t_dev})"
    );
}

#[test]
fn vit_layer_composes_gemm_and_non_gemm_phases() {
    let mut sim = Simulation::new(SystemConfig::pcie_host(8.0, MemTech::Ddr4)).unwrap();
    let report = sim.run_vit_layer(VitModel::Base).unwrap();
    // Six GEMM ops, two with per-head repetition.
    assert_eq!(report.jobs.len(), 4 + 2 * 12);
    // All phases accounted: gemm + nongemm + other == total.
    let sum = report.gemm_ns() + report.non_gemm_ns() + report.other_ns();
    let total = report.total_time_ns();
    assert!((sum - total).abs() / total < 1e-6, "{sum} vs {total}");
    // Six named GEMM phases appear in the op breakdown.
    let by_op = report.by_op();
    for name in ["gemm:qkv", "gemm:scores", "gemm:fc1", "nongemm:softmax"] {
        assert!(
            by_op.iter().any(|(l, _)| l == name),
            "missing phase {name}: {by_op:?}"
        );
    }
}

#[test]
fn sequential_jobs_on_one_simulation_accumulate() {
    let mut sim = Simulation::new(baseline()).unwrap();
    let r1 = sim.run_gemm(GemmSpec::square(64)).unwrap();
    let r2 = sim.run_gemm(GemmSpec::square(64)).unwrap();
    assert_eq!(r1.jobs.len(), 1);
    assert_eq!(r2.jobs.len(), 1);
    // Second run reports only its own job, but the cookie advanced.
    assert_ne!(r1.jobs[0].cookie, r2.jobs[0].cookie);
}

#[test]
fn event_counts_are_sane_for_small_runs() {
    let mut sim = Simulation::new(baseline()).unwrap();
    sim.run_gemm(GemmSpec::square(64)).unwrap();
    let events = sim.kernel().events_processed();
    // A 64x64x64 GEMM moves ~100 KiB; the event count should be within
    // a sane envelope (catches accidental event storms).
    assert!(events > 1_000, "suspiciously few events: {events}");
    assert!(events < 2_000_000, "event storm: {events}");
}

#[test]
fn invalid_configs_are_rejected_not_built() {
    let mut cfg = baseline();
    cfg.dma.request_bytes = 100; // not a power of two
    assert!(Simulation::new(cfg).is_err());
    let mut cfg = baseline();
    cfg.dma.channels = 2; // controller needs 3
    assert!(Simulation::new(cfg).is_err());
}
