//! Scheduler equivalence property test: random kernel-shaped schedules
//! must drain in *identical* order through the old single-heap semantics
//! ([`BaselineQueue`]) and the new two-level [`EventQueue`].
//!
//! The generator mimics real kernel usage: pushes never precede the last
//! popped tick (the kernel clamps every schedule to `now`, including
//! `send_at`'s clamp), bursts land many events on one tick, and a slice
//! of events goes far beyond the calendar horizon.

use accesys_sim::{BaselineQueue, EventQueue, Tick};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One randomized schedule: interleaved pushes and pops driven by
/// `seed`, checked step by step against the reference heap.
fn check_random_schedule(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut ref_q: BaselineQueue<u64> = BaselineQueue::new();
    let mut seq = 0u64;
    let mut now: Tick = 0;

    let ops = rng.gen_range(50..400);
    for _ in 0..ops {
        match rng.gen_range(0..10) {
            // Push burst: same-tick bursts (delay 0 repeated), near
            // sends, and far-future events past the ring horizon.
            0..=5 => {
                let burst = rng.gen_range(1..16);
                let delay: u64 = match rng.gen_range(0..8) {
                    0 => 0, // send_at clamped to now / zero-delay forward
                    1..=4 => rng.gen_range(1..20_000u64),
                    5 | 6 => rng.gen_range(20_000..900_000u64),
                    _ => rng.gen_range(2_000_000..80_000_000u64), // far
                };
                for _ in 0..burst {
                    // Half the burst at exactly now + delay (simultaneous
                    // events), half jittered around it.
                    let jitter: u64 = if rng.gen_range(0..2) == 0 {
                        0
                    } else {
                        rng.gen_range(0..512u64)
                    };
                    let when = now + delay + jitter;
                    new_q.push(when, seq, seq);
                    ref_q.push(when, seq, seq);
                    seq += 1;
                }
            }
            // Pop a few events, advancing `now` like the kernel does.
            _ => {
                let pops = rng.gen_range(1..24);
                for _ in 0..pops {
                    assert_eq!(new_q.peek_when(), ref_q.peek_when(), "peek diverged");
                    let (a, b) = (new_q.pop(), ref_q.pop());
                    assert_eq!(a, b, "pop diverged after {seq} pushes");
                    match a {
                        Some((when, _, _)) => now = when,
                        None => break,
                    }
                }
            }
        }
        assert_eq!(new_q.len(), ref_q.len());
    }

    // Drain both to empty: tails must agree too.
    loop {
        let (a, b) = (new_q.pop(), ref_q.pop());
        assert_eq!(a, b, "drain diverged");
        if a.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn two_level_scheduler_matches_heap_order(seed in 0u64..1_000_000) {
        check_random_schedule(seed);
    }
}

#[test]
fn tick_max_and_horizon_edges_agree() {
    // Deterministic edge cases on top of the random sweep: events at the
    // exact ring horizon, one past it, and Tick::MAX.
    let horizon = accesys_sim::sched::BUCKET_TICKS * accesys_sim::sched::NUM_BUCKETS as u64;
    let mut new_q: EventQueue<u64> = EventQueue::new();
    let mut ref_q: BaselineQueue<u64> = BaselineQueue::new();
    for (i, when) in [
        horizon - 1,
        horizon,
        horizon + 1,
        0,
        Tick::MAX,
        Tick::MAX - 1,
        horizon * 2,
    ]
    .into_iter()
    .enumerate()
    {
        new_q.push(when, i as u64, i as u64);
        ref_q.push(when, i as u64, i as u64);
    }
    loop {
        let (a, b) = (new_q.pop(), ref_q.pop());
        assert_eq!(a, b);
        if a.is_none() {
            break;
        }
    }
}
