//! Packet-slab correctness: recycling boxes through [`PacketPool`] must
//! be invisible to the simulation.
//!
//! Two families of tests:
//!
//! * **Trace equivalence** — a pseudo-random schedule/drain workload
//!   (packets allocated, mutated, forwarded hop-to-hop, and dropped at
//!   random) run once with the pool bypassed (every box fresh from the
//!   global allocator — the pre-pool behaviour) and once with recycling
//!   on. The full observable trace, including every packet field, must
//!   be byte-identical.
//! * **Reuse/leak invariants** — live handles are never aliased, freed
//!   boxes are always reused before the pool falls back to the global
//!   allocator, and a recycled box carries no trace of its previous
//!   occupant.

use accesys_sim::{
    Ctx, Kernel, MemCmd, Module, ModuleId, Msg, Packet, PacketBox, PacketPool, Tick,
};

/// Deterministic 64-bit LCG (same constants as the domain tests).
struct Lcg(u64);

impl Lcg {
    fn step(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// One observable delivery: the receive tick plus every packet field
/// that could leak state from a mis-recycled box.
type TraceRec = (Tick, u64, u8, u64, u32, bool, u16, u32, Tick, usize);

fn record(now: Tick, p: &Packet) -> TraceRec {
    (
        now,
        p.id,
        p.cmd as u8,
        p.addr,
        p.size,
        p.virt,
        p.stream,
        p.tag,
        p.issued_at,
        p.route.len(),
    )
}

/// Random packet churn: on every timer, allocate a packet with
/// LCG-derived fields and send it to a random peer; on every packet,
/// log it, then randomly forward the same box (mutated), bounce a
/// response, or drop it (which recycles the box).
struct Churn {
    name: String,
    peers: Vec<ModuleId>,
    lcg: Lcg,
    trace: Vec<TraceRec>,
}

impl Module for Churn {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::Timer(remaining) => {
                if remaining == 0 {
                    return;
                }
                let r = self.lcg.step();
                let mut pkt = Packet::request(
                    ctx.alloc_pkt_id(),
                    if r & 1 == 0 {
                        MemCmd::ReadReq
                    } else {
                        MemCmd::WriteReq
                    },
                    r & 0xffff_f000,
                    64u32 << (r % 4),
                    ctx.now(),
                );
                pkt.stream = (r % 7) as u16;
                pkt.tag = (r % 97) as u32;
                let dst = self.peers[(r % self.peers.len() as u64) as usize];
                ctx.send(dst, 1 + r % 400, Msg::packet(pkt));
                ctx.timer(1 + r % 150, remaining - 1);
            }
            Msg::Packet(mut pkt) => {
                self.trace.push(record(ctx.now(), &pkt));
                let r = self.lcg.step();
                match r % 3 {
                    0 => {
                        // Forward the same box with a mutation.
                        pkt.addr ^= 0x40;
                        pkt.tag = pkt.tag.wrapping_add(1);
                        let dst = self.peers[(r % self.peers.len() as u64) as usize];
                        ctx.send(dst, 1 + r % 200, Msg::Packet(pkt));
                    }
                    1 if pkt.cmd.is_request() => {
                        pkt.make_response();
                        let dst = self.peers[(r % self.peers.len() as u64) as usize];
                        ctx.send(dst, 1 + r % 200, Msg::Packet(pkt));
                    }
                    // Drop: the box goes back to the pool here.
                    _ => {}
                }
            }
            _ => panic!("unexpected message"),
        }
    }
}

/// Run the churn workload to completion and return each module's trace.
fn run_churn(seed: u64) -> Vec<Vec<TraceRec>> {
    let mut k = Kernel::new();
    let ids: Vec<ModuleId> = (0..4)
        .map(|i| {
            k.add_module(Box::new(Churn {
                name: format!("churn{i}"),
                peers: Vec::new(),
                lcg: Lcg(seed ^ u64::wrapping_mul(i, 0x9e37_79b9_7f4a_7c15)),
                trace: Vec::new(),
            }))
        })
        .collect();
    for &id in &ids {
        let peers: Vec<ModuleId> = ids.iter().copied().filter(|&p| p != id).collect();
        k.module_mut::<Churn>(id).unwrap().peers = peers;
    }
    for (i, &id) in ids.iter().enumerate() {
        k.schedule(i as Tick, id, Msg::Timer(200));
    }
    k.run_until_idle().unwrap();
    ids.iter()
        .map(|&id| k.module::<Churn>(id).unwrap().trace.clone())
        .collect()
}

#[test]
fn pooled_trace_is_byte_identical_to_fresh_boxes() {
    for seed in [1, 0xdead_beef, 42] {
        // Pre-pool behaviour: every alloc fresh, every drop freed.
        PacketPool::set_bypass(true);
        let fresh = run_churn(seed);
        let bypassed = PacketPool::stats();
        assert_eq!(bypassed.reused, 0, "bypass must never recycle");

        // Pooled behaviour, starting cold and recycling throughout.
        PacketPool::set_bypass(false);
        PacketPool::reset_stats();
        let pooled = run_churn(seed);
        let stats = PacketPool::stats();

        assert_eq!(
            pooled, fresh,
            "recycled boxes changed the trace (seed {seed})"
        );
        assert!(
            stats.reused > 0,
            "workload never exercised recycling (seed {seed})"
        );
        PacketPool::reset_stats();
    }
}

#[test]
fn pool_warms_up_to_zero_fresh_allocations() {
    PacketPool::set_bypass(false);
    // Cold run fills the pool to the workload's peak concurrency...
    run_churn(7);
    PacketPool::reset_stats();
    // ...so an identical second run allocates nothing at all.
    run_churn(7);
    let stats = PacketPool::stats();
    assert_eq!(stats.fresh, 0, "warm run still hit the global allocator");
    assert!(stats.reused > 0);
    PacketPool::reset_stats();
}

#[test]
fn live_handles_are_never_aliased() {
    PacketPool::set_bypass(false);
    let live: Vec<PacketBox> = (0..256)
        .map(|i| PacketPool::alloc(Packet::request(i, MemCmd::ReadReq, i * 64, 64, 0)))
        .collect();
    let mut ptrs: Vec<*const Packet> = live.iter().map(|b| &**b as *const Packet).collect();
    ptrs.sort();
    ptrs.dedup();
    assert_eq!(ptrs.len(), live.len(), "two live handles share storage");
    // And every handle still holds exactly what was written through it.
    for (i, b) in live.iter().enumerate() {
        assert_eq!(b.id, i as u64);
        assert_eq!(b.addr, i as u64 * 64);
    }
}

#[test]
fn freed_boxes_are_reused_before_the_allocator_is_touched() {
    PacketPool::set_bypass(false);
    // Park some boxes in the pool.
    let boxes: Vec<PacketBox> = (0..32)
        .map(|i| PacketPool::alloc(Packet::request(i, MemCmd::ReadReq, 0, 64, 0)))
        .collect();
    drop(boxes);
    let idle = PacketPool::free_len();
    assert!(idle >= 32);

    // While the free list is non-empty, alloc must never go to the
    // global allocator.
    PacketPool::reset_stats();
    let drained: Vec<PacketBox> = (0..idle as u64)
        .map(|i| PacketPool::alloc(Packet::request(i, MemCmd::WriteReq, 0, 64, 0)))
        .collect();
    let stats = PacketPool::stats();
    assert_eq!(stats.reused, idle as u64, "free list skipped");
    assert_eq!(stats.fresh, 0, "allocator touched while boxes were idle");
    assert_eq!(PacketPool::free_len(), 0);

    // Only an empty pool falls back to a fresh box.
    let extra = PacketPool::alloc(Packet::request(99, MemCmd::ReadReq, 0, 64, 0));
    assert_eq!(PacketPool::stats().fresh, 1);
    drop(extra);
    drop(drained);
    PacketPool::reset_stats();
}

#[test]
fn recycled_boxes_carry_no_trace_of_their_previous_occupant() {
    PacketPool::set_bypass(false);
    let mut first = PacketPool::alloc(Packet::request(7, MemCmd::WriteReq, 0xabcd_e000, 4096, 123));
    first.virt = true;
    first.stream = 9;
    first.tag = 77;
    let addr_of_first = &*first as *const Packet;
    drop(first);

    // The next alloc reuses that exact storage...
    let recycled = PacketPool::alloc(Packet::request(8, MemCmd::ReadReq, 0x1000, 64, 456));
    assert_eq!(
        &*recycled as *const Packet, addr_of_first,
        "expected the freed box to be recycled"
    );
    // ...and is indistinguishable from a fresh construction.
    let reference = Packet::request(8, MemCmd::ReadReq, 0x1000, 64, 456);
    assert_eq!(format!("{:?}", *recycled), format!("{reference:?}"));
    drop(recycled);
    PacketPool::reset_stats();
}

#[test]
fn bypass_clears_the_pool_and_forces_fresh_allocations() {
    PacketPool::set_bypass(false);
    drop(PacketPool::alloc(Packet::request(
        1,
        MemCmd::ReadReq,
        0,
        64,
        0,
    )));
    assert!(PacketPool::free_len() > 0);

    PacketPool::set_bypass(true);
    assert_eq!(PacketPool::free_len(), 0, "bypass must drain the pool");
    PacketPool::reset_stats();
    let a = PacketPool::alloc(Packet::request(2, MemCmd::ReadReq, 0, 64, 0));
    drop(a);
    let b = PacketPool::alloc(Packet::request(3, MemCmd::ReadReq, 0, 64, 0));
    let stats = PacketPool::stats();
    assert_eq!(stats.fresh, 2, "bypassed allocs must not recycle");
    assert_eq!(stats.reused, 0);
    drop(b);

    PacketPool::set_bypass(false);
    PacketPool::reset_stats();
}
