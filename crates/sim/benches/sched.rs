//! Scheduler microbenchmarks: schedule/drain throughput of the kernel's
//! two-level [`EventQueue`] against the [`BaselineQueue`] reference heap,
//! plus a fig2-style end-to-end kernel run over the packet hot path.
//!
//! Run with `cargo bench -p accesys-sim`. The workload lives in
//! [`accesys_sim::sched::bench_support`], shared with the `perf` bin in
//! `accesys-bench` that records the numbers in `BENCH_kernel.json` —
//! tweak the profile there and both stay in sync.

use accesys_sim::sched::bench_support::{kernel_schedule_drain, queue_schedule_drain};
use accesys_sim::{
    units, BaselineQueue, Ctx, EventQueue, Kernel, MemCmd, Module, ModuleId, Msg, Packet,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn sample_packet(now: u64) -> Packet {
    Packet::request(now, MemCmd::ReadReq, 0x4000 + now * 64, 64, now)
}

/// Fig2-style end-to-end: a requester streams read requests through a
/// fixed-latency link into a memory that responds, with a bounded
/// request window — the packet/credit shape of the real topology without
/// depending on the upper crates.
mod pipeline {
    use super::*;

    pub struct Requester {
        pub link: ModuleId,
        pub window: u32,
        pub inflight: u32,
        pub remaining: u64,
        pub done: u64,
    }

    impl Requester {
        fn issue(&mut self, ctx: &mut Ctx) {
            while self.inflight < self.window && self.remaining > 0 {
                self.remaining -= 1;
                self.inflight += 1;
                let mut p = Packet::request(
                    ctx.alloc_pkt_id(),
                    MemCmd::ReadReq,
                    0x1000 + self.remaining * 64,
                    64,
                    ctx.now(),
                );
                p.route.push(ctx.self_id());
                ctx.send(self.link, 0, Msg::packet(p));
            }
        }
    }

    impl Module for Requester {
        fn name(&self) -> &str {
            "req"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            match msg {
                Msg::Timer(_) => self.issue(ctx),
                Msg::Packet(_) => {
                    self.inflight -= 1;
                    self.done += 1;
                    self.issue(ctx);
                }
                _ => {}
            }
        }
    }

    pub struct Wire {
        pub name: &'static str,
        pub dst: ModuleId,
        pub latency: u64,
    }

    impl Module for Wire {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(p) = msg {
                ctx.send(self.dst, self.latency, Msg::Packet(p));
            }
        }
    }

    pub struct Mem {
        pub latency: u64,
    }

    impl Module for Mem {
        fn name(&self) -> &str {
            "mem"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(mut p) = msg {
                p.make_response();
                if let Some(next) = p.route.pop() {
                    ctx.send(next, self.latency, Msg::Packet(p));
                }
            }
        }
    }
}

/// Run the request/response pipeline to completion; returns events.
fn pipeline_run(requests: u64) -> u64 {
    let mut k = Kernel::new();
    let req_slot = k.add_placeholder();
    let mem = k.add_module(Box::new(pipeline::Mem {
        latency: units::ns(40.0),
    }));
    let down = k.add_module(Box::new(pipeline::Wire {
        name: "down",
        dst: mem,
        latency: units::ns(150.0),
    }));
    k.set_module(
        req_slot,
        Box::new(pipeline::Requester {
            link: down,
            window: 32,
            inflight: 0,
            remaining: requests,
            done: 0,
        }),
    );
    k.schedule(0, req_slot, Msg::Timer(0));
    k.run_until_idle().unwrap();
    k.events_processed()
}

fn bench_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_drain");
    group.sample_size(10);
    group.bench_function("kernel_200k", |b| {
        b.iter(|| kernel_schedule_drain(200_000, 1024))
    });
    group.bench_function("two_level_200k", |b| {
        b.iter(|| queue_schedule_drain(&mut EventQueue::new(), 200_000, 1024, sample_packet))
    });
    group.bench_function("baseline_heap_200k", |b| {
        b.iter(|| queue_schedule_drain(&mut BaselineQueue::new(), 200_000, 1024, sample_packet))
    });
    group.finish();

    let mut group = c.benchmark_group("e2e");
    group.sample_size(10);
    group.bench_function("fig2_style_pipeline_50k", |b| {
        b.iter(|| pipeline_run(50_000))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
