//! Flat, mergeable statistics reports.

use std::collections::BTreeMap;

/// A flat map of named counters collected from modules after a run.
///
/// Keys follow a `"<module>.<counter>"` convention once collected through
/// [`crate::Kernel::stats`]. Values are `f64` so the same container carries
/// counts, averages and ratios.
///
/// ```
/// use accesys_sim::Stats;
///
/// let mut s = Stats::new();
/// s.add("cache.hits", 10.0);
/// s.add("cache.hits", 5.0);
/// assert_eq!(s.get("cache.hits"), Some(15.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    entries: BTreeMap<String, f64>,
}

impl Stats {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `value` to `key` (creating it at 0 if missing).
    pub fn add(&mut self, key: &str, value: f64) {
        *self.entries.entry(key.to_string()).or_insert(0.0) += value;
    }

    /// Overwrite `key` with `value`.
    pub fn set(&mut self, key: &str, value: f64) {
        self.entries.insert(key.to_string(), value);
    }

    /// Look up a counter.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.entries.get(key).copied()
    }

    /// Look up a counter, defaulting to 0.
    pub fn get_or_zero(&self, key: &str) -> f64 {
        self.get(key).unwrap_or(0.0)
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &f64)> {
        self.entries.iter()
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merge another report into this one (summing shared keys).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in other.iter() {
            self.add(k, *v);
        }
    }

    /// Sum of all counters whose key starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> f64 {
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

impl serde::Serialize for Stats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), serde::Value::F64(*v)))
                .collect(),
        )
    }
}

impl serde::Deserialize for Stats {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let map = value
            .as_map()
            .ok_or_else(|| serde::DeError::custom("expected map for Stats"))?;
        let mut entries = BTreeMap::new();
        for (k, v) in map {
            entries.insert(k.clone(), <f64 as serde::Deserialize>::from_value(v)?);
        }
        Ok(Stats { entries })
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, v) in &self.entries {
            writeln!(f, "{k:<48} {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_and_set_overwrites() {
        let mut s = Stats::new();
        s.add("x", 1.0);
        s.add("x", 2.0);
        assert_eq!(s.get("x"), Some(3.0));
        s.set("x", 7.0);
        assert_eq!(s.get("x"), Some(7.0));
        assert_eq!(s.get_or_zero("missing"), 0.0);
    }

    #[test]
    fn merge_sums_shared_keys() {
        let mut a = Stats::new();
        a.add("x", 1.0);
        a.add("y", 2.0);
        let mut b = Stats::new();
        b.add("x", 10.0);
        b.add("z", 5.0);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(11.0));
        assert_eq!(a.get("y"), Some(2.0));
        assert_eq!(a.get("z"), Some(5.0));
    }

    #[test]
    fn sum_prefix_selects_subtree() {
        let mut s = Stats::new();
        s.add("cache.l1.hits", 3.0);
        s.add("cache.l2.hits", 4.0);
        s.add("dram.reads", 9.0);
        assert_eq!(s.sum_prefix("cache."), 7.0);
    }

    #[test]
    fn serde_roundtrip_preserves_every_counter() {
        let mut s = Stats::new();
        s.add("cache.hits", 10.0);
        s.add("dram.reads", 2.5);
        let value = serde::Serialize::to_value(&s);
        let back: Stats = serde::Deserialize::from_value(&value).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn display_is_nonempty() {
        let mut s = Stats::new();
        s.add("a.b", 1.5);
        let text = s.to_string();
        assert!(text.contains("a.b"));
        assert!(text.contains("1.5"));
    }
}
