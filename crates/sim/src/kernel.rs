//! The event kernel: ordered event queue plus the module registry.

use crate::domain::DomainPlan;
use crate::{EventQueue, Module, ModuleId, Msg, Stats, Tick, Tracer};

/// The payload carried by every event-queue node: destination module plus
/// the message. Kept alongside `Msg`'s own 24-byte guard because the
/// queue moves this tuple on every push/pop/sort.
pub(crate) type Ev = (ModuleId, Msg);

// Compile-time regression guard (companion to the `Msg <= 24` assert in
// `msg.rs`): `ModuleId` padding brings the node payload to 32 bytes, and
// nothing may push it past that.
const _: () = assert!(
    std::mem::size_of::<Ev>() <= 32,
    "event payload grew past 32 bytes"
);

/// Error returned by [`Kernel::run_until_idle`] and friends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event budget was exhausted — almost always a livelock or a
    /// flow-control bug (credits never returned, responses dropped).
    EventLimitExceeded {
        /// Budget that was exceeded.
        limit: u64,
        /// Simulated time when the run aborted.
        at: Tick,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::EventLimitExceeded { limit, at } => write!(
                f,
                "event limit of {limit} exceeded at tick {at}; \
                 likely a livelock or flow-control leak"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Bounds on a simulation run.
#[derive(Copy, Clone, Debug)]
pub struct RunLimit {
    /// Maximum number of events to process before aborting.
    ///
    /// `u64::MAX` means "unlimited": the budget saturates rather than
    /// overflowing, whatever the kernel's prior event count.
    pub max_events: u64,
    /// Time bound. The run returns successfully *before* delivering the
    /// first event scheduled after this tick: events with
    /// `when <= max_time` are all delivered, later ones stay queued (a
    /// follow-up `run` picks them up). The kernel's clock is **not**
    /// advanced to `max_time` — [`Kernel::now`] remains the tick of the
    /// last event actually delivered.
    pub max_time: Tick,
}

impl Default for RunLimit {
    fn default() -> Self {
        RunLimit {
            max_events: 2_000_000_000,
            max_time: Tick::MAX,
        }
    }
}

/// Where a context's sends go.
///
/// The sequential hot loop hands handlers a [`Sink::Direct`] view of the
/// event queue: each send is stamped with the kernel sequence counter *at
/// call time* and pushed immediately, skipping the old buffer-then-drain
/// round trip. Call order equals the old drain order, so the `(tick, seq)`
/// total order — and therefore every observable result — is identical.
/// The parallel domain engine (and the perf harness's pre-change
/// reconstruction) still need sends collected for replay, which is what
/// [`Sink::Buffered`] provides.
pub(crate) enum Sink<'a> {
    /// Collect sends; the caller commits (or discards) them after the
    /// handler returns.
    Buffered(&'a mut Vec<(Tick, ModuleId, Msg)>),
    /// Push sends straight into the event queue, stamping `seq` in call
    /// order and maintaining the kernel's depth statistics.
    Direct {
        queue: &'a mut EventQueue<Ev>,
        seq: &'a mut u64,
        virt_len: &'a mut usize,
        virt_peak: &'a mut usize,
        module_count: usize,
    },
}

/// Per-delivery context handed to [`Module::handle`].
///
/// Lets the module read time, learn its own id, allocate packet ids and
/// schedule outgoing messages. Sends are sequence-stamped in call order,
/// so simultaneous deliveries stay deterministic; if a handler panics
/// mid-flight, its partial sends are discarded before the kernel resumes
/// (callers may `catch_unwind` around a run).
pub struct Ctx<'a> {
    now: Tick,
    self_id: ModuleId,
    sink: Sink<'a>,
    next_pkt_id: &'a mut u64,
}

impl Ctx<'_> {
    /// Current simulated time.
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Id of the module currently handling a message.
    pub fn self_id(&self) -> ModuleId {
        self.self_id
    }

    /// Allocate a globally unique packet id.
    pub fn alloc_pkt_id(&mut self) -> u64 {
        let id = *self.next_pkt_id;
        *self.next_pkt_id += 1;
        id
    }

    /// Append one send to the sink (common tail of the `send` family).
    #[inline]
    fn push(&mut self, when: Tick, dst: ModuleId, msg: Msg) {
        match &mut self.sink {
            Sink::Buffered(out) => out.push((when, dst, msg)),
            Sink::Direct {
                queue,
                seq,
                virt_len,
                virt_peak,
                module_count,
            } => {
                assert!(
                    dst.index() < *module_count,
                    "message sent to unknown module {dst}"
                );
                queue.push(when, **seq, (dst, msg));
                **seq += 1;
                **virt_len += 1;
                **virt_peak = (**virt_peak).max(**virt_len);
            }
        }
    }

    /// Deliver `msg` to `dst` after `delay` ticks.
    ///
    /// Sends are sequence-stamped in call order, so simultaneous
    /// deliveries drain in the order they were sent and results stay
    /// deterministic.
    ///
    /// ```
    /// use accesys_sim::{Ctx, Kernel, Module, ModuleId, Msg, units};
    ///
    /// struct Relay {
    ///     name: &'static str,
    ///     peer: ModuleId,
    /// }
    /// impl Module for Relay {
    ///     fn name(&self) -> &str {
    ///         self.name
    ///     }
    ///     fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
    ///         if let (Msg::Timer(tag), true) = (&msg, self.peer.is_valid()) {
    ///             // Forward the tag to the peer 2 ns from now.
    ///             ctx.send(self.peer, units::ns(2.0), Msg::Timer(tag + 1));
    ///         }
    ///     }
    /// }
    ///
    /// let mut kernel = Kernel::new();
    /// let sink = kernel.add_module(Box::new(Relay { name: "sink", peer: ModuleId::INVALID }));
    /// let relay = kernel.add_module(Box::new(Relay { name: "relay", peer: sink }));
    /// kernel.schedule(units::ns(1.0), relay, Msg::Timer(7));
    /// let end = kernel.run_until_idle().unwrap();
    /// assert_eq!(end, units::ns(3.0)); // 1 ns kick-off + 2 ns forward
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `dst` is [`ModuleId::INVALID`], which indicates a wiring
    /// bug in the system builder.
    pub fn send(&mut self, dst: ModuleId, delay: Tick, msg: Msg) {
        assert!(dst.is_valid(), "send to unwired port from {}", self.self_id);
        let when = self.now + delay;
        self.push(when, dst, msg);
    }

    /// Deliver `msg` to `dst` at absolute time `at` (clamped to `now`).
    pub fn send_at(&mut self, dst: ModuleId, at: Tick, msg: Msg) {
        let at = at.max(self.now);
        assert!(dst.is_valid(), "send to unwired port from {}", self.self_id);
        self.push(at, dst, msg);
    }

    /// Schedule a [`Msg::Timer`] to self after `delay` ticks.
    pub fn timer(&mut self, delay: Tick, tag: u64) {
        let dst = self.self_id;
        self.send(dst, delay, Msg::Timer(tag));
    }

    /// Build a context for a delivery outside the sequential hot loop
    /// (the parallel domain engine drives handlers through this).
    pub(crate) fn internal<'a>(
        now: Tick,
        self_id: ModuleId,
        out: &'a mut Vec<(Tick, ModuleId, Msg)>,
        next_pkt_id: &'a mut u64,
    ) -> Ctx<'a> {
        Ctx {
            now,
            self_id,
            sink: Sink::Buffered(out),
            next_pkt_id,
        }
    }
}

/// The discrete-event simulator: owns all modules and the event queue.
///
/// Events are processed in a strict `(tick, sequence)` total order: time
/// first, insertion order among simultaneous events. The queue behind
/// that order is the two-level [`EventQueue`] (calendar ring + overflow
/// heap); it drains in exactly the order a plain binary heap would, just
/// faster. A kernel owns its whole world — modules, queue, packet-id
/// allocator — so independent kernels never share state and can run on
/// separate threads (the contract the parallel sweep engine in
/// `accesys-exp` relies on).
///
/// Module names must be unique within a kernel: statistics are keyed by
/// `"<name>.<counter>"`, so [`Kernel::add_module`] and
/// [`Kernel::set_module`] panic on a duplicate rather than letting two
/// modules silently merge their counters.
///
/// ```
/// use accesys_sim::{Ctx, Kernel, Module, Msg, Stats, units};
///
/// struct Counter {
///     fired: u64,
/// }
/// impl Module for Counter {
///     fn name(&self) -> &str {
///         "counter"
///     }
///     fn handle(&mut self, _msg: Msg, _ctx: &mut Ctx) {
///         self.fired += 1;
///     }
///     fn report(&self, out: &mut Stats) {
///         out.add("fired", self.fired as f64);
///     }
/// }
///
/// let mut kernel = Kernel::new();
/// let id = kernel.add_module(Box::new(Counter { fired: 0 }));
/// kernel.schedule(units::ns(5.0), id, Msg::Timer(0));
/// kernel.schedule(units::ns(9.0), id, Msg::Timer(1));
/// let end = kernel.run_until_idle().unwrap();
/// assert_eq!(end, units::ns(9.0));
/// assert_eq!(kernel.stats().get("counter.fired"), Some(2.0));
/// ```
pub struct Kernel {
    pub(crate) time: Tick,
    pub(crate) seq: u64,
    pub(crate) next_pkt_id: u64,
    pub(crate) queue: EventQueue<Ev>,
    pub(crate) modules: Vec<Box<dyn Module>>,
    pub(crate) events_processed: u64,
    pub(crate) out_buf: Vec<(Tick, ModuleId, Msg)>,
    pub(crate) tracer: Option<Box<dyn Tracer>>,
    /// Domain partition installed by [`Kernel::set_partition`]; `None`
    /// runs the classic sequential loop.
    pub(crate) plan: Option<DomainPlan>,
    /// Pending-event count mirrored outside the queue(s), so depth
    /// statistics stay well-defined when events live in per-domain
    /// queues during a parallel run.
    pub(crate) virt_len: usize,
    /// High-water mark of [`Kernel::virt_len`]; tracks the sequential
    /// queue's own peak exactly (events enter and leave one at a time).
    pub(crate) virt_peak: usize,
    /// When enabled, records `(tick, seq, module index)` for every
    /// delivered event, in commit order — the determinism tests compare
    /// these streams across engine configurations.
    pub(crate) order_probe: Option<Vec<(Tick, u64, u32)>>,
    /// First sequence number the currently running handler may stamp.
    /// Set before each direct-sink dispatch and cleared when the handler
    /// returns; if a panic unwinds past `run`, the surviving mark tells
    /// the next `run`/`schedule` which queued events to strip (the
    /// aborted handler's partial sends).
    pub(crate) panic_strip_from: Option<u64>,
    /// Route handler sends through the pre-change buffer-then-drain path
    /// instead of the direct sink (behaviourally identical, only
    /// slower); the perf harness flips this to reconstruct the
    /// pre-change kernel in-process.
    pub(crate) buffered_compat: bool,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Create an empty kernel at tick 0.
    pub fn new() -> Self {
        Kernel {
            time: 0,
            seq: 0,
            next_pkt_id: 0,
            queue: EventQueue::new(),
            modules: Vec::new(),
            events_processed: 0,
            out_buf: Vec::new(),
            tracer: None,
            plan: None,
            virt_len: 0,
            virt_peak: 0,
            order_probe: None,
            panic_strip_from: None,
            buffered_compat: false,
        }
    }

    /// Route sends through the pre-change buffered path (perf-harness
    /// reconstruction; observable results are identical).
    #[doc(hidden)]
    pub fn set_buffered_compat(&mut self, on: bool) {
        self.buffered_compat = on;
    }

    /// Start recording the `(tick, seq, module)` commit order of every
    /// delivered event (determinism diagnostics; cleared on each call).
    #[doc(hidden)]
    pub fn enable_order_probe(&mut self) {
        self.order_probe = Some(Vec::new());
    }

    /// Take the recorded commit order (empty if the probe is disabled).
    #[doc(hidden)]
    pub fn take_order_probe(&mut self) -> Vec<(Tick, u64, u32)> {
        self.order_probe.take().unwrap_or_default()
    }

    /// Name of the module at raw index `i` (probe diagnostics).
    #[doc(hidden)]
    pub fn module_name_of(&self, i: usize) -> &str {
        self.modules[i].name()
    }

    /// Install an event [`Tracer`] (replacing any previous one).
    ///
    /// The tracer observes every delivery until removed. Install *before*
    /// running; events processed earlier are not replayed.
    pub fn set_tracer(&mut self, tracer: Box<dyn Tracer>) {
        self.tracer = Some(tracer);
    }

    /// Remove and return the installed tracer, if any.
    pub fn take_tracer(&mut self) -> Option<Box<dyn Tracer>> {
        self.tracer.take()
    }

    /// Downcast the installed tracer for inspection.
    pub fn tracer<T: Tracer>(&self) -> Option<&T> {
        self.tracer.as_ref()?.as_any().downcast_ref::<T>()
    }

    /// Register a module and return its id.
    ///
    /// # Panics
    ///
    /// Panics if another registered module already uses the same name:
    /// stats are keyed by `"<name>.<counter>"`, and a duplicate name
    /// would silently merge two modules' counters.
    pub fn add_module(&mut self, module: Box<dyn Module>) -> ModuleId {
        self.assert_unique_name(module.name(), None);
        // A new module invalidates any installed domain partition (it
        // would not be covered by any domain); drop back to sequential
        // until set_partition is called again.
        self.plan = None;
        let id = ModuleId::from_index(self.modules.len());
        self.modules.push(module);
        id
    }

    /// Panic if `name` is already taken by a module other than `skip`.
    fn assert_unique_name(&self, name: &str, skip: Option<usize>) {
        for (i, existing) in self.modules.iter().enumerate() {
            if Some(i) != skip && existing.name() == name {
                panic!(
                    "duplicate module name {name:?} (already registered as {}); \
                     module names key per-module stats and must be unique",
                    ModuleId::from_index(i)
                );
            }
        }
    }

    /// Reserve a module slot, returning its id before the module exists.
    ///
    /// System builders use this to wire cyclic topologies (A needs B's id
    /// and vice versa): reserve every id first, then construct the
    /// modules and install them with [`Kernel::set_module`]. Delivering a
    /// message to an unfilled placeholder panics.
    pub fn add_placeholder(&mut self) -> ModuleId {
        struct Placeholder {
            name: String,
        }
        impl Module for Placeholder {
            fn name(&self) -> &str {
                &self.name
            }
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx) {
                panic!(
                    "message delivered to unfilled placeholder module {}",
                    ctx.self_id()
                );
            }
        }
        // Indexed name so placeholders satisfy the uniqueness check that
        // add_module applies to every registration.
        let name = format!("placeholder{}", self.modules.len());
        self.add_module(Box::new(Placeholder { name }))
    }

    /// Install `module` into a slot reserved by [`Kernel::add_placeholder`].
    ///
    /// # Panics
    ///
    /// Panics if `id` was never allocated, or if the module's name is
    /// already taken by a module in another slot (see
    /// [`Kernel::add_module`]).
    pub fn set_module(&mut self, id: ModuleId, module: Box<dyn Module>) {
        self.assert_unique_name(module.name(), Some(id.index()));
        let slot = self
            .modules
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("set_module on unknown id {id}"));
        *slot = module;
    }

    /// Number of registered modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> Tick {
        self.time
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of the event queue (pending events), for capacity
    /// planning and the perf harness.
    pub fn peak_queue_depth(&self) -> usize {
        self.virt_peak
    }

    /// Strip events that a panicking handler pushed into the queue
    /// before it aborted. The direct sink commits sends eagerly, so a
    /// caller that catches the panic and resumes must not see the
    /// aborted handler's half-finished output; the surviving
    /// [`Kernel::panic_strip_from`] mark bounds exactly those events.
    fn discard_aborted_sends(&mut self) {
        let Some(mark) = self.panic_strip_from.take() else {
            return;
        };
        for (when, seq, payload) in self.queue.drain_all() {
            if seq < mark {
                self.queue.push(when, seq, payload);
            } else {
                self.virt_len -= 1;
            }
        }
    }

    /// Schedule a message from outside any module (used to kick off runs).
    pub fn schedule(&mut self, at: Tick, dst: ModuleId, msg: Msg) {
        assert!(dst.is_valid(), "schedule to invalid module id");
        assert!(
            dst.index() < self.modules.len(),
            "schedule to unknown module {dst}"
        );
        // A post-panic schedule would otherwise stamp a sequence number
        // at or past the strip mark and be discarded with the aborted
        // handler's sends; recover first.
        self.discard_aborted_sends();
        self.queue.push(at.max(self.time), self.seq, (dst, msg));
        self.seq += 1;
        self.virt_len += 1;
        self.virt_peak = self.virt_peak.max(self.virt_len);
    }

    /// Run until the event queue drains, with default [`RunLimit`]s.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the event budget runs
    /// out, which indicates a protocol livelock.
    pub fn run_until_idle(&mut self) -> Result<Tick, SimError> {
        self.run(RunLimit::default())
    }

    /// Run until idle, a time bound, or an event budget — whichever first.
    ///
    /// Stopping on `limit.max_time` is not an error: every event at or
    /// before the bound is delivered, the first event past it stays
    /// queued, and the clock is left at the last delivered event's tick
    /// (see [`RunLimit::max_time`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if `limit.max_events` is
    /// exhausted before the queue drains.
    pub fn run(&mut self, limit: RunLimit) -> Result<Tick, SimError> {
        // A multi-domain partition with threads > 1 runs on the parallel
        // engine; a tracer forces the sequential loop (tracers observe
        // deliveries in drain order, which only the sequential loop
        // produces directly — results are identical either way).
        if self
            .plan
            .as_ref()
            .is_some_and(|p| p.threads > 1 && p.domains.len() > 1)
            && self.tracer.is_none()
        {
            return self.run_parallel(limit);
        }
        // If a previous run was aborted by a handler panic (callers may
        // catch_unwind around a run), the aborted handler's partial sends
        // are already committed to the queue; strip them rather than
        // deliver them as if the handler had completed. (The buffered
        // compat path leaves its partial sends in `out_buf` instead.)
        self.discard_aborted_sends();
        self.out_buf.clear();
        // Saturating: max_events = u64::MAX means "unlimited" and must
        // not overflow when added to a prior run's event count.
        let budget_end = self.events_processed.saturating_add(limit.max_events);
        while let Some(when) = self.queue.peek_when() {
            if when > limit.max_time {
                break;
            }
            if self.events_processed >= budget_end {
                return Err(SimError::EventLimitExceeded {
                    limit: limit.max_events,
                    at: self.time,
                });
            }
            let (when, eseq, (dst, msg)) = self.queue.pop().expect("peeked event vanished");
            if let Some(probe) = self.order_probe.as_mut() {
                probe.push((when, eseq, dst.index() as u32));
            }
            debug_assert!(when >= self.time, "time went backwards");
            self.time = when;
            self.events_processed += 1;
            self.virt_len -= 1;

            {
                // Disjoint field borrows: the handler pushes into the
                // queue (or `out_buf`) while `modules` is borrowed, with
                // no per-event `mem::take` round-trip.
                let Kernel {
                    time,
                    seq,
                    next_pkt_id,
                    queue,
                    modules,
                    out_buf,
                    tracer,
                    virt_len,
                    virt_peak,
                    panic_strip_from,
                    buffered_compat,
                    ..
                } = self;
                let module_count = modules.len();
                let module = modules
                    .get_mut(dst.index())
                    .unwrap_or_else(|| panic!("event for unknown module {dst}"));
                if let Some(tracer) = tracer.as_mut() {
                    tracer.on_event(when, dst, module.name(), &msg);
                }
                // Anything the handler stamps from here on is struck from
                // the queue if it panics (see discard_aborted_sends).
                *panic_strip_from = Some(*seq);
                let sink = if *buffered_compat {
                    Sink::Buffered(out_buf)
                } else {
                    Sink::Direct {
                        queue,
                        seq,
                        virt_len,
                        virt_peak,
                        module_count,
                    }
                };
                let mut ctx = Ctx {
                    now: *time,
                    self_id: dst,
                    sink,
                    next_pkt_id,
                };
                module.handle(msg, &mut ctx);
                *panic_strip_from = None;
            }
            if self.buffered_compat {
                for (when, dst, msg) in self.out_buf.drain(..) {
                    assert!(
                        dst.index() < self.modules.len(),
                        "message sent to unknown module {dst}"
                    );
                    self.queue.push(when, self.seq, (dst, msg));
                    self.seq += 1;
                    self.virt_len += 1;
                    self.virt_peak = self.virt_peak.max(self.virt_len);
                }
            }
        }
        Ok(self.time)
    }

    /// Downcast a module by id.
    pub fn module<T: Module>(&self, id: ModuleId) -> Option<&T> {
        self.modules.get(id.index())?.as_any().downcast_ref::<T>()
    }

    /// Downcast a module by id, mutably.
    pub fn module_mut<T: Module>(&mut self, id: ModuleId) -> Option<&mut T> {
        self.modules
            .get_mut(id.index())?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Collect statistics from every module, keys prefixed by module name.
    pub fn stats(&self) -> Stats {
        let mut all = Stats::new();
        for module in &self.modules {
            let mut local = Stats::new();
            module.report(&mut local);
            for (k, v) in local.iter() {
                all.add(&format!("{}.{}", module.name(), k), *v);
            }
        }
        all.add("kernel.events", self.events_processed as f64);
        all.add("kernel.final_tick", self.time as f64);
        all.add("kernel.peak_queue_depth", self.virt_peak as f64);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;

    /// Records the order and time of every timer it receives, and can
    /// forward pings to a peer.
    struct Recorder {
        name: String,
        peer: ModuleId,
        log: Vec<(Tick, u64)>,
    }

    impl Module for Recorder {
        fn name(&self) -> &str {
            &self.name
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            match msg {
                Msg::Timer(tag) => {
                    self.log.push((ctx.now(), tag));
                    if tag >= 100 && self.peer.is_valid() {
                        // Forward a derived ping to the peer 3ns later.
                        ctx.send(self.peer, units::ns(3.0), Msg::Timer(tag - 100));
                    }
                }
                _ => panic!("unexpected message"),
            }
        }
        fn report(&self, out: &mut Stats) {
            out.add("timers", self.log.len() as f64);
        }
    }

    fn recorder(name: &str, peer: ModuleId) -> Box<Recorder> {
        Box::new(Recorder {
            name: name.to_string(),
            peer,
            log: Vec::new(),
        })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut k = Kernel::new();
        let a = k.add_module(recorder("a", ModuleId::INVALID));
        k.schedule(units::ns(10.0), a, Msg::Timer(1));
        k.schedule(units::ns(5.0), a, Msg::Timer(2));
        k.schedule(units::ns(7.0), a, Msg::Timer(3));
        let end = k.run_until_idle().unwrap();
        assert_eq!(end, units::ns(10.0));
        let log = &k.module::<Recorder>(a).unwrap().log;
        assert_eq!(
            log,
            &vec![
                (units::ns(5.0), 2),
                (units::ns(7.0), 3),
                (units::ns(10.0), 1)
            ]
        );
    }

    #[test]
    fn simultaneous_events_fire_in_schedule_order() {
        let mut k = Kernel::new();
        let a = k.add_module(recorder("a", ModuleId::INVALID));
        for tag in 0..8 {
            k.schedule(units::ns(4.0), a, Msg::Timer(tag));
        }
        k.run_until_idle().unwrap();
        let tags: Vec<u64> = k
            .module::<Recorder>(a)
            .unwrap()
            .log
            .iter()
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(tags, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn modules_exchange_messages() {
        let mut k = Kernel::new();
        let b = k.add_module(recorder("b", ModuleId::INVALID));
        let a = k.add_module(recorder("a", b));
        k.schedule(units::ns(1.0), a, Msg::Timer(107));
        k.run_until_idle().unwrap();
        let b_log = &k.module::<Recorder>(b).unwrap().log;
        assert_eq!(b_log, &vec![(units::ns(4.0), 7)]);
    }

    #[test]
    fn event_limit_reports_livelock() {
        struct Looper;
        impl Module for Looper {
            fn name(&self) -> &str {
                "looper"
            }
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx) {
                ctx.timer(1, 0);
            }
        }
        let mut k = Kernel::new();
        let a = k.add_module(Box::new(Looper));
        k.schedule(0, a, Msg::Timer(0));
        let err = k
            .run(RunLimit {
                max_events: 1000,
                max_time: Tick::MAX,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::EventLimitExceeded { limit: 1000, .. }
        ));
    }

    #[test]
    fn max_time_stops_early_without_error() {
        let mut k = Kernel::new();
        let a = k.add_module(recorder("a", ModuleId::INVALID));
        k.schedule(units::ns(5.0), a, Msg::Timer(0));
        k.schedule(units::ns(500.0), a, Msg::Timer(1));
        k.run(RunLimit {
            max_events: u64::MAX,
            max_time: units::ns(100.0),
        })
        .unwrap();
        assert_eq!(k.module::<Recorder>(a).unwrap().log.len(), 1);
        // The far-future event is still queued and can be drained later.
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Recorder>(a).unwrap().log.len(), 2);
    }

    #[test]
    fn stats_are_prefixed_by_module_name() {
        let mut k = Kernel::new();
        let a = k.add_module(recorder("front", ModuleId::INVALID));
        k.schedule(0, a, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let stats = k.stats();
        assert_eq!(stats.get("front.timers"), Some(1.0));
        assert_eq!(stats.get("kernel.events"), Some(1.0));
    }

    #[test]
    fn partial_sends_of_a_panicking_handler_are_discarded() {
        struct Bomb {
            peer: ModuleId,
        }
        impl Module for Bomb {
            fn name(&self) -> &str {
                "bomb"
            }
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx) {
                ctx.send(self.peer, 1, Msg::Timer(9));
                panic!("handler aborts after a buffered send");
            }
        }
        let mut k = Kernel::new();
        let sink = k.add_module(recorder("sink", ModuleId::INVALID));
        let bomb = k.add_module(Box::new(Bomb { peer: sink }));
        k.schedule(0, bomb, Msg::Timer(0));
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k.run_until_idle())).is_err();
        assert!(panicked);
        // Resuming the kernel must not deliver the aborted handler's send.
        k.run_until_idle().unwrap();
        assert!(k.module::<Recorder>(sink).unwrap().log.is_empty());
    }

    #[test]
    fn unlimited_event_budget_does_not_overflow() {
        // Regression: `events_processed + u64::MAX` used to overflow in
        // debug builds once any events had been processed.
        let mut k = Kernel::new();
        let a = k.add_module(recorder("a", ModuleId::INVALID));
        k.schedule(0, a, Msg::Timer(0));
        k.run_until_idle().unwrap(); // events_processed is now nonzero
        k.schedule(k.now() + 1, a, Msg::Timer(1));
        k.run(RunLimit {
            max_events: u64::MAX,
            max_time: Tick::MAX,
        })
        .unwrap();
        assert_eq!(k.module::<Recorder>(a).unwrap().log.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate module name")]
    fn duplicate_module_names_panic_at_registration() {
        let mut k = Kernel::new();
        k.add_module(recorder("twin", ModuleId::INVALID));
        k.add_module(recorder("twin", ModuleId::INVALID));
    }

    #[test]
    #[should_panic(expected = "duplicate module name")]
    fn set_module_rejects_a_name_taken_by_another_slot() {
        let mut k = Kernel::new();
        k.add_module(recorder("taken", ModuleId::INVALID));
        let slot = k.add_placeholder();
        k.set_module(slot, recorder("taken", ModuleId::INVALID));
    }

    #[test]
    fn set_module_may_reuse_its_own_slots_name() {
        // Replacing a module with a same-named one (e.g. re-installing
        // over a previous install) is not a duplicate.
        let mut k = Kernel::new();
        let slot = k.add_placeholder();
        k.set_module(slot, recorder("self", ModuleId::INVALID));
        k.set_module(slot, recorder("self", ModuleId::INVALID));
        assert_eq!(k.module_count(), 1);
    }

    #[test]
    fn placeholders_do_not_collide_with_each_other() {
        let mut k = Kernel::new();
        let a = k.add_placeholder();
        let b = k.add_placeholder();
        k.set_module(a, recorder("left", ModuleId::INVALID));
        k.set_module(b, recorder("right", ModuleId::INVALID));
        assert_eq!(k.module_count(), 2);
    }

    #[test]
    fn peak_queue_depth_is_reported() {
        let mut k = Kernel::new();
        let a = k.add_module(recorder("a", ModuleId::INVALID));
        for i in 0..5 {
            k.schedule(i, a, Msg::Timer(i));
        }
        assert_eq!(k.peak_queue_depth(), 5);
        k.run_until_idle().unwrap();
        assert_eq!(k.stats().get("kernel.peak_queue_depth"), Some(5.0));
    }

    #[test]
    fn packet_ids_are_unique() {
        struct Alloc {
            ids: Vec<u64>,
        }
        impl Module for Alloc {
            fn name(&self) -> &str {
                "alloc"
            }
            fn handle(&mut self, _msg: Msg, ctx: &mut Ctx) {
                for _ in 0..4 {
                    self.ids.push(ctx.alloc_pkt_id());
                }
            }
        }
        let mut k = Kernel::new();
        let a = k.add_module(Box::new(Alloc { ids: vec![] }));
        k.schedule(0, a, Msg::Timer(0));
        k.schedule(1, a, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let ids = &k.module::<Alloc>(a).unwrap().ids;
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }
}
