//! Thread-local packet slab: recycled `Box<Packet>` storage so
//! steady-state simulation allocates approximately zero.
//!
//! Every in-flight packet lives on the heap (a [`Msg::Packet`] node must
//! stay pointer-sized), and before this pool existed each packet paid one
//! `malloc` at creation and one `free` when the response was consumed.
//! [`PacketPool`] keeps the freed boxes on a per-thread free list instead:
//! [`PacketPool::alloc`] pops a recycled box when one is available and
//! only falls back to the global allocator when the pool is dry, and
//! dropping a [`PacketBox`] pushes its storage back onto the list. After
//! a short warm-up the pool reaches the simulation's peak packet
//! concurrency and the hot loop stops touching the allocator entirely —
//! the `perf` bin's allocation-counting harness measures exactly this as
//! `steady_state_allocs_per_event`.
//!
//! The free list is thread-local on purpose: the parallel domain engine
//! (see [`crate::Kernel::set_partition`]) moves packets across worker
//! threads, and a thread-local list needs no locks — a box freed on a
//! different thread from where it was allocated simply joins that
//! thread's pool. Recycling never changes observable behaviour:
//! [`PacketPool::alloc`] overwrites the full [`Packet`] value before
//! handing the box out, so a recycled packet is byte-identical to a
//! freshly boxed one (property-tested in `tests/pool.rs`).
//!
//! [`Msg::Packet`]: crate::Msg::Packet

use crate::Packet;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};

/// Upper bound on recycled boxes kept per thread. Beyond this the pool
/// frees excess boxes instead of hoarding them; 64k packets × 72 bytes
/// ≈ 4.5 MB per worker, far above any observed in-flight peak.
const POOL_CAP: usize = 1 << 16;

thread_local! {
    /// This thread's free list of recycled packet boxes. The boxes are
    /// the whole point (`clippy::vec_box` would inline them): a draw
    /// must hand out an already-allocated `Box<Packet>` without
    /// touching the global allocator.
    #[allow(clippy::vec_box)]
    static FREE: RefCell<Vec<Box<Packet>>> = const { RefCell::new(Vec::new()) };
    /// Boxes drawn from the global allocator (pool was dry).
    static FRESH: Cell<u64> = const { Cell::new(0) };
    /// Boxes recycled from the free list.
    static REUSED: Cell<u64> = const { Cell::new(0) };
    /// Effective free-list capacity: [`POOL_CAP`] normally, 0 while the
    /// pool is bypassed (every alloc then hits the global allocator —
    /// the perf harness's pre-change reconstruction).
    static CAP: Cell<usize> = const { Cell::new(POOL_CAP) };
}

/// Counters describing this thread's pool traffic since the last
/// [`PacketPool::reset_stats`]; see [`PacketPool::stats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations that hit the global allocator (the pool was empty).
    pub fresh: u64,
    /// Allocations served from the recycled free list.
    pub reused: u64,
}

/// The per-thread packet slab. A zero-sized facade: all state lives in
/// thread-local storage, so the type exists only to namespace the
/// operations ([`PacketPool::alloc`], [`PacketPool::stats`], …).
pub struct PacketPool;

impl PacketPool {
    /// Box `pkt`, recycling a previously freed box when one is
    /// available on this thread.
    pub fn alloc(pkt: Packet) -> PacketBox {
        let recycled = FREE.with(|f| f.borrow_mut().pop());
        match recycled {
            Some(mut boxed) => {
                *boxed = pkt;
                REUSED.with(|c| c.set(c.get() + 1));
                PacketBox {
                    boxed: ManuallyDrop::new(boxed),
                }
            }
            None => {
                FRESH.with(|c| c.set(c.get() + 1));
                PacketBox {
                    boxed: ManuallyDrop::new(Box::new(pkt)),
                }
            }
        }
    }

    /// Number of recycled boxes currently idle on this thread's list.
    pub fn free_len() -> usize {
        FREE.with(|f| f.borrow().len())
    }

    /// This thread's traffic counters since the last
    /// [`PacketPool::reset_stats`].
    pub fn stats() -> PoolStats {
        PoolStats {
            fresh: FRESH.with(Cell::get),
            reused: REUSED.with(Cell::get),
        }
    }

    /// Zero this thread's [`PoolStats`] counters (the free list itself
    /// is left warm).
    pub fn reset_stats() {
        FRESH.with(|c| c.set(0));
        REUSED.with(|c| c.set(0));
    }

    /// Disable (or re-enable) recycling on this thread.
    ///
    /// While bypassed, every [`PacketPool::alloc`] draws a fresh box from
    /// the global allocator and every drop frees — exactly the
    /// pre-pool behaviour. The perf harness uses this to reconstruct the
    /// pre-change allocation profile in-process; behaviour is otherwise
    /// unchanged (a fresh box and a recycled one are indistinguishable).
    pub fn set_bypass(on: bool) {
        CAP.with(|c| c.set(if on { 0 } else { POOL_CAP }));
        if on {
            FREE.with(|f| f.borrow_mut().clear());
        }
    }

    fn recycle(boxed: Box<Packet>) {
        FREE.with(|f| {
            let mut free = f.borrow_mut();
            if free.len() < CAP.with(Cell::get) {
                free.push(boxed);
            }
        });
    }
}

/// An owned, heap-allocated [`Packet`] whose storage returns to the
/// [`PacketPool`] on drop.
///
/// Behaves like `Box<Packet>` — [`Deref`]/[`DerefMut`] to the packet,
/// pointer-sized (the niche keeps `Option<PacketBox>` and
/// [`crate::Msg`] small) — but recycles instead of freeing.
pub struct PacketBox {
    /// `ManuallyDrop` lets `Drop` move the box out to the free list
    /// without a placeholder value; every other path drops the whole
    /// `PacketBox`, so the box can never be dropped twice.
    boxed: ManuallyDrop<Box<Packet>>,
}

impl PacketBox {
    /// Copy the packet out (the storage is recycled immediately).
    pub fn into_inner(self) -> Packet {
        *self
    }
}

impl Drop for PacketBox {
    fn drop(&mut self) {
        // SAFETY: `self` is being dropped and `boxed` is not touched
        // again afterwards, so taking the box out is the only move.
        let boxed = unsafe { ManuallyDrop::take(&mut self.boxed) };
        PacketPool::recycle(boxed);
    }
}

impl Deref for PacketBox {
    type Target = Packet;
    fn deref(&self) -> &Packet {
        &self.boxed
    }
}

impl DerefMut for PacketBox {
    fn deref_mut(&mut self) -> &mut Packet {
        &mut self.boxed
    }
}

impl fmt::Debug for PacketBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.boxed.fmt(f)
    }
}

impl From<Packet> for PacketBox {
    fn from(pkt: Packet) -> Self {
        PacketPool::alloc(pkt)
    }
}
