//! Two-level event scheduler: a calendar ring for near-future events
//! backed by an overflow min-heap for far-future ones.
//!
//! The kernel's hot loop is dominated by event queue traffic, and almost
//! every send lands a short delay ahead of the current tick (link
//! serialization, cache hits, zero-delay forwarding). A binary heap pays
//! `O(log n)` comparison-and-move work on *every* push and pop regardless
//! of that locality. [`EventQueue`] exploits it instead:
//!
//! * **Near level** — a ring of [`NUM_BUCKETS`] buckets, each covering
//!   [`BUCKET_TICKS`] ticks, indexed by `when >> BUCKET_BITS`. Events
//!   within the ring horizon (≈1 µs of simulated time) are appended to
//!   their bucket in O(1); a bucket is sorted lazily, only when the drain
//!   cursor reaches it. An occupancy bitmap finds the next non-empty
//!   bucket in a handful of word operations.
//! * **Far level** — events beyond the horizon (refresh timers,
//!   end-of-run deadlines) go to a conventional binary min-heap. As
//!   simulated time advances and the ring window slides forward, far
//!   events whose bucket has entered the window migrate into the ring —
//!   each event migrates at most once.
//!
//! The queue preserves the kernel's determinism contract exactly: events
//! drain in ascending `(when, seq)` total order, bit-for-bit identical to
//! the plain-heap ordering ([`BaselineQueue`] is kept as the reference
//! implementation; `tests/sched_equiv.rs` checks equivalence on random
//! schedules, and `benches/sched.rs` measures the speedup).

use crate::Tick;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Log2 of the bucket width: each bucket spans 2^10 ticks ≈ 1 ns.
pub const BUCKET_BITS: u32 = 10;

/// Ticks covered by one calendar bucket.
pub const BUCKET_TICKS: u64 = 1 << BUCKET_BITS;

/// Number of buckets in the calendar ring. Together with
/// [`BUCKET_TICKS`] this puts the near-future horizon at 2^20 ticks
/// (≈1 µs), which covers link serialization, cache and DRAM latencies;
/// only coarse-grained timers overflow to the far heap.
pub const NUM_BUCKETS: usize = 1024;

const WORDS: usize = NUM_BUCKETS / 64;

struct Entry<T> {
    when: Tick,
    seq: u64,
    payload: T,
}

/// Overflow-heap wrapper ordered by reversed `(when, seq)` so the
/// `BinaryHeap` pops the earliest event first. Payloads never take part
/// in comparisons.
struct FarEntry<T>(Entry<T>);

impl<T> PartialEq for FarEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.when, self.0.seq) == (other.0.when, other.0.seq)
    }
}
impl<T> Eq for FarEntry<T> {}
impl<T> PartialOrd for FarEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for FarEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.0.when, other.0.seq).cmp(&(self.0.when, self.0.seq))
    }
}

/// A two-level event queue draining in ascending `(when, seq)` order.
///
/// `when` is the delivery tick and `seq` a caller-supplied tie-breaker
/// that must be unique per event (the kernel stamps a monotonically
/// increasing sequence number). Pushes must not be earlier than the last
/// popped `when` — the kernel guarantees this by clamping every schedule
/// to the current time.
///
/// ```
/// use accesys_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(50, 1, "b");
/// q.push(50, 0, "a");
/// q.push(2_000_000, 2, "far");
/// assert_eq!(q.pop(), Some((50, 0, "a")));
/// assert_eq!(q.pop(), Some((50, 1, "b")));
/// assert_eq!(q.pop(), Some((2_000_000, 2, "far")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<T> {
    /// Calendar ring; slot `b % NUM_BUCKETS` holds bucket number `b`.
    buckets: Vec<Vec<Entry<T>>>,
    /// One bit per slot: set while the slot's bucket is non-empty.
    occupied: [u64; WORDS],
    /// Far-future events, beyond `base_bucket + NUM_BUCKETS`.
    far: BinaryHeap<FarEntry<T>>,
    /// Bucket number of the most recently popped event; the ring window
    /// is `[base_bucket, base_bucket + NUM_BUCKETS)`.
    base_bucket: u64,
    /// Bucket number currently kept sorted (descending, popped from the
    /// back); other buckets are unsorted until the cursor reaches them.
    sorted_bucket: Option<u64>,
    /// Front location computed by the last [`EventQueue::peek_when`],
    /// reused by the following [`EventQueue::pop`] so the kernel's
    /// peek-then-pop loop locates the front once per event, not twice.
    /// `Some(None)` means "front is the far heap"; invalidated by pushes.
    front_cache: Option<Option<usize>>,
    len: usize,
    peak_len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue with its window at tick 0.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; WORDS],
            far: BinaryHeap::new(),
            base_bucket: 0,
            sorted_bucket: None,
            front_cache: None,
            len: 0,
            peak_len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Largest number of events ever queued at once.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    fn bucket_no(when: Tick) -> u64 {
        when >> BUCKET_BITS
    }

    fn set_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] |= 1u64 << (slot % 64);
    }

    fn clear_bit(&mut self, slot: usize) {
        self.occupied[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// First occupied slot at ring distance 0..NUM_BUCKETS from `start`.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        // Word containing `start`, masked to bits at or after it.
        let first_word = start / 64;
        let masked = self.occupied[first_word] & (!0u64 << (start % 64));
        if masked != 0 {
            return Some(first_word * 64 + masked.trailing_zeros() as usize);
        }
        // Remaining words in ring order, wrapping, then the bits of the
        // first word *before* `start`.
        for i in 1..=WORDS {
            let w = (first_word + i) % WORDS;
            let mut word = self.occupied[w];
            if i == WORDS {
                word &= !(!0u64 << (start % 64));
            }
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Append one event. `seq` must be unique; `(when, seq)` must not
    /// precede the last popped event (debug-asserted).
    pub fn push(&mut self, when: Tick, seq: u64, payload: T) {
        debug_assert!(
            Self::bucket_no(when) >= self.base_bucket,
            "push at tick {when} behind the drain window (bucket {} < {})",
            Self::bucket_no(when),
            self.base_bucket
        );
        self.front_cache = None;
        let entry = Entry { when, seq, payload };
        // A release-mode push behind the window (a clamping bug upstream)
        // degrades gracefully: it lands in the current bucket and pops
        // almost immediately, matching the plain heap's behaviour.
        let bucket = Self::bucket_no(when).max(self.base_bucket);
        if bucket < self.base_bucket + NUM_BUCKETS as u64 {
            self.ring_insert(bucket, entry);
        } else {
            self.far.push(FarEntry(entry));
        }
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
    }

    fn ring_insert(&mut self, bucket: u64, entry: Entry<T>) {
        let slot = (bucket % NUM_BUCKETS as u64) as usize;
        let vec = &mut self.buckets[slot];
        if self.sorted_bucket == Some(bucket) {
            // Keep the cursor's bucket sorted (descending) so the next
            // pop stays O(1) off the back.
            let key = (entry.when, entry.seq);
            let pos = vec.partition_point(|e| (e.when, e.seq) > key);
            vec.insert(pos, entry);
        } else {
            vec.push(entry);
        }
        self.set_bit(slot);
    }

    /// Sort `slot` (descending) unless it is already the sorted bucket.
    fn ensure_sorted(&mut self, slot: usize, bucket: u64) {
        if self.sorted_bucket != Some(bucket) {
            self.buckets[slot].sort_unstable_by_key(|e| std::cmp::Reverse((e.when, e.seq)));
            self.sorted_bucket = Some(bucket);
        }
    }

    /// Slide the window forward to the popped event's bucket and migrate
    /// far events that have entered the horizon.
    fn advance_base(&mut self, when: Tick) {
        let bucket = Self::bucket_no(when);
        if bucket <= self.base_bucket {
            return;
        }
        self.base_bucket = bucket;
        let horizon = self.base_bucket + NUM_BUCKETS as u64;
        while let Some(top) = self.far.peek() {
            if Self::bucket_no(top.0.when) >= horizon {
                break;
            }
            let FarEntry(entry) = self.far.pop().expect("peeked far event vanished");
            self.ring_insert(Self::bucket_no(entry.when), entry);
        }
    }

    /// Locate the slot holding the earliest event, sorting it if needed.
    /// Returns `None` when the ring is empty (the far heap may not be).
    fn front_slot(&mut self) -> Option<usize> {
        let start = (self.base_bucket % NUM_BUCKETS as u64) as usize;
        let slot = self.next_occupied(start)?;
        let dist = (slot + NUM_BUCKETS - start) % NUM_BUCKETS;
        let bucket = self.base_bucket + dist as u64;
        self.ensure_sorted(slot, bucket);
        Some(slot)
    }

    /// Delivery tick of the earliest event without removing it.
    ///
    /// Takes `&mut self` because it may lazily sort the front bucket
    /// (and caches the located front for the next [`EventQueue::pop`]).
    pub fn peek_when(&mut self) -> Option<Tick> {
        if self.len == 0 {
            return None;
        }
        let front = self.front_slot();
        self.front_cache = Some(front);
        match front {
            Some(slot) => self.buckets[slot].last().map(|e| e.when),
            None => self.far.peek().map(|e| e.0.when),
        }
    }

    /// Remove every queued event as unsorted `(when, seq, payload)`
    /// triples and rewind the window to tick 0 (peak statistics are
    /// kept).
    ///
    /// Unlike pop-draining, rewinding means the emptied queue can
    /// immediately accept re-pushes at *any* tick — pops would have
    /// advanced `base_bucket` past earlier events. The parallel domain
    /// engine ([`crate::Kernel::set_partition`]) uses this to deal the
    /// main queue out to per-domain queues at the start of a run and to
    /// collect leftovers back afterwards.
    pub fn drain_all(&mut self) -> Vec<(Tick, u64, T)> {
        let mut out = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            for e in bucket.drain(..) {
                out.push((e.when, e.seq, e.payload));
            }
        }
        for FarEntry(e) in std::mem::take(&mut self.far) {
            out.push((e.when, e.seq, e.payload));
        }
        self.occupied = [0; WORDS];
        self.base_bucket = 0;
        self.sorted_bucket = None;
        self.front_cache = None;
        self.len = 0;
        out
    }

    /// Remove and return the earliest event as `(when, seq, payload)`.
    pub fn pop(&mut self) -> Option<(Tick, u64, T)> {
        if self.len == 0 {
            return None;
        }
        // Reuse the front located by a preceding peek (still valid: any
        // push since would have cleared it, and pops clear it below).
        let front = match self.front_cache.take() {
            Some(front) => front,
            None => self.front_slot(),
        };
        let entry = match front {
            Some(slot) => {
                let e = self.buckets[slot].pop().expect("occupied bucket was empty");
                if self.buckets[slot].is_empty() {
                    self.clear_bit(slot);
                }
                e
            }
            None => self.far.pop().expect("non-empty queue had no events").0,
        };
        self.len -= 1;
        self.advance_base(entry.when);
        Some((entry.when, entry.seq, entry.payload))
    }
}

/// Reference single-level scheduler: the plain `BinaryHeap` the kernel
/// used before the two-level queue.
///
/// Kept (a) as the ordering oracle for the scheduler-equivalence
/// property test and (b) as the baseline the perf harness
/// (`accesys-bench`'s `perf` bin, `benches/sched.rs`) measures
/// [`EventQueue`] against, so the speedup claim stays reproducible.
pub struct BaselineQueue<T> {
    heap: BinaryHeap<FarEntry<T>>,
}

impl<T> Default for BaselineQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BaselineQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        BaselineQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Append one event.
    pub fn push(&mut self, when: Tick, seq: u64, payload: T) {
        self.heap.push(FarEntry(Entry { when, seq, payload }));
    }

    /// Delivery tick of the earliest event without removing it.
    pub fn peek_when(&mut self) -> Option<Tick> {
        self.heap.peek().map(|e| e.0.when)
    }

    /// Remove and return the earliest event as `(when, seq, payload)`.
    pub fn pop(&mut self) -> Option<(Tick, u64, T)> {
        self.heap
            .pop()
            .map(|FarEntry(e)| (e.when, e.seq, e.payload))
    }
}

/// Shared schedule/drain workload used by both `benches/sched.rs` and
/// the `perf` bin in `accesys-bench`, so the CI-archived bench
/// trajectory (`BENCH_kernel.json`) and the criterion microbenches
/// always measure the *same* event profile. Not part of the simulation
/// API (hidden from docs; no stability promises).
#[doc(hidden)]
pub mod bench_support {
    use super::{BaselineQueue, EventQueue, Tick};
    use crate::{Ctx, Kernel, Module, Msg};

    /// Deterministic splitmix-style generator for delay patterns.
    pub struct Lcg(pub u64);

    impl Lcg {
        /// Next raw 31-bit-ish sample.
        pub fn sample(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }

        /// Mixed near/far delay: mostly within ~16k ticks, 1-in-64 far
        /// (refresh-timer style) — the kernel's observed send profile.
        pub fn delay(&mut self) -> u64 {
            let r = self.sample();
            if r.is_multiple_of(64) {
                1_000_000 + (r % 1_000_000)
            } else {
                1 + (r % 16_384)
            }
        }
    }

    /// Self-rescheduling timer module: every delivery schedules one more
    /// event, holding queue depth constant while events churn.
    pub struct Pump {
        remaining: u64,
        lcg: Lcg,
    }

    impl Module for Pump {
        fn name(&self) -> &str {
            "pump"
        }
        fn handle(&mut self, _msg: Msg, ctx: &mut Ctx) {
            if self.remaining == 0 {
                return;
            }
            self.remaining -= 1;
            let delay = self.lcg.delay();
            ctx.timer(delay, 0);
        }
    }

    /// Drive `total` events through a fresh kernel at ~`outstanding`
    /// queue depth; returns `(events_processed, peak_queue_depth)`.
    pub fn kernel_schedule_drain(total: u64, outstanding: u64) -> (u64, usize) {
        let mut k = Kernel::new();
        let id = k.add_module(Box::new(Pump {
            remaining: total,
            lcg: Lcg(0x9E3779B97F4A7C15),
        }));
        let mut seed = Lcg(42);
        for _ in 0..outstanding {
            k.schedule(seed.sample() % 16_384, id, Msg::Timer(0));
        }
        k.run_until_idle().expect("schedule/drain workload drains");
        (k.events_processed(), k.peak_queue_depth())
    }

    /// The queue operations the schedule/drain driver needs, implemented
    /// by both scheduler generations so they run identical workloads.
    pub trait SchedQueue<T> {
        /// Append one event.
        fn push(&mut self, when: Tick, seq: u64, payload: T);
        /// Remove and return the earliest event.
        fn pop(&mut self) -> Option<(Tick, u64, T)>;
    }

    impl<T> SchedQueue<T> for EventQueue<T> {
        fn push(&mut self, when: Tick, seq: u64, payload: T) {
            EventQueue::push(self, when, seq, payload);
        }
        fn pop(&mut self) -> Option<(Tick, u64, T)> {
            EventQueue::pop(self)
        }
    }

    impl<T> SchedQueue<T> for BaselineQueue<T> {
        fn push(&mut self, when: Tick, seq: u64, payload: T) {
            BaselineQueue::push(self, when, seq, payload);
        }
        fn pop(&mut self) -> Option<(Tick, u64, T)> {
            BaselineQueue::pop(self)
        }
    }

    /// Push/pop `total` events (payloads built by `make`) through `q`
    /// at ~`outstanding` depth with the standard delay profile; returns
    /// the drained count.
    pub fn queue_schedule_drain<T>(
        q: &mut impl SchedQueue<T>,
        total: u64,
        outstanding: u64,
        mut make: impl FnMut(u64) -> T,
    ) -> u64 {
        let mut lcg = Lcg(7);
        let mut seq = 0u64;
        for _ in 0..outstanding {
            q.push(lcg.sample() % 16_384, seq, make(seq));
            seq += 1;
        }
        let mut drained = 0u64;
        while let Some((when, _, _)) = q.pop() {
            drained += 1;
            if seq < total {
                q.push(when + lcg.delay(), seq, make(seq));
                seq += 1;
            }
        }
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_when_seq_order() {
        let mut q = EventQueue::new();
        q.push(30, 2, ());
        q.push(10, 0, ());
        q.push(30, 1, ());
        q.push(10, 3, ());
        let order: Vec<(Tick, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(w, s, _)| (w, s))
            .collect();
        assert_eq!(order, vec![(10, 0), (10, 3), (30, 1), (30, 2)]);
    }

    #[test]
    fn far_events_cross_the_horizon_correctly() {
        let mut q = EventQueue::new();
        let horizon = BUCKET_TICKS * NUM_BUCKETS as u64;
        q.push(horizon * 3 + 17, 0, "far");
        q.push(5, 1, "near");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_when(), Some(5));
        assert_eq!(q.pop(), Some((5, 1, "near")));
        // The window jumps to the far event's bucket via the far heap.
        assert_eq!(q.pop(), Some((horizon * 3 + 17, 0, "far")));
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_pushes_into_the_current_bucket_stay_ordered() {
        let mut q = EventQueue::new();
        q.push(100, 0, 0);
        q.push(100, 1, 1);
        assert_eq!(q.pop(), Some((100, 0, 0)));
        // Same-tick push after a pop (a zero-delay forward).
        q.push(100, 2, 2);
        q.push(150, 3, 3);
        assert_eq!(q.pop(), Some((100, 1, 1)));
        assert_eq!(q.pop(), Some((100, 2, 2)));
        assert_eq!(q.pop(), Some((150, 3, 3)));
    }

    #[test]
    fn window_slide_migrates_each_far_event_once() {
        let mut q = EventQueue::new();
        let horizon = BUCKET_TICKS * NUM_BUCKETS as u64;
        // A train of events, one per horizon, plus near fillers.
        for i in 0..8u64 {
            q.push(i * horizon + 9, i, i);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, s, _)| s).collect();
        assert_eq!(popped, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ring_wraparound_reuses_slots() {
        let mut q = EventQueue::new();
        let mut now = 0u64;
        // March time across several full ring laps.
        for seq in 0..(NUM_BUCKETS as u64 * 3) {
            q.push(now + BUCKET_TICKS / 2, seq, seq);
            let (when, _, _) = q.pop().unwrap();
            assert!(when >= now);
            now = when + BUCKET_TICKS; // next push one bucket further on
        }
        assert!(q.is_empty());
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(i, i, ());
        }
        for _ in 0..10 {
            q.pop();
        }
        assert_eq!(q.peak_len(), 10);
        assert!(q.is_empty());
        assert_eq!(q.peak_len(), 10);
    }

    #[test]
    fn tick_max_events_are_representable() {
        let mut q = EventQueue::new();
        q.push(Tick::MAX, 0, "end");
        q.push(1, 1, "start");
        assert_eq!(q.pop(), Some((1, 1, "start")));
        assert_eq!(q.pop(), Some((Tick::MAX, 0, "end")));
    }

    #[test]
    fn drain_all_empties_and_rewinds_the_window() {
        let mut q = EventQueue::new();
        let horizon = BUCKET_TICKS * NUM_BUCKETS as u64;
        q.push(40, 0, "near");
        q.push(horizon * 2, 1, "far");
        // Advance the window past tick 40 before draining.
        assert_eq!(q.pop(), Some((40, 0, "near")));
        q.push(horizon * 2 + 1, 2, "far2");
        let mut drained = q.drain_all();
        drained.sort_by_key(|&(w, s, _)| (w, s));
        assert_eq!(
            drained,
            vec![(horizon * 2, 1, "far"), (horizon * 2 + 1, 2, "far2")]
        );
        assert!(q.is_empty());
        // The rewound window accepts pushes earlier than the old cursor.
        q.push(5, 3, "early");
        assert_eq!(q.pop(), Some((5, 3, "early")));
        assert_eq!(q.peak_len(), 2);
    }

    #[test]
    fn baseline_queue_matches_on_a_small_schedule() {
        let mut a = EventQueue::new();
        let mut b = BaselineQueue::new();
        for (when, seq) in [(7u64, 0u64), (3, 1), (7, 2), (1 << 40, 3), (0, 4)] {
            a.push(when, seq, seq);
            b.push(when, seq, seq);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
    }
}
