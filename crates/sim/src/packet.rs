//! Memory/PCIe packets and the route stack used to steer responses.

use crate::{ModuleId, Tick};

/// Maximum depth of a [`RouteStack`].
///
/// The deepest request path in the baseline framework is
/// `CPU → L1 → LLC → MemBus → RC → Link → Switch → Link → EP → DevMem`,
/// comfortably below this bound. Topologies are checked against this
/// constant *at build time*: the topology validator in the core crate
/// (`accesys::topology`) computes the longest request path of a spec
/// and rejects anything deeper with a typed error. The
/// [`RouteStack::push`] overflow panic below still guards hand-wired
/// kernels that bypassed validation — and misrouted traffic (e.g. a
/// request to a device-window address no port claims, which bounces
/// between hops instead of terminating).
pub const MAX_ROUTE_DEPTH: usize = 12;

/// Memory command carried by a [`Packet`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum MemCmd {
    /// Read request; expects a [`MemCmd::ReadResp`].
    ReadReq,
    /// Read response carrying `size` bytes (timing only).
    ReadResp,
    /// Write request; expects a [`MemCmd::WriteResp`] unless posted.
    WriteReq,
    /// Write acknowledgement.
    WriteResp,
    /// Coherence probe asking an upper cache to invalidate a line.
    SnoopInv,
    /// Acknowledgement of a [`MemCmd::SnoopInv`] (with writeback if dirty).
    SnoopInvAck,
}

impl MemCmd {
    /// Whether this command is a request (expects a response).
    pub fn is_request(self) -> bool {
        matches!(self, MemCmd::ReadReq | MemCmd::WriteReq | MemCmd::SnoopInv)
    }

    /// Whether this command is a response.
    pub fn is_response(self) -> bool {
        !self.is_request()
    }

    /// The response command paired with this request.
    ///
    /// # Panics
    ///
    /// Panics if called on a response command.
    pub fn response(self) -> MemCmd {
        match self {
            MemCmd::ReadReq => MemCmd::ReadResp,
            MemCmd::WriteReq => MemCmd::WriteResp,
            MemCmd::SnoopInv => MemCmd::SnoopInvAck,
            other => panic!("{other:?} is not a request command"),
        }
    }

    /// Whether a response of this kind carries data on the wire.
    pub fn carries_data(self) -> bool {
        matches!(self, MemCmd::ReadResp | MemCmd::WriteReq)
    }
}

/// Bounded stack of module ids a request traversed.
///
/// Forwarding modules push themselves before sending a request downstream;
/// responders and intermediate hops pop to find the next hop on the way
/// back. This mirrors gem5's port pairs without shared references.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct RouteStack {
    stack: [u32; MAX_ROUTE_DEPTH],
    len: u8,
}

impl RouteStack {
    /// An empty route stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of hops recorded.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no hops are recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Record `id` as a hop to revisit on the response path.
    ///
    /// # Panics
    ///
    /// Panics if the stack is full ([`MAX_ROUTE_DEPTH`] hops).
    pub fn push(&mut self, id: ModuleId) {
        assert!(
            (self.len as usize) < MAX_ROUTE_DEPTH,
            "route stack overflow (depth {MAX_ROUTE_DEPTH})"
        );
        self.stack[self.len as usize] = id.index() as u32;
        self.len += 1;
    }

    /// Pop the most recent hop, if any.
    pub fn pop(&mut self) -> Option<ModuleId> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        Some(ModuleId::from_index(self.stack[self.len as usize] as usize))
    }

    /// Peek at the most recent hop without removing it.
    pub fn top(&self) -> Option<ModuleId> {
        if self.len == 0 {
            return None;
        }
        Some(ModuleId::from_index(
            self.stack[self.len as usize - 1] as usize,
        ))
    }
}

/// A timing packet: one memory transaction or one PCIe TLP.
///
/// Packets model *timing only*; functional data lives at the endpoints
/// (e.g. the accelerator's functional GEMM backend), which keeps the hot
/// path allocation-free.
#[derive(Copy, Clone, Debug)]
pub struct Packet {
    /// Unique id (allocated via [`crate::Ctx::alloc_pkt_id`]).
    pub id: u64,
    /// Command.
    pub cmd: MemCmd,
    /// Target address. Virtual if [`Packet::virt`] is set.
    pub addr: u64,
    /// Transfer size in bytes.
    pub size: u32,
    /// Address is in the accelerator's virtual space and needs SMMU
    /// translation before touching host memory.
    pub virt: bool,
    /// Traffic class used for accounting (DMA channel, CPU, page-table
    /// walker, ...). Interpreted by the issuing subsystem.
    pub stream: u16,
    /// Requester-side transaction tag (PCIe tag / MSHR id).
    pub tag: u32,
    /// Tick at which the original request was issued.
    pub issued_at: Tick,
    /// Response routing state.
    pub route: RouteStack,
    /// The link that delivered this packet to the current module, so the
    /// receiver can return flow-control credits. [`crate::ModuleId::INVALID`]
    /// when the packet did not arrive over a credited link.
    pub ingress_link: ModuleId,
}

impl Packet {
    /// Create a request packet. `virt` defaults to `false`; adjust fields
    /// after construction for less common cases.
    pub fn request(id: u64, cmd: MemCmd, addr: u64, size: u32, now: Tick) -> Self {
        debug_assert!(cmd.is_request(), "{cmd:?} is not a request");
        Packet {
            id,
            cmd,
            addr,
            size,
            virt: false,
            stream: 0,
            tag: 0,
            issued_at: now,
            route: RouteStack::new(),
            ingress_link: ModuleId::INVALID,
        }
    }

    /// Turn this request into its response in place, preserving id, tag,
    /// stream, size and route so the reply retraces the request path.
    ///
    /// # Panics
    ///
    /// Panics if the packet is already a response.
    pub fn make_response(&mut self) {
        self.cmd = self.cmd.response();
    }

    /// Convenience: a copy of this request converted to a response.
    pub fn to_response(&self) -> Packet {
        let mut p = *self;
        p.make_response();
        p
    }

    /// Number of bytes this packet occupies on a PCIe link, given a
    /// per-TLP header overhead. Read requests carry no payload.
    pub fn wire_bytes(&self, header_bytes: u32) -> u32 {
        if self.cmd.carries_data() {
            header_bytes + self.size
        } else {
            header_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_stack_push_pop_is_lifo() {
        let mut r = RouteStack::new();
        assert!(r.is_empty());
        r.push(ModuleId::from_index(3));
        r.push(ModuleId::from_index(7));
        assert_eq!(r.len(), 2);
        assert_eq!(r.top(), Some(ModuleId::from_index(7)));
        assert_eq!(r.pop(), Some(ModuleId::from_index(7)));
        assert_eq!(r.pop(), Some(ModuleId::from_index(3)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "route stack overflow")]
    fn route_stack_overflow_panics() {
        let mut r = RouteStack::new();
        for i in 0..=MAX_ROUTE_DEPTH {
            r.push(ModuleId::from_index(i));
        }
    }

    #[test]
    fn response_pairs() {
        assert_eq!(MemCmd::ReadReq.response(), MemCmd::ReadResp);
        assert_eq!(MemCmd::WriteReq.response(), MemCmd::WriteResp);
        assert_eq!(MemCmd::SnoopInv.response(), MemCmd::SnoopInvAck);
        assert!(MemCmd::ReadReq.is_request());
        assert!(MemCmd::ReadResp.is_response());
    }

    #[test]
    fn make_response_preserves_identity() {
        let mut p = Packet::request(9, MemCmd::ReadReq, 0x1000, 64, 5);
        p.tag = 42;
        p.stream = 3;
        p.route.push(ModuleId::from_index(1));
        p.make_response();
        assert_eq!(p.cmd, MemCmd::ReadResp);
        assert_eq!(p.id, 9);
        assert_eq!(p.tag, 42);
        assert_eq!(p.stream, 3);
        assert_eq!(p.route.len(), 1);
    }

    #[test]
    fn wire_bytes_depends_on_payload() {
        let read = Packet::request(0, MemCmd::ReadReq, 0, 256, 0);
        assert_eq!(read.wire_bytes(24), 24);
        let write = Packet::request(1, MemCmd::WriteReq, 0, 256, 0);
        assert_eq!(write.wire_bytes(24), 280);
        let cpl = read.to_response();
        assert_eq!(cpl.wire_bytes(24), 280);
    }
}
