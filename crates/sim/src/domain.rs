//! Conservative parallel discrete-event engine: domain decomposition
//! with lookahead windows and a deterministic replay-merge.
//!
//! # Model
//!
//! [`Kernel::set_partition`] splits the module graph into **domains** —
//! disjoint module sets whose only inter-domain messages travel with at
//! least `lookahead` ticks of delay (in the AcceSys topology the cuts
//! run through PCIe links, whose serialization/pipeline latency supplies
//! the lookahead; see `TopologySpec::partition` in `accesys`). Each
//! domain gets its own [`EventQueue`] and owns its modules for the
//! duration of a run, so a **round** can process every domain on a
//! different worker thread:
//!
//! 1. **Window.** Let `t_min` be the earliest pending event across all
//!    domains. Every event in `[t_min, t_min + lookahead)` is safe to
//!    process: no other domain can inject an event into that window,
//!    because anything a domain sends across a cut arrives at least
//!    `lookahead` after `t_min`.
//! 2. **Parallel phase.** Each domain drains its own queue up to the
//!    window end. Intra-domain sends landing inside the window are
//!    processed in the same round (cascades keep their relative order —
//!    see below); everything else (later ticks, other domains) is
//!    deferred into a per-domain log.
//! 3. **Replay merge.** A sequential pass k-way-merges the per-domain
//!    logs in `(tick, seq)` order, assigns the *definitive* sequence
//!    numbers in merged order, and commits deferred sends into the
//!    destination domains' queues.
//!
//! # Determinism contract
//!
//! The observable results — module state, statistics, final tick — are
//! **byte-identical to the sequential kernel at any thread count**. The
//! merge step is what buys this: the sequential kernel stamps each send
//! with a global monotone sequence number and drains in `(tick, seq)`
//! order, and the replay merge reproduces exactly that stamping order.
//! In-window cascade events carry *provisional* sequence numbers
//! (`PROV_BASE + n`, above every real one) while the round runs; the
//! merge resolves them to the numbers the sequential kernel would have
//! assigned. Two facts make the provisional order correct:
//!
//! * every event already queued at the start of a round was produced by
//!   an earlier round, so its (real) sequence number is smaller than any
//!   number assigned during this round — real-before-provisional at
//!   equal ticks matches the sequential order;
//! * within a domain, cascades are committed in processing order, which
//!   the merge visits in the same order, so provisional numbers resolve
//!   ascending.
//!
//! Packet ids are the one quantity allowed to differ from the sequential
//! run: each domain allocates from its own disjoint chunk (uniqueness is
//! what matters — ids are equality-only match keys and never appear in
//! reports).
//!
//! # Divergences from the sequential loop
//!
//! * The event budget ([`RunLimit::max_events`]) is checked at round
//!   boundaries, so a run may overshoot the budget by up to one window
//!   before reporting [`SimError::EventLimitExceeded`].
//! * A panicking handler stops the run at the end of the current round:
//!   other domains still complete their window and the finished events
//!   are merged, but the panicking domain's window is cut short — so,
//!   unlike the sequential loop, the kernel should not be resumed
//!   afterwards.
//! * Tracers force the sequential loop (same results, delivered in
//!   drain order).

use crate::kernel::{Ctx, Ev, RunLimit, SimError};
use crate::{Kernel, Module, ModuleId, Msg, Tick};
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard};

/// Provisional sequence-number base for in-window cascade events. Above
/// every definitive number (a simulation would need >9e18 events to
/// collide), so provisional events sort after real ones at equal ticks —
/// exactly the sequential order (see the module docs).
const PROV_BASE: u64 = 1 << 63;

/// Per-domain packet-id chunk size. Domain `d` allocates ids from
/// `base + d * PKT_ID_CHUNK`; 2^40 ids per domain per run keeps chunks
/// disjoint for any realistic run count and module count.
const PKT_ID_CHUNK: u64 = 1 << 40;

/// A domain partition installed on a [`Kernel`].
pub(crate) struct DomainPlan {
    /// Disjoint module sets covering every module in the kernel.
    pub domains: Vec<Vec<ModuleId>>,
    /// Minimum cross-domain message delay, in ticks (>= 1).
    pub lookahead: Tick,
    /// Worker threads to run rounds on.
    pub threads: usize,
}

/// One processed event in a domain's round log: enough to replay the
/// round's effects in the global merge order without re-running handlers.
#[derive(Copy, Clone)]
struct LogEntry {
    when: Tick,
    /// Sequence number the event was popped with — definitive
    /// (pre-round) or provisional (in-window cascade).
    seq: u64,
    /// Module the event was delivered to (order-probe diagnostics).
    dst: ModuleId,
    /// Number of [`SendRec`]s this event appended to the domain's flat
    /// send log.
    n_sends: u32,
}

/// One send committed during the parallel phase.
enum SendRec {
    /// Intra-domain send landing inside the window: already pushed into
    /// the domain queue with the next provisional number (and popped
    /// again before the round ended), so the merge only needs to assign
    /// its definitive sequence number.
    InWindow,
    /// Send deferred to the merge: crosses a domain boundary and/or
    /// lands beyond the window.
    Deferred { when: Tick, dst: ModuleId, msg: Msg },
}

/// A domain's private slice of the kernel during a parallel run.
struct Domain {
    queue: crate::EventQueue<Ev>,
    /// Sparse module table indexed by [`ModuleId::index`]; `Some` only
    /// for modules owned by this domain.
    modules: Vec<Option<Box<dyn Module>>>,
    log: Vec<LogEntry>,
    sends: Vec<SendRec>,
    out_buf: Vec<(Tick, ModuleId, Msg)>,
    next_pkt_id: u64,
    /// Provisional sequence numbers handed out this round.
    prov_ctr: u64,
}

/// State shared by all workers for one parallel run.
///
/// Synchronization protocol: `done` and `t_last` are written **only
/// during the merge phase**, while every worker is blocked at the
/// round-opening barrier — so after that barrier releases, all threads
/// read the same values and make the same continue-or-stop decision.
/// A handler panic during the run phase must *not* touch `done` (a
/// worker that has not yet made its round decision could observe the
/// new value, break early and leave the others stuck at a barrier);
/// it raises `abort` instead, which the next merge folds into `done`.
struct Shared {
    /// Inclusive end of the current round's window.
    t_last: AtomicU64,
    /// Set by the coordinator (merge phase only) when no events remain,
    /// the time bound is reached, the budget is exhausted, or a round
    /// aborted.
    done: AtomicBool,
    /// Raised from the run phase when a handler panics; consumed by the
    /// next merge.
    abort: AtomicBool,
    /// First panic payload raised by any handler, to re-raise after
    /// cleanup.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    barrier: Barrier,
}

/// Lock a domain, ignoring poisoning: a poisoned lock only means a
/// handler panicked, and the panic payload is re-raised after cleanup.
fn lock(m: &Mutex<Domain>) -> MutexGuard<'_, Domain> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Kernel {
    /// Install a domain partition for parallel execution.
    ///
    /// `domains` must cover every registered module exactly once, and
    /// any message between modules of *different* domains must be
    /// scheduled at least `lookahead` ticks in the future (checked at
    /// runtime on every cross-domain send). Runs use up to `threads`
    /// worker threads; with `threads <= 1`, a single-entry partition, or
    /// a tracer installed, [`Kernel::run`] keeps using the sequential
    /// loop. Registering a new module afterwards discards the partition.
    ///
    /// Observable results are byte-identical to the sequential kernel at
    /// any thread count (see the `domain` module docs for the argument).
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover every module exactly once
    /// or if `lookahead` is zero with more than one domain.
    pub fn set_partition(&mut self, domains: Vec<Vec<ModuleId>>, lookahead: Tick, threads: usize) {
        let mut seen = vec![false; self.modules.len()];
        for id in domains.iter().flatten() {
            assert!(
                id.index() < self.modules.len(),
                "partition names unknown module {id}"
            );
            assert!(
                !std::mem::replace(&mut seen[id.index()], true),
                "module {id} appears in two domains"
            );
        }
        assert!(
            seen.iter().all(|&s| s),
            "partition must cover every module ({} of {} covered)",
            seen.iter().filter(|&&s| s).count(),
            seen.len()
        );
        assert!(
            domains.len() <= 1 || lookahead >= 1,
            "multi-domain partition needs a nonzero lookahead"
        );
        self.plan = Some(DomainPlan {
            domains,
            lookahead,
            threads,
        });
    }

    /// The installed partition as `(domains, lookahead, threads)`, if
    /// any — for reporting (the perf harness records `domains` and
    /// `kernel_threads` in `BENCH_kernel.json`).
    pub fn partition(&self) -> Option<(usize, Tick, usize)> {
        self.plan
            .as_ref()
            .map(|p| (p.domains.len(), p.lookahead, p.threads))
    }

    /// Parallel counterpart of the sequential loop in [`Kernel::run`];
    /// dispatched to when a multi-domain plan with `threads > 1` is
    /// installed and no tracer is attached.
    pub(crate) fn run_parallel(&mut self, limit: RunLimit) -> Result<Tick, SimError> {
        self.out_buf.clear();
        let plan = self.plan.take().expect("run_parallel without a plan");
        let module_count = self.modules.len();
        let d_count = plan.domains.len();
        let threads = plan.threads.min(d_count).max(1);

        // Module -> domain index (coverage was validated at install).
        let mut mod_dom = vec![u32::MAX; module_count];
        for (d, members) in plan.domains.iter().enumerate() {
            for &m in members {
                mod_dom[m.index()] = d as u32;
            }
        }

        // Deal modules, pending events and packet-id chunks out to the
        // domains. `drain_all` rewinds the main queue so leftovers can
        // be pushed back at any tick afterwards.
        let pkt_id_base = self.next_pkt_id;
        let mut domains: Vec<Mutex<Domain>> = (0..d_count)
            .map(|d| {
                Mutex::new(Domain {
                    queue: crate::EventQueue::new(),
                    modules: (0..module_count).map(|_| None).collect(),
                    log: Vec::new(),
                    sends: Vec::new(),
                    out_buf: Vec::new(),
                    next_pkt_id: pkt_id_base + d as u64 * PKT_ID_CHUNK,
                    prov_ctr: 0,
                })
            })
            .collect();
        for (i, module) in self.modules.drain(..).enumerate() {
            domains[mod_dom[i] as usize].get_mut().unwrap().modules[i] = Some(module);
        }
        for (when, seq, (dst, msg)) in self.queue.drain_all() {
            let d = mod_dom[dst.index()] as usize;
            domains[d]
                .get_mut()
                .unwrap()
                .queue
                .push(when, seq, (dst, msg));
        }

        let shared = Shared {
            t_last: AtomicU64::new(0),
            done: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            panic: Mutex::new(None),
            barrier: Barrier::new(threads),
        };
        let budget_end = self.events_processed.saturating_add(limit.max_events);
        let mut budget_err = None;

        std::thread::scope(|scope| {
            for w in 1..threads {
                let shared = &shared;
                let domains = &domains;
                let mod_dom = &mod_dom;
                scope.spawn(move || loop {
                    shared.barrier.wait();
                    if shared.done.load(Ordering::Acquire) {
                        break;
                    }
                    let t_last = shared.t_last.load(Ordering::Acquire);
                    for d in (w..d_count).step_by(threads) {
                        run_round(d, &mut lock(&domains[d]), t_last, mod_dom, shared);
                    }
                    shared.barrier.wait();
                });
            }
            // Worker 0 doubles as the coordinator: it merges the
            // previous round and opens the next one while the other
            // workers wait at the first barrier.
            loop {
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.merge_and_open(&domains, &mod_dom, &plan, limit, budget_end, &shared)
                }));
                match res {
                    Ok(Some(err)) => {
                        budget_err = Some(err);
                    }
                    Ok(None) => {}
                    Err(payload) => {
                        let mut slot = shared.panic.lock().unwrap_or_else(|e| e.into_inner());
                        slot.get_or_insert(payload);
                        shared.done.store(true, Ordering::Release);
                    }
                }
                shared.barrier.wait();
                if shared.done.load(Ordering::Acquire) {
                    break;
                }
                let t_last = shared.t_last.load(Ordering::Acquire);
                for d in (0..d_count).step_by(threads) {
                    run_round(d, &mut lock(&domains[d]), t_last, &mod_dom, &shared);
                }
                shared.barrier.wait();
            }
        });

        // Collect the domains back into the kernel (also after a panic,
        // so stats and module state remain inspectable).
        let mut restored: Vec<Option<Box<dyn Module>>> = (0..module_count).map(|_| None).collect();
        for m in domains {
            let mut dom = m.into_inner().unwrap_or_else(|e| e.into_inner());
            for (i, slot) in dom.modules.drain(..).enumerate() {
                if slot.is_some() {
                    restored[i] = slot;
                }
            }
            for (when, seq, ev) in dom.queue.drain_all() {
                self.queue.push(when, seq, ev);
            }
            self.next_pkt_id = self.next_pkt_id.max(dom.next_pkt_id);
        }
        self.modules = restored
            .into_iter()
            .map(|slot| slot.expect("domain lost a module"))
            .collect();
        self.plan = Some(plan);

        if let Some(payload) = shared
            .panic
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            std::panic::resume_unwind(payload);
        }
        match budget_err {
            Some(err) => Err(err),
            None => Ok(self.time),
        }
    }

    /// Coordinator step between rounds: replay-merge the just-finished
    /// round (if any) in global `(tick, seq)` order, then open the next
    /// window or finish. Returns the budget error to report, if any.
    fn merge_and_open(
        &mut self,
        domains: &[Mutex<Domain>],
        mod_dom: &[u32],
        plan: &DomainPlan,
        limit: RunLimit,
        budget_end: u64,
        shared: &Shared,
    ) -> Option<SimError> {
        let mut doms: Vec<MutexGuard<'_, Domain>> = domains.iter().map(lock).collect();

        // --- Replay merge of the previous round's logs. ---
        let d_count = doms.len();
        let mut cursors = vec![0usize; d_count];
        let mut send_cursors = vec![0usize; d_count];
        // prov_maps[d][n] = definitive seq of domain d's n-th
        // provisional event; filled as producers are merged, and always
        // filled before the consumer entry is reached (its producer was
        // processed earlier in the same domain).
        let mut prov_maps: Vec<Vec<u64>> = vec![Vec::new(); d_count];
        loop {
            let mut best: Option<(Tick, u64, usize)> = None;
            for d in 0..d_count {
                if let Some(e) = doms[d].log.get(cursors[d]) {
                    let seq = if e.seq >= PROV_BASE {
                        prov_maps[d][(e.seq - PROV_BASE) as usize]
                    } else {
                        e.seq
                    };
                    if best.is_none_or(|(bw, bs, _)| (e.when, seq) < (bw, bs)) {
                        best = Some((e.when, seq, d));
                    }
                }
            }
            let Some((when, seq, d)) = best else { break };
            let entry = doms[d].log[cursors[d]];
            cursors[d] += 1;
            if let Some(probe) = self.order_probe.as_mut() {
                probe.push((when, seq, entry.dst.index() as u32));
            }
            debug_assert!(when >= self.time, "merge order went backwards");
            self.time = when;
            self.events_processed += 1;
            self.virt_len -= 1;
            for _ in 0..entry.n_sends {
                let rec = std::mem::replace(&mut doms[d].sends[send_cursors[d]], SendRec::InWindow);
                send_cursors[d] += 1;
                match rec {
                    SendRec::InWindow => {
                        prov_maps[d].push(self.seq);
                        self.seq += 1;
                    }
                    SendRec::Deferred { when, dst, msg } => {
                        let dd = mod_dom[dst.index()] as usize;
                        doms[dd].queue.push(when, self.seq, (dst, msg));
                        self.seq += 1;
                    }
                }
                self.virt_len += 1;
                self.virt_peak = self.virt_peak.max(self.virt_len);
            }
        }
        for dom in doms.iter_mut() {
            // In-window cascades were pushed *and* popped within the
            // round, so the merge's +1 above is matched by the -1 when
            // their own log entries replayed.
            dom.log.clear();
            dom.sends.clear();
            dom.prov_ctr = 0;
        }

        // --- Open the next round. ---
        if shared.abort.load(Ordering::Acquire) {
            // A handler panicked last round. The completed events were
            // merged above (keeping stats consistent); stop here rather
            // than opening another window. This is the only place the
            // abort becomes `done` — all workers are parked at the
            // round-opening barrier, so the transition is race-free.
            shared.done.store(true, Ordering::Release);
            return None;
        }
        let t_min = doms
            .iter_mut()
            .filter_map(|dom| dom.queue.peek_when())
            .min();
        match t_min {
            None => shared.done.store(true, Ordering::Release),
            Some(t) if t > limit.max_time => shared.done.store(true, Ordering::Release),
            Some(t_min) => {
                if self.events_processed >= budget_end {
                    shared.done.store(true, Ordering::Release);
                    return Some(SimError::EventLimitExceeded {
                        limit: limit.max_events,
                        at: self.time,
                    });
                }
                // Inclusive window end: every event in
                // [t_min, t_min + lookahead) is safe, and the window
                // never reaches past max_time.
                let t_last = t_min.saturating_add(plan.lookahead - 1).min(limit.max_time);
                shared.t_last.store(t_last, Ordering::Release);
            }
        }
        None
    }
}

/// Parallel phase for one domain: drain every event inside the window,
/// logging effects for the merge.
fn run_round(d_idx: usize, dom: &mut Domain, t_last: Tick, mod_dom: &[u32], shared: &Shared) {
    let work = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dom.out_buf.clear();
        while let Some(when) = dom.queue.peek_when() {
            if when > t_last {
                break;
            }
            let (when, seq, (dst, msg)) = dom.queue.pop().expect("peeked event vanished");
            let module = dom.modules[dst.index()]
                .as_mut()
                .expect("event routed to module outside its domain");
            let mut ctx = Ctx::internal(when, dst, &mut dom.out_buf, &mut dom.next_pkt_id);
            module.handle(msg, &mut ctx);
            let sends_before = dom.sends.len();
            for (when_s, dst_s, msg_s) in dom.out_buf.drain(..) {
                assert!(
                    dst_s.index() < mod_dom.len(),
                    "message sent to unknown module {dst_s}"
                );
                let dd = mod_dom[dst_s.index()] as usize;
                if dd == d_idx && when_s <= t_last {
                    // In-window cascade: joins this round immediately
                    // under a provisional number.
                    dom.queue
                        .push(when_s, PROV_BASE + dom.prov_ctr, (dst_s, msg_s));
                    dom.prov_ctr += 1;
                    dom.sends.push(SendRec::InWindow);
                } else {
                    assert!(
                        dd == d_idx || when_s > t_last,
                        "lookahead violation: {dst} -> {dst_s} scheduled {} ticks ahead, \
                         inside the {}-tick synchronization window",
                        when_s - when,
                        t_last - when + 1,
                    );
                    dom.sends.push(SendRec::Deferred {
                        when: when_s,
                        dst: dst_s,
                        msg: msg_s,
                    });
                }
            }
            dom.log.push(LogEntry {
                when,
                seq,
                dst,
                n_sends: (dom.sends.len() - sends_before) as u32,
            });
        }
    }));
    if let Err(payload) = work {
        let mut slot = shared.panic.lock().unwrap_or_else(|e| e.into_inner());
        slot.get_or_insert(payload);
        // Raise `abort`, NOT `done`: the round's continue-or-stop
        // decision was already made by every thread, and flipping `done`
        // mid-round would let a thread that has not yet *read* it break
        // one barrier early (see the `Shared` docs). The next merge
        // turns `abort` into `done` while all workers are parked.
        shared.abort.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units;

    /// Deterministic ping-pong module: records every delivery, forwards
    /// a decremented tag to an intra-domain peer at a pseudo-random
    /// small delay and (every third tag) to a cross-domain peer at
    /// `cross_delay` plus jitter.
    struct Pinger {
        name: String,
        intra: ModuleId,
        cross: ModuleId,
        cross_delay: Tick,
        log: Vec<(Tick, u64)>,
        lcg: u64,
    }

    impl Pinger {
        fn step(&mut self) -> u64 {
            self.lcg = self
                .lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.lcg >> 33
        }
    }

    impl Module for Pinger {
        fn name(&self) -> &str {
            &self.name
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            let Msg::Timer(tag) = msg else {
                panic!("unexpected message");
            };
            self.log.push((ctx.now(), tag));
            if tag == 0 {
                return;
            }
            let jitter = self.step();
            if self.intra.is_valid() {
                // Mix of zero-delay and short delays: exercises both
                // in-window cascades and deferred intra-domain sends.
                ctx.send(self.intra, jitter % 1_500, Msg::Timer(tag - 1));
            }
            if self.cross.is_valid() && tag % 3 == 0 {
                ctx.send(
                    self.cross,
                    self.cross_delay + jitter % 700,
                    Msg::Timer(tag - 1),
                );
            }
        }
        fn report(&self, out: &mut crate::Stats) {
            out.add("deliveries", self.log.len() as f64);
            out.add("last_tick", self.log.last().map_or(0, |&(t, _)| t) as f64);
        }
    }

    const LOOKAHEAD: Tick = 1_000;

    /// Two domains of two modules each, ping-ponging within and across.
    fn build_mesh() -> (Kernel, Vec<ModuleId>, Vec<Vec<ModuleId>>) {
        let mut k = Kernel::new();
        let mut ids = Vec::new();
        for d in 0..2 {
            for i in 0..2 {
                ids.push(k.add_module(Box::new(Pinger {
                    name: format!("p{d}_{i}"),
                    intra: ModuleId::INVALID,
                    cross: ModuleId::INVALID,
                    cross_delay: LOOKAHEAD,
                    log: Vec::new(),
                    lcg: 1 + d as u64 * 2 + i as u64,
                })));
            }
        }
        // Wire: intra ring within each pair, cross to the same slot of
        // the other domain.
        let wire = [(0usize, 1, 2), (1, 0, 3), (2, 3, 0), (3, 2, 1)];
        for &(me, intra, cross) in &wire {
            let m = k.module_mut::<Pinger>(ids[me]).unwrap();
            m.intra = ids[intra];
            m.cross = ids[cross];
        }
        let domains = vec![vec![ids[0], ids[1]], vec![ids[2], ids[3]]];
        (k, ids, domains)
    }

    fn kickoff(k: &mut Kernel, ids: &[ModuleId]) {
        k.schedule(0, ids[0], Msg::Timer(40));
        k.schedule(units::ns(0.5), ids[2], Msg::Timer(37));
        k.schedule(0, ids[3], Msg::Timer(25));
    }

    fn logs(k: &Kernel, ids: &[ModuleId]) -> Vec<Vec<(Tick, u64)>> {
        ids.iter()
            .map(|&id| k.module::<Pinger>(id).unwrap().log.clone())
            .collect()
    }

    #[test]
    fn parallel_run_matches_sequential_byte_for_byte() {
        let (mut seq_k, ids, _) = build_mesh();
        kickoff(&mut seq_k, &ids);
        let seq_end = seq_k.run_until_idle().unwrap();

        for threads in [2, 4] {
            let (mut par_k, ids, domains) = build_mesh();
            par_k.set_partition(domains, LOOKAHEAD, threads);
            kickoff(&mut par_k, &ids);
            let par_end = par_k.run_until_idle().unwrap();

            assert_eq!(par_end, seq_end, "final tick at {threads} threads");
            assert_eq!(par_k.now(), seq_k.now());
            assert_eq!(par_k.events_processed(), seq_k.events_processed());
            assert_eq!(par_k.peak_queue_depth(), seq_k.peak_queue_depth());
            assert_eq!(logs(&par_k, &ids), logs(&seq_k, &ids));
            assert_eq!(
                format!("{}", par_k.stats()),
                format!("{}", seq_k.stats()),
                "stats diverge at {threads} threads"
            );
        }
    }

    #[test]
    fn parallel_run_resumes_across_max_time_slices() {
        let (mut seq_k, ids, _) = build_mesh();
        kickoff(&mut seq_k, &ids);
        seq_k.run_until_idle().unwrap();

        let (mut par_k, ids, domains) = build_mesh();
        par_k.set_partition(domains, LOOKAHEAD, 2);
        kickoff(&mut par_k, &ids);
        // Chop the run into max_time slices; every slice boundary must
        // leave a consistent, resumable kernel.
        let mut bound = units::ns(2.0);
        loop {
            par_k
                .run(RunLimit {
                    max_events: u64::MAX,
                    max_time: bound,
                })
                .unwrap();
            if par_k.queue.is_empty() {
                break;
            }
            bound += units::ns(2.0);
        }
        assert_eq!(par_k.events_processed(), seq_k.events_processed());
        assert_eq!(logs(&par_k, &ids), logs(&seq_k, &ids));
    }

    #[test]
    fn parallel_budget_exhaustion_reports_livelock() {
        let (mut k, ids, domains) = build_mesh();
        k.set_partition(domains, LOOKAHEAD, 2);
        kickoff(&mut k, &ids);
        let err = k
            .run(RunLimit {
                max_events: 10,
                max_time: Tick::MAX,
            })
            .unwrap_err();
        assert!(matches!(
            err,
            SimError::EventLimitExceeded { limit: 10, .. }
        ));
    }

    #[test]
    fn lookahead_violation_is_detected() {
        let (mut k, ids, domains) = build_mesh();
        // Claim a lookahead larger than the actual cross delay: the
        // very first cross-domain send lands inside the window.
        k.set_partition(domains, LOOKAHEAD * 4, 2);
        k.schedule(0, ids[0], Msg::Timer(3)); // tag 3 sends cross
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| k.run_until_idle()));
        let payload = res.expect_err("expected a lookahead violation panic");
        let text = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            text.contains("lookahead violation"),
            "unexpected panic: {text}"
        );
    }

    #[test]
    fn partition_is_dropped_when_a_module_is_added() {
        let (mut k, _, domains) = build_mesh();
        k.set_partition(domains, LOOKAHEAD, 4);
        assert_eq!(k.partition(), Some((2, LOOKAHEAD, 4)));
        k.add_placeholder();
        assert_eq!(k.partition(), None);
    }

    #[test]
    #[should_panic(expected = "partition must cover every module")]
    fn partition_must_cover_every_module() {
        let (mut k, ids, _) = build_mesh();
        k.set_partition(vec![vec![ids[0], ids[1]]], LOOKAHEAD, 2);
    }

    #[test]
    #[should_panic(expected = "appears in two domains")]
    fn partition_rejects_overlapping_domains() {
        let (mut k, ids, _) = build_mesh();
        k.set_partition(
            vec![vec![ids[0], ids[1], ids[2]], vec![ids[2], ids[3]]],
            LOOKAHEAD,
            2,
        );
    }
}
