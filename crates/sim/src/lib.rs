//! # accesys-sim
//!
//! Discrete-event simulation kernel underpinning the Gem5-AcceSys
//! reproduction. It plays the role gem5's event engine and port system play
//! in the original framework:
//!
//! * time is counted in [`Tick`]s of one picosecond,
//! * hardware blocks implement [`Module`] and communicate exclusively by
//!   exchanging [`Msg`] values through the [`Kernel`],
//! * memory and PCIe traffic travels as [`Packet`]s carrying a bounded
//!   route stack so responses retrace the request path,
//! * every module contributes counters to a [`Stats`] report.
//!
//! ```
//! use accesys_sim::{Kernel, Module, Msg, Ctx, units};
//!
//! struct Echo { heard: u64 }
//! impl Module for Echo {
//!     fn name(&self) -> &str { "echo" }
//!     fn handle(&mut self, msg: Msg, _ctx: &mut Ctx) {
//!         if let Msg::Timer(_) = msg { self.heard += 1; }
//!     }
//! }
//!
//! let mut kernel = Kernel::new();
//! let id = kernel.add_module(Box::new(Echo { heard: 0 }));
//! kernel.schedule(units::ns(5.0), id, Msg::Timer(0));
//! kernel.run_until_idle().unwrap();
//! assert_eq!(kernel.module::<Echo>(id).unwrap().heard, 1);
//! ```
#![warn(missing_docs)]

mod domain;
pub mod fxmap;
mod hist;
mod kernel;
mod msg;
mod packet;
mod pool;
pub mod sched;
mod stats;
mod trace;
pub mod units;

/// Well-known packet stream identifiers shared across subsystems.
///
/// The coherence point classifies traffic as CPU-side (`< IO_BASE`) or
/// I/O-side (`>= IO_BASE`); DMA channels are numbered from
/// [`streams::DMA_BASE`].
pub mod streams {
    /// CPU data traffic.
    pub const CPU: u16 = 0;
    /// CPU MMIO/doorbell traffic.
    pub const MMIO: u16 = 1;
    /// First I/O-side stream id (coherence classification boundary).
    pub const IO_BASE: u16 = 16;
    /// DMA channel `c` uses stream `DMA_BASE + c`.
    pub const DMA_BASE: u16 = 16;
    /// Page-table-walker traffic issued by the SMMU.
    pub const PTW: u16 = 0xFFFE;
    /// Cache writeback traffic.
    pub const WRITEBACK: u16 = 0xFFFF;
}

pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hist::Histogram;
pub use kernel::{Ctx, Kernel, RunLimit, SimError};
pub use msg::{CreditClass, Msg};
pub use packet::{MemCmd, Packet, RouteStack, MAX_ROUTE_DEPTH};
pub use pool::{PacketBox, PacketPool, PoolStats};
pub use sched::{BaselineQueue, EventQueue};
pub use stats::Stats;
pub use trace::{PacketTrace, TraceRow, Tracer};

/// Simulation time in picoseconds.
///
/// One tick is one picosecond, matching gem5's default resolution, so a
/// 1 GHz clock has a period of 1000 ticks (see [`units`]).
pub type Tick = u64;

/// Identifies a [`Module`] registered with a [`Kernel`].
///
/// Module ids are handed out by [`Kernel::add_module`] and are only
/// meaningful for the kernel that created them.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ModuleId(u32);

impl ModuleId {
    /// A sentinel id used before wiring is complete.
    ///
    /// Sending to an invalid id panics inside [`Kernel::run_until_idle`],
    /// which surfaces wiring bugs early.
    pub const INVALID: ModuleId = ModuleId(u32::MAX);

    /// Raw index of the module inside its kernel.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> Self {
        ModuleId(i as u32)
    }

    /// Whether this id is the [`ModuleId::INVALID`] sentinel.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl std::fmt::Display for ModuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Object-safe downcast support for [`Module`] trait objects.
///
/// Blanket-implemented for every `'static` type; modules get it for free.
pub trait AsAny {
    /// View as [`std::any::Any`] for downcasting.
    fn as_any(&self) -> &dyn std::any::Any;
    /// Mutable view as [`std::any::Any`] for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

impl<T: 'static> AsAny for T {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A simulated hardware block.
///
/// Modules own their state, never hold references to each other, and react
/// to [`Msg`]s delivered by the [`Kernel`]. Outgoing messages are scheduled
/// through the [`Ctx`] passed to [`Module::handle`].
///
/// Modules must be [`Send`]: the parallel domain engine (see
/// [`Kernel::set_partition`]) moves each domain's modules onto a worker
/// thread for the duration of a run.
pub trait Module: AsAny + Send + 'static {
    /// Short instance name used to prefix statistics (e.g. `"pcie.rc"`).
    fn name(&self) -> &str;

    /// React to a message delivered at `ctx.now()`.
    fn handle(&mut self, msg: Msg, ctx: &mut Ctx);

    /// Append this module's counters to `out` (keys are unprefixed; the
    /// kernel prepends `"<name>."`).
    fn report(&self, out: &mut Stats) {
        let _ = out;
    }
}
