//! Deterministic fast hashing for module-internal lookup tables.
//!
//! Module hot paths (cache MSHRs, SMMU TLBs, DMA tag tables) key small
//! maps by addresses, packet ids and tags. `std`'s default SipHash is
//! DoS-resistant but costs tens of nanoseconds per operation — real
//! money when the whole simulator budget is ~100 ns/event. [`FxHasher`]
//! is the classic Firefox/rustc multiply-xor hash: a few cycles per
//! word, plenty of mixing for pointer-/address-shaped keys, and — unlike
//! `RandomState` — *deterministic across processes*, which removes a
//! whole class of accidental iteration-order nondeterminism from the
//! byte-identical reproducibility contract (modules still must not let
//! iteration order leak into behaviour; determinism CI enforces that).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-fx multiply-xor hasher (64-bit variant).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// `pi * 2^64 / phi`, the mixing constant used by rustc's FxHasher.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`] (zero-sized, no seed).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_work_and_hashes_are_stable() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k * 64, k as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(5 * 64)), Some(&5));
        // Deterministic across hasher instances (no per-process seed).
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(0xdead_beef), h(0xdead_beef));
        assert_ne!(h(1), h(2));
    }

    #[test]
    fn byte_writes_match_chunked_words() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());
    }
}
