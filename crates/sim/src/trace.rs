//! Kernel-level event tracing — the reproduction of gem5's trace flags.
//!
//! A [`Tracer`] installed with [`crate::Kernel::set_tracer`] observes every
//! event the kernel delivers, before the receiving module handles it.
//! [`PacketTrace`] is the batteries-included implementation: it records
//! packet deliveries as flat rows (optionally filtered by module name) and
//! renders them as CSV for offline analysis.

use crate::{units, MemCmd, ModuleId, Msg, Tick};

/// Observer of every event the kernel delivers.
///
/// Implementations must be cheap: the hook sits on the hot path. Tracers
/// see the message *before* the module handles it, so recorded times are
/// delivery times.
pub trait Tracer: crate::AsAny + 'static {
    /// One event is about to be delivered to `dst` (named `dst_name`).
    fn on_event(&mut self, when: Tick, dst: ModuleId, dst_name: &str, msg: &Msg);
}

/// One recorded packet delivery.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRow {
    /// Delivery time in nanoseconds.
    pub time_ns: f64,
    /// Receiving module's instance name.
    pub module: String,
    /// Packet command.
    pub cmd: MemCmd,
    /// Target address.
    pub addr: u64,
    /// Transfer size in bytes.
    pub size: u32,
    /// Traffic stream (DMA channel, CPU, PTW, ...).
    pub stream: u16,
    /// Packet id.
    pub pkt_id: u64,
}

/// A bounded in-memory packet trace.
///
/// Records up to `capacity` packet deliveries, optionally restricted to
/// modules whose name contains one of the configured filters. Timer,
/// credit and custom messages are never recorded — for those, write a
/// custom [`Tracer`].
///
/// ```
/// use accesys_sim::{Kernel, MemCmd, Msg, Packet, PacketTrace};
/// # use accesys_sim::{Ctx, Module};
/// # struct Sink;
/// # impl Module for Sink {
/// #     fn name(&self) -> &str { "mem0" }
/// #     fn handle(&mut self, _msg: Msg, _ctx: &mut Ctx) {}
/// # }
///
/// let mut kernel = Kernel::new();
/// let sink = kernel.add_module(Box::new(Sink));
/// kernel.set_tracer(Box::new(PacketTrace::new(1024).with_filter("mem")));
/// kernel.schedule(0, sink, Msg::packet(Packet::request(0, MemCmd::ReadReq, 0x80, 64, 0)));
/// kernel.run_until_idle().unwrap();
/// let trace = kernel.tracer::<PacketTrace>().unwrap();
/// assert_eq!(trace.rows().len(), 1);
/// assert!(trace.to_csv().contains("mem0"));
/// ```
#[derive(Debug, Default)]
pub struct PacketTrace {
    rows: Vec<TraceRow>,
    capacity: usize,
    filters: Vec<String>,
    dropped: u64,
}

impl PacketTrace {
    /// A trace that keeps at most `capacity` rows (older rows win; later
    /// deliveries are counted as dropped).
    pub fn new(capacity: usize) -> Self {
        PacketTrace {
            rows: Vec::new(),
            capacity,
            filters: Vec::new(),
            dropped: 0,
        }
    }

    /// Only record deliveries to modules whose name contains `needle`.
    /// Repeated calls OR the filters together.
    pub fn with_filter(mut self, needle: &str) -> Self {
        self.filters.push(needle.to_string());
        self
    }

    /// Recorded rows, in delivery order.
    pub fn rows(&self) -> &[TraceRow] {
        &self.rows
    }

    /// Deliveries that matched the filter but exceeded capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,module,cmd,addr,size,stream,pkt_id\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:.3},{},{:?},{:#x},{},{},{}\n",
                r.time_ns, r.module, r.cmd, r.addr, r.size, r.stream, r.pkt_id
            ));
        }
        out
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }
}

impl Tracer for PacketTrace {
    fn on_event(&mut self, when: Tick, _dst: ModuleId, dst_name: &str, msg: &Msg) {
        let pkt = match msg {
            Msg::Packet(p) => p,
            _ => return,
        };
        if !self.matches(dst_name) {
            return;
        }
        if self.rows.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.rows.push(TraceRow {
            time_ns: units::to_ns(when),
            module: dst_name.to_string(),
            cmd: pkt.cmd,
            addr: pkt.addr,
            size: pkt.size,
            stream: pkt.stream,
            pkt_id: pkt.id,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, Kernel, Module, Packet};

    struct Fwd {
        name: &'static str,
        next: Option<ModuleId>,
    }
    impl Module for Fwd {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let (Msg::Packet(p), Some(next)) = (msg, self.next) {
                ctx.send(next, units::ns(5.0), Msg::Packet(p));
            }
        }
    }

    fn two_hop_kernel() -> (Kernel, ModuleId) {
        let mut k = Kernel::new();
        let sink = k.add_module(Box::new(Fwd {
            name: "mem.sink",
            next: None,
        }));
        let front = k.add_module(Box::new(Fwd {
            name: "bus.front",
            next: Some(sink),
        }));
        (k, front)
    }

    #[test]
    fn records_every_packet_hop_in_order() {
        let (mut k, front) = two_hop_kernel();
        k.set_tracer(Box::new(PacketTrace::new(16)));
        let p = Packet::request(7, MemCmd::WriteReq, 0x1000, 128, 0);
        k.schedule(units::ns(1.0), front, Msg::packet(p));
        k.run_until_idle().unwrap();
        let rows = k.tracer::<PacketTrace>().unwrap().rows().to_vec();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].module, "bus.front");
        assert_eq!(rows[1].module, "mem.sink");
        assert!(rows[1].time_ns > rows[0].time_ns);
        assert_eq!(rows[0].pkt_id, 7);
        assert_eq!(rows[0].size, 128);
    }

    #[test]
    fn filters_restrict_to_matching_modules() {
        let (mut k, front) = two_hop_kernel();
        k.set_tracer(Box::new(PacketTrace::new(16).with_filter("mem")));
        let p = Packet::request(0, MemCmd::ReadReq, 0x40, 64, 0);
        k.schedule(0, front, Msg::packet(p));
        k.run_until_idle().unwrap();
        let trace = k.tracer::<PacketTrace>().unwrap();
        assert_eq!(trace.rows().len(), 1);
        assert_eq!(trace.rows()[0].module, "mem.sink");
    }

    #[test]
    fn capacity_drops_excess_rows() {
        let (mut k, front) = two_hop_kernel();
        k.set_tracer(Box::new(PacketTrace::new(1)));
        let p = Packet::request(0, MemCmd::ReadReq, 0x40, 64, 0);
        k.schedule(0, front, Msg::packet(p));
        k.run_until_idle().unwrap();
        let trace = k.tracer::<PacketTrace>().unwrap();
        assert_eq!(trace.rows().len(), 1);
        assert_eq!(trace.dropped(), 1);
    }

    #[test]
    fn timers_are_not_recorded() {
        let (mut k, front) = two_hop_kernel();
        k.set_tracer(Box::new(PacketTrace::new(16)));
        k.schedule(0, front, Msg::Timer(0));
        k.run_until_idle().unwrap();
        assert!(k.tracer::<PacketTrace>().unwrap().rows().is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (mut k, front) = two_hop_kernel();
        k.set_tracer(Box::new(PacketTrace::new(16)));
        let p = Packet::request(3, MemCmd::ReadReq, 0xABC0, 64, 0);
        k.schedule(0, front, Msg::packet(p));
        k.run_until_idle().unwrap();
        let csv = k.tracer::<PacketTrace>().unwrap().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ns,module,cmd,addr,size,stream,pkt_id");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("0xabc0"));
    }
}
