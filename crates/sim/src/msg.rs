//! Messages exchanged between modules.

use crate::{Packet, PacketBox, PacketPool};
use std::any::Any;

/// PCIe flow-control credit class.
///
/// Matches the three PCIe virtual-channel credit pools; modules that do not
/// model PCIe can ignore the distinction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CreditClass {
    /// Posted requests (memory writes).
    Posted,
    /// Non-posted requests (memory reads).
    NonPosted,
    /// Completions.
    Completion,
}

impl CreditClass {
    /// Index into per-class arrays.
    pub fn index(self) -> usize {
        match self {
            CreditClass::Posted => 0,
            CreditClass::NonPosted => 1,
            CreditClass::Completion => 2,
        }
    }

    /// All classes, in [`CreditClass::index`] order.
    pub const ALL: [CreditClass; 3] = [
        CreditClass::Posted,
        CreditClass::NonPosted,
        CreditClass::Completion,
    ];
}

/// A message delivered to a [`crate::Module`].
///
/// `Msg` values are the payload of every event-queue node, so the enum is
/// deliberately kept small (currently 24 bytes): the large [`Packet`]
/// body lives behind a pooled box ([`PacketBox`]), which keeps queue
/// operations from memcpying ~100-byte packets on every sift. Forwarding
/// modules move the box through unchanged, so a packet is allocated once
/// per lifetime at most — and [`Msg::packet`] recycles storage through
/// the [`PacketPool`], so steady state allocates nothing at all.
#[derive(Debug)]
pub enum Msg {
    /// A memory transaction or PCIe TLP (the hot path). Boxed so event
    /// nodes stay small; see [`Msg::packet`].
    Packet(PacketBox),
    /// Flow-control credit return for `bytes` of buffer space.
    Credit {
        /// Credit pool being replenished.
        class: CreditClass,
        /// Bytes returned to the pool.
        bytes: u32,
    },
    /// Self-scheduled wakeup carrying an opaque tag.
    Timer(u64),
    /// Control-plane message (DMA descriptors, job doorbells, interrupts).
    ///
    /// Rare by construction, so the allocation does not affect the hot
    /// path. Receivers downcast to the concrete type they expect.
    Custom(Box<dyn Any + Send>),
}

// Compile-time regression guard: event-queue nodes carry `Msg` inline,
// so any growth here multiplies across every queue operation. PR 3 got
// this from 104 to 24 bytes; keep it there.
const _: () = assert!(std::mem::size_of::<Msg>() <= 24, "Msg grew past 24 bytes");

impl Msg {
    /// Wrap a packet (boxing it through the [`PacketPool`]; see the
    /// enum-level note on node size).
    pub fn packet(pkt: Packet) -> Self {
        Msg::Packet(PacketPool::alloc(pkt))
    }

    /// Wrap a control-plane value.
    pub fn custom<T: Any + Send>(value: T) -> Self {
        Msg::Custom(Box::new(value))
    }

    /// Downcast a [`Msg::Custom`] payload, consuming the message.
    ///
    /// Returns `Err(self)` unchanged when the message is not `Custom` or
    /// holds a different type, so callers can keep dispatching.
    pub fn into_custom<T: Any + Send>(self) -> Result<T, Msg> {
        match self {
            Msg::Custom(b) => match b.downcast::<T>() {
                Ok(v) => Ok(*v),
                Err(b) => Err(Msg::Custom(b)),
            },
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Doorbell(u32);

    #[test]
    fn custom_roundtrip() {
        let msg = Msg::custom(Doorbell(7));
        match msg.into_custom::<Doorbell>() {
            Ok(d) => assert_eq!(d, Doorbell(7)),
            Err(_) => panic!("downcast failed"),
        }
    }

    #[test]
    fn custom_wrong_type_returns_message() {
        let msg = Msg::custom(Doorbell(7));
        let back = msg.into_custom::<String>().unwrap_err();
        assert!(back.into_custom::<Doorbell>().is_ok());
    }

    #[test]
    fn msg_nodes_stay_small() {
        // The whole point of boxing Packet: event-queue nodes must not
        // regress back to carrying packet bodies inline.
        assert!(
            std::mem::size_of::<Msg>() <= 24,
            "Msg grew to {} bytes",
            std::mem::size_of::<Msg>()
        );
    }

    #[test]
    fn credit_class_indices_are_distinct() {
        let mut seen = [false; 3];
        for c in CreditClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }
}
