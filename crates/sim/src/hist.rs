//! Log-bucketed latency histograms for per-module distribution stats.

/// A power-of-two-bucketed histogram of non-negative samples.
///
/// Buckets cover `[2^i, 2^(i+1))`; bucket 0 additionally holds samples in
/// `[0, 1)`, and the top bucket (63) is unbounded above, absorbing every
/// sample ≥ 2^63. Designed for latency distributions where the interesting
/// questions are "what is the p99?" and "how long is the tail?", not the
/// exact shape. Observation is O(1) and the footprint is fixed, so every
/// module can afford one per traffic class.
///
/// ```
/// use accesys_sim::Histogram;
///
/// let mut h = Histogram::new();
/// for ns in [10.0, 12.0, 11.0, 900.0] {
///     h.observe(ns);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.mean() > 200.0);
/// // Three of four samples land at or below 16, so p50 is in that bucket.
/// assert!(h.percentile(50.0) <= 16.0);
/// assert!(h.percentile(100.0) >= 512.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    buckets: [u64; Self::NUM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Number of buckets. Bucket `i` covers `[2^i, 2^(i+1))` except at
    /// the edges: bucket 0 also holds `[0, 1)`, and the top bucket (63)
    /// is unbounded — it absorbs everything ≥ 2^63.
    const NUM_BUCKETS: usize = 64;

    /// Index of the unbounded top bucket.
    const TOP_BUCKET: usize = Self::NUM_BUCKETS - 1;

    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; Self::NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(value: f64) -> usize {
        if value < 1.0 {
            return 0;
        }
        let exp = value.log2().floor() as usize;
        // Values ≥ 2^63 clamp into the unbounded top bucket.
        exp.min(Self::TOP_BUCKET)
    }

    /// Record one sample. Negative samples are clamped to zero.
    pub fn observe(&mut self, value: f64) {
        let v = value.max(0.0);
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Upper bound of the bucket containing the `p`-th percentile
    /// (0 < p ≤ 100), or 0 when empty.
    ///
    /// The result is an upper bound, not an interpolation: a return of 16
    /// means "the p-th sample was < 16". Bucket resolution is a factor of
    /// two, which is plenty for latency triage. The top bucket has no
    /// finite bucket boundary (it absorbs everything ≥ 2^63), so a rank
    /// landing there reports the exact observed maximum instead.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == Self::TOP_BUCKET {
                    // Unbounded bucket: 2^64 would be a lie and 2^63 is
                    // its *lower* bound; the true max is a real bound.
                    self.max
                } else {
                    (1u64 << (i + 1)) as f64
                };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Append `mean/min/max/p50/p99` under `prefix` to a stats report.
    pub fn report_into(&self, out: &mut crate::Stats, prefix: &str) {
        if self.count == 0 {
            return;
        }
        out.set(&format!("{prefix}_mean"), self.mean());
        out.set(&format!("{prefix}_min"), self.min());
        out.set(&format!("{prefix}_max"), self.max());
        out.set(&format!("{prefix}_p50"), self.percentile(50.0));
        out.set(&format!("{prefix}_p99"), self.percentile(99.0));
        out.set(&format!("{prefix}_count"), self.count as f64);
    }

    /// Non-empty buckets as `(bucket index, count)` — the raw transport
    /// form for shipping a histogram across a process boundary; invert
    /// with [`Histogram::from_raw`]. Unlike [`Histogram::iter`] the
    /// index is exact (no float lower bound), so the round trip loses
    /// nothing.
    pub fn raw_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect()
    }

    /// Rebuild a histogram from [`Histogram::raw_buckets`] output plus
    /// the exact `sum`/`min`/`max` (the count is implied: every sample
    /// lands in exactly one bucket). Out-of-range indexes clamp into
    /// the unbounded top bucket; an empty bucket list yields
    /// [`Histogram::new`] regardless of the scalar arguments, so the
    /// empty case round-trips without shipping infinities.
    pub fn from_raw(buckets: &[(u32, u64)], sum: f64, min: f64, max: f64) -> Histogram {
        let mut h = Histogram::new();
        for &(i, n) in buckets {
            h.buckets[(i as usize).min(Self::TOP_BUCKET)] += n;
            h.count += n;
        }
        if h.count > 0 {
            h.sum = sum;
            h.min = min;
            h.max = max;
        }
        h
    }

    /// Iterate over non-empty buckets as `(lower_bound, count)`.
    ///
    /// Lower bounds are exact for every bucket, including the top one
    /// (2^63) — but note the top bucket is unbounded above, so its count
    /// covers `[2^63, ∞)` rather than a power-of-two span.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                (lo, n)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.mean(), 2.5);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
        assert_eq!(h.sum(), 10.0);
    }

    #[test]
    fn percentile_is_an_upper_bound() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(10.0); // bucket [8,16)
        }
        h.observe(1000.0); // bucket [512,1024)
        assert_eq!(h.percentile(50.0), 16.0);
        assert_eq!(h.percentile(99.0), 16.0);
        assert_eq!(h.percentile(100.0), 1024.0);
    }

    #[test]
    fn negative_samples_clamp_to_zero() {
        let mut h = Histogram::new();
        h.observe(-5.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn sub_unit_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.observe(0.25);
        h.observe(0.75);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(0.0, 2)]);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.observe(4.0);
        let mut b = Histogram::new();
        b.observe(100.0);
        b.observe(1.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 100.0);
    }

    #[test]
    fn report_into_emits_summary_keys() {
        let mut h = Histogram::new();
        h.observe(8.0);
        let mut s = crate::Stats::new();
        h.report_into(&mut s, "lat_ns");
        assert_eq!(s.get("lat_ns_count"), Some(1.0));
        assert_eq!(s.get("lat_ns_mean"), Some(8.0));
        assert!(s.get("lat_ns_p99").is_some());
    }

    #[test]
    fn huge_samples_saturate_the_top_bucket() {
        let mut h = Histogram::new();
        h.observe(f64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.percentile(100.0) > 0.0);
    }

    #[test]
    fn raw_round_trip_is_exact() {
        let mut h = Histogram::new();
        for v in [0.25, 3.0, 10.0, 10.0, 1e18, f64::MAX] {
            h.observe(v);
        }
        let back = Histogram::from_raw(&h.raw_buckets(), h.sum(), h.min(), h.max());
        assert_eq!(back, h);

        // Empty histograms round-trip through the zeroed accessors
        // (min()/max() report 0 when empty) without picking up fake
        // extremes.
        let empty = Histogram::new();
        let back = Histogram::from_raw(&empty.raw_buckets(), empty.sum(), empty.min(), empty.max());
        assert_eq!(back, empty);
    }

    #[test]
    fn from_raw_clamps_wild_indexes_into_the_top_bucket() {
        let h = Histogram::from_raw(&[(901, 2)], 4.0e19, 2.0e19, 2.0e19);
        assert_eq!(h.count(), 2);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![((1u64 << 63) as f64, 2)]);
    }

    #[test]
    fn top_bucket_agrees_across_bucket_of_percentile_and_iter() {
        // Regression: samples ≥ 2^63 land in the unbounded top bucket;
        // percentile must not report the bucket's lower bound (2^63) as
        // an upper bound for them.
        let two63 = (1u64 << 63) as f64;
        let mut h = Histogram::new();
        for _ in 0..3 {
            h.observe(10.0); // bucket [8, 16)
        }
        h.observe(two63);
        h.observe(two63 * 4.0);
        h.observe(f64::MAX);
        // Ranks inside finite buckets still report bucket upper bounds.
        assert_eq!(h.percentile(50.0), 16.0);
        // Ranks in the top bucket report the observed max, which really
        // does bound every sample — 2^63 would not.
        assert_eq!(h.percentile(100.0), f64::MAX);
        assert!(h.percentile(100.0) >= two63 * 4.0);
        // iter reports the top bucket's exact lower bound with all three
        // huge samples counted in it.
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(buckets, vec![(8.0, 3), (two63, 3)]);
    }
}
