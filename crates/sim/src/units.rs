//! Time and bandwidth unit helpers.
//!
//! The kernel counts [`Tick`]s of one picosecond. These helpers convert
//! between human units (ns, GHz, GB/s, Gb/s) and ticks, rounding up where a
//! duration must not be shortened by truncation.

use crate::Tick;

/// Ticks per nanosecond.
pub const TICKS_PER_NS: Tick = 1_000;
/// Ticks per microsecond.
pub const TICKS_PER_US: Tick = 1_000_000;
/// Ticks per millisecond.
pub const TICKS_PER_MS: Tick = 1_000_000_000;

/// Convert nanoseconds to ticks (rounding to nearest tick).
///
/// ```
/// assert_eq!(accesys_sim::units::ns(1.5), 1_500);
/// ```
pub fn ns(value: f64) -> Tick {
    debug_assert!(value >= 0.0, "negative duration");
    (value * TICKS_PER_NS as f64).round() as Tick
}

/// Convert microseconds to ticks.
pub fn us(value: f64) -> Tick {
    ns(value * 1_000.0)
}

/// Convert ticks to nanoseconds as `f64`.
pub fn to_ns(ticks: Tick) -> f64 {
    ticks as f64 / TICKS_PER_NS as f64
}

/// Convert ticks to microseconds as `f64`.
pub fn to_us(ticks: Tick) -> f64 {
    ticks as f64 / TICKS_PER_US as f64
}

/// Convert ticks to milliseconds as `f64`.
pub fn to_ms(ticks: Tick) -> f64 {
    ticks as f64 / TICKS_PER_MS as f64
}

/// Clock period in ticks for a frequency in GHz.
///
/// ```
/// assert_eq!(accesys_sim::units::clock_period_ghz(1.0), 1_000);
/// assert_eq!(accesys_sim::units::clock_period_ghz(2.0), 500);
/// ```
pub fn clock_period_ghz(freq_ghz: f64) -> Tick {
    debug_assert!(freq_ghz > 0.0, "non-positive frequency");
    (1_000.0 / freq_ghz).round() as Tick
}

/// Time to move `bytes` at `gib_per_s` gigabytes per second (decimal GB),
/// rounded **up** so bandwidth is never overestimated.
///
/// ```
/// // 8 bytes at 8 GB/s take 1 ns.
/// assert_eq!(accesys_sim::units::transfer_time(8, 8.0), 1_000);
/// ```
pub fn transfer_time(bytes: u64, gb_per_s: f64) -> Tick {
    debug_assert!(gb_per_s > 0.0, "non-positive bandwidth");
    // bytes / (GB/s) = ns * bytes/GB ... work in ps: ps = bytes * 1000 / GBps
    let ps = (bytes as f64) * 1_000.0 / gb_per_s;
    ps.ceil() as Tick
}

/// Effective bytes-per-second of a multi-lane serial link.
///
/// `lane_gbps` is the raw line rate per lane in Gb/s; `encoding_efficiency`
/// captures 8b/10b (0.8) or 128b/130b (≈0.9846) framing.
pub fn link_gb_per_s(lanes: u32, lane_gbps: f64, encoding_efficiency: f64) -> f64 {
    debug_assert!(lanes > 0);
    lanes as f64 * lane_gbps * encoding_efficiency / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(ns(2.0), 2_000);
        assert_eq!(us(1.0), 1_000_000);
        assert!((to_ns(2_500) - 2.5).abs() < 1e-12);
        assert!((to_us(2_500_000) - 2.5).abs() < 1e-12);
        assert!((to_ms(2_500_000_000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 3 GB/s = 333.33.. ps -> 334.
        assert_eq!(transfer_time(1, 3.0), 334);
        assert_eq!(transfer_time(0, 3.0), 0);
        // 4096 bytes at 16 GB/s = 256 ns exactly.
        assert_eq!(transfer_time(4096, 16.0), ns(256.0));
    }

    #[test]
    fn pcie_gen2_x4_bandwidth() {
        // PCIe 2.0: 5 Gb/s per lane, 8b/10b encoding -> 0.5 GB/s per lane.
        let bw = link_gb_per_s(4, 5.0, 0.8);
        assert!((bw - 2.0).abs() < 1e-12);
        // PCIe 4.0 x16: 16 Gb/s, 128/130.
        let bw = link_gb_per_s(16, 16.0, 128.0 / 130.0);
        assert!((bw - 31.5).abs() < 0.1);
    }

    #[test]
    fn clock_periods() {
        assert_eq!(clock_period_ghz(0.5), 2_000);
        assert_eq!(clock_period_ghz(4.0), 250);
    }
}
