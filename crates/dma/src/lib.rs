//! # accesys-dma
//!
//! The multi-channel DMA engine of the accelerator wrapper. The paper
//! lists multi-channel DMA as a feature missing from prior gem5
//! accelerator frameworks; here each channel runs a descriptor queue,
//! segments transfers into requests of the configured *request size* (the
//! packet-size knob of the paper's Fig. 4 sweep), and bounds the number of
//! requests in flight per channel.
//!
//! Descriptors arrive as [`DmaDescriptor`] control messages; completion is
//! signalled with a [`DmaDone`] message to the descriptor's notify target.

mod engine;

pub use engine::{DmaDescriptor, DmaDone, DmaEngine, DmaEngineConfig, DmaSgDescriptor};
