//! Multi-channel DMA engine.

use accesys_sim::{streams, units, Ctx, MemCmd, Module, ModuleId, Msg, Packet, Stats, Tick};
use std::collections::VecDeque;

/// Configuration of a [`DmaEngine`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct DmaEngineConfig {
    /// Number of independent channels.
    pub channels: u32,
    /// Request (packet) size in bytes — the Fig. 4 sweep knob.
    pub request_bytes: u32,
    /// Maximum requests in flight per channel.
    pub max_inflight: u32,
    /// Descriptor fetch/decode latency in nanoseconds.
    pub desc_latency_ns: f64,
}

impl Default for DmaEngineConfig {
    fn default() -> Self {
        DmaEngineConfig {
            channels: 4,
            request_bytes: 256,
            max_inflight: 32,
            desc_latency_ns: 20.0,
        }
    }
}

/// One DMA transfer: `bytes` starting at `addr`, read or written through
/// `target` (the PCIe endpoint for host memory, the DevMem controller for
/// device memory).
#[derive(Copy, Clone, Debug)]
pub struct DmaDescriptor {
    /// Channel to run on.
    pub channel: u32,
    /// Start address (virtual if `virt`).
    pub addr: u64,
    /// Transfer length in bytes.
    pub bytes: u64,
    /// `true` = write to memory, `false` = read from memory.
    pub write: bool,
    /// Address needs SMMU translation on the host side.
    pub virt: bool,
    /// First module to send requests to.
    pub target: ModuleId,
    /// Who to notify with [`DmaDone`].
    pub notify: ModuleId,
    /// Opaque completion cookie echoed in [`DmaDone`].
    pub cookie: u64,
}

/// A scatter-gather DMA transfer: a list of `(addr, bytes)` extents moved
/// as one logical transfer with a single completion.
///
/// Requests never cross an extent boundary, so a fragmented buffer costs
/// extra (sub-`request_bytes`) packets exactly as real SG engines do.
#[derive(Clone, Debug)]
pub struct DmaSgDescriptor {
    /// Channel to run on.
    pub channel: u32,
    /// Extents in transfer order; each is `(start_addr, bytes)`.
    pub segments: Vec<(u64, u64)>,
    /// `true` = write to memory, `false` = read from memory.
    pub write: bool,
    /// Addresses need SMMU translation on the host side.
    pub virt: bool,
    /// First module to send requests to.
    pub target: ModuleId,
    /// Who to notify with [`DmaDone`].
    pub notify: ModuleId,
    /// Opaque completion cookie echoed in [`DmaDone`].
    pub cookie: u64,
}

impl DmaSgDescriptor {
    /// Total bytes across all extents.
    pub fn total_bytes(&self) -> u64 {
        self.segments.iter().map(|&(_, b)| b).sum()
    }
}

impl From<DmaDescriptor> for DmaSgDescriptor {
    fn from(d: DmaDescriptor) -> Self {
        DmaSgDescriptor {
            channel: d.channel,
            segments: vec![(d.addr, d.bytes)],
            write: d.write,
            virt: d.virt,
            target: d.target,
            notify: d.notify,
            cookie: d.cookie,
        }
    }
}

/// Completion notification for a [`DmaDescriptor`] / [`DmaSgDescriptor`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DmaDone {
    /// Channel that finished.
    pub channel: u32,
    /// Cookie from the descriptor.
    pub cookie: u64,
    /// Bytes moved.
    pub bytes: u64,
}

struct Active {
    desc: DmaSgDescriptor,
    total_bytes: u64,
    /// Extent currently being segmented into requests.
    seg_idx: usize,
    /// Offset into the current extent.
    seg_offset: u64,
    inflight: u32,
    done_bytes: u64,
    started: Tick,
}

struct Channel {
    queue: VecDeque<DmaSgDescriptor>,
    active: Option<Active>,
}

/// The engine: per-channel descriptor queues and request windows.
///
/// Requests carry stream id `streams::DMA_BASE + channel` so caches and
/// the coherence point can classify the traffic, and responses are
/// matched back to their channel by the same stream id.
pub struct DmaEngine {
    name: String,
    cfg: DmaEngineConfig,
    channels: Vec<Channel>,
    // stats
    descriptors: u64,
    requests: u64,
    bytes_read: u64,
    bytes_written: u64,
    busy_ns_sum: f64,
}

impl DmaEngine {
    /// Create an engine with `cfg.channels` channels.
    pub fn new(name: &str, cfg: DmaEngineConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.request_bytes > 0 && cfg.max_inflight > 0);
        DmaEngine {
            name: name.to_string(),
            cfg,
            channels: (0..cfg.channels)
                .map(|_| Channel {
                    queue: VecDeque::new(),
                    active: None,
                })
                .collect(),
            descriptors: 0,
            requests: 0,
            bytes_read: 0,
            bytes_written: 0,
            busy_ns_sum: 0.0,
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> DmaEngineConfig {
        self.cfg
    }

    fn stream_of(&self, channel: u32) -> u16 {
        streams::DMA_BASE + channel as u16
    }

    fn channel_of(&self, stream: u16) -> Option<usize> {
        let c = stream.checked_sub(streams::DMA_BASE)? as usize;
        (c < self.channels.len()).then_some(c)
    }

    fn start_next(&mut self, ch: usize, ctx: &mut Ctx) {
        if self.channels[ch].active.is_some() {
            return;
        }
        let Some(desc) = self.channels[ch].queue.pop_front() else {
            return;
        };
        self.descriptors += 1;
        let total_bytes = desc.total_bytes();
        self.channels[ch].active = Some(Active {
            desc,
            total_bytes,
            seg_idx: 0,
            seg_offset: 0,
            inflight: 0,
            done_bytes: 0,
            started: ctx.now(),
        });
        // Descriptor fetch/decode latency before the first burst.
        ctx.timer(units::ns(self.cfg.desc_latency_ns), ch as u64);
    }

    fn pump(&mut self, ch: usize, ctx: &mut Ctx) {
        let stream = self.stream_of(ch as u32);
        let mut issued = 0u64;
        let mut issued_bytes = 0u64;
        {
            let Some(active) = self.channels[ch].active.as_mut() else {
                return;
            };
            while active.inflight < self.cfg.max_inflight
                && active.seg_idx < active.desc.segments.len()
            {
                let (seg_addr, seg_bytes) = active.desc.segments[active.seg_idx];
                // Requests never cross an extent boundary.
                let remaining = seg_bytes - active.seg_offset;
                let size = remaining.min(u64::from(self.cfg.request_bytes)) as u32;
                let cmd = if active.desc.write {
                    MemCmd::WriteReq
                } else {
                    MemCmd::ReadReq
                };
                let mut pkt = Packet::request(
                    ctx.alloc_pkt_id(),
                    cmd,
                    seg_addr + active.seg_offset,
                    size,
                    ctx.now(),
                );
                pkt.virt = active.desc.virt;
                pkt.stream = stream;
                pkt.route.push(ctx.self_id());
                ctx.send(active.desc.target, 0, Msg::packet(pkt));
                active.seg_offset += u64::from(size);
                if active.seg_offset >= seg_bytes {
                    active.seg_idx += 1;
                    active.seg_offset = 0;
                }
                active.inflight += 1;
                issued += 1;
                issued_bytes += u64::from(size);
                if active.desc.write {
                    self.bytes_written += u64::from(size);
                } else {
                    self.bytes_read += u64::from(size);
                }
            }
        }
        self.requests += issued;
        let _ = issued_bytes;
    }

    fn on_response(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        let Some(ch) = self.channel_of(pkt.stream) else {
            return;
        };
        let finished = {
            let Some(active) = self.channels[ch].active.as_mut() else {
                return;
            };
            active.inflight -= 1;
            active.done_bytes += u64::from(pkt.size);
            active.done_bytes >= active.total_bytes
        };
        if finished {
            let active = self.channels[ch].active.take().expect("checked above");
            self.busy_ns_sum += units::to_ns(ctx.now() - active.started);
            ctx.send(
                active.desc.notify,
                0,
                Msg::custom(DmaDone {
                    channel: ch as u32,
                    cookie: active.desc.cookie,
                    bytes: active.total_bytes,
                }),
            );
            self.start_next(ch, ctx);
        } else {
            self.pump(ch, ctx);
        }
    }
}

impl Module for DmaEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::Packet(pkt) => {
                debug_assert!(pkt.cmd.is_response(), "DMA engine got a request");
                self.on_response(&pkt, ctx);
            }
            Msg::Timer(ch) => self.pump(ch as usize, ctx),
            other => {
                let sg = match other.into_custom::<DmaDescriptor>() {
                    Ok(desc) => {
                        assert!(desc.bytes > 0, "empty DMA descriptor");
                        DmaSgDescriptor::from(desc)
                    }
                    Err(other) => match other.into_custom::<DmaSgDescriptor>() {
                        Ok(sg) => sg,
                        Err(_) => return,
                    },
                };
                let ch = sg.channel as usize;
                assert!(ch < self.channels.len(), "descriptor for unknown channel");
                assert!(
                    !sg.segments.is_empty() && sg.segments.iter().all(|&(_, b)| b > 0),
                    "empty scatter-gather descriptor"
                );
                self.channels[ch].queue.push_back(sg);
                self.start_next(ch, ctx);
            }
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("descriptors", self.descriptors as f64);
        out.add("requests", self.requests as f64);
        out.add("bytes_read", self.bytes_read as f64);
        out.add("bytes_written", self.bytes_written as f64);
        out.add("busy_ns_sum", self.busy_ns_sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_mem::{SimpleMemory, SimpleMemoryConfig};
    use accesys_sim::Kernel;

    /// Collects DmaDone notifications.
    struct Waiter {
        done: Vec<(Tick, DmaDone)>,
    }
    impl Module for Waiter {
        fn name(&self) -> &str {
            "waiter"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Ok(d) = msg.into_custom::<DmaDone>() {
                self.done.push((ctx.now(), d));
            }
        }
    }

    fn setup(cfg: DmaEngineConfig) -> (Kernel, ModuleId, ModuleId, ModuleId) {
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new(
            "mem",
            SimpleMemoryConfig {
                latency_ns: 50.0,
                bandwidth_gbps: 8.0,
            },
        )));
        let dma = k.add_module(Box::new(DmaEngine::new("dma", cfg)));
        let waiter = k.add_module(Box::new(Waiter { done: vec![] }));
        (k, mem, dma, waiter)
    }

    fn desc(
        channel: u32,
        bytes: u64,
        write: bool,
        target: ModuleId,
        notify: ModuleId,
        cookie: u64,
    ) -> DmaDescriptor {
        DmaDescriptor {
            channel,
            addr: 0x10_0000,
            bytes,
            write,
            virt: false,
            target,
            notify,
            cookie,
        }
    }

    #[test]
    fn transfer_splits_into_request_sized_packets() {
        let cfg = DmaEngineConfig {
            channels: 1,
            request_bytes: 256,
            max_inflight: 8,
            desc_latency_ns: 0.0,
        };
        let (mut k, mem, dma, waiter) = setup(cfg);
        k.schedule(0, dma, Msg::custom(desc(0, 4096, false, mem, waiter, 1)));
        k.run_until_idle().unwrap();
        let stats = k.stats();
        assert_eq!(stats.get_or_zero("dma.requests"), 16.0);
        assert_eq!(stats.get_or_zero("mem.reads"), 16.0);
        assert_eq!(stats.get_or_zero("dma.bytes_read"), 4096.0);
        let done = &k.module::<Waiter>(waiter).unwrap().done;
        assert_eq!(done.len(), 1);
        assert_eq!(
            done[0].1,
            DmaDone {
                channel: 0,
                cookie: 1,
                bytes: 4096
            }
        );
        // 4 KiB at 8 GB/s = 512 ns of serialization minimum.
        assert!(done[0].0 >= units::ns(512.0));
    }

    #[test]
    fn inflight_window_limits_parallelism() {
        let narrow = DmaEngineConfig {
            channels: 1,
            request_bytes: 64,
            max_inflight: 1,
            desc_latency_ns: 0.0,
        };
        let wide = DmaEngineConfig {
            max_inflight: 16,
            ..narrow
        };
        let (mut k1, mem1, dma1, w1) = setup(narrow);
        k1.schedule(0, dma1, Msg::custom(desc(0, 1024, false, mem1, w1, 0)));
        k1.run_until_idle().unwrap();
        let (mut k2, mem2, dma2, w2) = setup(wide);
        k2.schedule(0, dma2, Msg::custom(desc(0, 1024, false, mem2, w2, 0)));
        k2.run_until_idle().unwrap();
        let t1 = k1.module::<Waiter>(w1).unwrap().done[0].0;
        let t2 = k2.module::<Waiter>(w2).unwrap().done[0].0;
        // Stop-and-wait pays the 50 ns latency per request; the windowed
        // version pipelines it away.
        assert!(t1 > 2 * t2, "narrow {t1} vs wide {t2}");
    }

    #[test]
    fn channels_run_concurrently() {
        let cfg = DmaEngineConfig {
            channels: 2,
            request_bytes: 256,
            max_inflight: 8,
            desc_latency_ns: 0.0,
        };
        let (mut k, mem, dma, waiter) = setup(cfg);
        k.schedule(
            0,
            dma,
            Msg::custom(desc(0, 64 << 10, false, mem, waiter, 0)),
        );
        k.schedule(
            0,
            dma,
            Msg::custom(desc(1, 64 << 10, false, mem, waiter, 1)),
        );
        k.run_until_idle().unwrap();
        let done = &k.module::<Waiter>(waiter).unwrap().done;
        assert_eq!(done.len(), 2);
        // Both share one memory pipe: combined time ≈ sum of bytes, but
        // both must have been in flight together (second finishes well
        // before 2x the first's solo time + gap).
        let spread = done[1].0.saturating_sub(done[0].0);
        assert!(spread < done[0].0 / 4, "channels look serialized: {done:?}");
    }

    #[test]
    fn descriptors_on_one_channel_run_in_order() {
        let cfg = DmaEngineConfig {
            channels: 1,
            request_bytes: 256,
            max_inflight: 8,
            desc_latency_ns: 10.0,
        };
        let (mut k, mem, dma, waiter) = setup(cfg);
        for cookie in 0..3 {
            k.schedule(
                0,
                dma,
                Msg::custom(desc(0, 4096, cookie % 2 == 1, mem, waiter, cookie)),
            );
        }
        k.run_until_idle().unwrap();
        let done = &k.module::<Waiter>(waiter).unwrap().done;
        let cookies: Vec<u64> = done.iter().map(|(_, d)| d.cookie).collect();
        assert_eq!(cookies, vec![0, 1, 2]);
        let stats = k.stats();
        assert_eq!(stats.get_or_zero("mem.writes"), 16.0);
        assert_eq!(stats.get_or_zero("dma.bytes_written"), 4096.0);
    }

    #[test]
    fn scatter_gather_moves_every_extent_with_one_completion() {
        let cfg = DmaEngineConfig {
            channels: 1,
            request_bytes: 256,
            max_inflight: 8,
            desc_latency_ns: 0.0,
        };
        let (mut k, mem, dma, waiter) = setup(cfg);
        let sg = DmaSgDescriptor {
            channel: 0,
            segments: vec![(0x1000, 512), (0x9000, 64), (0x20000, 1024)],
            write: false,
            virt: false,
            target: mem,
            notify: waiter,
            cookie: 5,
        };
        k.schedule(0, dma, Msg::custom(sg));
        k.run_until_idle().unwrap();
        let done = &k.module::<Waiter>(waiter).unwrap().done;
        assert_eq!(done.len(), 1);
        assert_eq!(
            done[0].1,
            DmaDone {
                channel: 0,
                cookie: 5,
                bytes: 512 + 64 + 1024
            }
        );
        let stats = k.stats();
        // 512/256 + ceil(64/256) + 1024/256 = 2 + 1 + 4 requests.
        assert_eq!(stats.get_or_zero("dma.requests"), 7.0);
        assert_eq!(stats.get_or_zero("dma.bytes_read"), 1600.0);
    }

    #[test]
    fn sg_requests_never_cross_extent_boundaries() {
        // One extent smaller than request_bytes forces a short packet;
        // total request count proves no packet straddled extents.
        let cfg = DmaEngineConfig {
            channels: 1,
            request_bytes: 1024,
            max_inflight: 8,
            desc_latency_ns: 0.0,
        };
        let (mut k, mem, dma, waiter) = setup(cfg);
        let sg = DmaSgDescriptor {
            channel: 0,
            segments: vec![(0x0, 100), (0x5000, 100), (0xA000, 100)],
            write: true,
            virt: false,
            target: mem,
            notify: waiter,
            cookie: 0,
        };
        k.schedule(0, dma, Msg::custom(sg));
        k.run_until_idle().unwrap();
        let stats = k.stats();
        assert_eq!(stats.get_or_zero("dma.requests"), 3.0);
        assert_eq!(stats.get_or_zero("dma.bytes_written"), 300.0);
    }

    #[test]
    fn plain_descriptor_is_a_single_extent_sg() {
        let d = desc(0, 4096, false, ModuleId::INVALID, ModuleId::INVALID, 3);
        let sg = DmaSgDescriptor::from(d);
        assert_eq!(sg.segments, vec![(0x10_0000, 4096)]);
        assert_eq!(sg.total_bytes(), 4096);
        assert_eq!(sg.cookie, 3);
    }

    #[test]
    #[should_panic(expected = "empty scatter-gather")]
    fn empty_sg_descriptor_panics() {
        let cfg = DmaEngineConfig {
            channels: 1,
            request_bytes: 256,
            max_inflight: 8,
            desc_latency_ns: 0.0,
        };
        let (mut k, mem, dma, waiter) = setup(cfg);
        let sg = DmaSgDescriptor {
            channel: 0,
            segments: vec![],
            write: false,
            virt: false,
            target: mem,
            notify: waiter,
            cookie: 0,
        };
        k.schedule(0, dma, Msg::custom(sg));
        k.run_until_idle().unwrap();
    }

    #[test]
    fn writes_complete_only_after_acks() {
        let cfg = DmaEngineConfig {
            channels: 1,
            request_bytes: 512,
            max_inflight: 4,
            desc_latency_ns: 0.0,
        };
        let (mut k, mem, dma, waiter) = setup(cfg);
        k.schedule(0, dma, Msg::custom(desc(0, 2048, true, mem, waiter, 9)));
        k.run_until_idle().unwrap();
        let done = &k.module::<Waiter>(waiter).unwrap().done;
        // 2048 B at 8 GB/s = 256 ns + 50 ns latency minimum.
        assert!(done[0].0 >= units::ns(306.0));
    }
}
