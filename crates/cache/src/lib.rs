//! # accesys-cache
//!
//! Cache hierarchy for the Gem5-AcceSys reproduction: set-associative,
//! write-back, write-allocate caches with MSHRs, used for the CPU L1s, the
//! shared last-level cache (LLC), the IOCache and the device-side cache of
//! the paper's Table II.
//!
//! The LLC can act as the system's *coherence point* (the paper's
//! "cache coherency model between the accelerator's cache and the CPU
//! cache"): a presence directory tracks which side — CPU or I/O — may hold
//! a line, and cross-side accesses trigger `SnoopInv` probes that write
//! back and invalidate the stale copy before the access proceeds.
//!
//! Requests of any size are accepted; multi-line requests are split into
//! per-line transactions and the response fires when the last line
//! completes, which is how DC-mode accelerator bursts (64 B – 4 KiB)
//! traverse the hierarchy.

mod cache;

pub use cache::{Cache, CacheConfig, CoherenceSide, CoherentConfig};
