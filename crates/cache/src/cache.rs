//! Set-associative write-back cache with MSHRs and optional coherence.

use accesys_sim::FxHashMap;
use accesys_sim::{units, Ctx, MemCmd, Module, ModuleId, Msg, Packet, PacketBox, Stats, Tick};
use std::collections::VecDeque;

/// Geometry and timing of a [`Cache`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (the coherence/fill granularity).
    pub line_bytes: u32,
    /// Latency of a hit, in nanoseconds.
    pub hit_latency_ns: f64,
    /// Tag-lookup latency added to the miss path, in nanoseconds.
    pub lookup_latency_ns: f64,
    /// Number of outstanding line fills (MSHRs).
    pub mshrs: u32,
}

impl CacheConfig {
    /// A small L1-like default: 64 KiB, 4-way, 1 ns hit.
    pub fn l1(size_bytes: u64) -> Self {
        CacheConfig {
            size_bytes,
            assoc: 4,
            line_bytes: 64,
            hit_latency_ns: 1.0,
            lookup_latency_ns: 0.5,
            mshrs: 8,
        }
    }

    /// An LLC-like default: 16-way, 8 ns hit.
    pub fn llc(size_bytes: u64) -> Self {
        CacheConfig {
            size_bytes,
            assoc: 16,
            line_bytes: 64,
            hit_latency_ns: 8.0,
            lookup_latency_ns: 2.0,
            mshrs: 32,
        }
    }

    fn num_sets(&self) -> u64 {
        let lines = self.size_bytes / u64::from(self.line_bytes);
        (lines / u64::from(self.assoc)).max(1)
    }
}

/// Which side of the coherence point a request came from.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CoherenceSide {
    /// CPU cluster (cores and their private caches).
    Cpu,
    /// I/O side (accelerator traffic arriving through the IOCache/SMMU).
    Io,
}

impl CoherenceSide {
    fn bit(self) -> u8 {
        match self {
            CoherenceSide::Cpu => 1,
            CoherenceSide::Io => 2,
        }
    }
}

/// Coherence-point configuration for an LLC instance.
#[derive(Copy, Clone, Debug)]
pub struct CoherentConfig {
    /// The CPU-side cache to probe when I/O traffic touches a line the
    /// CPU may hold.
    pub cpu_cache: ModuleId,
    /// Streams with id >= this value are considered I/O-side.
    pub io_stream_base: u16,
}

#[derive(Copy, Clone, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

#[derive(Copy, Clone, Debug)]
struct LineOp {
    parent: u64,
    line_addr: u64,
    write: bool,
    side: CoherenceSide,
}

struct Parent {
    pkt: PacketBox,
    remaining: u32,
    start: Tick,
}

/// A set-associative, write-back, write-allocate cache module.
///
/// Responds to `ReadReq`/`WriteReq` of any size (split into lines) and to
/// `SnoopInv` probes (invalidate + write back dirty data + ack). Misses
/// are forwarded as line fills to the configured downstream module.
pub struct Cache {
    name: String,
    cfg: CacheConfig,
    downstream: ModuleId,
    sets: Vec<Vec<Line>>,
    lru_clock: u64,
    /// line addr -> ops waiting on an in-flight fill.
    mshrs: FxHashMap<u64, Vec<LineOp>>,
    /// Ops stalled because all MSHRs are busy.
    stalled: VecDeque<LineOp>,
    parents: FxHashMap<u64, Parent>,
    /// Coherence directory (LLC role only).
    coherent: Option<CoherentConfig>,
    presence: FxHashMap<u64, u8>,
    probing: FxHashMap<u64, Vec<LineOp>>,
    /// Emptied waiter lists kept for reuse: every miss needs a fresh
    /// `Vec<LineOp>`, and recycling the retired ones keeps the steady
    /// state free of per-miss heap traffic (the `perf` bin's
    /// allocation diet counts every allocator hit).
    spare_waiters: Vec<Vec<LineOp>>,
    // stats
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
    snoops_sent: u64,
    snoops_received: u64,
    bytes: u64,
    lat_sum_ns: f64,
    responses: u64,
}

impl Cache {
    /// Create a cache forwarding misses to `downstream`.
    pub fn new(name: &str, cfg: CacheConfig, downstream: ModuleId) -> Self {
        assert!(cfg.assoc >= 1 && cfg.line_bytes.is_power_of_two());
        let sets = (0..cfg.num_sets())
            .map(|_| {
                vec![
                    Line {
                        tag: 0,
                        valid: false,
                        dirty: false,
                        lru: 0
                    };
                    cfg.assoc as usize
                ]
            })
            .collect();
        Cache {
            name: name.to_string(),
            cfg,
            downstream,
            sets,
            lru_clock: 0,
            mshrs: FxHashMap::default(),
            stalled: VecDeque::new(),
            parents: FxHashMap::default(),
            coherent: None,
            presence: FxHashMap::default(),
            probing: FxHashMap::default(),
            spare_waiters: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            writebacks: 0,
            snoops_sent: 0,
            snoops_received: 0,
            bytes: 0,
            lat_sum_ns: 0.0,
            responses: 0,
        }
    }

    /// Enable the coherence-point role (LLC only).
    pub fn with_coherence(mut self, cfg: CoherentConfig) -> Self {
        self.coherent = Some(cfg);
        self
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Observed hit rate (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !u64::from(self.cfg.line_bytes - 1)
    }

    fn set_index(&self, line_addr: u64) -> usize {
        ((line_addr / u64::from(self.cfg.line_bytes)) % self.cfg.num_sets()) as usize
    }

    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr / u64::from(self.cfg.line_bytes) / self.cfg.num_sets()
    }

    fn side_of(&self, stream: u16) -> CoherenceSide {
        match self.coherent {
            Some(c) if stream >= c.io_stream_base => CoherenceSide::Io,
            _ => CoherenceSide::Cpu,
        }
    }

    /// A waiter list seeded with `op`, reusing a retired list's storage
    /// when one is spare (the pool grows to the peak number of
    /// concurrent fills/probes, then steady state never allocates).
    fn waiter_list(&mut self, op: LineOp) -> Vec<LineOp> {
        let mut list = self.spare_waiters.pop().unwrap_or_default();
        list.push(op);
        list
    }

    /// Return a drained waiter list's storage to the spare pool.
    fn retire_waiters(&mut self, list: Vec<LineOp>) {
        debug_assert!(list.is_empty());
        self.spare_waiters.push(list);
    }

    fn lookup(&mut self, line_addr: u64) -> Option<(usize, usize)> {
        let set = self.set_index(line_addr);
        let tag = self.tag_of(line_addr);
        self.sets[set]
            .iter()
            .position(|l| l.valid && l.tag == tag)
            .map(|way| (set, way))
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.lru_clock += 1;
        self.sets[set][way].lru = self.lru_clock;
    }

    /// One line of a parent request finished; respond upstream when all
    /// lines are done.
    fn complete_line(&mut self, parent_id: u64, at: Tick, ctx: &mut Ctx) {
        let done = {
            let parent = self
                .parents
                .get_mut(&parent_id)
                .expect("line completion without parent");
            parent.remaining -= 1;
            parent.remaining == 0
        };
        if done {
            let parent = self.parents.remove(&parent_id).expect("checked above");
            let mut pkt = parent.pkt;
            self.lat_sum_ns += units::to_ns(at.saturating_sub(parent.start));
            self.responses += 1;
            pkt.make_response();
            if let Some(next) = pkt.route.pop() {
                ctx.send_at(next, at, Msg::Packet(pkt));
            }
        }
    }

    /// Install a fetched line, evicting as needed; returns the victim
    /// writeback packet if a dirty line was displaced.
    fn install(&mut self, line_addr: u64, dirty: bool, ctx: &mut Ctx) {
        let set = self.set_index(line_addr);
        let tag = self.tag_of(line_addr);
        // Prefer an invalid way, else the LRU way.
        let way = {
            let lines = &self.sets[set];
            lines.iter().position(|l| !l.valid).unwrap_or_else(|| {
                lines
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("nonzero associativity")
            })
        };
        let victim = self.sets[set][way];
        if victim.valid {
            self.evictions += 1;
            if victim.dirty {
                self.writebacks += 1;
                let victim_addr = (victim.tag * self.cfg.num_sets()
                    + self.set_index_from_tagline(set))
                    * u64::from(self.cfg.line_bytes);
                let wb = Packet::request(
                    ctx.alloc_pkt_id(),
                    MemCmd::WriteReq,
                    victim_addr,
                    self.cfg.line_bytes,
                    ctx.now(),
                );
                // Fire-and-forget: empty route, the responder drops the ack.
                ctx.send(self.downstream, 0, Msg::packet(wb));
            }
        }
        self.sets[set][way] = Line {
            tag,
            valid: true,
            dirty,
            lru: 0,
        };
        self.touch(set, way);
    }

    fn set_index_from_tagline(&self, set: usize) -> u64 {
        set as u64
    }

    /// Process a per-line op that is past coherence probing.
    fn access_line(&mut self, op: LineOp, ctx: &mut Ctx) {
        self.access_line_inner(op, ctx, true);
    }

    /// `count` is false when re-admitting a previously stalled op, whose
    /// hit/miss outcome was already recorded.
    fn access_line_inner(&mut self, op: LineOp, ctx: &mut Ctx, count: bool) {
        self.note_presence(op);
        if let Some((set, way)) = self.lookup(op.line_addr) {
            if count {
                self.hits += 1;
            }
            if op.write {
                self.sets[set][way].dirty = true;
            }
            self.touch(set, way);
            let at = ctx.now() + units::ns(self.cfg.hit_latency_ns);
            self.complete_line(op.parent, at, ctx);
            return;
        }
        if count {
            self.misses += 1;
        }
        if let Some(waiters) = self.mshrs.get_mut(&op.line_addr) {
            waiters.push(op);
            return;
        }
        if self.mshrs.len() >= self.cfg.mshrs as usize {
            self.stalled.push_back(op);
            return;
        }
        let waiters = self.waiter_list(op);
        self.mshrs.insert(op.line_addr, waiters);
        let mut fill = Packet::request(
            ctx.alloc_pkt_id(),
            MemCmd::ReadReq,
            op.line_addr,
            self.cfg.line_bytes,
            ctx.now(),
        );
        // The fill inherits the requester's stream: a downstream
        // coherence point classifies CPU-vs-I/O side from it, so it must
        // reflect the original traffic class (never the packet id, which
        // is an equality-only match key — the parallel domain engine
        // allocates ids from per-domain chunks).
        fill.stream = self
            .parents
            .get(&op.parent)
            .expect("miss for unknown parent")
            .pkt
            .stream;
        fill.route.push(ctx.self_id());
        ctx.send(
            self.downstream,
            units::ns(self.cfg.lookup_latency_ns),
            Msg::packet(fill),
        );
    }

    /// Track which side holds a line (coherence-point role only).
    fn note_presence(&mut self, op: LineOp) {
        if self.coherent.is_some() {
            *self.presence.entry(op.line_addr).or_insert(0) |= op.side.bit();
        }
    }

    /// Route a per-line op through coherence probing if another side may
    /// hold the line.
    fn start_line(&mut self, op: LineOp, ctx: &mut Ctx) {
        if let Some(coh) = self.coherent {
            let bits = self.presence.get(&op.line_addr).copied().unwrap_or(0);
            let other = bits & !op.side.bit();
            if other & CoherenceSide::Cpu.bit() != 0 && op.side == CoherenceSide::Io {
                // Probe the CPU-side cache before serving I/O traffic.
                if let Some(waiters) = self.probing.get_mut(&op.line_addr) {
                    waiters.push(op);
                    return;
                }
                let waiters = self.waiter_list(op);
                self.probing.insert(op.line_addr, waiters);
                self.snoops_sent += 1;
                let mut probe = Packet::request(
                    ctx.alloc_pkt_id(),
                    MemCmd::SnoopInv,
                    op.line_addr,
                    self.cfg.line_bytes,
                    ctx.now(),
                );
                probe.route.push(ctx.self_id());
                ctx.send(coh.cpu_cache, 0, Msg::packet(probe));
                return;
            }
        }
        self.access_line(op, ctx);
    }

    fn handle_request(&mut self, pkt: PacketBox, ctx: &mut Ctx) {
        let side = self.side_of(pkt.stream);
        let write = pkt.cmd == MemCmd::WriteReq;
        self.bytes += u64::from(pkt.size);
        let first = self.line_of(pkt.addr);
        let last = self.line_of(pkt.addr + u64::from(pkt.size) - 1);
        let lines = ((last - first) / u64::from(self.cfg.line_bytes) + 1) as u32;
        let parent_id = pkt.id;
        self.parents.insert(
            parent_id,
            Parent {
                pkt,
                remaining: lines,
                start: ctx.now(),
            },
        );
        for i in 0..lines {
            let op = LineOp {
                parent: parent_id,
                line_addr: first + u64::from(i) * u64::from(self.cfg.line_bytes),
                write,
                side,
            };
            self.start_line(op, ctx);
        }
    }

    fn handle_fill(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        let line_addr = pkt.addr;
        let mut waiters = self
            .mshrs
            .remove(&line_addr)
            .expect("fill without MSHR entry");
        let dirty = waiters.iter().any(|w| w.write);
        self.install(line_addr, dirty, ctx);
        let at = ctx.now() + units::ns(self.cfg.hit_latency_ns);
        for w in waiters.drain(..) {
            self.note_presence(w);
            self.complete_line(w.parent, at, ctx);
        }
        self.retire_waiters(waiters);
        // An MSHR freed: admit one stalled op (already counted).
        if let Some(op) = self.stalled.pop_front() {
            self.access_line_inner(op, ctx, false);
        }
    }

    fn handle_snoop(&mut self, mut pkt: PacketBox, ctx: &mut Ctx) {
        self.snoops_received += 1;
        if let Some((set, way)) = self.lookup(pkt.addr) {
            let line = self.sets[set][way];
            if line.dirty {
                self.writebacks += 1;
                let wb = Packet::request(
                    ctx.alloc_pkt_id(),
                    MemCmd::WriteReq,
                    pkt.addr,
                    self.cfg.line_bytes,
                    ctx.now(),
                );
                ctx.send(self.downstream, 0, Msg::packet(wb));
            }
            self.sets[set][way].valid = false;
        }
        pkt.make_response();
        if let Some(next) = pkt.route.pop() {
            ctx.send(
                next,
                units::ns(self.cfg.lookup_latency_ns),
                Msg::Packet(pkt),
            );
        }
    }

    fn handle_snoop_ack(&mut self, pkt: &Packet, ctx: &mut Ctx) {
        let line_addr = pkt.addr;
        if let Some(bits) = self.presence.get_mut(&line_addr) {
            *bits &= !CoherenceSide::Cpu.bit();
        }
        if let Some(mut ops) = self.probing.remove(&line_addr) {
            for op in ops.drain(..) {
                self.access_line(op, ctx);
            }
            self.retire_waiters(ops);
        }
    }
}

impl Module for Cache {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        if let Msg::Packet(pkt) = msg {
            match pkt.cmd {
                MemCmd::ReadReq | MemCmd::WriteReq => self.handle_request(pkt, ctx),
                MemCmd::ReadResp => self.handle_fill(&pkt, ctx),
                MemCmd::SnoopInv => self.handle_snoop(pkt, ctx),
                MemCmd::SnoopInvAck => self.handle_snoop_ack(&pkt, ctx),
                MemCmd::WriteResp => {} // writeback acks are dropped
            }
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("hits", self.hits as f64);
        out.add("misses", self.misses as f64);
        out.add("evictions", self.evictions as f64);
        out.add("writebacks", self.writebacks as f64);
        out.add("snoops_sent", self.snoops_sent as f64);
        out.add("snoops_received", self.snoops_received as f64);
        out.add("bytes", self.bytes as f64);
        if self.responses > 0 {
            out.add("avg_latency_ns", self.lat_sum_ns / self.responses as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_mem::{SimpleMemory, SimpleMemoryConfig};
    use accesys_sim::Kernel;

    const MEM_CFG: SimpleMemoryConfig = SimpleMemoryConfig {
        latency_ns: 50.0,
        bandwidth_gbps: 16.0,
    };

    /// Scripted requester: issues (addr, size, write) tuples serially.
    struct Script {
        target: ModuleId,
        ops: Vec<(u64, u32, bool)>,
        next: usize,
        stream: u16,
        done: Vec<Tick>,
        name: &'static str,
    }

    impl Script {
        fn issue(&mut self, ctx: &mut Ctx) {
            let (addr, size, write) = self.ops[self.next];
            self.next += 1;
            let cmd = if write {
                MemCmd::WriteReq
            } else {
                MemCmd::ReadReq
            };
            let mut p = Packet::request(ctx.alloc_pkt_id(), cmd, addr, size, ctx.now());
            p.stream = self.stream;
            p.route.push(ctx.self_id());
            ctx.send(self.target, 0, Msg::packet(p));
        }
    }

    impl Module for Script {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            match msg {
                Msg::Timer(_) => self.issue(ctx),
                Msg::Packet(p) => {
                    assert!(p.cmd.is_response());
                    self.done.push(ctx.now());
                    if self.next < self.ops.len() {
                        self.issue(ctx);
                    }
                }
                _ => {}
            }
        }
    }

    fn run_script(cfg: CacheConfig, ops: Vec<(u64, u32, bool)>) -> (Vec<Tick>, Stats) {
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new("mem", MEM_CFG)));
        let cache = k.add_module(Box::new(Cache::new("c", cfg, mem)));
        let s = k.add_module(Box::new(Script {
            target: cache,
            ops,
            next: 0,
            stream: 0,
            done: vec![],
            name: "script",
        }));
        k.schedule(0, s, Msg::Timer(0));
        k.run_until_idle().unwrap();
        (k.module::<Script>(s).unwrap().done.clone(), k.stats())
    }

    #[test]
    fn second_access_hits() {
        let (done, stats) = run_script(
            CacheConfig::l1(64 << 10),
            vec![(0x1000, 64, false), (0x1000, 64, false)],
        );
        assert_eq!(stats.get_or_zero("c.misses"), 1.0);
        assert_eq!(stats.get_or_zero("c.hits"), 1.0);
        // Hit completes in ~1 ns, miss took >50 ns.
        let miss_time = done[0];
        let hit_time = done[1] - done[0];
        assert!(miss_time > units::ns(50.0));
        assert!(hit_time <= units::ns(2.0));
    }

    #[test]
    fn writes_allocate_and_dirty_lines_write_back() {
        let mut cfg = CacheConfig::l1(1 << 10); // 16 lines, 4-way, 4 sets
        cfg.mshrs = 16;
        // Write one line, then stream enough conflicting lines through the
        // same set to evict it.
        let mut ops = vec![(0x0, 64, true)];
        let set_stride = 4 * 64; // num_sets * line
        for i in 1..=4 {
            ops.push((i * set_stride, 64, false));
        }
        let (_, stats) = run_script(cfg, ops);
        assert!(stats.get_or_zero("c.evictions") >= 1.0);
        assert_eq!(stats.get_or_zero("c.writebacks"), 1.0);
        // The writeback reached memory as a write.
        assert_eq!(stats.get_or_zero("mem.writes"), 1.0);
    }

    #[test]
    fn multi_line_request_fetches_every_line() {
        let (done, stats) = run_script(CacheConfig::l1(64 << 10), vec![(0x0, 1024, false)]);
        assert_eq!(done.len(), 1);
        assert_eq!(stats.get_or_zero("c.misses"), 16.0);
        assert_eq!(stats.get_or_zero("mem.reads"), 16.0);
    }

    #[test]
    fn mshr_coalesces_same_line() {
        // Two parallel reads of the same line: only one memory fill.
        struct Pair {
            target: ModuleId,
            got: u32,
        }
        impl Module for Pair {
            fn name(&self) -> &str {
                "pair"
            }
            fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
                match msg {
                    Msg::Timer(_) => {
                        for _ in 0..2 {
                            let mut p = Packet::request(
                                ctx.alloc_pkt_id(),
                                MemCmd::ReadReq,
                                0x40,
                                64,
                                ctx.now(),
                            );
                            p.route.push(ctx.self_id());
                            ctx.send(self.target, 0, Msg::packet(p));
                        }
                    }
                    Msg::Packet(_) => self.got += 1,
                    _ => {}
                }
            }
        }
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new("mem", MEM_CFG)));
        let cache = k.add_module(Box::new(Cache::new("c", CacheConfig::l1(64 << 10), mem)));
        let p = k.add_module(Box::new(Pair {
            target: cache,
            got: 0,
        }));
        k.schedule(0, p, Msg::Timer(0));
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Pair>(p).unwrap().got, 2);
        assert_eq!(k.stats().get_or_zero("mem.reads"), 1.0);
    }

    #[test]
    fn snoop_invalidates_and_writes_back() {
        // CPU-side L1 holds a dirty line; a snoop must push it to memory
        // and invalidate.
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new("mem", MEM_CFG)));
        let l1 = k.add_module(Box::new(Cache::new("l1", CacheConfig::l1(64 << 10), mem)));
        let s = k.add_module(Box::new(Script {
            target: l1,
            ops: vec![(0x200, 64, true)],
            next: 0,
            stream: 0,
            done: vec![],
            name: "script",
        }));
        k.schedule(0, s, Msg::Timer(0));
        k.run_until_idle().unwrap();

        // Deliver a snoop from a fake coherence point.
        struct Prober {
            got_ack: bool,
        }
        impl Module for Prober {
            fn name(&self) -> &str {
                "prober"
            }
            fn handle(&mut self, msg: Msg, _ctx: &mut Ctx) {
                if let Msg::Packet(p) = msg {
                    assert_eq!(p.cmd, MemCmd::SnoopInvAck);
                    self.got_ack = true;
                }
            }
        }
        let prober = k.add_module(Box::new(Prober { got_ack: false }));
        let mut probe = Packet::request(9999, MemCmd::SnoopInv, 0x200, 64, 0);
        probe.route.push(prober);
        k.schedule(k.now(), l1, Msg::packet(probe));
        k.run_until_idle().unwrap();
        assert!(k.module::<Prober>(prober).unwrap().got_ack);
        let stats = k.stats();
        assert_eq!(stats.get_or_zero("l1.writebacks"), 1.0);
        assert_eq!(stats.get_or_zero("mem.writes"), 1.0);
        // Re-reading the line now misses (it was invalidated).
        let s2 = k.add_module(Box::new(Script {
            target: l1,
            ops: vec![(0x200, 64, false)],
            next: 0,
            stream: 0,
            done: vec![],
            name: "script2",
        }));
        k.schedule(k.now(), s2, Msg::Timer(0));
        k.run_until_idle().unwrap();
        assert_eq!(k.stats().get_or_zero("l1.misses"), 2.0);
    }

    #[test]
    fn coherence_point_probes_cpu_side_for_io_traffic() {
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new("mem", MEM_CFG)));
        // Build LLC first so we can hand its id to nothing; order: mem, l1, llc.
        let l1 = k.add_module(Box::new(Cache::new("l1", CacheConfig::l1(64 << 10), mem)));
        let llc = k.add_module(Box::new(
            Cache::new("llc", CacheConfig::llc(2 << 20), mem).with_coherence(CoherentConfig {
                cpu_cache: l1,
                io_stream_base: 16,
            }),
        ));
        // CPU writes a line through the LLC (stream 0): presence[cpu] set.
        let cpu = k.add_module(Box::new(Script {
            target: llc,
            ops: vec![(0x4000, 64, true)],
            next: 0,
            stream: 0,
            done: vec![],
            name: "cpu_script",
        }));
        k.schedule(0, cpu, Msg::Timer(0));
        k.run_until_idle().unwrap();
        // I/O reads the same line (stream 16): LLC must snoop the L1.
        let io = k.add_module(Box::new(Script {
            target: llc,
            ops: vec![(0x4000, 64, false)],
            next: 0,
            stream: 16,
            done: vec![],
            name: "io_script",
        }));
        k.schedule(k.now(), io, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let stats = k.stats();
        assert_eq!(stats.get_or_zero("llc.snoops_sent"), 1.0);
        assert_eq!(stats.get_or_zero("l1.snoops_received"), 1.0);
        assert_eq!(k.module::<Script>(io).unwrap().done.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Direct check on a tiny 2-way cache: touch A, B, re-touch A,
        // insert C -> B must be the victim, so re-reading A still hits.
        let cfg = CacheConfig {
            size_bytes: 2 * 64, // one set, two ways
            assoc: 2,
            line_bytes: 64,
            hit_latency_ns: 1.0,
            lookup_latency_ns: 0.5,
            mshrs: 4,
        };
        let a = 0x0;
        let b = 0x40;
        let c = 0x80;
        let (_, stats) = run_script(
            cfg,
            vec![
                (a, 64, false), // miss
                (b, 64, false), // miss
                (a, 64, false), // hit, refresh LRU
                (c, 64, false), // miss, evicts b
                (a, 64, false), // hit
                (b, 64, false), // miss
            ],
        );
        assert_eq!(stats.get_or_zero("c.hits"), 2.0);
        assert_eq!(stats.get_or_zero("c.misses"), 4.0);
    }
}
