//! Fixed-latency, bandwidth-limited memory (gem5's default DRAM model).

use accesys_sim::{units, Ctx, MemCmd, Module, Msg, Stats, Tick};

/// Configuration for [`SimpleMemory`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SimpleMemoryConfig {
    /// Flat access latency in nanoseconds (applied after serialization).
    pub latency_ns: f64,
    /// Peak bandwidth in GB/s used to serialize back-to-back accesses.
    pub bandwidth_gbps: f64,
}

impl Default for SimpleMemoryConfig {
    fn default() -> Self {
        SimpleMemoryConfig {
            latency_ns: 30.0,
            bandwidth_gbps: 12.8,
        }
    }
}

/// A memory endpoint with fixed latency and a bandwidth pipe.
///
/// Requests are serialized through a single service resource at
/// `bandwidth_gbps`; each then completes `latency_ns` later. This is the
/// model the paper uses for the Fig. 6 "memory bandwidth and latency
/// sweeping" study ("gem5's default DRAM model").
///
/// ```
/// use accesys_mem::{SimpleMemory, SimpleMemoryConfig};
/// use accesys_sim::{Kernel, Msg, Packet, MemCmd};
///
/// let mut kernel = Kernel::new();
/// let cfg = SimpleMemoryConfig { latency_ns: 10.0, bandwidth_gbps: 8.0 };
/// let mem = kernel.add_module(Box::new(SimpleMemory::new("dram", cfg)));
/// let pkt = Packet::request(0, MemCmd::ReadReq, 0x80, 64, 0);
/// kernel.schedule(0, mem, Msg::packet(pkt));
/// // 64 B at 8 GB/s = 8 ns serialization + 10 ns latency: response at 18 ns.
/// // (The response is dropped here because the route stack is empty.)
/// ```
#[derive(Debug)]
pub struct SimpleMemory {
    name: String,
    cfg: SimpleMemoryConfig,
    next_free: Tick,
    reads: u64,
    writes: u64,
    bytes: u64,
    busy_time: Tick,
    lat_sum_ns: f64,
}

impl SimpleMemory {
    /// Create a memory endpoint with the given instance `name`.
    pub fn new(name: &str, cfg: SimpleMemoryConfig) -> Self {
        assert!(cfg.bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(cfg.latency_ns >= 0.0, "latency must be non-negative");
        SimpleMemory {
            name: name.to_string(),
            cfg,
            next_free: 0,
            reads: 0,
            writes: 0,
            bytes: 0,
            busy_time: 0,
            lat_sum_ns: 0.0,
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> SimpleMemoryConfig {
        self.cfg
    }

    /// Total bytes served.
    pub fn bytes_served(&self) -> u64 {
        self.bytes
    }
}

impl Module for SimpleMemory {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        let mut pkt = match msg {
            Msg::Packet(p) => p,
            // Memory has no timers or credits; ignore stray control traffic.
            _ => return,
        };
        debug_assert!(
            matches!(pkt.cmd, MemCmd::ReadReq | MemCmd::WriteReq),
            "memory got non-request {:?}",
            pkt.cmd
        );
        match pkt.cmd {
            MemCmd::ReadReq => self.reads += 1,
            MemCmd::WriteReq => self.writes += 1,
            _ => {}
        }
        self.bytes += u64::from(pkt.size);

        let ser = units::transfer_time(u64::from(pkt.size), self.cfg.bandwidth_gbps);
        let start = self.next_free.max(ctx.now());
        let data_ready = start + ser;
        self.next_free = data_ready;
        self.busy_time += ser;
        let done = data_ready + units::ns(self.cfg.latency_ns);
        self.lat_sum_ns += units::to_ns(done - ctx.now());

        pkt.make_response();
        if let Some(next) = pkt.route.pop() {
            ctx.send_at(next, done, Msg::Packet(pkt));
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("reads", self.reads as f64);
        out.add("writes", self.writes as f64);
        out.add("bytes", self.bytes as f64);
        out.add("busy_ns", units::to_ns(self.busy_time));
        let n = (self.reads + self.writes) as f64;
        if n > 0.0 {
            out.add("avg_latency_ns", self.lat_sum_ns / n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_sim::{Kernel, ModuleId, Packet};

    /// Requester that fires `n` back-to-back line reads and records
    /// response times.
    struct Requester {
        mem: ModuleId,
        n: u32,
        size: u32,
        done_at: Vec<Tick>,
    }

    impl Module for Requester {
        fn name(&self) -> &str {
            "req"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            match msg {
                Msg::Timer(_) => {
                    for _ in 0..self.n {
                        let mut p = Packet::request(
                            ctx.alloc_pkt_id(),
                            MemCmd::ReadReq,
                            0x1000,
                            self.size,
                            ctx.now(),
                        );
                        p.route.push(ctx.self_id());
                        ctx.send(self.mem, 0, Msg::packet(p));
                    }
                }
                Msg::Packet(p) => {
                    assert_eq!(p.cmd, MemCmd::ReadResp);
                    self.done_at.push(ctx.now());
                }
                _ => {}
            }
        }
    }

    fn run(n: u32, size: u32, cfg: SimpleMemoryConfig) -> Vec<Tick> {
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new("m", cfg)));
        let req = k.add_module(Box::new(Requester {
            mem,
            n,
            size,
            done_at: vec![],
        }));
        k.schedule(0, req, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let r = k.module::<Requester>(req).unwrap();
        r.done_at.clone()
    }

    #[test]
    fn single_read_latency_is_serialization_plus_latency() {
        let cfg = SimpleMemoryConfig {
            latency_ns: 10.0,
            bandwidth_gbps: 8.0,
        };
        let done = run(1, 64, cfg);
        // 64 B / 8 GB/s = 8 ns, + 10 ns flat.
        assert_eq!(done, vec![units::ns(18.0)]);
    }

    #[test]
    fn back_to_back_reads_are_bandwidth_limited() {
        let cfg = SimpleMemoryConfig {
            latency_ns: 10.0,
            bandwidth_gbps: 8.0,
        };
        let done = run(4, 64, cfg);
        // Serialization staggers completions by 8 ns each.
        assert_eq!(
            done,
            vec![
                units::ns(18.0),
                units::ns(26.0),
                units::ns(34.0),
                units::ns(42.0)
            ]
        );
    }

    #[test]
    fn doubling_bandwidth_halves_stream_time() {
        let slow = SimpleMemoryConfig {
            latency_ns: 0.0,
            bandwidth_gbps: 4.0,
        };
        let fast = SimpleMemoryConfig {
            latency_ns: 0.0,
            bandwidth_gbps: 8.0,
        };
        let t_slow = *run(32, 256, slow).last().unwrap();
        let t_fast = *run(32, 256, fast).last().unwrap();
        assert_eq!(t_slow, 2 * t_fast);
    }

    #[test]
    fn stats_count_traffic() {
        let mut k = Kernel::new();
        let cfg = SimpleMemoryConfig::default();
        let mem = k.add_module(Box::new(SimpleMemory::new("m", cfg)));
        let req = k.add_module(Box::new(Requester {
            mem,
            n: 3,
            size: 128,
            done_at: vec![],
        }));
        k.schedule(0, req, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let stats = k.stats();
        assert_eq!(stats.get("m.reads"), Some(3.0));
        assert_eq!(stats.get("m.bytes"), Some(384.0));
    }
}
