//! Memory technology presets following Table III of the paper.

use crate::{AddressMapping, DramConfig, DramPower, DramTiming, PagePolicy};

/// Memory technology, with the channel/width/bandwidth/data-rate
/// configuration of Table III (plus GDDR5 and LPDDR5, which the paper's
/// Fig. 5 evaluates but the table omits).
///
/// ```
/// use accesys_mem::MemTech;
///
/// assert_eq!(MemTech::Ddr4.bandwidth_gbps(), 19.2);
/// assert_eq!(MemTech::Hbm2.channels(), 2);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum MemTech {
    /// DDR3-1600: 1 channel × 64 bit, 12.8 GB/s.
    Ddr3,
    /// DDR4-2400: 1 channel × 64 bit, 19.2 GB/s.
    Ddr4,
    /// DDR5-3200: 2 channels × 32 bit, 25.6 GB/s.
    Ddr5,
    /// HBM2-2000: 2 channels × 128 bit, 64 GB/s.
    Hbm2,
    /// GDDR5-2000: 2 channels × 64 bit, 32 GB/s.
    Gddr5,
    /// GDDR6-2000: 2 channels × 64 bit, 32 GB/s (lower latency than GDDR5).
    Gddr6,
    /// LPDDR5-6400: 1 channel × 32 bit, 25.6 GB/s, mobile-class latency.
    Lpddr5,
}

impl MemTech {
    /// All technologies, in Table III order then the Fig. 5 extras.
    pub const ALL: [MemTech; 7] = [
        MemTech::Ddr3,
        MemTech::Ddr4,
        MemTech::Ddr5,
        MemTech::Hbm2,
        MemTech::Gddr5,
        MemTech::Gddr6,
        MemTech::Lpddr5,
    ];

    /// Number of channels (Table III "Channel").
    pub fn channels(self) -> u32 {
        match self {
            MemTech::Ddr3 | MemTech::Ddr4 | MemTech::Lpddr5 => 1,
            MemTech::Ddr5 | MemTech::Hbm2 | MemTech::Gddr5 | MemTech::Gddr6 => 2,
        }
    }

    /// Per-channel data width in bits (Table III "Data width").
    pub fn data_width_bits(self) -> u32 {
        match self {
            MemTech::Ddr3 | MemTech::Ddr4 | MemTech::Gddr5 | MemTech::Gddr6 => 64,
            MemTech::Ddr5 | MemTech::Lpddr5 => 32,
            MemTech::Hbm2 => 128,
        }
    }

    /// Data rate in MT/s (Table III "Data Rate").
    pub fn data_rate_mts(self) -> u32 {
        match self {
            MemTech::Ddr3 => 1600,
            MemTech::Ddr4 => 2400,
            MemTech::Ddr5 => 3200,
            MemTech::Hbm2 | MemTech::Gddr5 | MemTech::Gddr6 => 2000,
            MemTech::Lpddr5 => 6400,
        }
    }

    /// Aggregate peak bandwidth in GB/s (Table III "Bandwidth"):
    /// channels × width/8 × rate.
    pub fn bandwidth_gbps(self) -> f64 {
        self.channels() as f64 * (self.data_width_bits() as f64 / 8.0) * self.data_rate_mts() as f64
            / 1000.0
    }

    /// Core timing parameters (JEDEC-typical, first order).
    pub fn timing(self) -> DramTiming {
        // Command clock runs at half the data rate (DDR).
        let tck_ps = (2_000_000.0 / self.data_rate_mts() as f64).round() as u64;
        // tCCD is the short (cross-bank-group) spacing so a streaming
        // pattern can saturate the data bus, as real controllers do by
        // rotating bank groups.
        let (cl, trcd, trp, tras, tccd, burst_len) = match self {
            MemTech::Ddr3 => (11, 11, 11, 28, 4, 8),
            MemTech::Ddr4 => (17, 17, 17, 39, 4, 8),
            MemTech::Ddr5 => (26, 26, 26, 52, 8, 16),
            MemTech::Hbm2 => (14, 14, 14, 34, 2, 4),
            MemTech::Gddr5 => (15, 15, 15, 35, 4, 8),
            MemTech::Gddr6 => (14, 14, 14, 32, 4, 8),
            MemTech::Lpddr5 => (36, 36, 42, 84, 8, 16),
        };
        // JEDEC-typical refresh: tREFI 7.8 µs at normal temperature
        // (3.9 µs for the fine-granularity stacks), tRFC per density class.
        let (trefi_ns, trfc_ns) = match self {
            MemTech::Ddr3 => (7800.0, 300.0),
            MemTech::Ddr4 => (7800.0, 350.0),
            MemTech::Ddr5 => (3900.0, 295.0),
            MemTech::Hbm2 => (3900.0, 260.0),
            MemTech::Gddr5 | MemTech::Gddr6 => (1900.0, 120.0),
            MemTech::Lpddr5 => (3900.0, 280.0),
        };
        DramTiming {
            tck_ps,
            cl,
            trcd,
            trp,
            tras,
            tccd,
            burst_len,
            trefi_ns,
            trfc_ns,
        }
    }

    /// Per-command energy parameters (datasheet-class, first order).
    pub fn power(self) -> DramPower {
        // pJ/bit data movement: stacked < mobile < graphics < commodity.
        let (act_pre_pj, pj_per_bit, refresh_pj, background_mw) = match self {
            MemTech::Ddr3 => (2800.0, 40.0, 60_000.0, 110.0),
            MemTech::Ddr4 => (2200.0, 25.0, 55_000.0, 95.0),
            MemTech::Ddr5 => (1900.0, 18.0, 45_000.0, 90.0),
            MemTech::Hbm2 => (900.0, 3.9, 30_000.0, 160.0),
            MemTech::Gddr5 => (1700.0, 14.0, 35_000.0, 140.0),
            MemTech::Gddr6 => (1500.0, 12.0, 32_000.0, 130.0),
            MemTech::Lpddr5 => (1100.0, 8.0, 28_000.0, 35.0),
        };
        DramPower {
            act_pre_pj,
            pj_per_bit,
            refresh_pj,
            background_mw,
        }
    }

    /// Full controller configuration for this technology.
    pub fn dram_config(self) -> DramConfig {
        DramConfig {
            timing: self.timing(),
            channels: self.channels(),
            banks: match self {
                MemTech::Hbm2 => 16,
                MemTech::Gddr5 | MemTech::Gddr6 => 16,
                _ => 8,
            },
            data_width_bits: self.data_width_bits(),
            row_bytes: 2048,
            mapping: AddressMapping::default(),
            page_policy: PagePolicy::default(),
            power: self.power(),
        }
    }
}

impl std::fmt::Display for MemTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MemTech::Ddr3 => "DDR3",
            MemTech::Ddr4 => "DDR4",
            MemTech::Ddr5 => "DDR5",
            MemTech::Hbm2 => "HBM2",
            MemTech::Gddr5 => "GDDR5",
            MemTech::Gddr6 => "GDDR6",
            MemTech::Lpddr5 => "LPDDR5",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_bandwidths() {
        assert_eq!(MemTech::Ddr3.bandwidth_gbps(), 12.8);
        assert_eq!(MemTech::Ddr4.bandwidth_gbps(), 19.2);
        assert_eq!(MemTech::Ddr5.bandwidth_gbps(), 25.6);
        assert_eq!(MemTech::Hbm2.bandwidth_gbps(), 64.0);
        assert_eq!(MemTech::Gddr6.bandwidth_gbps(), 32.0);
    }

    #[test]
    fn burst_sizes_cover_a_cache_line() {
        // One burst should move a 64 B line (or half of one for narrow
        // channels at BL16 it is exactly 64 B as well).
        for tech in MemTech::ALL {
            let t = tech.timing();
            let burst_bytes = tech.data_width_bits() / 8 * t.burst_len;
            assert!(
                burst_bytes == 64 || burst_bytes == 128,
                "{tech}: burst of {burst_bytes} B"
            );
        }
    }

    #[test]
    fn clock_matches_data_rate() {
        assert_eq!(MemTech::Ddr3.timing().tck_ps, 1250); // 800 MHz
        assert_eq!(MemTech::Hbm2.timing().tck_ps, 1000); // 1 GHz
    }
}
