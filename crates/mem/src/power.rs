//! DRAM energy model — the DRAMsim3-style power statistics the paper
//! gets from its external DRAM simulators.
//!
//! The model is command-based: each ACT/PRE pair, column burst and
//! refresh contributes a fixed energy, and each channel burns a constant
//! background power while the device is powered. Absolute joules are
//! first-order (datasheet-class, not SPICE), but the *relative* ordering
//! across technologies — HBM2's low pJ/bit versus DDR3's high — is the
//! signal a system architect reads from these numbers.

/// Per-command energy and background power for one DRAM channel.
///
/// ```
/// use accesys_mem::{DramPower, MemTech};
///
/// let hbm = MemTech::Hbm2.power();
/// let ddr3 = MemTech::Ddr3.power();
/// // HBM moves bits far more efficiently than DDR3.
/// assert!(hbm.pj_per_bit < ddr3.pj_per_bit / 2.0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DramPower {
    /// Energy of one ACT + PRE pair, in picojoules.
    pub act_pre_pj: f64,
    /// Read/write data movement energy, in picojoules per bit.
    pub pj_per_bit: f64,
    /// Energy of one all-bank refresh of one channel, in picojoules.
    pub refresh_pj: f64,
    /// Background (standby + peripheral) power per channel, in milliwatts.
    pub background_mw: f64,
}

impl DramPower {
    /// Energy of a column burst moving `bytes` bytes, in picojoules.
    pub fn burst_pj(&self, bytes: u32) -> f64 {
        self.pj_per_bit * f64::from(bytes) * 8.0
    }

    /// Background energy over `ns` nanoseconds for `channels` channels,
    /// in picojoules (1 mW × 1 ns = 1 pJ).
    pub fn background_pj(&self, ns: f64, channels: u32) -> f64 {
        self.background_mw * ns * f64::from(channels)
    }
}

/// Accumulated energy of one [`crate::Dram`] instance, in picojoules.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// ACT + PRE energy.
    pub act_pj: f64,
    /// Read burst energy.
    pub read_pj: f64,
    /// Write burst energy.
    pub write_pj: f64,
    /// Refresh energy.
    pub refresh_pj: f64,
    /// Background energy (computed over the active window).
    pub background_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.act_pj + self.read_pj + self.write_pj + self.refresh_pj + self.background_pj
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.total_pj() / 1000.0
    }

    /// Average power over `window_ns`, in milliwatts (0 for an empty window).
    pub fn avg_power_mw(&self, window_ns: f64) -> f64 {
        if window_ns <= 0.0 {
            0.0
        } else {
            self.total_pj() / window_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemTech;

    #[test]
    fn burst_energy_scales_with_bytes() {
        let p = MemTech::Ddr4.power();
        assert!((p.burst_pj(128) - 2.0 * p.burst_pj(64)).abs() < 1e-9);
        assert!(p.burst_pj(64) > 0.0);
    }

    #[test]
    fn background_energy_scales_with_time_and_channels() {
        let p = MemTech::Hbm2.power();
        let one = p.background_pj(100.0, 1);
        assert!((p.background_pj(200.0, 1) - 2.0 * one).abs() < 1e-9);
        assert!((p.background_pj(100.0, 2) - 2.0 * one).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = EnergyBreakdown {
            act_pj: 1.0,
            read_pj: 2.0,
            write_pj: 3.0,
            refresh_pj: 4.0,
            background_pj: 5.0,
        };
        assert_eq!(b.total_pj(), 15.0);
        assert_eq!(b.total_nj(), 0.015);
        assert_eq!(b.avg_power_mw(15.0), 1.0);
        assert_eq!(b.avg_power_mw(0.0), 0.0);
    }

    #[test]
    fn efficiency_ordering_matches_technology_class() {
        // pJ/bit: stacked (HBM) < mobile (LPDDR) < graphics < commodity DDR.
        let pj = |t: MemTech| t.power().pj_per_bit;
        assert!(pj(MemTech::Hbm2) < pj(MemTech::Lpddr5));
        assert!(pj(MemTech::Lpddr5) < pj(MemTech::Gddr6));
        assert!(pj(MemTech::Gddr6) < pj(MemTech::Ddr4));
        assert!(pj(MemTech::Ddr4) < pj(MemTech::Ddr3));
    }
}
