//! # accesys-mem
//!
//! DRAM subsystem models for the Gem5-AcceSys reproduction.
//!
//! Two backends are provided, mirroring the paper's setup:
//!
//! * [`SimpleMemory`] — gem5's "default DRAM model": a fixed access latency
//!   plus a bandwidth-limited service pipe. Used for the Fig. 6 bandwidth
//!   and latency sweeps where the paper varies one knob at a time.
//! * [`Dram`] — a Ramulator-class timing model with channels, banks, row
//!   buffers and an FR-FCFS scheduler, configured through [`DramConfig`]
//!   presets that follow Table III of the paper ([`MemTech`]).
//!
//! Both are [`accesys_sim::Module`]s answering `ReadReq`/`WriteReq`
//! packets with responses routed back over the packet's route stack.

mod dram;
mod power;
mod simple;
mod tech;

pub use dram::{AddressMapping, Dram, DramConfig, DramTiming, PagePolicy};
pub use power::{DramPower, EnergyBreakdown};
pub use simple::{SimpleMemory, SimpleMemoryConfig};
pub use tech::MemTech;
