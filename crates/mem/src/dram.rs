//! Ramulator-class DRAM timing model: channels, banks, rows, FR-FCFS,
//! refresh, page policies, address mapping and an energy model.

use crate::{DramPower, EnergyBreakdown};
use accesys_sim::{units, Ctx, Histogram, MemCmd, Module, Msg, PacketBox, Stats, Tick};
use std::collections::VecDeque;

/// How physical addresses map onto channel / bank / row.
///
/// Real controllers expose exactly this knob (Ramulator's `mapping`
/// files, DRAMsim3's address scheme strings); the choice decides whether
/// a streaming accelerator sees channel parallelism, bank parallelism or
/// row locality first.
#[derive(
    Copy, Clone, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize,
)]
pub enum AddressMapping {
    /// Channel interleaved per 64 B line, bank switched per row
    /// (default): streams hit every channel and stay in one row per bank.
    #[default]
    LineChannelRowBank,
    /// Channel *and* bank interleaved per line: adjacent lines land in
    /// different banks, trading row locality for bank parallelism.
    LineChannelLineBank,
    /// Channel interleaved per row: a stream occupies one channel for a
    /// whole row before moving on (NUMA-friendly, parallelism-poor).
    RowChannelRowBank,
}

/// Row-buffer management policy.
#[derive(
    Copy, Clone, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize,
)]
pub enum PagePolicy {
    /// Keep the row open after an access (bets on locality; default).
    #[default]
    Open,
    /// Precharge immediately after each request completes (bets against
    /// locality; turns would-be conflicts into plain misses).
    Closed,
}

/// Core DRAM timing parameters, in command-clock cycles unless noted.
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct DramTiming {
    /// Command clock period in picoseconds (data rate is 2× this clock).
    pub tck_ps: u64,
    /// CAS latency: column command → first data beat.
    pub cl: u32,
    /// RAS-to-CAS delay: activate → column command.
    pub trcd: u32,
    /// Row precharge time.
    pub trp: u32,
    /// Minimum activate-to-precharge interval.
    pub tras: u32,
    /// Column-to-column command spacing.
    pub tccd: u32,
    /// Burst length in beats (data beats per column command).
    pub burst_len: u32,
    /// Average refresh interval in nanoseconds (JEDEC tREFI; 0 disables
    /// refresh).
    pub trefi_ns: f64,
    /// Refresh cycle time in nanoseconds (tRFC): the channel is blocked
    /// this long per refresh.
    pub trfc_ns: f64,
}

impl DramTiming {
    /// Cycles the data bus is occupied by one burst (DDR: two beats/cycle).
    pub fn burst_cycles(&self) -> u32 {
        self.burst_len.div_ceil(2)
    }

    fn cycles(&self, n: u32) -> Tick {
        u64::from(n) * self.tck_ps
    }
}

/// Configuration of a [`Dram`] device + controller.
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct DramConfig {
    /// Timing parameters.
    pub timing: DramTiming,
    /// Independent channels (interleaving per [`AddressMapping`]).
    pub channels: u32,
    /// Banks per channel.
    pub banks: u32,
    /// Per-channel data bus width in bits.
    pub data_width_bits: u32,
    /// Row (page) size in bytes per bank.
    pub row_bytes: u32,
    /// Physical-address decode scheme.
    pub mapping: AddressMapping,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Per-command energy model.
    pub power: DramPower,
}

impl DramConfig {
    /// Bytes moved by one column command on this channel.
    pub fn burst_bytes(&self) -> u32 {
        self.data_width_bits / 8 * self.timing.burst_len
    }

    /// Aggregate peak bandwidth in GB/s.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        // Two beats per clock, width/8 bytes per beat, per channel.
        let per_channel =
            (self.data_width_bits as f64 / 8.0) * 2.0 / (self.timing.tck_ps as f64 / 1000.0);
        per_channel * self.channels as f64
    }
}

#[derive(Copy, Clone, Debug)]
struct Bank {
    open_row: Option<u64>,
    /// Earliest tick the next column command may issue on this bank.
    col_ready: Tick,
    /// Earliest tick a precharge may issue (tRAS from last activate).
    pre_ready: Tick,
    /// Earliest tick an activate may issue (tRP after precharge).
    act_ready: Tick,
}

impl Bank {
    fn new() -> Self {
        Bank {
            open_row: None,
            col_ready: 0,
            pre_ready: 0,
            act_ready: 0,
        }
    }
}

#[derive(Debug)]
struct Pending {
    // Boxed by the Msg that delivered it; the same box is re-sent as the
    // response, so a DRAM transaction never reallocates its packet.
    pkt: PacketBox,
    arrived: Tick,
    bank: u32,
    row: u64,
    bursts_left: u32,
}

#[derive(Debug)]
struct Channel {
    queue: VecDeque<Pending>,
    banks: Vec<Bank>,
    bus_free: Tick,
    wake_armed: bool,
    /// Scheduled time of the next refresh (tick); `Tick::MAX` disables.
    next_ref: Tick,
}

/// A DRAM device with per-bank row-buffer state and an FR-FCFS scheduler.
///
/// Each channel services one burst per column command; requests larger
/// than one burst occupy the data bus for multiple bursts. Row hits skip
/// the ACT/PRE sequence, so streaming access patterns reach near-peak
/// bandwidth while random patterns pay tRP+tRCD — the first-order
/// behaviour the paper gets from Ramulator2. Refresh blocks a channel
/// for tRFC every tREFI, and every command feeds the [`DramPower`]
/// energy model.
///
/// ```
/// use accesys_mem::{Dram, MemTech};
///
/// let dram = Dram::new("devmem", MemTech::Hbm2.dram_config());
/// assert_eq!(dram.config().channels, 2);
/// ```
#[derive(Debug)]
pub struct Dram {
    name: String,
    cfg: DramConfig,
    channels: Vec<Channel>,
    reads: u64,
    writes: u64,
    bytes: u64,
    row_hits: u64,
    row_misses: u64,
    row_conflicts: u64,
    refreshes: u64,
    lat: Histogram,
    last_activity: Tick,
    energy: EnergyBreakdown,
}

impl Dram {
    /// Create a DRAM endpoint with the given instance `name`.
    pub fn new(name: &str, cfg: DramConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.banks > 0);
        let first_ref = if cfg.timing.trefi_ns > 0.0 {
            units::ns(cfg.timing.trefi_ns)
        } else {
            Tick::MAX
        };
        let channels = (0..cfg.channels)
            .map(|_| Channel {
                queue: VecDeque::new(),
                banks: vec![Bank::new(); cfg.banks as usize],
                bus_free: 0,
                wake_armed: false,
                next_ref: first_ref,
            })
            .collect();
        Dram {
            name: name.to_string(),
            cfg,
            channels,
            reads: 0,
            writes: 0,
            bytes: 0,
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
            refreshes: 0,
            lat: Histogram::new(),
            last_activity: 0,
            energy: EnergyBreakdown::default(),
        }
    }

    /// The configuration this instance was built with.
    pub fn config(&self) -> DramConfig {
        self.cfg
    }

    /// Row-buffer hit rate observed so far (0 when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Energy consumed so far, including background power up to the last
    /// serviced command.
    pub fn energy(&self) -> EnergyBreakdown {
        let mut e = self.energy;
        e.background_pj = self
            .cfg
            .power
            .background_pj(units::to_ns(self.last_activity), self.cfg.channels);
        e
    }

    /// Decode `addr` into `(channel, bank, row)` per the configured
    /// [`AddressMapping`].
    pub fn decode(&self, addr: u64) -> (u32, u32, u64) {
        let line = addr / 64;
        let nch = u64::from(self.cfg.channels);
        let nbank = u64::from(self.cfg.banks);
        let lines_per_row = u64::from(self.cfg.row_bytes / 64);
        match self.cfg.mapping {
            AddressMapping::LineChannelRowBank => {
                let channel = (line % nch) as u32;
                let la = line / nch;
                let bank = ((la / lines_per_row) % nbank) as u32;
                let row = la / lines_per_row / nbank;
                (channel, bank, row)
            }
            AddressMapping::LineChannelLineBank => {
                let channel = (line % nch) as u32;
                let la = line / nch;
                let bank = (la % nbank) as u32;
                let row = la / nbank / lines_per_row;
                (channel, bank, row)
            }
            AddressMapping::RowChannelRowBank => {
                let row_idx = line / lines_per_row;
                let channel = (row_idx % nch) as u32;
                let ra = row_idx / nch;
                let bank = (ra % nbank) as u32;
                let row = ra / nbank;
                (channel, bank, row)
            }
        }
    }

    /// Apply any refreshes scheduled at or before `now` on channel `ch`,
    /// treating each as having run at its scheduled time (so long-idle
    /// periods don't serialize a backlog of tRFCs in front of new work).
    fn catch_up_refresh(&mut self, ch: usize, now: Tick) {
        let t = self.cfg.timing;
        if t.trefi_ns <= 0.0 {
            return;
        }
        let trefi = units::ns(t.trefi_ns);
        let trfc = units::ns(t.trfc_ns);
        let chan = &mut self.channels[ch];
        while chan.next_ref <= now {
            let ref_at = chan.next_ref;
            let ref_end = ref_at + trfc;
            for bank in chan.banks.iter_mut() {
                // Refresh closes every row and blocks new activates.
                bank.open_row = None;
                bank.act_ready = bank.act_ready.max(ref_end);
                bank.col_ready = bank.col_ready.max(ref_end);
            }
            chan.next_ref = ref_at + trefi;
            self.refreshes += 1;
            self.energy.refresh_pj += self.cfg.power.refresh_pj;
        }
    }

    /// Service at most one burst on `ch`; returns the next wake time if
    /// more work remains.
    fn service(&mut self, ch: usize, now: Tick, ctx: &mut Ctx) -> Option<Tick> {
        self.catch_up_refresh(ch, now);
        let t = self.cfg.timing;
        let chan = &mut self.channels[ch];
        if chan.queue.is_empty() {
            return None;
        }

        // FR-FCFS: oldest row hit whose bank can take a column command,
        // otherwise the oldest request overall.
        let mut pick = 0usize;
        let mut found_hit = false;
        for (i, p) in chan.queue.iter().enumerate() {
            let bank = &chan.banks[p.bank as usize];
            if bank.open_row == Some(p.row) {
                pick = i;
                found_hit = true;
                break;
            }
        }
        if !found_hit {
            pick = 0;
        }

        let p = &chan.queue[pick];
        let bank = chan.banks[p.bank as usize];
        // Determine when the column command can issue and classify the access.
        let (col_at, kind) = match bank.open_row {
            Some(r) if r == p.row => (bank.col_ready.max(now), RowKind::Hit),
            Some(_) => {
                let pre_at = bank.pre_ready.max(now);
                let act_at = (pre_at + t.cycles(t.trp)).max(bank.act_ready);
                (act_at + t.cycles(t.trcd), RowKind::Conflict)
            }
            None => {
                let act_at = bank.act_ready.max(now);
                (act_at + t.cycles(t.trcd), RowKind::Miss)
            }
        };
        // Data must also win the channel bus.
        let data_start = (col_at + t.cycles(t.cl)).max(chan.bus_free);
        let col_at = data_start - t.cycles(t.cl);
        let data_end = data_start + t.cycles(t.burst_cycles());

        // Commit state updates.
        let pbank = &mut chan.banks[p.bank as usize];
        match kind {
            RowKind::Hit => {}
            RowKind::Miss => {
                let act_at = col_at - t.cycles(t.trcd);
                pbank.pre_ready = act_at + t.cycles(t.tras);
            }
            RowKind::Conflict => {
                let act_at = col_at - t.cycles(t.trcd);
                pbank.act_ready = act_at;
                pbank.pre_ready = act_at + t.cycles(t.tras);
            }
        }
        pbank.open_row = Some(p.row);
        pbank.col_ready = col_at + t.cycles(t.tccd);
        chan.bus_free = data_end;
        match kind {
            RowKind::Hit => self.row_hits += 1,
            RowKind::Miss => {
                self.row_misses += 1;
                self.energy.act_pj += self.cfg.power.act_pre_pj;
            }
            RowKind::Conflict => {
                self.row_conflicts += 1;
                self.energy.act_pj += self.cfg.power.act_pre_pj;
            }
        }
        let burst_pj = self.cfg.power.burst_pj(self.cfg.burst_bytes());
        let chan = &mut self.channels[ch];
        let p = &mut chan.queue[pick];
        match p.pkt.cmd {
            MemCmd::ReadReq => self.energy.read_pj += burst_pj,
            MemCmd::WriteReq => self.energy.write_pj += burst_pj,
            _ => {}
        }
        self.last_activity = self.last_activity.max(data_end);

        p.bursts_left -= 1;
        let finished = p.bursts_left == 0;
        if finished {
            let mut done = chan.queue.remove(pick).expect("picked entry exists");
            if self.cfg.page_policy == PagePolicy::Closed {
                // Precharge as soon as tRAS allows once the data is out.
                let bank = &mut chan.banks[done.bank as usize];
                let pre_at = bank.pre_ready.max(data_end);
                bank.open_row = None;
                bank.act_ready = bank.act_ready.max(pre_at + t.cycles(t.trp));
            }
            self.bytes += u64::from(done.pkt.size);
            match done.pkt.cmd {
                MemCmd::ReadReq => self.reads += 1,
                MemCmd::WriteReq => self.writes += 1,
                _ => {}
            }
            self.lat
                .observe(units::to_ns(data_end.saturating_sub(done.arrived)));
            done.pkt.make_response();
            if let Some(next) = done.pkt.route.pop() {
                ctx.send_at(next, data_end, Msg::Packet(done.pkt));
            }
        }

        if self.channels[ch].queue.is_empty() {
            None
        } else {
            // Next column command can pipeline behind this one: wake at the
            // earlier of the bank's tCCD window and the point where a new
            // column command would still keep the data bus saturated.
            // Early wakes are safe (the scheduler just recomputes), late
            // wakes would insert CL-sized bubbles between bursts.
            let next_col = col_at + t.cycles(t.tccd);
            let keep_bus_busy = data_end.saturating_sub(t.cycles(t.cl));
            Some(next_col.min(keep_bus_busy).max(now + 1))
        }
    }

    fn kick(&mut self, ch: usize, ctx: &mut Ctx) {
        if !self.channels[ch].wake_armed {
            self.channels[ch].wake_armed = true;
            ctx.timer(0, ch as u64);
        }
    }
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum RowKind {
    Hit,
    Miss,
    Conflict,
}

impl Module for Dram {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::Packet(pkt) => {
                debug_assert!(pkt.cmd.is_request());
                let (ch, bank, row) = self.decode(pkt.addr);
                let bursts = pkt.size.div_ceil(self.cfg.burst_bytes()).max(1);
                let entry = Pending {
                    pkt,
                    arrived: ctx.now(),
                    bank,
                    row,
                    bursts_left: bursts,
                };
                self.channels[ch as usize].queue.push_back(entry);
                self.kick(ch as usize, ctx);
            }
            Msg::Timer(ch) => {
                let ch = ch as usize;
                self.channels[ch].wake_armed = false;
                let now = ctx.now();
                if let Some(next) = self.service(ch, now, ctx) {
                    self.channels[ch].wake_armed = true;
                    ctx.send_at(ctx.self_id(), next, Msg::Timer(ch as u64));
                }
            }
            _ => {}
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("reads", self.reads as f64);
        out.add("writes", self.writes as f64);
        out.add("bytes", self.bytes as f64);
        out.add("row_hits", self.row_hits as f64);
        out.add("row_misses", self.row_misses as f64);
        out.add("row_conflicts", self.row_conflicts as f64);
        out.add("refreshes", self.refreshes as f64);
        if self.lat.count() > 0 {
            out.add("avg_latency_ns", self.lat.mean());
            self.lat.report_into(out, "lat_ns");
        }
        let e = self.energy();
        out.set("energy_act_pj", e.act_pj);
        out.set("energy_read_pj", e.read_pj);
        out.set("energy_write_pj", e.write_pj);
        out.set("energy_refresh_pj", e.refresh_pj);
        out.set("energy_background_pj", e.background_pj);
        out.set("energy_total_nj", e.total_nj());
        let window_ns = units::to_ns(self.last_activity);
        if window_ns > 0.0 {
            out.set("avg_power_mw", e.avg_power_mw(window_ns));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemTech;
    use accesys_sim::{Kernel, ModuleId, Packet};

    /// Issues a fixed access pattern and collects completion times.
    /// In `serial` mode each request waits for the previous response,
    /// defeating FR-FCFS reordering.
    struct Driver {
        mem: ModuleId,
        addrs: Vec<u64>,
        size: u32,
        serial: bool,
        next: usize,
        done: Vec<Tick>,
    }

    impl Driver {
        fn issue(&mut self, ctx: &mut Ctx) {
            let a = self.addrs[self.next];
            self.next += 1;
            let mut p =
                Packet::request(ctx.alloc_pkt_id(), MemCmd::ReadReq, a, self.size, ctx.now());
            p.route.push(ctx.self_id());
            ctx.send(self.mem, 0, Msg::packet(p));
        }
    }

    impl Module for Driver {
        fn name(&self) -> &str {
            "drv"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            match msg {
                Msg::Timer(_) => {
                    if self.serial {
                        self.issue(ctx);
                    } else {
                        while self.next < self.addrs.len() {
                            self.issue(ctx);
                        }
                    }
                }
                Msg::Packet(p) => {
                    assert_eq!(p.cmd, MemCmd::ReadResp);
                    self.done.push(ctx.now());
                    if self.serial && self.next < self.addrs.len() {
                        self.issue(ctx);
                    }
                }
                _ => {}
            }
        }
    }

    fn run_cfg(cfg: DramConfig, addrs: Vec<u64>, size: u32, serial: bool) -> (Vec<Tick>, Stats) {
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(Dram::new("dram", cfg)));
        let drv = k.add_module(Box::new(Driver {
            mem,
            addrs,
            size,
            serial,
            next: 0,
            done: vec![],
        }));
        k.schedule(0, drv, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let done = k.module::<Driver>(drv).unwrap().done.clone();
        (done, k.stats())
    }

    fn run_mode(tech: MemTech, addrs: Vec<u64>, size: u32, serial: bool) -> (Vec<Tick>, Stats) {
        run_cfg(tech.dram_config(), addrs, size, serial)
    }

    fn run(tech: MemTech, addrs: Vec<u64>, size: u32) -> (Vec<Tick>, Stats) {
        run_mode(tech, addrs, size, false)
    }

    #[test]
    fn sequential_stream_is_mostly_row_hits() {
        let addrs: Vec<u64> = (0..128).map(|i| i * 64).collect();
        let (done, stats) = run(MemTech::Ddr4, addrs, 64);
        assert_eq!(done.len(), 128);
        let hits = stats.get_or_zero("dram.row_hits");
        let misses = stats.get_or_zero("dram.row_misses") + stats.get_or_zero("dram.row_conflicts");
        assert!(hits > 4.0 * misses, "hits={hits} misses={misses}");
    }

    #[test]
    fn random_rows_cause_conflicts() {
        // Hammer two rows in the same bank alternately, serially so
        // FR-FCFS cannot reorder the pattern away.
        let cfg = MemTech::Ddr4.dram_config();
        let stride = u64::from(cfg.row_bytes) * u64::from(cfg.banks) * u64::from(cfg.channels);
        let addrs: Vec<u64> = (0..32)
            .map(|i| if i % 2 == 0 { 0 } else { stride })
            .collect();
        let (_, stats) = run_mode(MemTech::Ddr4, addrs, 64, true);
        assert!(
            stats.get_or_zero("dram.row_conflicts") >= 30.0,
            "conflicts={}",
            stats.get_or_zero("dram.row_conflicts")
        );
    }

    #[test]
    fn frfcfs_reorders_batched_conflicts_into_hits() {
        // Same pattern, but issued all at once: FR-FCFS should serve each
        // row's requests together, turning conflicts into hits.
        let cfg = MemTech::Ddr4.dram_config();
        let stride = u64::from(cfg.row_bytes) * u64::from(cfg.banks) * u64::from(cfg.channels);
        let addrs: Vec<u64> = (0..32)
            .map(|i| if i % 2 == 0 { 0 } else { stride })
            .collect();
        let (_, stats) = run(MemTech::Ddr4, addrs, 64);
        assert!(stats.get_or_zero("dram.row_hits") >= 28.0);
        assert!(stats.get_or_zero("dram.row_conflicts") <= 2.0);
    }

    #[test]
    fn serial_row_conflicts_are_slower_than_hits() {
        let cfg = MemTech::Ddr4.dram_config();
        let stride = u64::from(cfg.row_bytes) * u64::from(cfg.banks) * u64::from(cfg.channels);
        let conflict: Vec<u64> = (0..32)
            .map(|i| if i % 2 == 0 { 0 } else { stride })
            .collect();
        let hits: Vec<u64> = (0..32).map(|i| (i % 2) * 64).collect();
        let (d_conf, _) = run_mode(MemTech::Ddr4, conflict, 64, true);
        let (d_hit, _) = run_mode(MemTech::Ddr4, hits, 64, true);
        assert!(d_conf.last().unwrap() > &(2 * *d_hit.last().unwrap()));
    }

    #[test]
    fn streaming_bandwidth_approaches_peak() {
        let cfg = MemTech::Ddr4.dram_config();
        let bytes: u64 = 1 << 20; // 1 MiB
        let addrs: Vec<u64> = (0..bytes / 64).map(|i| i * 64).collect();
        let (done, _) = run(MemTech::Ddr4, addrs, 64);
        let end_ns = units::to_ns(*done.iter().max().unwrap());
        let gbps = bytes as f64 / end_ns;
        let peak = cfg.peak_bandwidth_gbps();
        assert!(
            gbps > 0.7 * peak && gbps <= peak + 0.01,
            "achieved {gbps:.1} GB/s vs peak {peak:.1}"
        );
    }

    #[test]
    fn hbm2_outpaces_ddr3_on_streams() {
        let bytes: u64 = 256 << 10;
        let addrs: Vec<u64> = (0..bytes / 64).map(|i| i * 64).collect();
        let (d_ddr3, _) = run(MemTech::Ddr3, addrs.clone(), 64);
        let (d_hbm, _) = run(MemTech::Hbm2, addrs, 64);
        let t_ddr3 = *d_ddr3.iter().max().unwrap();
        let t_hbm = *d_hbm.iter().max().unwrap();
        // Table III: 64 GB/s vs 12.8 GB/s => ~5x.
        let ratio = t_ddr3 as f64 / t_hbm as f64;
        assert!(ratio > 3.0, "ratio {ratio:.2}");
    }

    #[test]
    fn large_requests_split_into_bursts() {
        let (done, stats) = run(MemTech::Ddr4, vec![0], 4096);
        assert_eq!(done.len(), 1);
        // One response, but 4 KiB of traffic.
        assert_eq!(stats.get_or_zero("dram.bytes"), 4096.0);
        // Must take at least 4096 B / 19.2 GB/s ≈ 213 ns of bus time.
        assert!(units::to_ns(done[0]) > 213.0 * 0.9);
    }

    #[test]
    fn peak_bandwidth_matches_table_iii() {
        for tech in MemTech::ALL {
            let cfg = tech.dram_config();
            let expected = tech.bandwidth_gbps();
            let got = cfg.peak_bandwidth_gbps();
            assert!(
                (got - expected).abs() / expected < 0.01,
                "{tech}: {got} vs {expected}"
            );
        }
    }

    // ---- address mapping ----

    #[test]
    fn line_bank_mapping_spreads_adjacent_lines_across_banks() {
        let mut cfg = MemTech::Ddr4.dram_config();
        cfg.mapping = AddressMapping::LineChannelLineBank;
        let d = Dram::new("m", cfg);
        let nch = u64::from(cfg.channels);
        // Two lines on the same channel, adjacent after de-interleave.
        let (c0, b0, _) = d.decode(0);
        let (c1, b1, _) = d.decode(64 * nch);
        assert_eq!(c0, c1);
        assert_ne!(b0, b1, "adjacent lines should hit different banks");
    }

    #[test]
    fn row_channel_mapping_keeps_a_row_on_one_channel() {
        let mut cfg = MemTech::Hbm2.dram_config();
        cfg.mapping = AddressMapping::RowChannelRowBank;
        let d = Dram::new("m", cfg);
        let (c0, _, _) = d.decode(0);
        let (c_mid, _, _) = d.decode(u64::from(cfg.row_bytes) - 64);
        let (c_next, _, _) = d.decode(u64::from(cfg.row_bytes));
        assert_eq!(c0, c_mid, "same row must stay on one channel");
        assert_ne!(c0, c_next, "next row must move to the other channel");
    }

    #[test]
    fn default_mapping_interleaves_lines_across_channels() {
        let cfg = MemTech::Hbm2.dram_config();
        let d = Dram::new("m", cfg);
        let (c0, _, _) = d.decode(0);
        let (c1, _, _) = d.decode(64);
        assert_ne!(c0, c1);
    }

    #[test]
    fn all_mappings_cover_all_banks_and_channels() {
        for mapping in [
            AddressMapping::LineChannelRowBank,
            AddressMapping::LineChannelLineBank,
            AddressMapping::RowChannelRowBank,
        ] {
            let mut cfg = MemTech::Ddr4.dram_config();
            cfg.mapping = mapping;
            let d = Dram::new("m", cfg);
            let mut chans = std::collections::BTreeSet::new();
            let mut banks = std::collections::BTreeSet::new();
            for i in 0..4096u64 {
                let (c, b, _) = d.decode(i * 64);
                chans.insert(c);
                banks.insert(b);
            }
            assert_eq!(chans.len() as u32, cfg.channels, "{mapping:?}");
            assert_eq!(banks.len() as u32, cfg.banks, "{mapping:?}");
        }
    }

    // ---- page policy ----

    #[test]
    fn closed_page_turns_serial_hits_into_misses() {
        let mut cfg = MemTech::Ddr4.dram_config();
        cfg.page_policy = PagePolicy::Closed;
        // Same line over and over: open page would hit, closed must re-ACT.
        let addrs: Vec<u64> = vec![0; 16];
        let (_, stats) = run_cfg(cfg, addrs.clone(), 64, true);
        assert_eq!(stats.get_or_zero("dram.row_hits"), 0.0);
        assert_eq!(stats.get_or_zero("dram.row_misses"), 16.0);
        let mut open = MemTech::Ddr4.dram_config();
        open.page_policy = PagePolicy::Open;
        let (_, s_open) = run_cfg(open, addrs, 64, true);
        assert_eq!(s_open.get_or_zero("dram.row_hits"), 15.0);
    }

    #[test]
    fn closed_page_avoids_conflict_penalty_on_alternating_rows() {
        let base = MemTech::Ddr4.dram_config();
        let stride = u64::from(base.row_bytes) * u64::from(base.banks) * u64::from(base.channels);
        let addrs: Vec<u64> = (0..32)
            .map(|i| if i % 2 == 0 { 0 } else { stride })
            .collect();
        let mut closed = base;
        closed.page_policy = PagePolicy::Closed;
        let (d_closed, s_closed) = run_cfg(closed, addrs.clone(), 64, true);
        let (d_open, _) = run_cfg(base, addrs, 64, true);
        // Closed-page sees only misses (no conflicts)…
        assert_eq!(s_closed.get_or_zero("dram.row_conflicts"), 0.0);
        // …and the alternating pattern completes no slower than open-page.
        assert!(d_closed.last().unwrap() <= d_open.last().unwrap());
    }

    // ---- refresh ----

    #[test]
    fn refreshes_fire_at_trefi_and_are_counted() {
        let mut cfg = MemTech::Ddr4.dram_config();
        cfg.timing.trefi_ns = 500.0;
        cfg.timing.trfc_ns = 100.0;
        // Serial single-line reads spanning well past several tREFI.
        let addrs: Vec<u64> = vec![0; 400];
        let (done, stats) = run_cfg(cfg, addrs, 64, true);
        let end_ns = units::to_ns(*done.last().unwrap());
        assert!(end_ns > 1500.0, "run too short to see refresh: {end_ns}");
        let expect = (end_ns / 500.0).floor();
        let got = stats.get_or_zero("dram.refreshes") / f64::from(cfg.channels);
        assert!(
            (got - expect).abs() <= 2.0,
            "refreshes {got} vs expected ≈{expect}"
        );
    }

    #[test]
    fn refresh_overhead_slows_a_stream_by_roughly_trfc_over_trefi() {
        let addrs: Vec<u64> = (0..4096).map(|i| i * 64).collect();
        let mut no_ref = MemTech::Ddr4.dram_config();
        no_ref.timing.trefi_ns = 0.0;
        let (d_off, _) = run_cfg(no_ref, addrs.clone(), 64, false);
        let mut heavy = MemTech::Ddr4.dram_config();
        heavy.timing.trefi_ns = 1000.0;
        heavy.timing.trfc_ns = 300.0; // 30 % duty: visible but bounded
        let (d_on, _) = run_cfg(heavy, addrs, 64, false);
        let slow = *d_on.last().unwrap() as f64 / *d_off.last().unwrap() as f64;
        assert!(
            slow > 1.15 && slow < 1.8,
            "refresh slowdown {slow:.2} out of expected band"
        );
    }

    #[test]
    fn refresh_disabled_by_zero_trefi() {
        let mut cfg = MemTech::Ddr4.dram_config();
        cfg.timing.trefi_ns = 0.0;
        let addrs: Vec<u64> = (0..256).map(|i| i * 64).collect();
        let (_, stats) = run_cfg(cfg, addrs, 64, false);
        assert_eq!(stats.get_or_zero("dram.refreshes"), 0.0);
    }

    // ---- energy ----

    #[test]
    fn energy_accumulates_per_command_class() {
        let addrs: Vec<u64> = (0..64).map(|i| i * 64).collect();
        let (_, stats) = run(MemTech::Ddr4, addrs, 64);
        assert!(stats.get_or_zero("dram.energy_read_pj") > 0.0);
        assert!(stats.get_or_zero("dram.energy_act_pj") > 0.0);
        assert!(stats.get_or_zero("dram.energy_background_pj") > 0.0);
        assert_eq!(stats.get_or_zero("dram.energy_write_pj"), 0.0);
        assert!(stats.get_or_zero("dram.energy_total_nj") > 0.0);
        assert!(stats.get_or_zero("dram.avg_power_mw") > 0.0);
    }

    #[test]
    fn hbm_moves_the_same_bytes_for_less_row_energy() {
        // Same 256 KiB stream; HBM2's pJ/bit is several times lower, so
        // its data-movement energy must be lower too.
        let addrs: Vec<u64> = (0..4096).map(|i| i * 64).collect();
        let (_, s_ddr3) = run(MemTech::Ddr3, addrs.clone(), 64);
        let (_, s_hbm) = run(MemTech::Hbm2, addrs, 64);
        let move_e = |s: &Stats| {
            s.get_or_zero("dram.energy_read_pj") + s.get_or_zero("dram.energy_write_pj")
        };
        assert!(move_e(&s_hbm) < move_e(&s_ddr3) / 2.0);
    }

    #[test]
    fn latency_histogram_reports_percentiles() {
        let addrs: Vec<u64> = (0..128).map(|i| i * 64).collect();
        let (_, stats) = run(MemTech::Ddr4, addrs, 64);
        assert_eq!(stats.get_or_zero("dram.lat_ns_count"), 128.0);
        assert!(stats.get_or_zero("dram.lat_ns_p99") >= stats.get_or_zero("dram.lat_ns_p50"));
        assert!(stats.get_or_zero("dram.lat_ns_min") > 0.0);
    }
}
