//! The [`Experiment`] trait and its parallel runner.

use crate::{pool, Jobs, SweepResult};
use std::time::Instant;

/// A declarative experiment: a named set of independent points plus a
/// per-point measurement.
///
/// The contract that makes [`Experiment::run`] safe to parallelize is
/// **point isolation**: `measure` must depend only on the point (and
/// immutable shared state captured in `self`), never on other points or
/// on execution order. Every Gem5-AcceSys measurement builds its own
/// simulation kernel per point, so the paper sweeps satisfy this by
/// construction.
///
/// Most experiments are built with [`crate::Grid`] rather than
/// implemented by hand:
///
/// ```
/// use accesys_exp::{Experiment, Grid, Jobs};
///
/// let exp = Grid::new("cubes", [1u64, 2, 3]).sweep(|&x| x * x * x);
/// assert_eq!(exp.name(), "cubes");
/// let result = exp.run(Jobs::auto());
/// assert_eq!(result.outputs().copied().collect::<Vec<_>>(), vec![1, 8, 27]);
/// ```
pub trait Experiment: Sync {
    /// One configuration point of the sweep.
    type Point: Clone + Send + Sync;
    /// The measurement produced for one point.
    type Out: Send;

    /// Experiment name (used in reports and JSON output).
    fn name(&self) -> &str;

    /// Every point of the sweep, in canonical order.
    ///
    /// The runner preserves this order in [`SweepResult::points`]
    /// regardless of how many workers execute the sweep.
    fn points(&self) -> Vec<Self::Point>;

    /// Measure one point. Must be a pure function of `point` + `self`.
    fn measure(&self, point: &Self::Point) -> Self::Out;

    /// Run every point on up to [`Jobs::get`] workers.
    fn run(&self, jobs: Jobs) -> SweepResult<Self::Point, Self::Out>
    where
        Self: Sized,
    {
        run_experiment(self, jobs)
    }
}

/// Run `exp` on up to `jobs` workers, collecting outputs in point order.
///
/// Wall-clock time is recorded on the result (for speedup reporting) but
/// deliberately excluded from its serialized form, so `jobs=1` and
/// `jobs=N` runs emit byte-identical JSON.
pub fn run_experiment<E: Experiment + ?Sized>(
    exp: &E,
    jobs: Jobs,
) -> SweepResult<E::Point, E::Out> {
    let points = exp.points();
    // Record the worker count that can actually run, not the request:
    // the pool never spawns more workers than there are points.
    let effective_jobs = jobs.get().min(points.len()).max(1);
    let start = Instant::now();
    let outputs = pool::map_ordered(jobs.get(), &points, |p| exp.measure(p));
    SweepResult {
        name: exp.name().to_string(),
        jobs: effective_jobs,
        wall: start.elapsed(),
        points: points.into_iter().zip(outputs).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Experiment for Doubler {
        type Point = u32;
        type Out = u32;
        fn name(&self) -> &str {
            "doubler"
        }
        fn points(&self) -> Vec<u32> {
            (0..10).collect()
        }
        fn measure(&self, point: &u32) -> u32 {
            point * 2
        }
    }

    #[test]
    fn custom_experiment_types_run_through_the_same_pool() {
        let result = Doubler.run(Jobs::new(3));
        assert_eq!(result.name, "doubler");
        assert_eq!(result.points.len(), 10);
        for (i, (p, o)) in result.points.iter().enumerate() {
            assert_eq!(*p as usize, i);
            assert_eq!(*o, *p * 2);
        }
    }
}
