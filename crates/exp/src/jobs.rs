//! Worker-count selection for the sweep runner.

/// How many worker threads a sweep may use.
///
/// Resolution order for [`Jobs::from_env`]: the `ACCESYS_JOBS`
/// environment variable if set and positive, otherwise every available
/// core. Binaries additionally accept `--jobs N` / `-j N`, which
/// overrides the environment.
///
/// ```
/// use accesys_exp::Jobs;
///
/// assert_eq!(Jobs::serial().get(), 1);
/// assert_eq!(Jobs::new(8).get(), 8);
/// assert!(Jobs::auto().get() >= 1);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// Exactly `n` workers (`n = 0` is clamped to 1).
    pub fn new(n: usize) -> Jobs {
        Jobs(n.max(1))
    }

    /// One worker: run every point on the calling thread.
    pub fn serial() -> Jobs {
        Jobs(1)
    }

    /// One worker per available core.
    pub fn auto() -> Jobs {
        Jobs(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// `ACCESYS_JOBS` if set, else [`Jobs::auto`].
    ///
    /// # Panics
    ///
    /// Panics if `ACCESYS_JOBS` is set to anything but a positive
    /// integer — the same strictness as the `--jobs` flag, so the two
    /// knobs never silently disagree on bad input.
    pub fn from_env() -> Jobs {
        match std::env::var("ACCESYS_JOBS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n > 0 => Jobs(n),
                _ => panic!("ACCESYS_JOBS must be a positive integer, got `{v}`"),
            },
            Err(_) => Jobs::auto(),
        }
    }

    /// The worker count (always ≥ 1).
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::from_env()
    }
}

impl std::fmt::Display for Jobs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_clamped_to_one() {
        assert_eq!(Jobs::new(0).get(), 1);
    }

    #[test]
    fn auto_is_positive() {
        assert!(Jobs::auto().get() >= 1);
    }
}
