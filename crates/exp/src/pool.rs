//! A hand-rolled scoped worker pool.
//!
//! The build environment has no rayon, so the sweep runner fans work out
//! with [`std::thread::scope`] and a shared atomic cursor: each worker
//! repeatedly claims the next unclaimed input index and writes its output
//! into that index's result slot. Outputs therefore come back in **input
//! order** no matter how the scheduler interleaves workers, which is what
//! makes `jobs=1` and `jobs=N` runs byte-identical.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every input on up to `jobs` worker threads, returning
/// outputs in input order.
///
/// With `jobs <= 1` (or fewer than two inputs) everything runs on the
/// calling thread with no synchronization at all, so a serial run is
/// exactly the plain `iter().map()` it replaces.
///
/// # Panics
///
/// If `f` panics for any input the pool stops handing out new work,
/// finishes the points already in flight, and re-raises the first panic
/// payload on the calling thread — a panicking point can never hang the
/// pool.
///
/// ```
/// let doubled = accesys_exp::pool::map_ordered(4, &[1, 2, 3, 4, 5], |&x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
/// ```
pub fn map_ordered<I, O, F>(jobs: usize, inputs: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = jobs.min(inputs.len());
    if workers <= 1 {
        return inputs.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let aborted = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let mut slots: Vec<Mutex<Option<O>>> = Vec::with_capacity(inputs.len());
    slots.resize_with(inputs.len(), || Mutex::new(None));

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if aborted.load(Ordering::Acquire) {
                    break;
                }
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(input) = inputs.get(index) else {
                    break;
                };
                match catch_unwind(AssertUnwindSafe(|| f(input))) {
                    Ok(out) => *slots[index].lock().expect("result slot poisoned") = Some(out),
                    Err(payload) => {
                        panic_payload
                            .lock()
                            .expect("panic slot poisoned")
                            .get_or_insert(payload);
                        aborted.store(true, Ordering::Release);
                        break;
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner().expect("panic slot poisoned") {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without writing its slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_come_back_in_input_order() {
        let inputs: Vec<usize> = (0..64).collect();
        let out = map_ordered(7, &inputs, |&i| {
            // Stagger completion so late indices often finish first.
            std::thread::sleep(std::time::Duration::from_micros((64 - i as u64) * 10));
            i * 3
        });
        assert_eq!(out, inputs.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let inputs: Vec<u64> = (0..33).collect();
        let serial = map_ordered(1, &inputs, |&x| x.wrapping_mul(0x9e37_79b9));
        let parallel = map_ordered(8, &inputs, |&x| x.wrapping_mul(0x9e37_79b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_workers_than_inputs_is_fine() {
        let out = map_ordered(64, &[1, 2], |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<i32> = map_ordered(4, &[] as &[i32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_point_propagates_and_does_not_hang() {
        let inputs: Vec<usize> = (0..100).collect();
        let result = std::panic::catch_unwind(|| {
            map_ordered(4, &inputs, |&i| {
                if i == 13 {
                    panic!("point 13 exploded");
                }
                i
            })
        });
        let payload = result.expect_err("panic must propagate to the caller");
        let text = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(text.contains("point 13 exploded"), "payload: {text:?}");
    }

    #[test]
    fn serial_panic_propagates_too() {
        let result = std::panic::catch_unwind(|| {
            map_ordered(1, &[0usize], |_| -> usize { panic!("serial boom") })
        });
        assert!(result.is_err());
    }
}
