//! Shared command-line interface of the experiment binaries.
//!
//! Every sweep bin accepts the same flags, parsed by [`Cli`]:
//!
//! * `--jobs N` / `-j N` — worker threads for the sweep (default:
//!   `ACCESYS_JOBS`, else all cores),
//! * `--json` — emit the machine-readable sweep result on stdout instead
//!   of the human table,
//! * `--full` — paper-scale workload sizes (same as `ACCESYS_FULL=1`).
//!
//! Parsing never panics: every malformed argument is a typed
//! [`CliError`] ([`CliError::UnknownFlag`] for flags the harness does
//! not know), which [`Cli::from_env`] renders with the usage text.
//! Wall-clock notes always go to **stderr**, so stdout stays
//! byte-identical between `--jobs 1` and `--jobs N` runs.

use crate::{Experiment, Jobs, Scale, SweepResult};

/// Parsed command-line options shared by every experiment bin.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cli {
    /// Workload scale.
    pub scale: Scale,
    /// Sweep worker count.
    pub jobs: Jobs,
    /// Emit JSON on stdout instead of the human-readable table.
    pub json: bool,
    /// Parallel-kernel worker threads per simulation (`--kernel-threads`);
    /// `None` defers to the spec / `ACCESYS_KERNEL_THREADS` / 1. Results
    /// are byte-identical at any value — this only buys wall-clock.
    pub kernel_threads: Option<u32>,
    /// Fleet worker OS processes (`--fleet-workers`, 0 = in-process);
    /// `None` defers to the spec / `ACCESYS_FLEET_WORKERS` / in-process.
    /// Fleet reports are byte-identical at any value — this only buys
    /// wall-clock on multi-host sweeps.
    pub fleet_workers: Option<u32>,
}

/// Why an argument vector did not parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// `--help` / `-h` was requested (not an error; callers print usage
    /// and exit 0).
    Help,
    /// A flag the harness does not know.
    UnknownFlag(String),
    /// A flag that needs a value was last on the line.
    MissingValue(String),
    /// `--jobs` got something other than a positive integer.
    BadJobs(String),
    /// `--kernel-threads` got something other than a positive integer.
    BadKernelThreads(String),
    /// `--fleet-workers` got something other than a non-negative integer.
    BadFleetWorkers(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => write!(f, "help requested"),
            CliError::UnknownFlag(flag) => write!(f, "unknown argument `{flag}`"),
            CliError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            CliError::BadJobs(value) => {
                write!(f, "--jobs needs a positive integer, got `{value}`")
            }
            CliError::BadKernelThreads(value) => {
                write!(
                    f,
                    "--kernel-threads needs a positive integer, got `{value}`"
                )
            }
            CliError::BadFleetWorkers(value) => {
                write!(
                    f,
                    "--fleet-workers needs a non-negative integer, got `{value}`"
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

impl Cli {
    /// Options for library callers: given scale and jobs, table output.
    pub fn new(scale: Scale, jobs: Jobs) -> Cli {
        Cli {
            scale,
            jobs,
            json: false,
            kernel_threads: None,
            fleet_workers: None,
        }
    }

    /// Parse `std::env::args`, honouring `ACCESYS_FULL` / `ACCESYS_JOBS`
    /// as defaults. Prints usage and exits on `--help` or a bad flag.
    pub fn from_env(bin: &str) -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(CliError::Help) => {
                println!("{}", usage(bin));
                std::process::exit(0);
            }
            Err(err) => {
                eprintln!("{bin}: {err}\n\n{}", usage(bin));
                std::process::exit(2);
            }
        }
    }

    /// Parse an argument iterator (no environment interaction beyond the
    /// `ACCESYS_FULL` / `ACCESYS_JOBS` defaults).
    ///
    /// # Errors
    ///
    /// Returns a typed [`CliError`] for `--help`, unknown flags, missing
    /// values, and malformed `--jobs` counts.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Cli, CliError> {
        let mut cli = Cli {
            scale: Scale::from_env(),
            jobs: Jobs::from_env(),
            json: false,
            kernel_threads: None,
            fleet_workers: fleet_workers_from_env(),
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(CliError::Help),
                "--json" => cli.json = true,
                "--full" => cli.scale = Scale::Paper,
                "--jobs" | "-j" => {
                    let value = args.next().ok_or(CliError::MissingValue(arg))?;
                    cli.jobs = parse_jobs(&value)?;
                }
                "--kernel-threads" => {
                    let value = args.next().ok_or(CliError::MissingValue(arg))?;
                    cli.kernel_threads = Some(parse_kernel_threads(&value)?);
                }
                "--fleet-workers" => {
                    let value = args.next().ok_or(CliError::MissingValue(arg))?;
                    cli.fleet_workers = Some(parse_fleet_workers(&value)?);
                }
                other => {
                    if let Some(value) = other.strip_prefix("--jobs=") {
                        cli.jobs = parse_jobs(value)?;
                    } else if let Some(value) = other.strip_prefix("--kernel-threads=") {
                        cli.kernel_threads = Some(parse_kernel_threads(value)?);
                    } else if let Some(value) = other.strip_prefix("--fleet-workers=") {
                        cli.fleet_workers = Some(parse_fleet_workers(value)?);
                    } else {
                        return Err(CliError::UnknownFlag(other.to_string()));
                    }
                }
            }
        }
        Ok(cli)
    }
}

fn parse_jobs(value: &str) -> Result<Jobs, CliError> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Jobs::new(n)),
        _ => Err(CliError::BadJobs(value.to_string())),
    }
}

fn parse_kernel_threads(value: &str) -> Result<u32, CliError> {
    match value.parse::<u32>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(CliError::BadKernelThreads(value.to_string())),
    }
}

fn parse_fleet_workers(value: &str) -> Result<u32, CliError> {
    value
        .parse::<u32>()
        .map_err(|_| CliError::BadFleetWorkers(value.to_string()))
}

/// The `ACCESYS_FLEET_WORKERS` default for `--fleet-workers`
/// (unparseable values are ignored, matching the other env defaults).
fn fleet_workers_from_env() -> Option<u32> {
    std::env::var("ACCESYS_FLEET_WORKERS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
}

/// The usage text every sweep bin shares.
pub fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--jobs N] [--json] [--full] [--kernel-threads N] [--fleet-workers N]\n\
         \n\
         --jobs N, -j N  run the sweep on N worker threads\n\
         \x20                (default: ACCESYS_JOBS, else all cores)\n\
         --json          emit the machine-readable sweep result on stdout\n\
         --full          paper-scale workload sizes where applicable\n\
         \x20                (same as ACCESYS_FULL=1; scale-independent\n\
         \x20                bins such as probe/table2/table3 ignore it)\n\
         --kernel-threads N\n\
         \x20                parallel domain-engine threads per simulation\n\
         \x20                (default: spec [kernel] threads, else\n\
         \x20                ACCESYS_KERNEL_THREADS, else 1; results are\n\
         \x20                byte-identical at any value)\n\
         --fleet-workers N\n\
         \x20                worker OS processes for fleet scenarios\n\
         \x20                (0 = in-process; default: spec [fleet] workers,\n\
         \x20                else ACCESYS_FLEET_WORKERS; results are\n\
         \x20                byte-identical at any value)\n\
         --help, -h      show this help"
    )
}

/// Run `exp` at the CLI's settings: note wall-clock on stderr, invoke
/// `print` with the result unless `--json`, and return the
/// machine-readable sweep value — the shared shape of every
/// single-sweep driver's `run_cli`.
pub fn run_sweep_cli<E>(
    cli: &Cli,
    exp: &E,
    print: impl FnOnce(&SweepResult<E::Point, E::Out>),
) -> serde::Value
where
    E: Experiment,
    E::Point: serde::Serialize,
    E::Out: serde::Serialize,
{
    let result = exp.run(cli.jobs);
    note_wall(&result);
    if !cli.json {
        print(&result);
    }
    serde::Serialize::to_value(&result)
}

/// Report a finished sweep's wall-clock on stderr (never stdout, so
/// table/JSON output stays byte-identical across worker counts).
pub fn note_wall<P, O>(result: &SweepResult<P, O>) {
    eprintln!(
        "# {}: {} points in {:.2}s (jobs={})",
        result.name,
        result.points.len(),
        result.wall_secs(),
        result.jobs
    );
}

/// Print `value` as indented JSON on stdout.
pub fn emit_json(value: &serde::Value) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("sweep results serialize")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        match Cli::parse(args.iter().map(|s| s.to_string())) {
            Ok(cli) => cli,
            Err(e) => panic!("args {args:?} must parse, got {e}"),
        }
    }

    #[test]
    fn flags_parse() {
        let cli = parse(&["--jobs", "3", "--json", "--full"]);
        assert_eq!(cli.jobs.get(), 3);
        assert!(cli.json);
        assert_eq!(cli.scale, Scale::Paper);
    }

    #[test]
    fn jobs_equals_form_parses() {
        assert_eq!(parse(&["--jobs=7"]).jobs.get(), 7);
        assert_eq!(parse(&["-j", "2"]).jobs.get(), 2);
    }

    #[test]
    fn kernel_threads_parses_and_defaults_to_none() {
        assert_eq!(parse(&[]).kernel_threads, None);
        assert_eq!(parse(&["--kernel-threads", "4"]).kernel_threads, Some(4));
        assert_eq!(parse(&["--kernel-threads=2"]).kernel_threads, Some(2));
    }

    #[test]
    fn fleet_workers_parses_and_allows_zero() {
        assert_eq!(parse(&["--fleet-workers", "4"]).fleet_workers, Some(4));
        assert_eq!(parse(&["--fleet-workers=8"]).fleet_workers, Some(8));
        // 0 is meaningful: run every shard in-process.
        assert_eq!(parse(&["--fleet-workers", "0"]).fleet_workers, Some(0));
    }

    #[test]
    fn bad_flags_are_typed_errors() {
        let parse = |args: &[&str]| Cli::parse(args.iter().map(|s| s.to_string()));
        assert_eq!(
            parse(&["--nope"]),
            Err(CliError::UnknownFlag("--nope".to_string()))
        );
        assert_eq!(
            parse(&["--jobs"]),
            Err(CliError::MissingValue("--jobs".to_string()))
        );
        assert_eq!(
            parse(&["--jobs", "zero"]),
            Err(CliError::BadJobs("zero".to_string()))
        );
        assert_eq!(
            parse(&["--kernel-threads", "none"]),
            Err(CliError::BadKernelThreads("none".to_string()))
        );
        assert_eq!(
            parse(&["--kernel-threads", "0"]),
            Err(CliError::BadKernelThreads("0".to_string()))
        );
        assert_eq!(
            parse(&["--fleet-workers", "many"]),
            Err(CliError::BadFleetWorkers("many".to_string()))
        );
        assert_eq!(
            parse(&["--fleet-workers"]),
            Err(CliError::MissingValue("--fleet-workers".to_string()))
        );
        assert_eq!(parse(&["-h"]), Err(CliError::Help));
        assert_eq!(
            parse(&["--nope"]).unwrap_err().to_string(),
            "unknown argument `--nope`"
        );
    }
}
