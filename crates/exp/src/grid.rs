//! The [`Grid`] point builder and the [`Sweep`] it produces.

use crate::Experiment;

/// A named, ordered list of experiment points.
///
/// Points can come from anything iterable ([`Grid::new`]) or from a
/// cartesian product of axes ([`Grid::cross2`] / [`Grid::cross3`],
/// row-major: the last axis varies fastest, matching the nested loops
/// the paper drivers used to hand-roll). Attach the measurement with
/// [`Grid::sweep`] to obtain a runnable [`Sweep`].
///
/// ```
/// use accesys_exp::Grid;
///
/// let grid = Grid::cross2("demo", [1, 2], ["a", "b"]);
/// assert_eq!(grid.points(), &[(1, "a"), (1, "b"), (2, "a"), (2, "b")]);
/// ```
#[derive(Clone, Debug)]
pub struct Grid<P> {
    name: String,
    points: Vec<P>,
}

impl<P> Grid<P> {
    /// A grid from an explicit point list.
    pub fn new(name: impl Into<String>, points: impl IntoIterator<Item = P>) -> Self {
        Grid {
            name: name.into(),
            points: points.into_iter().collect(),
        }
    }

    /// Experiment name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The points, in sweep order.
    pub fn points(&self) -> &[P] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Attach the per-point measurement, producing a runnable [`Sweep`].
    pub fn sweep<O, F>(self, f: F) -> Sweep<P, O, F>
    where
        F: Fn(&P) -> O,
    {
        Sweep {
            grid: self,
            f,
            _out: std::marker::PhantomData,
        }
    }
}

impl<A: Clone, B: Clone> Grid<(A, B)> {
    /// A two-axis cartesian grid (`a` outer, `b` inner).
    pub fn cross2(
        name: impl Into<String>,
        a: impl IntoIterator<Item = A>,
        b: impl IntoIterator<Item = B> + Clone,
    ) -> Self {
        Grid::new(name, cross2(a, b))
    }
}

impl<A: Clone, B: Clone, C: Clone> Grid<(A, B, C)> {
    /// A three-axis cartesian grid (`a` outer, `c` innermost).
    pub fn cross3(
        name: impl Into<String>,
        a: impl IntoIterator<Item = A>,
        b: impl IntoIterator<Item = B> + Clone,
        c: impl IntoIterator<Item = C> + Clone,
    ) -> Self {
        Grid::new(name, cross3(a, b, c))
    }
}

/// Row-major cartesian product of two axes.
pub fn cross2<A: Clone, B: Clone>(
    a: impl IntoIterator<Item = A>,
    b: impl IntoIterator<Item = B> + Clone,
) -> Vec<(A, B)> {
    let mut out = Vec::new();
    for x in a {
        for y in b.clone() {
            out.push((x.clone(), y));
        }
    }
    out
}

/// Row-major cartesian product of three axes.
pub fn cross3<A: Clone, B: Clone, C: Clone>(
    a: impl IntoIterator<Item = A>,
    b: impl IntoIterator<Item = B> + Clone,
    c: impl IntoIterator<Item = C> + Clone,
) -> Vec<(A, B, C)> {
    let mut out = Vec::new();
    for x in a {
        for y in b.clone() {
            for z in c.clone() {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

/// A [`Grid`] with its measurement closure attached; the workhorse
/// [`Experiment`] implementation behind every paper driver.
pub struct Sweep<P, O, F> {
    grid: Grid<P>,
    f: F,
    _out: std::marker::PhantomData<fn() -> O>,
}

impl<P, O, F> Experiment for Sweep<P, O, F>
where
    P: Clone + Send + Sync,
    O: Send,
    F: Fn(&P) -> O + Sync,
{
    type Point = P;
    type Out = O;

    fn name(&self) -> &str {
        self.grid.name()
    }

    fn points(&self) -> Vec<P> {
        self.grid.points.clone()
    }

    fn measure(&self, point: &P) -> O {
        (self.f)(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Jobs;

    #[test]
    fn cross2_is_row_major() {
        let g = Grid::cross2("g", [1u32, 2], [10u32, 20, 30]);
        assert_eq!(
            g.points(),
            &[(1, 10), (1, 20), (1, 30), (2, 10), (2, 20), (2, 30)]
        );
    }

    #[test]
    fn cross3_varies_last_axis_fastest() {
        let g = Grid::cross3("g", [1u8], [2u8, 3], [4u8, 5]);
        assert_eq!(g.points(), &[(1, 2, 4), (1, 2, 5), (1, 3, 4), (1, 3, 5)]);
    }

    #[test]
    fn sweep_preserves_point_order_under_parallelism() {
        let result = Grid::new("ord", 0..100u64)
            .sweep(|&x| x + 1)
            .run(Jobs::new(8));
        let outs: Vec<u64> = result.outputs().copied().collect();
        assert_eq!(outs, (1..=100).collect::<Vec<_>>());
    }
}
