//! Run-size selection.

/// Workload scale for the experiment harness.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Scaled-down sizes (minutes for the whole suite); trends match the
    /// paper, absolute numbers are smaller.
    Quick,
    /// The paper's exact sizes (e.g. 2048×2048 GEMMs).
    Paper,
}

impl Scale {
    /// Resolve from the `ACCESYS_FULL` environment variable.
    pub fn from_env() -> Scale {
        match std::env::var("ACCESYS_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Scale::Paper,
            _ => Scale::Quick,
        }
    }

    /// Pick `quick` or `paper` by scale.
    pub fn pick<T>(self, quick: T, paper: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Paper => paper,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(256, 2048), 256);
        assert_eq!(Scale::Paper.pick(256, 2048), 2048);
    }
}
