//! Sweep results: input-ordered, JSON-serializable.

use std::time::Duration;

/// The outcome of running an [`crate::Experiment`]: every `(point,
/// output)` pair in canonical point order, plus run metadata.
///
/// Serialization covers only the name and the points — the `jobs` and
/// `wall` fields vary run to run, and the determinism contract promises
/// that `jobs=1` and `jobs=N` runs of the same sweep emit **byte
/// identical** JSON.
///
/// ```
/// use accesys_exp::{Experiment, Grid, Jobs};
///
/// let sweep = Grid::new("inc", [1u32, 2, 3]).sweep(|&x| x + 1);
/// let serial = sweep.run(Jobs::serial()).to_json().unwrap();
/// let parallel = sweep.run(Jobs::new(4)).to_json().unwrap();
/// assert_eq!(serial, parallel);
/// ```
#[derive(Clone, Debug)]
pub struct SweepResult<P, O> {
    /// Experiment name.
    pub name: String,
    /// Effective worker count the sweep ran with — the request clamped
    /// to the point count (not serialized).
    pub jobs: usize,
    /// Wall-clock duration of the sweep (not serialized).
    pub wall: Duration,
    /// `(point, output)` pairs in canonical point order.
    pub points: Vec<(P, O)>,
}

impl<P, O> SweepResult<P, O> {
    /// The outputs, in point order.
    pub fn outputs(&self) -> impl Iterator<Item = &O> {
        self.points.iter().map(|(_, o)| o)
    }

    /// Consume the result, keeping only the outputs in point order.
    pub fn into_outputs(self) -> Vec<O> {
        self.points.into_iter().map(|(_, o)| o).collect()
    }

    /// Wall-clock seconds the sweep took.
    pub fn wall_secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }
}

impl<P: serde::Serialize, O: serde::Serialize> SweepResult<P, O> {
    /// Compact JSON (`{"experiment": ..., "points": [{"point", "out"}]}`).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Indented JSON of the same shape as [`SweepResult::to_json`].
    pub fn to_json_pretty(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

impl<P: serde::Serialize, O: serde::Serialize> serde::Serialize for SweepResult<P, O> {
    fn to_value(&self) -> serde::Value {
        let points = self
            .points
            .iter()
            .map(|(p, o)| {
                serde::Value::Map(vec![
                    ("point".to_string(), p.to_value()),
                    ("out".to_string(), o.to_value()),
                ])
            })
            .collect();
        serde::Value::Map(vec![
            (
                "experiment".to_string(),
                serde::Value::Str(self.name.clone()),
            ),
            ("points".to_string(), serde::Value::Seq(points)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use crate::{Experiment, Grid, Jobs};

    #[test]
    fn json_shape_is_stable() {
        let result = Grid::new("j", [1u32, 2])
            .sweep(|&x| x * 10)
            .run(Jobs::serial());
        let json = result.to_json().unwrap();
        assert_eq!(
            json,
            r#"{"experiment":"j","points":[{"point":1,"out":10},{"point":2,"out":20}]}"#
        );
    }

    #[test]
    fn metadata_is_excluded_from_json() {
        let sweep = Grid::new("m", 0..20u64).sweep(|&x| x * x);
        let a = sweep.run(Jobs::serial());
        let b = sweep.run(Jobs::new(6));
        assert_ne!(a.jobs, b.jobs);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }
}
