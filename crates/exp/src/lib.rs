//! # accesys-exp
//!
//! The parallel experiment engine of the Gem5-AcceSys reproduction.
//!
//! Every paper experiment is a sweep over independent configuration
//! points, and every point builds its own isolated simulation kernel —
//! the sweep is embarrassingly parallel. This crate turns that
//! observation into a declarative API:
//!
//! * [`Grid`] enumerates points (optionally as a cartesian product of
//!   axes) and [`Grid::sweep`] attaches the per-point measurement,
//! * [`Experiment`] is the trait both implement, so custom experiment
//!   types plug into the same runner,
//! * [`Experiment::run`] fans points out over a scoped worker pool
//!   ([`pool::map_ordered`]) sized by a [`Jobs`] knob
//!   (`--jobs` / `ACCESYS_JOBS`), and
//! * [`SweepResult`] collects outputs in input order — results are
//!   bit-identical regardless of worker count — and serializes to JSON
//!   through the vendored serde.
//!
//! ```
//! use accesys_exp::{Experiment, Grid, Jobs};
//!
//! let result = Grid::cross2("squares", [1u64, 2, 3], [10u64, 100])
//!     .sweep(|&(a, b)| a * b)
//!     .run(Jobs::new(4));
//! assert_eq!(result.outputs().copied().collect::<Vec<_>>(),
//!            vec![10, 100, 20, 200, 30, 300]);
//! ```
#![warn(missing_docs)]

pub mod cli;
mod experiment;
mod grid;
mod jobs;
pub mod pool;
mod result;
mod scale;

pub use cli::{Cli, CliError};
pub use experiment::{run_experiment, Experiment};
pub use grid::{cross2, cross3, Grid, Sweep};
pub use jobs::Jobs;
pub use result::SweepResult;
pub use scale::Scale;
