//! Timing CPU: driver control path + streaming Non-GEMM kernels.

use accesys_sim::{streams, units, Ctx, MemCmd, Module, ModuleId, Msg, Packet, Stats, Tick};

/// Configuration of a [`CpuComplex`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CpuConfig {
    /// Core clock in GHz (paper Table II: 1 GHz ARM).
    pub freq_ghz: f64,
    /// Sustained arithmetic instructions per cycle for streaming kernels.
    pub ipc: f64,
    /// Memory-level parallelism: outstanding line requests.
    pub mlp: u32,
    /// Cache-line size in bytes.
    pub line_bytes: u32,
    /// Driver overhead per job launch in nanoseconds (syscall + setup).
    pub driver_overhead_ns: f64,
    /// Interrupt delivery latency in nanoseconds.
    pub irq_latency_ns: f64,
    /// Base of the MSI window; MSI writes carry the job cookie as
    /// `(addr - msi_base) / 4`.
    pub msi_base: u64,
    /// Size of the MSI window in bytes.
    pub msi_size: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            freq_ghz: 1.0,
            ipc: 2.0,
            mlp: 8,
            line_bytes: 64,
            driver_overhead_ns: 500.0,
            irq_latency_ns: 200.0,
            msi_base: 0xFEE0_0000,
            msi_size: 0x1000,
        }
    }
}

/// One step of a CPU program.
#[derive(Clone, Debug)]
pub enum CpuOp {
    /// Ring `doorbell_addr` (posted MMIO write), then wait for the MSI
    /// carrying `job_cookie`.
    LaunchJob {
        /// Device BAR address of the doorbell register.
        doorbell_addr: u64,
        /// Cookie the accelerator echoes in its MSI.
        job_cookie: u64,
    },
    /// Ring `doorbell_addr` without waiting (multi-accelerator fan-out);
    /// pair with [`CpuOp::WaitAll`]. Costs one driver overhead.
    LaunchAsync {
        /// Device BAR address of the doorbell register.
        doorbell_addr: u64,
    },
    /// Wait until the MSIs for every cookie in `cookies` have arrived
    /// (in any order; MSIs that arrived early are remembered).
    WaitAll {
        /// Job cookies to collect.
        cookies: Vec<u64>,
    },
    /// Run a streaming kernel: read `read_bytes` from `read_addr`, write
    /// `write_bytes` to `write_addr`, with `flops` arithmetic operations
    /// overlapped.
    Stream {
        /// Bytes to read.
        read_bytes: u64,
        /// Bytes to write.
        write_bytes: u64,
        /// Arithmetic operations to retire.
        flops: u64,
        /// Base address of the input.
        read_addr: u64,
        /// Base address of the output.
        write_addr: u64,
    },
    /// Idle for a fixed time (driver bookkeeping, framework overhead).
    Delay {
        /// Nanoseconds to wait.
        ns: f64,
    },
    /// Record a phase boundary with a label (for GEMM/Non-GEMM splits).
    Mark {
        /// Phase label applied to the time *following* this mark.
        label: String,
    },
}

const TAG_START: u64 = 0;
const TAG_NEXT: u64 = 1;
const TAG_COMPUTE: u64 = 2;

#[derive(Debug)]
enum State {
    Idle,
    WaitIrq {
        cookie: u64,
    },
    WaitAll {
        remaining: std::collections::BTreeSet<u64>,
    },
    Stream(StreamState),
    Done,
}

#[derive(Debug)]
struct StreamState {
    read_left: u64,
    write_left: u64,
    read_cursor: u64,
    write_cursor: u64,
    inflight: u32,
    compute_end: Tick,
    mem_done: bool,
}

/// The CPU cluster module.
///
/// Load a program with [`CpuComplex::load_program`], wire it into the
/// system, and kick it with a `Timer(0)` message. After the run,
/// [`CpuComplex::finished_at`] and [`CpuComplex::marks`] expose the
/// timeline.
pub struct CpuComplex {
    name: String,
    cfg: CpuConfig,
    /// Cacheable data path (L1). INVALID sends everything to `membus`.
    l1: ModuleId,
    /// Uncacheable / MMIO path.
    membus: ModuleId,
    /// Address ranges accessed uncached (device memory over PCIe).
    uncached: Vec<(u64, u64)>,
    program: Vec<CpuOp>,
    pc: usize,
    state: State,
    /// MSI cookies that arrived before the program waited on them.
    seen_irqs: std::collections::BTreeSet<u64>,
    marks: Vec<(String, Tick)>,
    finished_at: Option<Tick>,
    // stats
    jobs_launched: u64,
    irqs: u64,
    lines_read: u64,
    lines_written: u64,
    stream_ns: f64,
    wait_ns: f64,
    wait_started: Tick,
}

impl CpuComplex {
    /// Create a CPU with its cacheable (`l1`) and uncacheable (`membus`)
    /// ports.
    pub fn new(name: &str, cfg: CpuConfig, l1: ModuleId, membus: ModuleId) -> Self {
        CpuComplex {
            name: name.to_string(),
            cfg,
            l1,
            membus,
            uncached: Vec::new(),
            program: Vec::new(),
            pc: 0,
            state: State::Idle,
            seen_irqs: std::collections::BTreeSet::new(),
            marks: Vec::new(),
            finished_at: None,
            jobs_launched: 0,
            irqs: 0,
            lines_read: 0,
            lines_written: 0,
            stream_ns: 0.0,
            wait_ns: 0.0,
            wait_started: 0,
        }
    }

    /// Mark `[base, base+size)` as uncacheable (accessed via the MemBus,
    /// e.g. device-side memory reached over PCIe).
    pub fn add_uncached_range(&mut self, base: u64, size: u64) {
        self.uncached.push((base, size));
    }

    /// Replace the CPU program (resets the program counter).
    pub fn load_program(&mut self, program: Vec<CpuOp>) {
        self.program = program;
        self.pc = 0;
        self.state = State::Idle;
        self.seen_irqs.clear();
        self.finished_at = None;
        self.marks.clear();
    }

    /// Tick at which the program finished, if it has.
    pub fn finished_at(&self) -> Option<Tick> {
        self.finished_at
    }

    /// Phase boundaries recorded by [`CpuOp::Mark`], plus the implicit
    /// `"end"` mark at completion.
    pub fn marks(&self) -> &[(String, Tick)] {
        &self.marks
    }

    /// The configuration this CPU was built with.
    pub fn config(&self) -> CpuConfig {
        self.cfg
    }

    fn is_uncached(&self, addr: u64) -> bool {
        self.uncached
            .iter()
            .any(|&(b, s)| addr >= b && addr - b < s)
    }

    fn data_port(&self, addr: u64) -> ModuleId {
        if self.is_uncached(addr) || !self.l1.is_valid() {
            self.membus
        } else {
            self.l1
        }
    }

    fn run_next(&mut self, ctx: &mut Ctx) {
        loop {
            if self.pc >= self.program.len() {
                self.state = State::Done;
                self.finished_at = Some(ctx.now());
                self.marks.push(("end".to_string(), ctx.now()));
                return;
            }
            let op = self.program[self.pc].clone();
            self.pc += 1;
            match op {
                CpuOp::Mark { label } => {
                    self.marks.push((label, ctx.now()));
                    continue;
                }
                CpuOp::Delay { ns } => {
                    ctx.timer(units::ns(ns), TAG_NEXT);
                    return;
                }
                CpuOp::LaunchJob {
                    doorbell_addr,
                    job_cookie,
                } => {
                    self.jobs_launched += 1;
                    let mut db = Packet::request(
                        ctx.alloc_pkt_id(),
                        MemCmd::WriteReq,
                        doorbell_addr,
                        8,
                        ctx.now(),
                    );
                    db.stream = streams::MMIO;
                    // Posted: no route push, nobody acknowledges.
                    ctx.send(
                        self.membus,
                        units::ns(self.cfg.driver_overhead_ns),
                        Msg::packet(db),
                    );
                    if self.seen_irqs.remove(&job_cookie) {
                        // MSI already arrived (possible after LaunchAsync
                        // bursts); continue immediately.
                        ctx.timer(units::ns(self.cfg.irq_latency_ns), TAG_NEXT);
                        return;
                    }
                    self.state = State::WaitIrq { cookie: job_cookie };
                    self.wait_started = ctx.now();
                    return;
                }
                CpuOp::LaunchAsync { doorbell_addr } => {
                    self.jobs_launched += 1;
                    let mut db = Packet::request(
                        ctx.alloc_pkt_id(),
                        MemCmd::WriteReq,
                        doorbell_addr,
                        8,
                        ctx.now(),
                    );
                    db.stream = streams::MMIO;
                    ctx.send(
                        self.membus,
                        units::ns(self.cfg.driver_overhead_ns),
                        Msg::packet(db),
                    );
                    // The driver is busy for the overhead window, then
                    // moves on without waiting for the device.
                    ctx.timer(units::ns(self.cfg.driver_overhead_ns), TAG_NEXT);
                    return;
                }
                CpuOp::WaitAll { cookies } => {
                    let mut remaining: std::collections::BTreeSet<u64> =
                        cookies.into_iter().collect();
                    remaining.retain(|c| !self.seen_irqs.remove(c));
                    if remaining.is_empty() {
                        ctx.timer(units::ns(self.cfg.irq_latency_ns), TAG_NEXT);
                        return;
                    }
                    self.state = State::WaitAll { remaining };
                    self.wait_started = ctx.now();
                    return;
                }
                CpuOp::Stream {
                    read_bytes,
                    write_bytes,
                    flops,
                    read_addr,
                    write_addr,
                } => {
                    let line = u64::from(self.cfg.line_bytes);
                    let compute_ns = flops as f64 / (self.cfg.ipc * self.cfg.freq_ghz);
                    let st = StreamState {
                        read_left: read_bytes.div_ceil(line),
                        write_left: write_bytes.div_ceil(line),
                        read_cursor: read_addr,
                        write_cursor: write_addr,
                        inflight: 0,
                        compute_end: ctx.now() + units::ns(compute_ns),
                        mem_done: false,
                    };
                    self.state = State::Stream(st);
                    self.wait_started = ctx.now();
                    self.pump_stream(ctx);
                    return;
                }
            }
        }
    }

    fn pump_stream(&mut self, ctx: &mut Ctx) {
        let mlp = self.cfg.mlp;
        let line = self.cfg.line_bytes;
        // Gather the accesses to issue first, then send (borrow split).
        let mut to_send: Vec<(MemCmd, u64)> = Vec::new();
        if let State::Stream(st) = &mut self.state {
            while st.inflight < mlp && (st.read_left > 0 || st.write_left > 0) {
                let (cmd, addr) = if st.read_left > 0 {
                    st.read_left -= 1;
                    let a = st.read_cursor;
                    st.read_cursor += u64::from(line);
                    (MemCmd::ReadReq, a)
                } else {
                    st.write_left -= 1;
                    let a = st.write_cursor;
                    st.write_cursor += u64::from(line);
                    (MemCmd::WriteReq, a)
                };
                st.inflight += 1;
                to_send.push((cmd, addr));
            }
        } else {
            return;
        }
        for (cmd, addr) in to_send {
            match cmd {
                MemCmd::ReadReq => self.lines_read += 1,
                MemCmd::WriteReq => self.lines_written += 1,
                _ => {}
            }
            let mut pkt = Packet::request(ctx.alloc_pkt_id(), cmd, addr, line, ctx.now());
            pkt.stream = streams::CPU;
            pkt.route.push(ctx.self_id());
            let port = self.data_port(addr);
            ctx.send(port, 0, Msg::packet(pkt));
        }
        self.check_stream_done(ctx);
    }

    fn check_stream_done(&mut self, ctx: &mut Ctx) {
        let State::Stream(st) = &mut self.state else {
            return;
        };
        if st.inflight == 0 && st.read_left == 0 && st.write_left == 0 {
            st.mem_done = true;
            if ctx.now() >= st.compute_end {
                self.stream_ns += units::to_ns(ctx.now() - self.wait_started);
                self.state = State::Idle;
                self.run_next(ctx);
            } else {
                let end = st.compute_end;
                ctx.send_at(ctx.self_id(), end, Msg::Timer(TAG_COMPUTE));
            }
        }
    }

    fn on_irq(&mut self, cookie: u64, ctx: &mut Ctx) {
        self.irqs += 1;
        match &mut self.state {
            State::WaitIrq { cookie: want } if *want == cookie => {
                self.wait_ns += units::to_ns(ctx.now() - self.wait_started);
                self.state = State::Idle;
                ctx.timer(units::ns(self.cfg.irq_latency_ns), TAG_NEXT);
            }
            State::WaitAll { remaining } => {
                if remaining.remove(&cookie) {
                    if remaining.is_empty() {
                        self.wait_ns += units::to_ns(ctx.now() - self.wait_started);
                        self.state = State::Idle;
                        ctx.timer(units::ns(self.cfg.irq_latency_ns), TAG_NEXT);
                    }
                } else {
                    // An MSI for a job this wait does not cover (another
                    // in-flight launch finishing early): latch it for
                    // the later wait instead of dropping it.
                    self.seen_irqs.insert(cookie);
                }
            }
            _ => {
                // Arrived before the program waits on it: remember it.
                self.seen_irqs.insert(cookie);
            }
        }
    }
}

impl Module for CpuComplex {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::Timer(TAG_START) => self.run_next(ctx),
            Msg::Timer(TAG_NEXT) => self.run_next(ctx),
            Msg::Timer(TAG_COMPUTE) => {
                if let State::Stream(st) = &self.state {
                    if st.mem_done && ctx.now() >= st.compute_end {
                        self.stream_ns += units::to_ns(ctx.now() - self.wait_started);
                        self.state = State::Idle;
                        self.run_next(ctx);
                    }
                }
            }
            Msg::Packet(pkt) => {
                if pkt.cmd.is_request() {
                    // An MSI write landing in the interrupt window.
                    if pkt.addr >= self.cfg.msi_base
                        && pkt.addr - self.cfg.msi_base < self.cfg.msi_size
                    {
                        let cookie = (pkt.addr - self.cfg.msi_base) / 4;
                        self.on_irq(cookie, ctx);
                    }
                    // Posted write: no response.
                } else {
                    // A line our stream issued came back.
                    if let State::Stream(st) = &mut self.state {
                        st.inflight = st.inflight.saturating_sub(1);
                    }
                    self.pump_stream(ctx);
                }
            }
            _ => {}
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("jobs_launched", self.jobs_launched as f64);
        out.add("irqs", self.irqs as f64);
        out.add("lines_read", self.lines_read as f64);
        out.add("lines_written", self.lines_written as f64);
        out.add("stream_ns", self.stream_ns);
        out.add("wait_ns", self.wait_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_mem::{SimpleMemory, SimpleMemoryConfig};
    use accesys_sim::Kernel;

    fn fast_mem() -> SimpleMemoryConfig {
        SimpleMemoryConfig {
            latency_ns: 40.0,
            bandwidth_gbps: 16.0,
        }
    }

    fn slow_mem() -> SimpleMemoryConfig {
        SimpleMemoryConfig {
            latency_ns: 800.0,
            bandwidth_gbps: 2.0,
        }
    }

    fn run_stream(cfg: CpuConfig, mem_cfg: SimpleMemoryConfig, op: CpuOp) -> Tick {
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new("mem", mem_cfg)));
        let mut cpu = CpuComplex::new("cpu", cfg, ModuleId::INVALID, mem);
        cpu.load_program(vec![op]);
        let cpu = k.add_module(Box::new(cpu));
        k.schedule(0, cpu, Msg::Timer(0));
        k.run_until_idle().unwrap();
        k.module::<CpuComplex>(cpu).unwrap().finished_at().unwrap()
    }

    #[test]
    fn stream_time_scales_with_bytes() {
        let op = |kb: u64| CpuOp::Stream {
            read_bytes: kb << 10,
            write_bytes: 0,
            flops: 0,
            read_addr: 0x10000,
            write_addr: 0,
        };
        let t1 = run_stream(CpuConfig::default(), fast_mem(), op(64));
        let t2 = run_stream(CpuConfig::default(), fast_mem(), op(128));
        let ratio = t2 as f64 / t1 as f64;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn remote_memory_slows_streams_numa_style() {
        let op = CpuOp::Stream {
            read_bytes: 64 << 10,
            write_bytes: 64 << 10,
            flops: 0,
            read_addr: 0x10000,
            write_addr: 0x80000,
        };
        let local = run_stream(CpuConfig::default(), fast_mem(), op.clone());
        let remote = run_stream(CpuConfig::default(), slow_mem(), op);
        let ratio = remote as f64 / local as f64;
        assert!(ratio > 3.0, "NUMA penalty too small: {ratio}");
    }

    #[test]
    fn compute_bound_streams_are_limited_by_ipc() {
        // Tiny memory footprint, heavy flops: time ≈ flops / (ipc * freq).
        let op = CpuOp::Stream {
            read_bytes: 64,
            write_bytes: 0,
            flops: 2_000_000,
            read_addr: 0,
            write_addr: 0,
        };
        let t = run_stream(CpuConfig::default(), fast_mem(), op);
        // 2e6 flops at 2 IPC, 1 GHz = 1e6 ns.
        let ns = units::to_ns(t);
        assert!((ns - 1_000_000.0).abs() < 1_000.0, "{ns}");
    }

    #[test]
    fn mlp_window_accelerates_latency_bound_streams() {
        let op = CpuOp::Stream {
            read_bytes: 32 << 10,
            write_bytes: 0,
            flops: 0,
            read_addr: 0,
            write_addr: 0,
        };
        let narrow = CpuConfig {
            mlp: 1,
            ..CpuConfig::default()
        };
        let wide = CpuConfig {
            mlp: 16,
            ..CpuConfig::default()
        };
        let t_narrow = run_stream(narrow, fast_mem(), op.clone());
        let t_wide = run_stream(wide, fast_mem(), op);
        assert!(t_narrow > 4 * t_wide, "narrow {t_narrow} vs wide {t_wide}");
    }

    #[test]
    fn launch_job_waits_for_matching_msi() {
        /// Fake device: doorbell write triggers an MSI back after 1 µs.
        struct Device {
            cpu: ModuleId,
            msi_addr: u64,
        }
        impl Module for Device {
            fn name(&self) -> &str {
                "dev"
            }
            fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
                if let Msg::Packet(p) = msg {
                    if p.cmd == MemCmd::WriteReq {
                        let mut msi = Packet::request(
                            ctx.alloc_pkt_id(),
                            MemCmd::WriteReq,
                            self.msi_addr,
                            4,
                            ctx.now(),
                        );
                        msi.stream = streams::DMA_BASE;
                        ctx.send(self.cpu, units::us(1.0), Msg::packet(msi));
                    }
                }
            }
        }
        let mut k = Kernel::new();
        let cfg = CpuConfig::default();
        // Place the CPU first so the device can point at it.
        let cpu_id_placeholder = ModuleId::INVALID;
        let mut cpu = CpuComplex::new("cpu", cfg, ModuleId::INVALID, cpu_id_placeholder);
        cpu.load_program(vec![
            CpuOp::Mark {
                label: "gemm".into(),
            },
            CpuOp::LaunchJob {
                doorbell_addr: 0x1_0000_0000,
                job_cookie: 3,
            },
        ]);
        let cpu_slot = k.add_module(Box::new(cpu));
        let dev = k.add_module(Box::new(Device {
            cpu: cpu_slot,
            msi_addr: cfg.msi_base + 3 * 4,
        }));
        // Rewire the CPU's membus port to the device.
        k.module_mut::<CpuComplex>(cpu_slot).unwrap().membus = dev;
        k.schedule(0, cpu_slot, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let cpu = k.module::<CpuComplex>(cpu_slot).unwrap();
        let end = cpu.finished_at().expect("program finished");
        // driver overhead 500 ns + device 1 µs + irq 200 ns.
        assert!(end >= units::ns(1_700.0), "end={end}");
        assert_eq!(cpu.marks()[0].0, "gemm");
        assert_eq!(cpu.marks().last().unwrap().0, "end");
    }

    /// Fake multi-device: the i-th doorbell write answers with the MSI
    /// for cookie `i` after `base_ns * (i+1)`.
    struct FanoutDevice {
        cpu: ModuleId,
        msi_base: u64,
        base_ns: f64,
        doorbells: u64,
    }
    impl Module for FanoutDevice {
        fn name(&self) -> &str {
            "fan"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(p) = msg {
                if p.cmd == MemCmd::WriteReq {
                    let i = self.doorbells;
                    self.doorbells += 1;
                    let mut msi = Packet::request(
                        ctx.alloc_pkt_id(),
                        MemCmd::WriteReq,
                        self.msi_base + 4 * i,
                        4,
                        ctx.now(),
                    );
                    msi.stream = streams::DMA_BASE;
                    ctx.send(
                        self.cpu,
                        units::ns(self.base_ns * (i + 1) as f64),
                        Msg::packet(msi),
                    );
                }
            }
        }
    }

    fn fanout_rig(base_ns: f64, program: Vec<CpuOp>) -> (Tick, u64) {
        let mut k = Kernel::new();
        let cfg = CpuConfig::default();
        let mut cpu = CpuComplex::new("cpu", cfg, ModuleId::INVALID, ModuleId::INVALID);
        cpu.load_program(program);
        let cpu_slot = k.add_module(Box::new(cpu));
        let dev = k.add_module(Box::new(FanoutDevice {
            cpu: cpu_slot,
            msi_base: cfg.msi_base,
            base_ns,
            doorbells: 0,
        }));
        k.module_mut::<CpuComplex>(cpu_slot).unwrap().membus = dev;
        k.schedule(0, cpu_slot, Msg::Timer(0));
        k.run_until_idle().unwrap();
        let cpu = k.module::<CpuComplex>(cpu_slot).unwrap();
        (cpu.finished_at().expect("finished"), cpu.irqs)
    }

    #[test]
    fn async_launches_overlap_device_time() {
        // Three devices, 10 µs each, launched async: total ≈ 10 µs + the
        // launch overheads, far below the 30 µs a serial driver would take.
        let program = vec![
            CpuOp::LaunchAsync {
                doorbell_addr: 0x1_0000_0000,
            },
            CpuOp::LaunchAsync {
                doorbell_addr: 0x1_0100_0000,
            },
            CpuOp::LaunchAsync {
                doorbell_addr: 0x1_0200_0000,
            },
            CpuOp::WaitAll {
                cookies: vec![0, 1, 2],
            },
        ];
        let (end, irqs) = fanout_rig(10_000.0, program);
        assert_eq!(irqs, 3);
        let ns = units::to_ns(end);
        // Slowest device: third doorbell (launched at ~1.5 µs) + 30 µs.
        assert!(ns < 35_000.0, "async fan-out did not overlap: {ns}");
    }

    #[test]
    fn wait_all_handles_early_msis() {
        // Device 0 answers in 1 ns — long before WaitAll runs. The early
        // MSI must be latched, not lost.
        let program = vec![
            CpuOp::LaunchAsync {
                doorbell_addr: 0x1_0000_0000,
            },
            CpuOp::Delay { ns: 5_000.0 },
            CpuOp::WaitAll { cookies: vec![0] },
        ];
        let (end, _) = fanout_rig(1.0, program);
        // Finishes right after the delay + irq latency, no deadlock.
        assert!(units::to_ns(end) < 7_000.0);
    }

    #[test]
    fn wait_all_latches_msis_outside_its_cookie_set() {
        // Regression: cookie 0's MSI (at 1·base) arrives while the CPU
        // waits on cookie 1 (at 2·base). The out-of-set MSI must be
        // latched for the second wait, not silently dropped — partial
        // waits are how the graph dispatcher pipelines devices.
        let program = vec![
            CpuOp::LaunchAsync {
                doorbell_addr: 0x1_0000_0000,
            },
            CpuOp::LaunchAsync {
                doorbell_addr: 0x1_0100_0000,
            },
            CpuOp::WaitAll { cookies: vec![1] },
            CpuOp::WaitAll { cookies: vec![0] },
        ];
        let (end, irqs) = fanout_rig(10_000.0, program);
        assert_eq!(irqs, 2);
        // Finishes shortly after the slower MSI (~21 µs), instead of
        // hanging on the dropped cookie-0 MSI.
        assert!(units::to_ns(end) < 25_000.0, "second wait lost its MSI");
    }

    #[test]
    fn wait_all_with_no_cookies_does_not_block() {
        let program = vec![CpuOp::WaitAll { cookies: vec![] }];
        let (end, _) = fanout_rig(1.0, program);
        assert!(units::to_ns(end) <= 300.0);
    }
}
