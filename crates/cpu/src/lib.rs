//! # accesys-cpu
//!
//! The CPU cluster of the Gem5-AcceSys reproduction. The paper's
//! evaluation exercises the CPU in two roles, both modelled here:
//!
//! * **Driver** ([`CpuOp::LaunchJob`]): ring the accelerator's doorbell
//!   with a posted MMIO write that travels MemBus → Root Complex → Switch
//!   → Endpoint, then sleep until the accelerator's MSI (a posted memory
//!   write into the CPU's interrupt range) arrives — the paper's "kernel
//!   driver support" feature.
//! * **Non-GEMM engine** ([`CpuOp::Stream`]): LayerNorm/Softmax/GELU and
//!   friends are memory-streaming kernels; the CPU issues cache-line
//!   requests with a bounded memory-level-parallelism window, overlapping
//!   an IPC-limited compute term. When the data lives in device memory
//!   the lines cross the PCIe hierarchy (the NUMA effect behind the
//!   paper's Fig. 8 Non-GEMM degradation).
//!
//! Programs are sequences of [`CpuOp`]; [`CpuOp::Mark`] records phase
//! boundaries so runs can be split into GEMM and Non-GEMM time.

mod cpu;

pub use cpu::{CpuComplex, CpuConfig, CpuOp};
