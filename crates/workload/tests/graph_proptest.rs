//! Property tests over the workload graph layer: randomly shaped
//! *valid* DAGs (random kinds, dependencies and affinities) must
//! validate, dispatch to completion on randomly shaped switch-tree
//! topologies with every GEMM task becoming exactly one accelerator
//! job, and keep the parallel-sweep determinism contract (`jobs=1` vs
//! `jobs=N` byte-identical) — on arbitrary graphs, not just the
//! hand-written chains.

use accesys::topology::switch_tree;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::graph::{Affinity, TaskGraph, TaskKind};
use accesys_workload::GemmSpec;
use proptest::prelude::*;

/// A small deterministic generator (split-mix style) so the DAG shape is
/// a pure function of the seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Build a random *valid* DAG: every dependency points at an earlier
/// task (acyclic by construction), pins stay inside the device count.
fn random_dag(seed: u64, tasks: usize, devices: usize) -> TaskGraph {
    let mut rng = Gen(seed);
    let mut g = TaskGraph::new();
    for i in 0..tasks {
        let kind = match rng.below(8) {
            0..=3 => TaskKind::Gemm(GemmSpec::square(16 + rng.below(4) as u32 * 16)),
            4..=5 => TaskKind::Stream {
                read_bytes: 1 << (8 + rng.below(6)),
                write_bytes: 1 << (8 + rng.below(6)),
                flops: rng.below(1 << 12),
            },
            6 => TaskKind::Transfer {
                bytes: 1 << (8 + rng.below(6)),
            },
            _ => TaskKind::Barrier,
        };
        let affinity = if rng.below(2) == 0 {
            Affinity::AnyAccel
        } else {
            Affinity::Pinned(rng.below(devices as u64) as usize)
        };
        // Up to three edges into the recent past.
        let mut deps = Vec::new();
        for _ in 0..rng.below(4) {
            if i > 0 {
                let d = i - 1 - rng.below(i.min(5) as u64) as usize;
                if !deps.contains(&d) {
                    deps.push(d);
                }
            }
        }
        g.add(format!("t{i}"), kind, affinity, deps);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_dags_dispatch_on_random_trees(
        depth in 1usize..3,
        fanout in 1u32..4,
        tasks in 1usize..24,
        seed in any::<u64>(),
    ) {
        let devices = fanout.pow(depth as u32) as usize;
        let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4)
            .with_compute_override_ns(5_000.0);
        cfg.smmu = None;
        let levels = vec![fanout; depth];
        let graph = random_dag(seed, tasks, devices);
        prop_assert!(graph.validate(devices).is_ok());

        let spec = switch_tree(&cfg, &levels).expect("generated trees are valid");
        let mut sim = Simulation::from_topology(cfg.clone(), &spec).expect("valid topology");
        let (report, plan) = sim.run_graph_planned(&graph).expect("graph completes");

        // Every GEMM task became exactly one accelerator job; every
        // CPU task left a phase mark.
        prop_assert_eq!(report.jobs.len(), graph.device_task_count());
        prop_assert_eq!(plan.tasks, graph.len());
        prop_assert_eq!(plan.launches as usize, graph.device_task_count());
        if graph.device_task_count() > 0 || graph.tasks().iter().any(|t| matches!(
            t.kind,
            TaskKind::Stream { .. } | TaskKind::Transfer { .. }
        )) {
            prop_assert!(report.total_time_ns() > 0.0);
        }

        // Determinism across sweep worker counts on this graph.
        let make_sweep = || {
            let cfg = cfg.clone();
            let levels = levels.clone();
            let graph = graph.clone();
            Grid::new("graph-prop", [0u32, 1]).sweep(move |_| {
                let spec = switch_tree(&cfg, &levels).expect("valid");
                let mut sim = Simulation::from_topology(cfg.clone(), &spec).expect("valid");
                sim.run_graph(&graph).expect("completes").stats
            })
        };
        let serial = make_sweep().run(Jobs::serial()).to_json().expect("serializes");
        let parallel = make_sweep().run(Jobs::new(2)).to_json().expect("serializes");
        prop_assert_eq!(serial, parallel, "jobs=1 vs jobs=2 JSON diverged");
    }

    #[test]
    fn chain_dags_match_the_sequential_driver_plan(
        tasks in 1usize..16,
        seed in any::<u64>(),
    ) {
        // Any pure chain (each task depending on its predecessor) must
        // take the synchronous fast path throughout: zero async
        // launches, zero waits — the sequential drivers' program shape.
        let mut rng = Gen(seed);
        let mut g = TaskGraph::new();
        let mut prev: Option<usize> = None;
        for i in 0..tasks {
            let kind = if rng.below(2) == 0 {
                TaskKind::Gemm(GemmSpec::square(16 + rng.below(4) as u32 * 16))
            } else {
                TaskKind::Stream {
                    read_bytes: 1 << 12,
                    write_bytes: 1 << 12,
                    flops: 1 << 10,
                }
            };
            let deps = prev.into_iter().collect();
            prev = Some(g.add(format!("t{i}"), kind, Affinity::Pinned(0), deps));
        }
        let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4)
            .with_compute_override_ns(5_000.0);
        cfg.smmu = None;
        let mut sim = Simulation::new(cfg).expect("valid config");
        let (_, plan) = sim.run_graph_planned(&g).expect("chain completes");
        prop_assert_eq!(plan.async_launches, 0);
        prop_assert_eq!(plan.waits, 0);
        prop_assert_eq!(plan.sync_launches, plan.launches);
    }
}
