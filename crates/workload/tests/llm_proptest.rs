//! Property tests over the LLM workload family: random (batch,
//! prefill-len, decode-len, KV budget) shapes on random switch trees —
//! every generated graph validates and dispatches to completion, the
//! KV cache evicts *only* when the claimed slice is actually full
//! (checked against an independent shadow model), and sweeps stay
//! byte-identical across worker counts.

use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::llm::{moe_token_route, speculative_fork_verify, KvCache, KvEvent, LlmSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A small deterministic generator (split-mix style), as in
/// `graph_proptest.rs`.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn tree_sim(levels: &[u32]) -> Simulation {
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(5_000.0);
    cfg.smmu = None;
    let spec = switch_tree_with(&cfg, levels, |_| EndpointOptions {
        accel: None,
        dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
    })
    .expect("generated trees are valid");
    Simulation::from_topology(cfg, &spec).expect("valid topology")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The eviction invariant, against an independent shadow model:
    /// a random claim/release workload over a random budget must evict
    /// exactly when (and only when) the claim strictly overflows the
    /// device's resident bytes — never on an exact fit, never while
    /// space remains, and the cache's resident accounting must agree
    /// with the shadow at every step.
    #[test]
    fn evictions_fire_only_when_the_slice_is_actually_full(
        budget in 64u64..4096,
        steps in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut rng = Gen(seed);
        let mut kv = KvCache::new(1, budget);
        // Shadow: request id → (bytes, resident).
        let mut shadow: BTreeMap<u64, (u64, bool)> = BTreeMap::new();
        for round in 0..steps as u64 {
            let id = rng.below(5);
            if rng.below(4) == 0 {
                kv.release(id);
                shadow.remove(&id);
                continue;
            }
            let bytes = 1 + rng.below(budget);
            let (old, resident) = shadow.get(&id).copied().unwrap_or((0, false));
            let total = old + bytes;
            let resident_before: u64 = shadow
                .values()
                .filter(|(_, r)| *r)
                .map(|(b, _)| *b)
                .sum();
            let delta = total - if resident { old } else { 0 };
            match kv.claim(id, 0, bytes, round) {
                Err(_) => {
                    prop_assert!(total > budget, "claim of {total} rejected under budget {budget}");
                }
                Ok(events) => {
                    prop_assert!(total <= budget);
                    let evicted: Vec<u64> = events
                        .iter()
                        .filter_map(|e| match e {
                            KvEvent::Evicted { request, .. } => Some(*request),
                            KvEvent::Restored { .. } => None,
                        })
                        .collect();
                    if evicted.is_empty() {
                        // No eviction ⇒ the claim fit as-is (exact fill
                        // included).
                        prop_assert!(
                            resident_before + delta <= budget,
                            "spurious eviction-free overflow: {resident_before}+{delta} > {budget}"
                        );
                    } else {
                        // Eviction ⇒ the slice really was full.
                        prop_assert!(
                            resident_before + delta > budget,
                            "evicted {evicted:?} while {resident_before}+{delta} <= {budget}"
                        );
                        prop_assert!(!evicted.contains(&id), "a request never evicts itself");
                    }
                    // Mirror the events into the shadow.
                    for e in events {
                        match e {
                            KvEvent::Evicted { request, .. } => {
                                shadow.get_mut(&request).expect("victim exists").1 = false;
                            }
                            KvEvent::Restored { request, bytes, .. } => {
                                prop_assert_eq!(request, id);
                                prop_assert_eq!(bytes, old);
                            }
                        }
                    }
                    shadow.insert(id, (total, true));
                }
            }
            let shadow_resident: u64 = shadow
                .values()
                .filter(|(_, r)| *r)
                .map(|(b, _)| *b)
                .sum();
            prop_assert_eq!(kv.resident_on(0), shadow_resident);
            prop_assert!(kv.resident_on(0) <= budget, "residency never exceeds the budget");
        }
    }

    /// Random autoregressive shapes on random trees: the family's
    /// graphs validate and dispatch to completion, and the whole sweep
    /// is byte-identical on one worker or two.
    #[test]
    fn random_llm_shapes_dispatch_on_random_trees(
        depth in 1usize..3,
        fanout in 1u32..3,
        batch in 1u32..4,
        prompt in 1u32..10,
        decode in 0u32..4,
        seed in any::<u64>(),
    ) {
        let devices = fanout.pow(depth as u32) as usize;
        let levels = vec![fanout; depth];
        let mut rng = Gen(seed);
        let spec = LlmSpec {
            hidden: 32 << rng.below(2),
            heads: 2,
            mlp: 64,
            layers: 1 + rng.below(2) as u32,
        };

        // Every family graph validates against the tree's device count.
        let prefill = spec.prefill_graph(batch, prompt);
        prop_assert!(prefill.validate(devices).is_ok());
        let spec_decode = speculative_fork_verify(&spec, prompt, 1 + decode, devices);
        prop_assert!(spec_decode.validate(devices).is_ok());
        let moe = moe_token_route(&spec, prompt * batch, 1 + rng.below(4) as usize, devices);
        prop_assert!(moe.validate(devices).is_ok());

        // And they all dispatch to completion on the tree.
        let mut sim = tree_sim(&levels);
        for g in [&prefill, &spec_decode, &moe] {
            sim.run_graph(g).expect("family graphs complete");
        }

        // Determinism across sweep worker counts: a two-point sweep
        // running prefill + speculative decode on fresh trees.
        let make_sweep = || {
            let levels = levels.clone();
            Grid::new("llm-prop", [0u32, 1]).sweep(move |_| {
                let mut sim = tree_sim(&levels);
                let a = sim.run_graph(&spec.prefill_graph(batch, prompt)).expect("completes");
                let b = sim
                    .run_graph(&speculative_fork_verify(&spec, prompt, 1 + decode, devices))
                    .expect("completes");
                (a.total_ticks, b.stats)
            })
        };
        let serial = make_sweep().run(Jobs::serial()).to_json().expect("serializes");
        let parallel = make_sweep().run(Jobs::new(2)).to_json().expect("serializes");
        prop_assert_eq!(serial, parallel, "jobs=1 vs jobs=2 JSON diverged");
    }
}
