//! Vision Transformer inference op graphs.

use crate::GemmSpec;

/// The ViT variants the paper evaluates (hidden dimensions 768, 1024 and
/// 1280; 12 or 16 attention heads).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum VitModel {
    /// ViT-Base: 12 layers, hidden 768, 12 heads.
    Base,
    /// ViT-Large: 24 layers, hidden 1024, 16 heads.
    Large,
    /// ViT-Huge: 32 layers, hidden 1280, 16 heads.
    Huge,
}

impl VitModel {
    /// All paper variants.
    pub const ALL: [VitModel; 3] = [VitModel::Base, VitModel::Large, VitModel::Huge];

    /// Hidden dimension.
    pub fn hidden(self) -> u32 {
        match self {
            VitModel::Base => 768,
            VitModel::Large => 1024,
            VitModel::Huge => 1280,
        }
    }

    /// Encoder layers.
    pub fn layers(self) -> u32 {
        match self {
            VitModel::Base => 12,
            VitModel::Large => 24,
            VitModel::Huge => 32,
        }
    }

    /// Attention heads.
    pub fn heads(self) -> u32 {
        match self {
            VitModel::Base => 12,
            VitModel::Large | VitModel::Huge => 16,
        }
    }

    /// Tokens per image: 14×14 patches + CLS for 224×224/16.
    pub fn seq_len(self) -> u32 {
        197
    }

    /// MLP expansion dimension (4×hidden).
    pub fn mlp_dim(self) -> u32 {
        4 * self.hidden()
    }

    /// Per-head dimension.
    pub fn head_dim(self) -> u32 {
        self.hidden() / self.heads()
    }

    /// Flattened patch dimension for 224×224 RGB, 16×16 patches
    /// (3 × 16 × 16).
    pub fn patch_dim(self) -> u32 {
        3 * 16 * 16
    }

    /// ImageNet-1k classifier width.
    pub fn num_classes(self) -> u32 {
        1000
    }

    /// Total learned parameters of the full model (embeddings, encoder,
    /// final norm and classifier head).
    ///
    /// ```
    /// use accesys_workload::VitModel;
    ///
    /// // The well-known ≈86M / ≈304M parameter counts of ViT-B/16 and
    /// // ViT-L/16 at 224×224.
    /// assert_eq!(VitModel::Base.param_count() / 1_000_000, 86);
    /// assert_eq!(VitModel::Large.param_count() / 1_000_000, 304);
    /// ```
    pub fn param_count(self) -> u64 {
        let h = u64::from(self.hidden());
        let m = u64::from(self.mlp_dim());
        let s = u64::from(self.seq_len());
        let p = u64::from(self.patch_dim());
        let c = u64::from(self.num_classes());
        let embed = p * h + h + s * h + h; // patch proj + bias + pos + cls
        let per_layer = (3 * h * h + 3 * h)   // qkv
            + (h * h + h)                     // proj
            + (h * m + m)                     // fc1
            + (m * h + h)                     // fc2
            + 2 * 2 * h; // two LayerNorms (scale + shift)
        let head = 2 * h + (h * c + c); // final LN + classifier
        embed + u64::from(self.layers()) * per_layer + head
    }
}

impl std::fmt::Display for VitModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VitModel::Base => "ViT-Base",
            VitModel::Large => "ViT-Large",
            VitModel::Huge => "ViT-Huge",
        };
        f.write_str(s)
    }
}

/// Operator class: GEMM runs on the accelerator, the rest on the CPU.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum OpKind {
    /// Matrix multiplication (offloaded).
    Gemm,
    /// Layer normalisation.
    LayerNorm,
    /// Attention softmax.
    Softmax,
    /// GELU activation.
    Gelu,
    /// Residual addition.
    Residual,
}

impl OpKind {
    /// Whether the operator is offloaded to the accelerator.
    pub fn is_gemm(self) -> bool {
        self == OpKind::Gemm
    }
}

/// One operator instance of the inference graph.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Op {
    /// Human-readable name ("qkv", "softmax", ...).
    pub name: String,
    /// Operator class.
    pub kind: OpKind,
    /// GEMM shape when `kind` is [`OpKind::Gemm`].
    pub gemm: Option<GemmSpec>,
    /// Bytes read by a Non-GEMM operator.
    pub read_bytes: u64,
    /// Bytes written by a Non-GEMM operator.
    pub write_bytes: u64,
    /// Arithmetic operations of a Non-GEMM operator.
    pub flops: u64,
    /// Times this operator runs per encoder layer.
    pub count: u32,
}

impl Op {
    pub(crate) fn gemm(name: &str, m: u32, n: u32, k: u32, count: u32) -> Op {
        Op {
            name: name.to_string(),
            kind: OpKind::Gemm,
            gemm: Some(GemmSpec::new(m, n, k)),
            read_bytes: 0,
            write_bytes: 0,
            flops: 0,
            count,
        }
    }

    pub(crate) fn non_gemm(
        name: &str,
        kind: OpKind,
        read_bytes: u64,
        write_bytes: u64,
        flops: u64,
        count: u32,
    ) -> Op {
        Op {
            name: name.to_string(),
            kind,
            gemm: None,
            read_bytes,
            write_bytes,
            flops,
            count,
        }
    }

    /// Total MACs of this op across its `count` instances (GEMM only).
    ///
    /// Saturates at `u64::MAX` instead of wrapping: synthetic mega-ops
    /// (huge shapes × huge counts) stay "absurdly large" rather than
    /// silently becoming small numbers.
    pub fn total_macs(&self) -> u64 {
        self.gemm
            .map(|g| g.macs().saturating_mul(u64::from(self.count)))
            .unwrap_or(0)
    }

    /// Total bytes touched by Non-GEMM instances.
    ///
    /// Saturates at `u64::MAX` like [`Op::total_macs`].
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes
            .saturating_add(self.write_bytes)
            .saturating_mul(u64::from(self.count))
    }
}

/// The operators of **one encoder layer** of `model`, in execution order.
///
/// The full model is `model.layers()` identical layers; callers simulate
/// one layer and scale, exactly like the paper's analytic Section V-D.
///
/// ```
/// use accesys_workload::{vit_ops, VitModel, OpKind};
///
/// let ops = vit_ops(VitModel::Base);
/// assert!(ops.iter().any(|o| o.kind == OpKind::Softmax));
/// let gemm_macs: u64 = ops.iter().map(|o| o.total_macs()).sum();
/// assert!(gemm_macs > 1_000_000_000); // >1 GMAC per ViT-Base layer
/// ```
pub fn vit_ops(model: VitModel) -> Vec<Op> {
    encoder_layer_ops(
        model.seq_len(),
        model.hidden(),
        model.heads(),
        model.mlp_dim(),
    )
}

/// The operators of one generic transformer encoder layer — the shared
/// structure behind both ViT ([`vit_ops`]) and BERT
/// ([`crate::bert_ops`]) workloads, public so graph lowerings and
/// experiments can build scaled synthetic encoders (`hidden` must be a
/// multiple of `heads`).
pub fn encoder_ops(seq: u32, hidden: u32, heads: u32, mlp: u32) -> Vec<Op> {
    encoder_layer_ops(seq, hidden, heads, mlp)
}

pub(crate) fn encoder_layer_ops(seq: u32, hidden: u32, heads: u32, mlp: u32) -> Vec<Op> {
    let s = u64::from(seq);
    let h = u64::from(hidden);
    let hd = hidden / heads;
    let m = u64::from(mlp);
    let d = 4u64; // 4-byte elements

    vec![
        // LayerNorm 1: read + write S×H, ~8 ops/element.
        Op::non_gemm("ln1", OpKind::LayerNorm, s * h * d, s * h * d, 8 * s * h, 1),
        // Fused QKV projection.
        Op::gemm("qkv", seq, 3 * hidden, hidden, 1),
        // Attention scores per head: S×S over head_dim.
        Op::gemm("scores", seq, seq, hd, heads),
        // Softmax over heads × S × S scores.
        Op::non_gemm(
            "softmax",
            OpKind::Softmax,
            u64::from(heads) * s * s * d,
            u64::from(heads) * s * s * d,
            5 * u64::from(heads) * s * s,
            1,
        ),
        // Attention-weighted values per head.
        Op::gemm("attnv", seq, hd, seq, heads),
        // Output projection.
        Op::gemm("proj", seq, hidden, hidden, 1),
        // Residual 1.
        Op::non_gemm(
            "residual1",
            OpKind::Residual,
            2 * s * h * d,
            s * h * d,
            s * h,
            1,
        ),
        // LayerNorm 2.
        Op::non_gemm("ln2", OpKind::LayerNorm, s * h * d, s * h * d, 8 * s * h, 1),
        // MLP up-projection.
        Op::gemm("fc1", seq, mlp, hidden, 1),
        // GELU on the expanded activations.
        Op::non_gemm("gelu", OpKind::Gelu, s * m * d, s * m * d, 10 * s * m, 1),
        // MLP down-projection.
        Op::gemm("fc2", seq, hidden, mlp, 1),
        // Residual 2.
        Op::non_gemm(
            "residual2",
            OpKind::Residual,
            2 * s * h * d,
            s * h * d,
            s * h,
            1,
        ),
    ]
}

/// The operators of the **embedding stage**: patch projection GEMM plus
/// the positional-embedding add.
pub fn vit_embed_ops(model: VitModel) -> Vec<Op> {
    let s = u64::from(model.seq_len());
    let h = u64::from(model.hidden());
    let d = 4u64;
    vec![
        // 196 patches × hidden, reduced over the flattened patch.
        Op::gemm(
            "patch_embed",
            model.seq_len() - 1,
            model.hidden(),
            model.patch_dim(),
            1,
        ),
        // Positional embedding + CLS concat: one streaming add over S×H.
        Op::non_gemm(
            "pos_embed",
            OpKind::Residual,
            2 * s * h * d,
            s * h * d,
            s * h,
            1,
        ),
    ]
}

/// The operators of the **classification head**: final LayerNorm and the
/// CLS-token classifier GEMM.
pub fn vit_head_ops(model: VitModel) -> Vec<Op> {
    let s = u64::from(model.seq_len());
    let h = u64::from(model.hidden());
    let d = 4u64;
    vec![
        Op::non_gemm(
            "ln_f",
            OpKind::LayerNorm,
            s * h * d,
            s * h * d,
            8 * s * h,
            1,
        ),
        // Only the CLS token reaches the classifier: a 1×classes GEMM.
        Op::gemm("head", 1, model.num_classes(), model.hidden(), 1),
    ]
}

/// The **entire** ViT inference graph: embedding, `model.layers()`
/// encoder layers, and the classification head, in execution order.
///
/// Layer ops are repeated per layer with `layerN.` name prefixes, so a
/// simulator replays the real job sequence rather than scaling one layer.
///
/// ```
/// use accesys_workload::{vit_full_ops, VitModel};
///
/// let ops = vit_full_ops(VitModel::Base);
/// // 2 embed + 12 layers × 12 ops + 2 head.
/// assert_eq!(ops.len(), 2 + 12 * 12 + 2);
/// ```
pub fn vit_full_ops(model: VitModel) -> Vec<Op> {
    let mut ops = vit_embed_ops(model);
    let layer = vit_ops(model);
    for l in 0..model.layers() {
        for op in &layer {
            let mut op = op.clone();
            op.name = format!("layer{l}.{}", op.name);
            ops.push(op);
        }
    }
    ops.extend(vit_head_ops(model));
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_dimensions_match_the_paper() {
        assert_eq!(VitModel::Base.hidden(), 768);
        assert_eq!(VitModel::Large.hidden(), 1024);
        assert_eq!(VitModel::Huge.hidden(), 1280);
        assert_eq!(VitModel::Base.heads(), 12);
        assert_eq!(VitModel::Large.heads(), 16);
        assert_eq!(VitModel::Huge.heads(), 16);
        for m in VitModel::ALL {
            assert_eq!(m.hidden() % m.heads(), 0);
        }
    }

    #[test]
    fn layer_has_both_gemm_and_non_gemm() {
        for model in VitModel::ALL {
            let ops = vit_ops(model);
            let gemms = ops.iter().filter(|o| o.kind.is_gemm()).count();
            let non = ops.iter().filter(|o| !o.kind.is_gemm()).count();
            assert_eq!(gemms, 6, "{model}: qkv, scores, attnv, proj, fc1, fc2");
            assert_eq!(non, 6, "{model}: 2 LN, softmax, gelu, 2 residual");
        }
    }

    #[test]
    fn mac_counts_scale_with_model_size() {
        let macs = |m: VitModel| -> u64 { vit_ops(m).iter().map(|o| o.total_macs()).sum() };
        let base = macs(VitModel::Base);
        let large = macs(VitModel::Large);
        let huge = macs(VitModel::Huge);
        assert!(base < large && large < huge);
        // ViT-Base layer ≈ S*(3H² + H² + H² ... + 8H²) + attention: sanity
        // band around the analytic 1.45 GMAC.
        assert!((1_300..=1_600).contains(&(base / 1_000_000)), "{base}");
    }

    #[test]
    fn attention_ops_scale_with_heads() {
        let ops = vit_ops(VitModel::Base);
        let scores = ops.iter().find(|o| o.name == "scores").unwrap();
        assert_eq!(scores.count, 12);
        let g = scores.gemm.unwrap();
        assert_eq!((g.m, g.n, g.k), (197, 197, 64));
    }

    #[test]
    fn non_gemm_bytes_are_nonzero_and_softmax_dominated() {
        let ops = vit_ops(VitModel::Large);
        let softmax = ops.iter().find(|o| o.name == "softmax").unwrap();
        let ln = ops.iter().find(|o| o.name == "ln1").unwrap();
        assert!(softmax.total_bytes() > ln.total_bytes());
    }

    #[test]
    fn param_counts_match_published_models() {
        // ViT-B/16 86.6M and ViT-L/16 304.3M at 224×224 are exact; the
        // published ViT-H figure (632M) uses 14×14 patches, so with this
        // crate's fixed 16×16 patching Huge lands within a few percent.
        assert_eq!(VitModel::Base.param_count() / 1_000_000, 86);
        assert_eq!(VitModel::Large.param_count() / 1_000_000, 304);
        let huge = VitModel::Huge.param_count() / 1_000_000;
        assert!((610..=650).contains(&huge), "huge {huge}M");
    }

    #[test]
    fn op_totals_saturate_instead_of_wrapping() {
        // A synthetic mega-op right at the u64 boundary: 2^32-row cube
        // GEMM ≈ 2^96 MACs per instance — any multiply by count would
        // wrap. The totals must clamp to u64::MAX, not wrap to a small
        // (plausible-looking) number.
        let huge = Op::gemm("mega", u32::MAX, u32::MAX, u32::MAX, u32::MAX);
        assert_eq!(huge.total_macs(), u64::MAX);
        // Exactly at the boundary: macs * count == u64::MAX stays exact…
        let exact = Op {
            gemm: Some(GemmSpec::new(1, 1, 1)),
            ..Op::gemm("unit", 1, 1, 1, 1)
        };
        assert_eq!(exact.total_macs(), 1);
        // …and one step past it saturates.
        let bytes = Op::non_gemm("mega-bytes", OpKind::Softmax, u64::MAX, 1, 0, 1);
        assert_eq!(bytes.total_bytes(), u64::MAX);
        let count_wrap = Op::non_gemm("count-wrap", OpKind::Gelu, 1 << 62, 1 << 62, 0, 4);
        assert_eq!(count_wrap.total_bytes(), u64::MAX);
    }

    #[test]
    fn full_graph_has_embed_layers_and_head() {
        for model in VitModel::ALL {
            let ops = vit_full_ops(model);
            let expect = 2 + model.layers() as usize * 12 + 2;
            assert_eq!(ops.len(), expect, "{model}");
            assert_eq!(ops[0].name, "patch_embed");
            assert_eq!(ops.last().unwrap().name, "head");
            assert!(ops.iter().any(|o| o.name == "layer0.qkv"));
            assert!(ops
                .iter()
                .any(|o| o.name == format!("layer{}.fc2", model.layers() - 1)));
        }
    }

    #[test]
    fn full_graph_macs_exceed_layer_macs_by_layer_count() {
        let model = VitModel::Base;
        let layer: u64 = vit_ops(model).iter().map(|o| o.total_macs()).sum();
        let full: u64 = vit_full_ops(model).iter().map(|o| o.total_macs()).sum();
        assert!(full > u64::from(model.layers()) * layer);
        assert!(full < u64::from(model.layers() + 1) * layer);
    }

    #[test]
    fn embed_gemm_covers_all_patches() {
        let ops = vit_embed_ops(VitModel::Base);
        let g = ops[0].gemm.unwrap();
        assert_eq!((g.m, g.n, g.k), (196, 768, 768));
    }

    #[test]
    fn head_gemm_is_cls_only() {
        let ops = vit_head_ops(VitModel::Huge);
        let g = ops[1].gemm.unwrap();
        assert_eq!((g.m, g.n, g.k), (1, 1000, 1280));
    }
}
