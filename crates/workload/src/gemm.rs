//! GEMM workload specification.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A GEMM problem `C[m×n] = A[m×k] × B[k×n]`.
///
/// ```
/// use accesys_workload::GemmSpec;
///
/// let spec = GemmSpec::square(1024);
/// // Table IV: 1024 → 3072 pages of footprint.
/// assert_eq!(spec.footprint_pages(4096), 3072);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct GemmSpec {
    /// Output rows.
    pub m: u32,
    /// Output columns.
    pub n: u32,
    /// Reduction depth.
    pub k: u32,
    /// Element size in bytes (the paper's accelerator uses 4-byte ints).
    pub dtype_bytes: u32,
    /// Seed for operand generation.
    pub seed: u64,
}

impl GemmSpec {
    /// A square `n × n × n` problem with 4-byte integers.
    pub fn square(n: u32) -> Self {
        GemmSpec {
            m: n,
            n,
            k: n,
            dtype_bytes: 4,
            seed: 0xACCE,
        }
    }

    /// A rectangular problem.
    pub fn new(m: u32, n: u32, k: u32) -> Self {
        GemmSpec {
            m,
            n,
            k,
            dtype_bytes: 4,
            seed: 0xACCE,
        }
    }

    /// Same problem with a different element width (e.g. 1 for int8
    /// inference, 2 for fp16): traffic halves/quarters, MACs stay equal.
    pub fn with_dtype_bytes(mut self, dtype_bytes: u32) -> Self {
        assert!(
            matches!(dtype_bytes, 1 | 2 | 4 | 8),
            "unsupported element width {dtype_bytes}"
        );
        self.dtype_bytes = dtype_bytes;
        self
    }

    /// Multiply–accumulate operations. Saturates at `u64::MAX` for
    /// synthetic shapes past 2^64 MACs (three `u32` maxima multiply to
    /// ~2^96) instead of wrapping.
    pub fn macs(&self) -> u64 {
        u64::from(self.m)
            .saturating_mul(u64::from(self.n))
            .saturating_mul(u64::from(self.k))
    }

    /// Bytes of A + B + C (the Table IV "memory footprint").
    pub fn footprint_bytes(&self) -> u64 {
        let d = u64::from(self.dtype_bytes);
        d * (u64::from(self.m) * u64::from(self.k)
            + u64::from(self.k) * u64::from(self.n)
            + u64::from(self.m) * u64::from(self.n))
    }

    /// Footprint in pages of `page_bytes` (Table IV row 1).
    pub fn footprint_pages(&self, page_bytes: u64) -> u64 {
        self.footprint_bytes().div_ceil(page_bytes)
    }

    /// Generate reproducible A (`m×k`) and B (`k×n`) operands with small
    /// integer entries (so i32 accumulation cannot overflow for the
    /// sizes used in tests).
    pub fn generate_operands(&self) -> (Vec<i32>, Vec<i32>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let a = (0..self.m as usize * self.k as usize)
            .map(|_| rng.gen_range(-8..=8))
            .collect();
        let b = (0..self.k as usize * self.n as usize)
            .map(|_| rng.gen_range(-8..=8))
            .collect();
        (a, b)
    }
}

impl std::fmt::Display for GemmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gemm {}x{}x{}", self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_footprints() {
        // Matrix size -> pages, exactly as the paper's Table IV.
        for (size, pages) in [
            (64, 12),
            (128, 48),
            (256, 192),
            (512, 768),
            (1024, 3072),
            (2048, 12288),
        ] {
            assert_eq!(GemmSpec::square(size).footprint_pages(4096), pages);
        }
    }

    #[test]
    fn operands_are_reproducible_and_bounded() {
        let spec = GemmSpec::square(32);
        let (a1, b1) = spec.generate_operands();
        let (a2, b2) = spec.generate_operands();
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_eq!(a1.len(), 32 * 32);
        assert!(a1.iter().all(|&x| (-8..=8).contains(&x)));
        // Different seed, different data.
        let other = GemmSpec { seed: 7, ..spec };
        assert_ne!(other.generate_operands().0, a1);
    }

    #[test]
    fn macs_count() {
        assert_eq!(GemmSpec::new(2, 3, 4).macs(), 24);
    }
}
