//! The autoregressive (LLM) workload family: prefill fork-joins,
//! per-token decode chains, and a KV-cache capacity model.
//!
//! Encoder workloads ([`crate::vit_ops`], [`crate::bert_ops`]) are
//! closed shapes: the whole sequence is known up front and every layer
//! touches all of it. Autoregressive serving splits into two regimes
//! with very different system behaviour:
//!
//! * **Prefill** — the prompt flows through every layer at full
//!   sequence length, exactly like an encoder layer stack. Compute
//!   bound; shards well ([`LlmSpec::prefill_graph`] is a fork-join over
//!   the batch).
//! * **Decode** — one new token attends over the whole accumulated
//!   context. The GEMMs are skinny (`m = 1`), the arithmetic intensity
//!   collapses, and the working set that matters is the **KV cache**:
//!   two `hidden`-wide vectors per layer per generated token that must
//!   stay resident in device memory for the next step to read.
//!
//! The [`KvCache`] models that residency against a per-device byte
//! budget (a slice of `devmem`, see `accesys::addrmap::devmem_slice`).
//! Claims that don't fit evict the least-recently-touched *other*
//! request on the device — a typed [`KvEvent::Evicted`] the serving
//! layer lowers to a host-memory [`TaskKind::Transfer`] — and a request
//! whose own cache can never fit is a typed [`KvError`], not a panic.
//! Capacity pressure is therefore observable as transfer traffic, never
//! silent.
//!
//! Two more shapes round out the family: [`speculative_fork_verify`]
//! (a cheap draft chain followed by a parallel verify fork) and
//! [`moe_token_route`] (router → per-expert GEMMs pinned across
//! switch-tree leaves → combine), both plain [`TaskGraph`]s any
//! dispatcher topology can run.

use std::collections::BTreeMap;

use crate::graph::{append_chain, Affinity, TaskGraph, TaskId, TaskKind};
use crate::{encoder_ops, Op, OpKind};

/// Geometry of an autoregressive transformer: the per-layer shapes both
/// prefill and decode ops derive from.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct LlmSpec {
    /// Hidden dimension (must be a multiple of `heads`).
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// MLP expansion dimension.
    pub mlp: u32,
    /// Decoder layers.
    pub layers: u32,
}

impl LlmSpec {
    /// A deliberately small geometry for tests and quick sweeps (hidden
    /// 64, 4 heads, MLP 128, 2 layers): big enough to exercise every op
    /// class, small enough that a prefill+decode serve simulates in
    /// milliseconds.
    pub fn tiny() -> LlmSpec {
        LlmSpec {
            hidden: 64,
            heads: 4,
            mlp: 128,
            layers: 2,
        }
    }

    /// KV-cache bytes one generated (or prompted) token pins in device
    /// memory: a key and a value vector (`2 × hidden × 4` bytes) per
    /// layer. Saturating, like the other workload byte math.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2u64.saturating_mul(u64::from(self.layers))
            .saturating_mul(u64::from(self.hidden))
            .saturating_mul(4)
    }

    /// The operator list of a **prefill**: the whole `prompt` flows
    /// through all [`LlmSpec::layers`] layers at full sequence length —
    /// an encoder stack, op for op.
    pub fn prefill_ops(&self, prompt: u32) -> Vec<Op> {
        let layer = encoder_ops(prompt.max(1), self.hidden, self.heads, self.mlp);
        let mut ops = Vec::with_capacity(layer.len() * self.layers.max(1) as usize);
        for _ in 0..self.layers.max(1) {
            ops.extend(layer.iter().cloned());
        }
        ops
    }

    /// The operator list of **one decode step**: a single token through
    /// all layers, attending over `ctx` cached tokens. Every GEMM is
    /// `m = 1` — the memory-bound regime where the KV cache (the
    /// `ctx`-long score/value reads) dominates.
    pub fn decode_ops(&self, ctx: u32) -> Vec<Op> {
        let ctx = ctx.max(1);
        let h = u64::from(self.hidden);
        let hd = self.hidden / self.heads;
        let m = u64::from(self.mlp);
        let c = u64::from(ctx);
        let heads = u64::from(self.heads);
        let d = 4u64; // 4-byte elements
        let layer = vec![
            Op::non_gemm("ln1", OpKind::LayerNorm, h * d, h * d, 8 * h, 1),
            Op::gemm("qkv", 1, 3 * self.hidden, self.hidden, 1),
            // One new query row against the whole cached context.
            Op::gemm("scores", 1, ctx, hd, self.heads),
            Op::non_gemm(
                "softmax",
                OpKind::Softmax,
                heads * c * d,
                heads * c * d,
                5 * heads * c,
                1,
            ),
            Op::gemm("attnv", 1, hd, ctx, self.heads),
            Op::gemm("proj", 1, self.hidden, self.hidden, 1),
            Op::non_gemm("residual1", OpKind::Residual, 2 * h * d, h * d, h, 1),
            Op::non_gemm("ln2", OpKind::LayerNorm, h * d, h * d, 8 * h, 1),
            Op::gemm("fc1", 1, self.mlp, self.hidden, 1),
            Op::non_gemm("gelu", OpKind::Gelu, m * d, m * d, 10 * m, 1),
            Op::gemm("fc2", 1, self.hidden, self.mlp, 1),
            Op::non_gemm("residual2", OpKind::Residual, 2 * h * d, h * d, h, 1),
        ];
        let mut ops = Vec::with_capacity(layer.len() * self.layers.max(1) as usize);
        for _ in 0..self.layers.max(1) {
            ops.extend(layer.iter().cloned());
        }
        ops
    }

    /// A **prefill fork-join**: `batch` independent prompt chains over
    /// an [`Affinity::AnyAccel`] pool, joined by a barrier — the shape
    /// the serving layer dispatches when several requests are admitted
    /// in one round.
    pub fn prefill_graph(&self, batch: u32, prompt: u32) -> TaskGraph {
        let ops = self.prefill_ops(prompt);
        let mut g = TaskGraph::new();
        let mut tails = Vec::new();
        for b in 0..batch.max(1) {
            let tail = append_chain(&mut g, &ops, Affinity::AnyAccel, None, &format!("p{b}"))
                .expect("prefill op lists are non-empty");
            tails.push(tail);
        }
        g.add("prefill", TaskKind::Barrier, Affinity::AnyAccel, tails);
        g
    }
}

/// Why a KV-cache claim can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// A single request's cache can never fit the per-device budget:
    /// even after evicting everything else the claim would not fit.
    /// Admission-time error, not a panic.
    RequestExceedsSlice {
        /// The request whose cache outgrew the slice.
        request: u64,
        /// Resident bytes the request would need.
        need: u64,
        /// The per-device budget it exceeds.
        budget: u64,
    },
    /// A claim named a device the cache was not sized for.
    BadDevice {
        /// The out-of-range device index.
        device: usize,
        /// Devices the cache tracks.
        devices: usize,
    },
}

impl std::fmt::Display for KvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KvError::RequestExceedsSlice {
                request,
                need,
                budget,
            } => write!(
                f,
                "request {request} needs {need} KV bytes resident but the device slice holds {budget}"
            ),
            KvError::BadDevice { device, devices } => {
                write!(f, "KV claim on device {device} but the cache tracks {devices}")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// A residency change the cache made to satisfy a claim. The serving
/// layer lowers each event to a [`TaskKind::Transfer`] against host
/// memory, so capacity pressure shows up as interconnect traffic.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KvEvent {
    /// A victim request's cache was offloaded to host memory.
    Evicted {
        /// The request whose cache was offloaded.
        request: u64,
        /// The device it was evicted from.
        device: usize,
        /// Bytes moved out.
        bytes: u64,
    },
    /// A previously evicted request's cache was brought back before
    /// growing.
    Restored {
        /// The request whose cache came back.
        request: u64,
        /// The device it was restored to.
        device: usize,
        /// Bytes moved back in.
        bytes: u64,
    },
}

/// One request's KV allocation.
#[derive(Copy, Clone, Debug)]
struct KvSegment {
    device: usize,
    bytes: u64,
    resident: bool,
    last_touch: u64,
}

/// The KV-cache capacity model: per-request byte segments growing
/// inside per-device budgets, with LRU eviction to host memory under
/// pressure.
///
/// Deterministic by construction — segments live in a [`BTreeMap`]
/// keyed by request id, victims are picked by `(last_touch, id)` — so a
/// replayed serve makes identical eviction decisions.
///
/// ```
/// use accesys_workload::llm::{KvCache, KvEvent};
///
/// let mut kv = KvCache::new(1, 1000);
/// assert!(kv.claim(0, 0, 600, 0).unwrap().is_empty());
/// assert!(kv.claim(1, 0, 400, 1).unwrap().is_empty()); // exactly full
/// // Growing request 1 evicts request 0 (the LRU victim):
/// let events = kv.claim(1, 0, 100, 2).unwrap();
/// assert_eq!(
///     events,
///     vec![KvEvent::Evicted { request: 0, device: 0, bytes: 600 }]
/// );
/// assert_eq!(kv.resident_on(0), 500);
/// ```
#[derive(Clone, Debug, Default)]
pub struct KvCache {
    budget: u64,
    segments: BTreeMap<u64, KvSegment>,
    resident: Vec<u64>,
    evictions: u64,
    evicted_bytes: u64,
    restores: u64,
    restored_bytes: u64,
    peak_resident: u64,
}

impl KvCache {
    /// A cache over `devices` devices, each with `budget_bytes` of KV
    /// capacity (the devmem slice share reserved for KV).
    pub fn new(devices: usize, budget_bytes: u64) -> KvCache {
        KvCache {
            budget: budget_bytes,
            resident: vec![0; devices.max(1)],
            ..KvCache::default()
        }
    }

    /// The per-device byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Devices tracked.
    pub fn devices(&self) -> usize {
        self.resident.len()
    }

    /// Resident KV bytes currently on `device`.
    pub fn resident_on(&self, device: usize) -> u64 {
        self.resident.get(device).copied().unwrap_or(0)
    }

    /// Total KV bytes of `request` (resident or offloaded).
    pub fn bytes_of(&self, request: u64) -> u64 {
        self.segments.get(&request).map(|s| s.bytes).unwrap_or(0)
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bytes evicted to host memory so far (saturating — synthetic
    /// mega-caches stay absurdly large instead of wrapping).
    pub fn evicted_bytes(&self) -> u64 {
        self.evicted_bytes
    }

    /// Restores performed so far.
    pub fn restores(&self) -> u64 {
        self.restores
    }

    /// Bytes restored from host memory so far (saturating).
    pub fn restored_bytes(&self) -> u64 {
        self.restored_bytes
    }

    /// Peak resident bytes observed on any single device.
    pub fn peak_resident(&self) -> u64 {
        self.peak_resident
    }

    /// Grow `request`'s cache on `device` by `bytes` (restoring it
    /// first if it was evicted), evicting least-recently-touched other
    /// requests as needed. `round` is the LRU clock — the serving
    /// engine passes its round counter. Returns the residency changes
    /// in the order they must be lowered (evictions first, then the
    /// restore).
    ///
    /// Eviction fires only when the claim *strictly* exceeds the
    /// budget: a claim that lands exactly on it is a fit, not pressure.
    ///
    /// # Errors
    ///
    /// [`KvError::RequestExceedsSlice`] when the request's own cache
    /// would exceed the whole budget (nothing to evict can help), and
    /// [`KvError::BadDevice`] for an out-of-range device. Failed claims
    /// change nothing.
    pub fn claim(
        &mut self,
        request: u64,
        device: usize,
        bytes: u64,
        round: u64,
    ) -> Result<Vec<KvEvent>, KvError> {
        if device >= self.resident.len() {
            return Err(KvError::BadDevice {
                device,
                devices: self.resident.len(),
            });
        }
        let seg = self.segments.get(&request).copied();
        // A request never spans devices: growth continues on the device
        // that holds (or held) its segment.
        let device = seg.map(|s| s.device).unwrap_or(device);
        let total = seg.map(|s| s.bytes).unwrap_or(0).saturating_add(bytes);
        if total > self.budget {
            return Err(KvError::RequestExceedsSlice {
                request,
                need: total,
                budget: self.budget,
            });
        }
        // Bytes this claim adds to the device: the growth, plus the
        // whole segment when it has to come back from host memory.
        let already_resident = seg.filter(|s| s.resident).map(|s| s.bytes).unwrap_or(0);
        let delta = total - already_resident;

        let mut events = Vec::new();
        // The pressure check runs in u128 so u64-scale segments still
        // compare correctly instead of saturating into a false fit.
        while u128::from(self.resident[device]) + u128::from(delta) > u128::from(self.budget) {
            let victim = self
                .segments
                .iter()
                .filter(|(&id, s)| id != request && s.resident && s.device == device)
                .min_by_key(|(&id, s)| (s.last_touch, id))
                .map(|(&id, _)| id)
                .expect("over budget implies another resident segment to evict");
            let v = self.segments.get_mut(&victim).expect("victim exists");
            v.resident = false;
            self.resident[device] -= v.bytes;
            self.evictions += 1;
            self.evicted_bytes = self.evicted_bytes.saturating_add(v.bytes);
            events.push(KvEvent::Evicted {
                request: victim,
                device,
                bytes: v.bytes,
            });
        }
        if let Some(s) = seg {
            if !s.resident && s.bytes > 0 {
                self.restores += 1;
                self.restored_bytes = self.restored_bytes.saturating_add(s.bytes);
                events.push(KvEvent::Restored {
                    request,
                    device,
                    bytes: s.bytes,
                });
            }
        }
        self.segments.insert(
            request,
            KvSegment {
                device,
                bytes: total,
                resident: true,
                last_touch: round,
            },
        );
        self.resident[device] = self.resident[device].saturating_add(delta);
        self.peak_resident = self.peak_resident.max(self.resident[device]);
        Ok(events)
    }

    /// Drop `request`'s cache entirely (the request retired), freeing
    /// its resident bytes. Returns the bytes freed (0 for unknown
    /// requests — releasing twice is harmless).
    pub fn release(&mut self, request: u64) -> u64 {
        match self.segments.remove(&request) {
            Some(s) => {
                if s.resident {
                    self.resident[s.device] -= s.bytes;
                }
                s.bytes
            }
            None => 0,
        }
    }
}

/// A **speculative-decode fork-verify** graph: a cheap sequential draft
/// chain proposes `draft` tokens (one [`LlmSpec::decode_ops`] slice per
/// token, context growing each step), then the full model verifies all
/// of them at once — a single-layer encoder pass over the `draft`-long
/// window forked across `devices` and joined at a barrier. The draft is
/// latency-serial; the verify is the parallel part worth sharding.
pub fn speculative_fork_verify(spec: &LlmSpec, ctx: u32, draft: u32, devices: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut prev: Option<TaskId> = None;
    let draft = draft.max(1);
    for i in 0..draft {
        prev = append_chain(
            &mut g,
            &spec.decode_ops(ctx.saturating_add(i)),
            Affinity::AnyAccel,
            prev,
            &format!("draft{i}"),
        );
    }
    let verify_ops = encoder_ops(draft, spec.hidden, spec.heads, spec.mlp);
    let mut joins = Vec::new();
    for d in 0..devices.max(1) {
        let tail = append_chain(
            &mut g,
            &verify_ops,
            Affinity::Pinned(d),
            prev,
            &format!("verify{d}"),
        )
        .expect("verify op lists are non-empty");
        joins.push(tail);
    }
    g.add("verify", TaskKind::Barrier, Affinity::AnyAccel, joins);
    g
}

/// An **MoE token-routing** graph: a router stream scores `tokens`,
/// each expert's share (tokens split round-robin, so counts differ by
/// at most one) runs its MLP pair pinned to device `expert % devices` —
/// across switch-tree leaves, this is the all-to-all the paper's
/// topology questions care about — and a combine stream joins the
/// expert outputs.
pub fn moe_token_route(spec: &LlmSpec, tokens: u32, experts: usize, devices: usize) -> TaskGraph {
    let tokens = tokens.max(1);
    let experts = experts.max(1) as u32;
    let devices = devices.max(1);
    let h = u64::from(spec.hidden);
    let d = 4u64;
    let mut g = TaskGraph::new();
    let router = g.add(
        "router",
        TaskKind::Stream {
            read_bytes: u64::from(tokens) * h * d,
            write_bytes: u64::from(tokens) * d,
            flops: u64::from(tokens) * u64::from(experts) * 2,
        },
        Affinity::AnyAccel,
        vec![],
    );
    let mut tails = Vec::new();
    for e in 0..experts {
        let share = tokens / experts + u32::from(e < tokens % experts);
        if share == 0 {
            continue;
        }
        let dev = e as usize % devices;
        // Tokens travel to the expert's leaf …
        let to = g.add(
            format!("e{e}.route"),
            TaskKind::Transfer {
                bytes: u64::from(share) * h * d,
            },
            Affinity::AnyAccel,
            vec![router],
        );
        // … run its MLP pair there …
        let up = g.add(
            format!("e{e}.fc1"),
            TaskKind::Gemm(crate::GemmSpec::new(share, spec.mlp, spec.hidden)),
            Affinity::Pinned(dev),
            vec![to],
        );
        let down = g.add(
            format!("e{e}.fc2"),
            TaskKind::Gemm(crate::GemmSpec::new(share, spec.hidden, spec.mlp)),
            Affinity::Pinned(dev),
            vec![up],
        );
        // … and come back for the combine.
        tails.push(g.add(
            format!("e{e}.return"),
            TaskKind::Transfer {
                bytes: u64::from(share) * h * d,
            },
            Affinity::AnyAccel,
            vec![down],
        ));
    }
    g.add(
        "combine",
        TaskKind::Stream {
            read_bytes: u64::from(tokens) * h * d,
            write_bytes: u64::from(tokens) * h * d,
            flops: u64::from(tokens) * h,
        },
        Affinity::AnyAccel,
        tails,
    );
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_ops_are_skinny_gemms_over_the_context() {
        let spec = LlmSpec::tiny();
        let ops = spec.decode_ops(100);
        assert_eq!(ops.len(), 12 * spec.layers as usize);
        for op in &ops {
            if let Some(gemm) = op.gemm {
                assert_eq!(gemm.m, 1, "{} is a decode GEMM", op.name);
            }
        }
        // Attention reads scale with the context; MLP work does not.
        let scores = |ctx: u32| {
            spec.decode_ops(ctx)
                .iter()
                .filter(|o| o.name == "scores")
                .map(|o| o.total_macs())
                .sum::<u64>()
        };
        assert_eq!(scores(200), 2 * scores(100));
    }

    #[test]
    fn prefill_is_an_encoder_stack() {
        let spec = LlmSpec::tiny();
        let ops = spec.prefill_ops(32);
        assert_eq!(ops.len(), 12 * spec.layers as usize);
        let one_layer: u64 = encoder_ops(32, spec.hidden, spec.heads, spec.mlp)
            .iter()
            .map(|o| o.total_macs())
            .sum();
        let stack: u64 = ops.iter().map(|o| o.total_macs()).sum();
        assert_eq!(stack, one_layer * u64::from(spec.layers));
    }

    #[test]
    fn prefill_graph_forks_and_joins() {
        let g = LlmSpec::tiny().prefill_graph(3, 16);
        assert!(g.validate(1).is_ok());
        let roots = g.tasks().iter().filter(|t| t.deps.is_empty()).count();
        assert_eq!(roots, 3);
        let last = g.task(g.len() - 1);
        assert!(matches!(last.kind, TaskKind::Barrier));
        assert_eq!(last.deps.len(), 3);
    }

    #[test]
    fn kv_exact_fill_does_not_evict() {
        // The boundary case: a claim landing exactly on the budget is a
        // fit — eviction only fires on strict overflow.
        let mut kv = KvCache::new(2, 1024);
        assert!(kv.claim(0, 0, 512, 0).unwrap().is_empty());
        assert!(kv.claim(1, 0, 512, 1).unwrap().is_empty());
        assert_eq!(kv.resident_on(0), 1024);
        assert_eq!(kv.evictions(), 0);
        // One more byte is pressure: the LRU victim (request 0) goes.
        let ev = kv.claim(2, 0, 1, 2).unwrap();
        assert_eq!(
            ev,
            vec![KvEvent::Evicted {
                request: 0,
                device: 0,
                bytes: 512
            }]
        );
        assert_eq!(kv.resident_on(0), 513);
    }

    #[test]
    fn kv_oversized_request_is_a_typed_error() {
        let mut kv = KvCache::new(1, 1000);
        let err = kv.claim(7, 0, 1001, 0).unwrap_err();
        assert_eq!(
            err,
            KvError::RequestExceedsSlice {
                request: 7,
                need: 1001,
                budget: 1000
            }
        );
        // Nothing changed; growth past the budget errors too.
        assert_eq!(kv.resident_on(0), 0);
        kv.claim(7, 0, 600, 1).unwrap();
        let err = kv.claim(7, 0, 401, 2).unwrap_err();
        assert!(matches!(
            err,
            KvError::RequestExceedsSlice { need: 1001, .. }
        ));
        assert_eq!(kv.bytes_of(7), 600);
    }

    #[test]
    fn kv_bad_device_is_a_typed_error() {
        let mut kv = KvCache::new(2, 1000);
        assert_eq!(
            kv.claim(0, 5, 10, 0).unwrap_err(),
            KvError::BadDevice {
                device: 5,
                devices: 2
            }
        );
    }

    #[test]
    fn kv_eviction_bytes_saturate() {
        // Synthetic mega-caches: evicting u64-scale segments twice must
        // pin the counter at u64::MAX, not wrap back around.
        let mut kv = KvCache::new(1, u64::MAX);
        kv.claim(0, 0, u64::MAX, 0).unwrap();
        let ev = kv.claim(1, 0, u64::MAX, 1).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(kv.evicted_bytes(), u64::MAX);
        let ev = kv.claim(2, 0, u64::MAX, 2).unwrap();
        assert_eq!(ev.len(), 1);
        assert_eq!(kv.evicted_bytes(), u64::MAX, "saturated, not wrapped");
        assert_eq!(kv.evictions(), 2);
    }

    #[test]
    fn kv_victims_are_lru_and_never_self() {
        let mut kv = KvCache::new(1, 1000);
        kv.claim(0, 0, 400, 0).unwrap(); // oldest
        kv.claim(1, 0, 400, 1).unwrap();
        // Request 1 grows past the budget: request 0 is the LRU victim,
        // request 1 never evicts itself.
        let ev = kv.claim(1, 0, 400, 2).unwrap();
        assert_eq!(
            ev,
            vec![KvEvent::Evicted {
                request: 0,
                device: 0,
                bytes: 400
            }]
        );
        assert_eq!(kv.bytes_of(1), 800);
        assert_eq!(kv.resident_on(0), 800);
    }

    #[test]
    fn kv_restore_brings_the_whole_segment_back() {
        let mut kv = KvCache::new(1, 1000);
        kv.claim(0, 0, 600, 0).unwrap();
        kv.claim(1, 0, 600, 1).unwrap(); // evicts 0
                                         // Request 0 decodes again: 1 is evicted, 0's 600 bytes restore,
                                         // then the new token lands on top.
        let ev = kv.claim(0, 0, 100, 2).unwrap();
        assert_eq!(
            ev,
            vec![
                KvEvent::Evicted {
                    request: 1,
                    device: 0,
                    bytes: 600
                },
                KvEvent::Restored {
                    request: 0,
                    device: 0,
                    bytes: 600
                },
            ]
        );
        assert_eq!(kv.bytes_of(0), 700);
        assert_eq!(kv.restored_bytes(), 600);
        assert_eq!(kv.resident_on(0), 700);
    }

    #[test]
    fn kv_release_frees_residency() {
        let mut kv = KvCache::new(2, 1000);
        kv.claim(0, 1, 800, 0).unwrap();
        assert_eq!(kv.release(0), 800);
        assert_eq!(kv.resident_on(1), 0);
        assert_eq!(kv.release(0), 0, "double release is harmless");
        // The freed space is really free: a full-budget claim fits.
        assert!(kv.claim(1, 1, 1000, 1).unwrap().is_empty());
    }

    #[test]
    fn kv_growth_stays_on_the_original_device() {
        let mut kv = KvCache::new(2, 1000);
        kv.claim(0, 1, 100, 0).unwrap();
        // A later claim naming another device still grows on device 1.
        kv.claim(0, 0, 100, 1).unwrap();
        assert_eq!(kv.resident_on(1), 200);
        assert_eq!(kv.resident_on(0), 0);
    }

    #[test]
    fn speculative_graph_drafts_then_forks() {
        let spec = LlmSpec::tiny();
        let g = speculative_fork_verify(&spec, 32, 4, 2);
        assert!(g.validate(2).is_ok());
        // One root (the first draft op); the final barrier joins both
        // verify shards.
        let roots = g.tasks().iter().filter(|t| t.deps.is_empty()).count();
        assert_eq!(roots, 1);
        let last = g.task(g.len() - 1);
        assert!(matches!(last.kind, TaskKind::Barrier));
        assert_eq!(last.deps.len(), 2);
        // Verify shards are pinned to distinct devices.
        let pins: std::collections::BTreeSet<usize> = g
            .tasks()
            .iter()
            .filter(|t| t.name.starts_with("verify"))
            .filter_map(|t| match t.affinity {
                Affinity::Pinned(d) => Some(d),
                Affinity::AnyAccel => None,
            })
            .collect();
        assert_eq!(pins.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn moe_routes_every_token_exactly_once() {
        let spec = LlmSpec::tiny();
        let g = moe_token_route(&spec, 10, 4, 2);
        assert!(g.validate(2).is_ok());
        // Expert shares: 10 tokens over 4 experts = 3, 3, 2, 2.
        let shares: Vec<u32> = g
            .tasks()
            .iter()
            .filter_map(|t| match &t.kind {
                TaskKind::Gemm(s) if t.name.ends_with("fc1") => Some(s.m),
                _ => None,
            })
            .collect();
        assert_eq!(shares, vec![3, 3, 2, 2]);
        // Experts pin round-robin over the devices.
        let pins: Vec<usize> = g
            .tasks()
            .iter()
            .filter_map(|t| match (&t.kind, t.affinity) {
                (TaskKind::Gemm(_), Affinity::Pinned(d)) if t.name.ends_with("fc1") => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(pins, vec![0, 1, 0, 1]);
        // The combine joins every expert's return transfer.
        let last = g.task(g.len() - 1);
        assert_eq!(last.deps.len(), 4);
    }

    #[test]
    fn moe_skips_empty_experts() {
        let g = moe_token_route(&LlmSpec::tiny(), 2, 8, 2);
        assert_eq!(g.device_task_count(), 2 * 2, "only 2 experts get tokens");
    }
}
