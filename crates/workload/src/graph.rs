//! The workload graph layer: a typed task-graph IR for multi-device
//! schedules.
//!
//! Where [`crate::vit_ops`] and friends describe *what* an inference
//! graph computes as a flat operator list, a [`TaskGraph`] describes
//! *how* it may execute: explicit dependency edges between typed tasks
//! ([`TaskKind`]) with per-task device affinity ([`Affinity`]). A
//! dependency-driven dispatcher (in the `accesys` core crate) walks the
//! graph and issues every ready task to an idle eligible device, so the
//! same IR expresses the paper's sequential Section V-D composition (a
//! chain), fork-join sharding, pipelined multi-accelerator inference,
//! head-parallel attention, and multi-tenant mixes.
//!
//! Lowerings from the operator lists live here too:
//!
//! * [`op_chain`] — the sequential driver: one task per operator
//!   instance, each depending on its predecessor, every GEMM pinned to
//!   device 0. This reproduces the pre-graph sequential drivers exactly.
//! * [`gemm_fork_join`] — one row-shard per device, joined by a barrier
//!   (the old bespoke `run_gemm_sharded` loop).
//! * [`pipelined_encoder`] / [`pipelined_vit`] — encoder layers split
//!   into per-device pipeline stages; a batch of images streams through,
//!   activations transferred hop to hop between stages.
//! * [`head_parallel_attention`] — QKV heads fan out across devices and
//!   join at the output projection.
//! * [`two_tenant_mix`] — two independent encoder chains (a ViT and a
//!   BERT tenant) interleaved over a shared accelerator pool.

use crate::{bert_ops, vit_ops, BertModel, GemmSpec, Op, VitModel};

/// Index of a task inside its [`TaskGraph`].
pub type TaskId = usize;

/// What a task does when it executes.
#[derive(Clone, Debug)]
pub enum TaskKind {
    /// A GEMM offloaded to an accelerator (doorbell → DMA → compute →
    /// MSI).
    Gemm(GemmSpec),
    /// A CPU streaming kernel (Non-GEMM operator: LayerNorm, softmax,
    /// GELU, residual — reads, writes, and arithmetic overlapped).
    Stream {
        /// Bytes read from the activation read window.
        read_bytes: u64,
        /// Bytes written to the activation write window.
        write_bytes: u64,
        /// Arithmetic operations retired while streaming.
        flops: u64,
    },
    /// A data movement of `bytes` between pipeline stages (activations
    /// handed from one device's working set to the next).
    Transfer {
        /// Bytes moved.
        bytes: u64,
    },
    /// A pure synchronization point: completes when its dependencies
    /// complete, costs nothing.
    Barrier,
}

impl TaskKind {
    /// Whether this task runs on an accelerator (needs a device slot).
    pub fn needs_device(&self) -> bool {
        matches!(self, TaskKind::Gemm(_))
    }
}

/// Which device a task may run on.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Affinity {
    /// Must run on device `0`-based index.
    Pinned(usize),
    /// Any accelerator; the dispatcher picks the lowest-index idle one.
    AnyAccel,
}

/// One node of a [`TaskGraph`].
#[derive(Clone, Debug)]
pub struct TaskSpec {
    /// Phase label the dispatcher records (prefixed `gemm:`, `nongemm:`
    /// or `xfer:` by kind).
    pub name: String,
    /// What the task does.
    pub kind: TaskKind,
    /// Device eligibility (only meaningful for [`TaskKind::Gemm`]; CPU
    /// tasks ignore it).
    pub affinity: Affinity,
    /// Tasks that must complete before this one may issue.
    pub deps: Vec<TaskId>,
    /// Completion label: when set, the dispatcher records a
    /// `done:<label>` mark at the tick the host retires this task, so
    /// callers (the serving layer's per-request latency tracking) can
    /// read an absolute completion time off the mark timeline. `None`
    /// (the default) emits nothing and keeps the compiled program
    /// byte-identical to pre-label builds.
    pub completion: Option<String>,
}

/// A structural error in a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no tasks.
    Empty,
    /// A dependency edge points at a task id outside the graph.
    DanglingDep {
        /// The task carrying the bad edge.
        task: TaskId,
        /// The out-of-range dependency.
        dep: TaskId,
    },
    /// The dependency edges contain a cycle through this task.
    Cycle {
        /// A task on the cycle.
        task: TaskId,
    },
    /// A task is pinned to a device the system does not have.
    BadAffinity {
        /// The offending task.
        task: TaskId,
        /// The pinned device index.
        device: usize,
        /// Devices actually present.
        accel_count: usize,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "task graph has no tasks"),
            GraphError::DanglingDep { task, dep } => {
                write!(f, "task {task} depends on undefined task {dep}")
            }
            GraphError::Cycle { task } => {
                write!(f, "task graph has a dependency cycle through task {task}")
            }
            GraphError::BadAffinity {
                task,
                device,
                accel_count,
            } => write!(
                f,
                "task {task} is pinned to device {device} but the system has {accel_count}"
            ),
        }
    }
}

impl std::error::Error for GraphError {}

/// A typed task graph: the workload-side mirror of the topology IR.
///
/// Build one with [`TaskGraph::add`] (dependencies may reference any
/// task, including later ones via [`TaskGraph::add_dep`]), or use a
/// lowering ([`op_chain`], [`gemm_fork_join`], [`pipelined_vit`], …).
/// Validate against a device count before dispatching.
///
/// ```
/// use accesys_workload::graph::{Affinity, TaskGraph, TaskKind};
/// use accesys_workload::GemmSpec;
///
/// let mut g = TaskGraph::new();
/// let a = g.add("qkv", TaskKind::Gemm(GemmSpec::square(64)), Affinity::Pinned(0), vec![]);
/// let b = g.add(
///     "softmax",
///     TaskKind::Stream { read_bytes: 1 << 16, write_bytes: 1 << 16, flops: 1 << 12 },
///     Affinity::AnyAccel,
///     vec![a],
/// );
/// g.add("proj", TaskKind::Gemm(GemmSpec::square(64)), Affinity::AnyAccel, vec![b]);
/// assert!(g.validate(1).is_ok());
/// assert_eq!(g.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskSpec>,
}

impl TaskGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// All tasks, in id order.
    pub fn tasks(&self) -> &[TaskSpec] {
        &self.tasks
    }

    /// The task with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &TaskSpec {
        &self.tasks[id]
    }

    /// Append a task and return its id.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        kind: TaskKind,
        affinity: Affinity,
        deps: Vec<TaskId>,
    ) -> TaskId {
        self.tasks.push(TaskSpec {
            name: name.into(),
            kind,
            affinity,
            deps,
            completion: None,
        });
        self.tasks.len() - 1
    }

    /// Label `task` as a completion point: the dispatcher will record a
    /// `done:<label>` mark at the tick the host retires it (observes
    /// its MSI, finishes its stream, or settles it as a barrier). The
    /// serving layer labels each request's tail task this way to track
    /// per-request latency from arrival tick to completion tick.
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range.
    pub fn set_completion(&mut self, task: TaskId, label: impl Into<String>) {
        self.tasks[task].completion = Some(label.into());
    }

    /// Add a dependency edge after the fact (enables forward edges while
    /// building; [`TaskGraph::validate`] catches any cycle this creates).
    ///
    /// # Panics
    ///
    /// Panics if `task` is out of range (`dep` is checked by
    /// [`TaskGraph::validate`] instead, so forward references work).
    pub fn add_dep(&mut self, task: TaskId, dep: TaskId) {
        self.tasks[task].deps.push(dep);
    }

    /// Number of tasks that need an accelerator.
    pub fn device_task_count(&self) -> usize {
        self.tasks.iter().filter(|t| t.kind.needs_device()).count()
    }

    /// Check the graph for structural errors: at least one task, no
    /// dangling dependency edges, no cycles, and every pinned affinity
    /// within `accel_count`.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] found (task-id order).
    pub fn validate(&self, accel_count: usize) -> Result<(), GraphError> {
        if self.tasks.is_empty() {
            return Err(GraphError::Empty);
        }
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                if d >= self.tasks.len() {
                    return Err(GraphError::DanglingDep { task: id, dep: d });
                }
            }
            if t.kind.needs_device() {
                if let Affinity::Pinned(dev) = t.affinity {
                    if dev >= accel_count {
                        return Err(GraphError::BadAffinity {
                            task: id,
                            device: dev,
                            accel_count,
                        });
                    }
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// A topological order of the tasks (smallest-id-first among ready
    /// tasks, so the order is deterministic), or the cycle that prevents
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Cycle`] naming a task on a dependency
    /// cycle, or [`GraphError::DanglingDep`] for out-of-range edges.
    pub fn topo_order(&self) -> Result<Vec<TaskId>, GraphError> {
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                if d >= n {
                    return Err(GraphError::DanglingDep { task: id, dep: d });
                }
                indegree[id] += 1;
            }
        }
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(id);
            }
        }
        // Kahn's algorithm with an ordered ready set: scan ids ascending.
        let mut order = Vec::with_capacity(n);
        let mut ready: Vec<TaskId> = (0..n).filter(|&i| indegree[i] == 0).collect();
        while let Some(&id) = ready.first() {
            ready.remove(0);
            order.push(id);
            for &dep in &dependents[id] {
                indegree[dep] -= 1;
                if indegree[dep] == 0 {
                    let pos = ready.partition_point(|&r| r < dep);
                    ready.insert(pos, dep);
                }
            }
        }
        if order.len() < n {
            let task = (0..n).find(|&i| indegree[i] > 0).expect("cycle exists");
            return Err(GraphError::Cycle { task });
        }
        Ok(order)
    }
}

/// The [`TaskKind::Stream`] of a Non-GEMM operator with its `count`
/// folded into the totals — exactly how the sequential driver streamed
/// it. Saturating like [`Op::total_bytes`], so synthetic mega-ops stay
/// absurdly large instead of wrapping past the window checks.
fn folded_stream(op: &Op) -> TaskKind {
    let count = u64::from(op.count);
    TaskKind::Stream {
        read_bytes: op.read_bytes.saturating_mul(count),
        write_bytes: op.write_bytes.saturating_mul(count),
        flops: op.flops.saturating_mul(count),
    }
}

/// Append `ops` to `g` as a chain continuing from `prev` (GEMM
/// instances expanded per `count` with `gemm_affinity`, Non-GEMM folded
/// via [`folded_stream`]); returns the chain's tail. `name_of` maps
/// each operator to its task label.
fn push_op_chain(
    g: &mut TaskGraph,
    ops: &[Op],
    gemm_affinity: Affinity,
    mut prev: Option<TaskId>,
    name_of: impl Fn(&Op) -> String,
) -> Option<TaskId> {
    for op in ops {
        if let Some(spec) = op.gemm {
            for _ in 0..op.count {
                let deps = prev.into_iter().collect();
                prev = Some(g.add(name_of(op), TaskKind::Gemm(spec), gemm_affinity, deps));
            }
        } else {
            let deps = prev.into_iter().collect();
            prev = Some(g.add(name_of(op), folded_stream(op), Affinity::AnyAccel, deps));
        }
    }
    prev
}

/// Append `ops` to an existing graph as a chain continuing from `prev`
/// (or as fresh roots when `prev` is `None`), with every GEMM given
/// `gemm_affinity` and every task name prefixed `"{prefix}."`. Returns
/// the id of the chain's tail task (`prev` unchanged when `ops` is
/// empty).
///
/// This is the lowering the serving layer batches with: each in-flight
/// request contributes one slice chain to a shared round graph, and the
/// batch joins at a barrier. It composes — chains appended to the same
/// graph are independent until something joins them.
///
/// ```
/// use accesys_workload::encoder_ops;
/// use accesys_workload::graph::{append_chain, Affinity, TaskGraph, TaskKind};
///
/// let ops = encoder_ops(64, 128, 4, 512);
/// let mut g = TaskGraph::new();
/// let a = append_chain(&mut g, &ops, Affinity::AnyAccel, None, "r0");
/// let b = append_chain(&mut g, &ops, Affinity::AnyAccel, None, "r1");
/// let tails = vec![a.unwrap(), b.unwrap()];
/// g.add("round", TaskKind::Barrier, Affinity::AnyAccel, tails);
/// assert!(g.validate(1).is_ok());
/// assert!(g.task(0).name.starts_with("r0."));
/// ```
pub fn append_chain(
    g: &mut TaskGraph,
    ops: &[Op],
    gemm_affinity: Affinity,
    prev: Option<TaskId>,
    prefix: &str,
) -> Option<TaskId> {
    push_op_chain(g, ops, gemm_affinity, prev, |op| {
        format!("{prefix}.{}", op.name)
    })
}

/// Lower a flat operator list to a **chain** graph: one task per GEMM
/// instance (a `count`-N GEMM operator becomes N chained tasks, exactly
/// like the sequential driver launched N jobs), one task per Non-GEMM
/// operator (its `count` folded into the byte/flop totals, as the
/// sequential driver streamed it), each task depending on its
/// predecessor, every GEMM pinned to device 0.
///
/// Dispatching this graph reproduces the pre-graph sequential drivers
/// byte for byte — it is what [`vit_ops`]-style workloads lower to.
pub fn op_chain(ops: &[Op]) -> TaskGraph {
    let mut g = TaskGraph::new();
    push_op_chain(&mut g, ops, Affinity::Pinned(0), None, |op| op.name.clone());
    g
}

/// Lower one GEMM to a **fork-join** graph over `devices` accelerators:
/// shard `i` computes rows `[i*m/N, (i+1)*m/N)` pinned to device `i`,
/// and a barrier joins all shards — the old bespoke sharded loop as a
/// graph.
pub fn gemm_fork_join(spec: GemmSpec, devices: usize) -> TaskGraph {
    let mut g = TaskGraph::new();
    let n = devices.max(1) as u32;
    let rows_per = spec.m.div_ceil(n);
    let mut shards = Vec::new();
    for dev in 0..n {
        let row0 = dev * rows_per;
        if row0 >= spec.m {
            break;
        }
        let rows = rows_per.min(spec.m - row0);
        let shard = GemmSpec { m: rows, ..spec };
        shards.push(g.add(
            "sharded",
            TaskKind::Gemm(shard),
            Affinity::Pinned(dev as usize),
            vec![],
        ));
    }
    g.add("sharded", TaskKind::Barrier, Affinity::AnyAccel, shards);
    g
}

/// Pipeline shape: how many encoder layers flow through how many
/// pipeline stages, and how many images stream through the pipeline.
#[derive(Copy, Clone, Debug)]
pub struct PipelineSpec {
    /// Encoder layers in the pipeline (split contiguously across
    /// stages).
    pub layers: u32,
    /// Images (batch elements) streamed through the pipeline; overlap
    /// grows with this.
    pub images: u32,
    /// Pipeline stages = devices used (stage `d` pins its GEMMs to
    /// device `d`).
    pub devices: usize,
}

/// A **pipelined encoder**: `p.layers` encoder layers of the given
/// geometry are split contiguously into `p.devices` stages; image `b`'s
/// stage `d` depends on its stage `d-1` via a [`TaskKind::Transfer`] of
/// the activation tensor (`seq × hidden × 4` bytes), and different
/// images occupy different stages concurrently — the dispatcher overlaps
/// them across devices.
///
/// Used directly by scaled-down experiments; [`pipelined_vit`] applies
/// it to the real ViT geometries.
pub fn pipelined_encoder(
    seq: u32,
    hidden: u32,
    heads: u32,
    mlp: u32,
    p: &PipelineSpec,
) -> TaskGraph {
    let ops = crate::encoder_ops(seq, hidden, heads, mlp);
    let act_bytes = u64::from(seq) * u64::from(hidden) * 4;
    let devices = p.devices.max(1);
    let layers = p.layers.max(1);
    // Contiguous stage split: stage d owns layers [d*L/D, (d+1)*L/D).
    let stage_of = |layer: u32| -> usize {
        ((u64::from(layer) * devices as u64) / u64::from(layers)) as usize
    };
    let mut g = TaskGraph::new();
    for image in 0..p.images.max(1) {
        let mut prev: Option<TaskId> = None;
        for layer in 0..layers {
            let dev = stage_of(layer);
            prev = push_op_chain(&mut g, &ops, Affinity::Pinned(dev), prev, |op| {
                format!("img{image}.l{layer}.{}", op.name)
            });
            // Hand the activations to the next stage's device.
            if layer + 1 < layers && stage_of(layer + 1) != dev {
                let deps = prev.into_iter().collect();
                prev = Some(g.add(
                    format!("img{image}.l{layer}.handoff"),
                    TaskKind::Transfer { bytes: act_bytes },
                    Affinity::AnyAccel,
                    deps,
                ));
            }
        }
    }
    g
}

/// [`pipelined_encoder`] at a real ViT geometry: encoder layers of
/// `model` pipelined across `p.devices` accelerators (e.g. the leaves of
/// a `topology::switch_tree`), activations transferred hop to hop.
pub fn pipelined_vit(model: VitModel, p: &PipelineSpec) -> TaskGraph {
    pipelined_encoder(
        model.seq_len(),
        model.hidden(),
        model.heads(),
        model.mlp_dim(),
        p,
    )
}

/// **Head-parallel attention**: one encoder layer of `model` where the
/// per-head `scores → softmax → attnv` chains fan out over the
/// accelerator pool ([`Affinity::AnyAccel`]) after the QKV projection
/// and join at the output projection; the MLP tail stays a chain.
pub fn head_parallel_attention(model: VitModel) -> TaskGraph {
    let ops = vit_ops(model);
    let by_name = |name: &str| -> &Op {
        ops.iter()
            .find(|o| o.name == name)
            .expect("encoder layers have the canonical op names")
    };
    let stream_kind = |op: &Op| TaskKind::Stream {
        read_bytes: op.read_bytes,
        write_bytes: op.write_bytes,
        flops: op.flops,
    };
    let heads = model.heads();
    let mut g = TaskGraph::new();
    let ln1 = g.add(
        "ln1",
        stream_kind(by_name("ln1")),
        Affinity::AnyAccel,
        vec![],
    );
    let qkv = g.add(
        "qkv",
        TaskKind::Gemm(by_name("qkv").gemm.expect("qkv is a GEMM")),
        Affinity::AnyAccel,
        vec![ln1],
    );
    // Per-head fan-out. The softmax bytes/flops of the fused operator
    // split evenly across heads.
    let softmax = by_name("softmax");
    let mut joins = Vec::new();
    for h in 0..heads {
        let scores = g.add(
            format!("scores.h{h}"),
            TaskKind::Gemm(by_name("scores").gemm.expect("scores is a GEMM")),
            Affinity::AnyAccel,
            vec![qkv],
        );
        let sm = g.add(
            format!("softmax.h{h}"),
            TaskKind::Stream {
                read_bytes: softmax.read_bytes / u64::from(heads),
                write_bytes: softmax.write_bytes / u64::from(heads),
                flops: softmax.flops / u64::from(heads),
            },
            Affinity::AnyAccel,
            vec![scores],
        );
        joins.push(g.add(
            format!("attnv.h{h}"),
            TaskKind::Gemm(by_name("attnv").gemm.expect("attnv is a GEMM")),
            Affinity::AnyAccel,
            vec![sm],
        ));
    }
    let proj = g.add(
        "proj",
        TaskKind::Gemm(by_name("proj").gemm.expect("proj is a GEMM")),
        Affinity::AnyAccel,
        joins,
    );
    // MLP tail stays sequential.
    let mut prev = proj;
    for name in ["residual1", "ln2"] {
        prev = g.add(
            name,
            stream_kind(by_name(name)),
            Affinity::AnyAccel,
            vec![prev],
        );
    }
    let fc1 = g.add(
        "fc1",
        TaskKind::Gemm(by_name("fc1").gemm.expect("fc1 is a GEMM")),
        Affinity::AnyAccel,
        vec![prev],
    );
    let gelu = g.add(
        "gelu",
        stream_kind(by_name("gelu")),
        Affinity::AnyAccel,
        vec![fc1],
    );
    let fc2 = g.add(
        "fc2",
        TaskKind::Gemm(by_name("fc2").gemm.expect("fc2 is a GEMM")),
        Affinity::AnyAccel,
        vec![gelu],
    );
    g.add(
        "residual2",
        stream_kind(by_name("residual2")),
        Affinity::AnyAccel,
        vec![fc2],
    );
    g
}

/// A **two-tenant mix**: a ViT encoder layer and a BERT encoder layer as
/// independent chains over a shared [`Affinity::AnyAccel`] pool, joined
/// by a final barrier. The dispatcher interleaves the tenants across
/// whatever devices the topology provides.
pub fn two_tenant_mix(vit: VitModel, bert: BertModel, bert_seq: u32) -> TaskGraph {
    let mut g = TaskGraph::new();
    let mut tails = Vec::new();
    for (prefix, ops) in [("vit", vit_ops(vit)), ("bert", bert_ops(bert, bert_seq))] {
        let tail = push_op_chain(&mut g, &ops, Affinity::AnyAccel, None, |op| {
            format!("{prefix}.{}", op.name)
        });
        tails.extend(tail);
    }
    g.add("tenants", TaskKind::Barrier, Affinity::AnyAccel, tails);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_gemm() -> TaskKind {
        TaskKind::Gemm(GemmSpec::square(32))
    }

    #[test]
    fn empty_graphs_are_rejected() {
        assert_eq!(TaskGraph::new().validate(1), Err(GraphError::Empty));
    }

    #[test]
    fn dangling_deps_are_rejected() {
        let mut g = TaskGraph::new();
        g.add("a", tiny_gemm(), Affinity::AnyAccel, vec![7]);
        assert_eq!(
            g.validate(1),
            Err(GraphError::DanglingDep { task: 0, dep: 7 })
        );
    }

    #[test]
    fn cycles_are_rejected() {
        let mut g = TaskGraph::new();
        let a = g.add("a", tiny_gemm(), Affinity::AnyAccel, vec![]);
        let b = g.add("b", tiny_gemm(), Affinity::AnyAccel, vec![a]);
        g.add_dep(a, b);
        assert!(matches!(g.validate(2), Err(GraphError::Cycle { .. })));
    }

    #[test]
    fn bad_pins_are_rejected_against_the_device_count() {
        let mut g = TaskGraph::new();
        g.add("a", tiny_gemm(), Affinity::Pinned(3), vec![]);
        assert_eq!(
            g.validate(2),
            Err(GraphError::BadAffinity {
                task: 0,
                device: 3,
                accel_count: 2
            })
        );
        assert!(g.validate(4).is_ok());
    }

    #[test]
    fn cpu_task_pins_are_ignored() {
        // A Stream task never needs a device slot, so a wild pin on it
        // must not fail validation.
        let mut g = TaskGraph::new();
        g.add(
            "s",
            TaskKind::Stream {
                read_bytes: 64,
                write_bytes: 64,
                flops: 0,
            },
            Affinity::Pinned(99),
            vec![],
        );
        assert!(g.validate(1).is_ok());
    }

    #[test]
    fn topo_order_is_deterministic_and_respects_deps() {
        let mut g = TaskGraph::new();
        let a = g.add("a", tiny_gemm(), Affinity::AnyAccel, vec![]);
        let b = g.add("b", tiny_gemm(), Affinity::AnyAccel, vec![]);
        let c = g.add("c", tiny_gemm(), Affinity::AnyAccel, vec![a, b]);
        let d = g.add("d", tiny_gemm(), Affinity::AnyAccel, vec![c]);
        let order = g.topo_order().unwrap();
        assert_eq!(order, vec![a, b, c, d]);
    }

    #[test]
    fn op_chain_mirrors_the_sequential_driver_shape() {
        let ops = vit_ops(VitModel::Base);
        let g = op_chain(&ops);
        // 6 GEMM operators expand per count (qkv 1, scores 12, attnv 12,
        // proj 1, fc1 1, fc2 1) + 6 Non-GEMM operators.
        assert_eq!(g.len(), (1 + 12 + 12 + 1 + 1 + 1) + 6);
        assert_eq!(g.device_task_count(), 28);
        // Chain: task i depends exactly on task i-1.
        for (i, t) in g.tasks().iter().enumerate() {
            if i == 0 {
                assert!(t.deps.is_empty());
            } else {
                assert_eq!(t.deps, vec![i - 1]);
            }
            if let TaskKind::Gemm(_) = t.kind {
                assert_eq!(t.affinity, Affinity::Pinned(0));
            }
        }
        assert!(g.validate(1).is_ok());
    }

    #[test]
    fn fork_join_shards_rows_and_joins() {
        let g = gemm_fork_join(GemmSpec::square(100), 4);
        // 4 shards of 25 rows + barrier.
        assert_eq!(g.len(), 5);
        let mut rows = 0;
        for (i, t) in g.tasks().iter().enumerate().take(4) {
            let TaskKind::Gemm(s) = &t.kind else {
                panic!("shard {i} is a GEMM");
            };
            rows += s.m;
            assert_eq!(t.affinity, Affinity::Pinned(i));
        }
        assert_eq!(rows, 100);
        let barrier = g.task(4);
        assert!(matches!(barrier.kind, TaskKind::Barrier));
        assert_eq!(barrier.deps, vec![0, 1, 2, 3]);
        assert!(g.validate(4).is_ok());
    }

    #[test]
    fn fork_join_drops_empty_shards() {
        // 3 rows over 8 devices: only 3 shards materialize.
        let g = gemm_fork_join(GemmSpec::square(3), 8);
        assert_eq!(g.device_task_count(), 3);
    }

    #[test]
    fn pipelined_vit_stages_pin_to_distinct_devices() {
        let p = PipelineSpec {
            layers: 4,
            images: 2,
            devices: 2,
        };
        let g = pipelined_vit(VitModel::Base, &p);
        assert!(g.validate(2).is_ok());
        // Layers 0-1 pin to device 0, layers 2-3 to device 1.
        let pins: std::collections::BTreeSet<usize> = g
            .tasks()
            .iter()
            .filter_map(|t| match (&t.kind, t.affinity) {
                (TaskKind::Gemm(_), Affinity::Pinned(d)) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(pins.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        // One handoff transfer per image at the stage boundary.
        let transfers = g
            .tasks()
            .iter()
            .filter(|t| matches!(t.kind, TaskKind::Transfer { .. }))
            .count();
        assert_eq!(transfers, 2);
        // Images are independent chains: some task of image 1 has no
        // path from image 0 (spot-check: first tasks of each image have
        // no deps).
        let roots = g.tasks().iter().filter(|t| t.deps.is_empty()).count();
        assert_eq!(roots, 2);
    }

    #[test]
    fn head_parallel_attention_fans_out_and_joins() {
        let model = VitModel::Base;
        let g = head_parallel_attention(model);
        assert!(g.validate(1).is_ok());
        let heads = model.heads() as usize;
        // ln1 + qkv + heads×(scores, softmax, attnv) + proj + 2 streams
        // + fc1 + gelu + fc2 + residual2.
        assert_eq!(g.len(), 2 + 3 * heads + 1 + 2 + 4);
        // The proj task joins every head's attnv.
        let proj = g
            .tasks()
            .iter()
            .find(|t| t.name == "proj")
            .expect("proj exists");
        assert_eq!(proj.deps.len(), heads);
        // Total GEMM MAC work matches the fused op list.
        let graph_macs: u64 = g
            .tasks()
            .iter()
            .filter_map(|t| match &t.kind {
                TaskKind::Gemm(s) => Some(s.macs()),
                _ => None,
            })
            .sum();
        let ops_macs: u64 = vit_ops(model).iter().map(|o| o.total_macs()).sum();
        assert_eq!(graph_macs, ops_macs);
    }

    #[test]
    fn two_tenant_mix_keeps_tenants_independent() {
        let g = two_tenant_mix(VitModel::Base, BertModel::Base, 128);
        assert!(g.validate(2).is_ok());
        // Exactly two dependency roots (one per tenant).
        let roots = g.tasks().iter().filter(|t| t.deps.is_empty()).count();
        assert_eq!(roots, 2);
        // The final barrier joins both tails.
        let last = g.task(g.len() - 1);
        assert!(matches!(last.kind, TaskKind::Barrier));
        assert_eq!(last.deps.len(), 2);
    }
}
