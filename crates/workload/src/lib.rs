//! # accesys-workload
//!
//! Workload generators for the Gem5-AcceSys reproduction:
//!
//! * [`GemmSpec`] — the general matrix-multiplication kernels the paper
//!   sweeps (Figs. 2–6, Table IV), with reproducible operand generation
//!   and the Table IV memory-footprint arithmetic (3·n²·4 bytes).
//! * [`VitModel`] / [`vit_ops`] — Vision Transformer inference graphs
//!   (base / large / huge: hidden 768/1024/1280, 12/16 heads) decomposed
//!   into GEMM operators (offloaded to the accelerator) and Non-GEMM
//!   operators (LayerNorm, Softmax, GELU, residual — run on the CPU),
//!   the split behind the paper's Figs. 7–9.
//! * [`graph`] — the task-graph IR: typed tasks with explicit dependency
//!   edges and per-task device affinity, plus the lowerings from the
//!   flat operator lists (chains, fork-join sharding, pipelined
//!   multi-device inference, head-parallel attention, tenant mixes).
//! * [`llm`] — the autoregressive family: prefill fork-joins, skinny
//!   per-token decode chains, a [`llm::KvCache`] capacity model whose
//!   pressure lowers to host-memory transfers, speculative-decode
//!   fork-verify and MoE token-routing shapes.
#![warn(missing_docs)]

mod bert;
mod gemm;
pub mod graph;
pub mod llm;
mod vit;

pub use bert::{bert_embed_ops, bert_ops, BertModel};
pub use gemm::GemmSpec;
pub use vit::{
    encoder_ops, vit_embed_ops, vit_full_ops, vit_head_ops, vit_ops, Op, OpKind, VitModel,
};
