//! BERT-style NLP encoder workloads.
//!
//! The paper motivates Gem5-AcceSys with "ML and NLP" transformers and
//! cites BERT; its evaluation uses ViT. The encoder layer is the same
//! computation — only the sequence length and the embedding stage differ
//! — so this module reuses the ViT operator construction with BERT
//! dimensions, demonstrating the workload generator's generality.

use crate::{Op, OpKind, VitModel};

/// BERT variants (Devlin et al., NAACL 2019).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum BertModel {
    /// BERT-Base: 12 layers, hidden 768, 12 heads.
    Base,
    /// BERT-Large: 24 layers, hidden 1024, 16 heads.
    Large,
}

impl BertModel {
    /// Both published variants.
    pub const ALL: [BertModel; 2] = [BertModel::Base, BertModel::Large];

    /// Hidden dimension.
    pub fn hidden(self) -> u32 {
        match self {
            BertModel::Base => 768,
            BertModel::Large => 1024,
        }
    }

    /// Encoder layers.
    pub fn layers(self) -> u32 {
        match self {
            BertModel::Base => 12,
            BertModel::Large => 24,
        }
    }

    /// Attention heads.
    pub fn heads(self) -> u32 {
        match self {
            BertModel::Base => 12,
            BertModel::Large => 16,
        }
    }

    /// The ViT variant with the same encoder dimensions (BERT-Base and
    /// ViT-Base share hidden/heads/layers exactly; likewise Large).
    fn encoder_twin(self) -> VitModel {
        match self {
            BertModel::Base => VitModel::Base,
            BertModel::Large => VitModel::Large,
        }
    }
}

impl std::fmt::Display for BertModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BertModel::Base => "BERT-Base",
            BertModel::Large => "BERT-Large",
        };
        f.write_str(s)
    }
}

/// The operators of one BERT encoder layer at sequence length `seq_len`.
///
/// Structure is identical to a ViT layer (fused QKV, per-head attention,
/// projection, 4× MLP, two LayerNorms, softmax, GELU, residuals); only
/// the token count changes, so attention cost scales quadratically with
/// `seq_len` while the MLP scales linearly — the trade the NonGEMM-bench
/// literature highlights for NLP inputs.
///
/// ```
/// use accesys_workload::{bert_ops, BertModel, OpKind};
///
/// let ops = bert_ops(BertModel::Base, 128);
/// assert_eq!(ops.iter().filter(|o| o.kind == OpKind::Gemm).count(), 6);
/// ```
pub fn bert_ops(model: BertModel, seq_len: u32) -> Vec<Op> {
    assert!(seq_len > 0, "sequence length must be positive");
    let twin = model.encoder_twin();
    crate::vit::encoder_layer_ops(seq_len, twin.hidden(), twin.heads(), twin.mlp_dim())
}

/// The embedding stage: token + segment + position lookups fused into
/// one streaming gather over `seq_len × hidden`, plus the embedding
/// LayerNorm.
pub fn bert_embed_ops(model: BertModel, seq_len: u32) -> Vec<Op> {
    let s = u64::from(seq_len);
    let h = u64::from(model.hidden());
    let d = 4u64;
    vec![
        // Three table lookups + sum, written once.
        Op::non_gemm(
            "embed_lookup",
            OpKind::Residual,
            3 * s * h * d,
            s * h * d,
            2 * s * h,
            1,
        ),
        Op::non_gemm(
            "embed_ln",
            OpKind::LayerNorm,
            s * h * d,
            s * h * d,
            8 * s * h,
            1,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vit_ops;

    #[test]
    fn bert_base_layer_matches_vit_base_at_vit_sequence_length() {
        // Same hidden/heads ⇒ the op graphs coincide when seq matches.
        let bert = bert_ops(BertModel::Base, 197);
        let vit = vit_ops(crate::VitModel::Base);
        assert_eq!(bert.len(), vit.len());
        for (b, v) in bert.iter().zip(&vit) {
            assert_eq!(b.name, v.name);
            assert_eq!(
                b.gemm.map(|g| (g.m, g.n, g.k)),
                v.gemm.map(|g| (g.m, g.n, g.k))
            );
            assert_eq!(b.total_bytes(), v.total_bytes());
        }
    }

    #[test]
    fn attention_cost_is_quadratic_in_sequence_length() {
        let macs_at = |s: u32| -> u64 {
            bert_ops(BertModel::Base, s)
                .iter()
                .filter(|o| o.name == "scores" || o.name == "attnv")
                .map(|o| o.total_macs())
                .sum()
        };
        let at128 = macs_at(128);
        let at512 = macs_at(512);
        // 4× tokens → 16× attention MACs.
        assert_eq!(at512, 16 * at128);
        // While the MLP only grows 4×.
        let mlp = |s: u32| -> u64 {
            bert_ops(BertModel::Base, s)
                .iter()
                .filter(|o| o.name.starts_with("fc"))
                .map(|o| o.total_macs())
                .sum()
        };
        assert_eq!(mlp(512), 4 * mlp(128));
    }

    #[test]
    fn large_model_dimensions_match_the_paper_citation() {
        assert_eq!(BertModel::Large.hidden(), 1024);
        assert_eq!(BertModel::Large.layers(), 24);
        assert_eq!(BertModel::Large.heads(), 16);
    }

    #[test]
    fn embed_stage_touches_three_tables() {
        let ops = bert_embed_ops(BertModel::Base, 128);
        assert_eq!(ops.len(), 2);
        let lookup = &ops[0];
        assert_eq!(lookup.read_bytes, 3 * 128 * 768 * 4);
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn zero_sequence_rejected() {
        bert_ops(BertModel::Base, 0);
    }
}
