//! Fleet scale-out sweep: host count × per-host tree shape, each host
//! an independent serving engine fed its share of one open-loop trace
//! over network links (extension). Host shards run in worker OS
//! processes (`--fleet-workers`, `ACCESYS_FLEET_WORKERS`, else the
//! spec's `[fleet] workers`); stdout is byte-identical at any worker
//! count.

use accesys_exp::cli::{self, Cli};

fn main() {
    let cli = Cli::from_env("fleet_scaling");
    let value = accesys_bench::fleet::run_cli(&cli);
    if cli.json {
        cli::emit_json(&value);
    }
}
