//! Dispatcher performance harness: measures how fast the workload-graph
//! dispatcher drives the simulation and records the bench trajectory
//! (`BENCH_graph.json`, via `--json` + redirect in CI) — the graph-layer
//! sibling of the kernel `perf` bin.
//!
//! Two measurements:
//!
//! * **dispatcher throughput** — a pipelined encoder graph (8 leaves of
//!   a depth-2 switch tree, images in flight) executed end to end;
//!   reported as graph tasks/sec and kernel events/sec.
//! * **scheduling win** — the same workload as a sequential chain on the
//!   same tree; `pipelined_speedup = sequential / pipelined` in
//!   simulated time. The acceptance bar (> 1.0) makes a scheduling
//!   regression a build failure, not an archived number.
//!
//! Flags: `--json` (machine-readable report on stdout), `--jobs`/`--full`
//! accepted for CLI uniformity but ignored (single-kernel measurements).

use accesys_bench::{graph, Scale};
use accesys_exp::cli::Cli;
use std::time::Instant;

const REPS: usize = 3;

/// The bench-trajectory record emitted as `BENCH_graph.json`.
#[derive(Debug, serde::Serialize)]
struct GraphPerfReport {
    /// Tasks in the pipelined graph.
    graph_tasks: usize,
    /// Graph tasks dispatched per wall-clock second (best of reps).
    dispatcher_tasks_per_sec: f64,
    /// Kernel events per wall-clock second during the dispatched run.
    dispatcher_events_per_sec: f64,
    /// Kernel events of the dispatched run (a determinism canary: this
    /// must never change across perf-only PRs).
    dispatcher_events: u64,
    /// Wall-clock of the best rep, in milliseconds.
    wall_ms: f64,
    /// Peak accelerator jobs in flight (scheduling shape canary).
    max_in_flight: usize,
    /// Simulated time of the pipelined schedule, ns.
    pipelined_ns: f64,
    /// Simulated time of the sequential chain, ns.
    sequential_ns: f64,
    /// `sequential_ns / pipelined_ns` — the acceptance bar is > 1.0.
    pipelined_speedup: f64,
}

fn main() {
    let cli = Cli::from_env("graph_perf");

    eprintln!("# graph_perf: pipelined encoder on a 2x4 switch tree ({REPS} reps)...");
    let mut best_tps = 0.0f64;
    let mut wall_ms = 0.0;
    let mut row = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = graph::measure("2x4", Scale::Quick);
        let secs = start.elapsed().as_secs_f64();
        let tps = r.tasks as f64 / secs;
        if tps > best_tps {
            best_tps = tps;
            wall_ms = secs * 1e3;
            row = Some(r);
        }
    }
    let row = row.expect("at least one rep ran");
    // One instrumented pipeline-only run for the events/sec figure.
    let (events, best_eps) = {
        let start = Instant::now();
        let (report, _plan) = graph::instrumented_pipeline_run("2x4", Scale::Quick);
        let secs = start.elapsed().as_secs_f64();
        let events = report.stats.get_or_zero("kernel.events") as u64;
        (events, events as f64 / secs)
    };

    let report = GraphPerfReport {
        graph_tasks: row.tasks,
        dispatcher_tasks_per_sec: best_tps,
        dispatcher_events_per_sec: best_eps,
        dispatcher_events: events,
        wall_ms,
        max_in_flight: row.max_in_flight,
        pipelined_ns: row.pipelined_ns,
        sequential_ns: row.sequential_ns,
        pipelined_speedup: row.speedup,
    };

    if cli.json {
        accesys_exp::cli::emit_json(&serde::Serialize::to_value(&report));
    } else {
        println!("# workload-graph dispatcher perf harness");
        println!("{:<34} {:>14}", "graph tasks", report.graph_tasks);
        println!(
            "{:<34} {:>14.0}",
            "dispatcher tasks/sec", report.dispatcher_tasks_per_sec
        );
        println!(
            "{:<34} {:>14.0}",
            "dispatcher events/sec", report.dispatcher_events_per_sec
        );
        println!(
            "{:<34} {:>14}",
            "dispatcher events", report.dispatcher_events
        );
        println!("{:<34} {:>14.1}", "wall ms", report.wall_ms);
        println!("{:<34} {:>14}", "max in flight", report.max_in_flight);
        println!("{:<34} {:>14.0}", "pipelined ns", report.pipelined_ns);
        println!("{:<34} {:>14.0}", "sequential ns", report.sequential_ns);
        println!(
            "{:<34} {:>14.2}",
            "pipelined speedup", report.pipelined_speedup
        );
    }

    // A pipeline that stops beating the chain on an 8-leaf tree is a
    // scheduling regression: fail the build, don't archive it.
    const SPEEDUP_BAR: f64 = 1.0;
    if report.pipelined_speedup <= SPEEDUP_BAR {
        eprintln!(
            "graph_perf: pipelined speedup {:.2}x fell to/below the {SPEEDUP_BAR}x bar",
            report.pipelined_speedup
        );
        std::process::exit(1);
    }
}
