//! Run the framework's design-choice ablations.

fn main() {
    let matrix = if accesys_bench::Scale::from_env() == accesys_bench::Scale::Paper {
        1024
    } else {
        256
    };
    accesys_bench::ablations::run_and_print(matrix);
}
