//! Topology-scaling sweep: switch-tree depth × fan-out (extension).

use accesys_exp::cli::{self, Cli};

fn main() {
    let cli = Cli::from_env("topo_scaling");
    let value = accesys_bench::topo::run_cli(&cli);
    if cli.json {
        cli::emit_json(&value);
    }
}
