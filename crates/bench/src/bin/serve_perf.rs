//! Serving performance harness: drives the continuous-batching engine
//! at its saturation point and records the bench trajectory
//! (`BENCH_serve.json`, via `--json` + redirect in CI) — the serving
//! sibling of the kernel `perf` and dispatcher `graph_perf` bins.
//!
//! One measurement, two numbers that matter:
//!
//! * **serving throughput** — the top swept arrival rate on the
//!   four-leaf tree served end to end; reported as requests retired per
//!   wall-clock second (how fast the engine simulates serving).
//! * **goodput gain** — within-SLO goodput of continuous batching over
//!   the same trace served one request at a time. The acceptance bar
//!   (> 1.0) makes a batching regression a build failure, not an
//!   archived number.
//!
//! Flags: `--json` (machine-readable report on stdout), `--jobs`/`--full`
//! accepted for CLI uniformity but ignored (single-point measurement).

use accesys_bench::{serve, Scale};
use accesys_exp::cli::Cli;
use std::time::Instant;

const REPS: usize = 3;

/// The bench-trajectory record emitted as `BENCH_serve.json`.
#[derive(Debug, serde::Serialize)]
struct ServePerfReport {
    /// Offered arrival rate at the measured point, req/s (virtual).
    rate_rps: f64,
    /// Tree shape of the measured point.
    shape: String,
    /// Arrivals offered over the horizon.
    offered: u64,
    /// Requests admitted (batched run; a determinism canary).
    admitted: u64,
    /// Batching rounds executed (determinism canary).
    rounds: u64,
    /// Peak requests in flight.
    peak_batch: usize,
    /// Median latency, virtual ns.
    p50_ns: f64,
    /// 99th-percentile latency, virtual ns.
    p99_ns: f64,
    /// Within-SLO goodput of the batched serve, virtual req/s.
    goodput_rps: f64,
    /// Within-SLO goodput of one-at-a-time dispatch, virtual req/s.
    sequential_goodput_rps: f64,
    /// `goodput_rps / sequential_goodput_rps` — the acceptance bar
    /// is > 1.0.
    goodput_gain: f64,
    /// Requests retired per wall-clock second (best of reps).
    requests_per_wallsec: f64,
    /// Wall-clock of the best rep, milliseconds.
    wall_ms: f64,
}

fn main() {
    let cli = Cli::from_env("serve_perf");

    let rate = serve::rates(Scale::Quick)[2];
    let shape = "2x2";
    eprintln!("# serve_perf: {rate} req/s on a {shape} tree ({REPS} reps)...");
    let mut best_rps = 0.0f64;
    let mut wall_ms = 0.0;
    let mut row = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = serve::measure(rate, shape, Scale::Quick);
        let secs = start.elapsed().as_secs_f64();
        // Both serves of the point (batched + sequential baseline).
        let retired = 2.0 * r.admitted as f64;
        let rps = retired / secs;
        if rps > best_rps {
            best_rps = rps;
            wall_ms = secs * 1e3;
            row = Some(r);
        }
    }
    let row = row.expect("at least one rep ran");

    let report = ServePerfReport {
        rate_rps: row.rate_rps,
        shape: row.shape.clone(),
        offered: row.offered,
        admitted: row.admitted,
        rounds: row.rounds,
        peak_batch: row.peak_batch,
        p50_ns: row.p50_ns,
        p99_ns: row.p99_ns,
        goodput_rps: row.goodput_rps,
        sequential_goodput_rps: row.sequential_goodput_rps,
        goodput_gain: row.goodput_gain,
        requests_per_wallsec: best_rps,
        wall_ms,
    };

    if cli.json {
        accesys_exp::cli::emit_json(&serde::Serialize::to_value(&report));
    } else {
        println!("# serving perf harness (continuous batching at saturation)");
        println!("{:<34} {:>14.0}", "offered rate (req/s)", report.rate_rps);
        println!("{:<34} {:>14}", "tree shape", report.shape);
        println!("{:<34} {:>14}", "offered", report.offered);
        println!("{:<34} {:>14}", "admitted", report.admitted);
        println!("{:<34} {:>14}", "rounds", report.rounds);
        println!("{:<34} {:>14}", "peak batch", report.peak_batch);
        println!("{:<34} {:>14.0}", "p50 (µs)", report.p50_ns / 1e3);
        println!("{:<34} {:>14.0}", "p99 (µs)", report.p99_ns / 1e3);
        println!("{:<34} {:>14.1}", "goodput (req/s)", report.goodput_rps);
        println!(
            "{:<34} {:>14.1}",
            "sequential goodput (req/s)", report.sequential_goodput_rps
        );
        println!("{:<34} {:>14.2}", "goodput gain", report.goodput_gain);
        println!(
            "{:<34} {:>14.0}",
            "requests / wall-sec", report.requests_per_wallsec
        );
        println!("{:<34} {:>14.1}", "wall ms", report.wall_ms);
    }

    // Batching that stops beating one-at-a-time dispatch at saturation
    // is a serving regression: fail the build, don't archive it.
    const GAIN_BAR: f64 = 1.0;
    if report.goodput_gain <= GAIN_BAR {
        eprintln!(
            "serve_perf: goodput gain {:.2}x fell to/below the {GAIN_BAR}x bar",
            report.goodput_gain
        );
        std::process::exit(1);
    }
}
