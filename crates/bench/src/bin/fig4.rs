//! Regenerate the paper's Fig4 data. `ACCESYS_FULL=1` for paper sizes.

fn main() {
    accesys_bench::fig4::run_and_print(accesys_bench::Scale::from_env());
}
