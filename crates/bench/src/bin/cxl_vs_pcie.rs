//! Extension experiment: PCIe hierarchy vs CXL.mem flit link.
//! `ACCESYS_FULL=1` for paper-scale matrix sizes.

fn main() {
    accesys_bench::cxl::run_and_print(accesys_bench::Scale::from_env());
}
