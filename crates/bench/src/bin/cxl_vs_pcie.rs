//! Extension experiment: PCIe hierarchy vs CXL.mem flit link.
//! Flags: `--jobs N` (parallel sweep workers), `--json`, `--full`
//! (paper-scale sizes, same as `ACCESYS_FULL=1`).

fn main() {
    let cli = accesys_exp::cli::Cli::from_env("cxl_vs_pcie");
    let value = accesys_bench::cxl::run_cli(&cli);
    if cli.json {
        accesys_exp::cli::emit_json(&value);
    }
}
