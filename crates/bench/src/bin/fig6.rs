//! Regenerate the paper's Fig6 data.
//! Flags: `--jobs N` (parallel sweep workers), `--json`, `--full`
//! (paper-scale sizes, same as `ACCESYS_FULL=1`).

fn main() {
    let cli = accesys_exp::cli::Cli::from_env("fig6");
    let value = accesys_bench::fig6::run_cli(&cli);
    if cli.json {
        accesys_exp::cli::emit_json(&value);
    }
}
