//! Ad-hoc calibration probe (not one of the paper's figures).

use accesys::{Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

fn main() {
    let mut failures = 0u32;
    for bw in [4.0, 8.0, 16.0, 32.0, 64.0] {
        for pkt in [64u32, 128, 256, 512, 1024, 2048, 4096] {
            let cfg = SystemConfig::pcie_host(bw, MemTech::Ddr4).with_request_bytes(pkt);
            let mut sim = Simulation::new(cfg).expect("valid config");
            match sim.run_gemm(GemmSpec::square(256)) {
                Ok(r) => println!(
                    "bw={bw:>4} pkt={pkt:>5}  t={:>10.1} us",
                    r.total_time_ns() / 1000.0
                ),
                Err(e) => {
                    failures += 1;
                    println!("bw={bw:>4} pkt={pkt:>5}  FAILED: {e}");
                    let stats = sim.stats();
                    for key in [
                        "accel0.jobs_done",
                        "dma0.descriptors",
                        "dma0.requests",
                        "pcie.ep0.reads_sent",
                        "pcie.ep0.completions",
                        "pcie.ep0.tag_stalls",
                        "link.ep_up0.credit_stall_tlps",
                        "link.sw_down0.credit_stall_tlps",
                        "link.rc_down.credit_stall_tlps",
                        "link.sw_up.credit_stall_tlps",
                        "link.rc_down.tlps",
                        "link.sw_down0.tlps",
                        "smmu.ptw_count",
                        "host_mem.reads",
                        "kernel.events",
                    ] {
                        println!("    {key:<36} {}", stats.get_or_zero(key));
                    }
                }
            }
        }
    }
    // CI uses this bin as a smoke gate: a failing configuration must fail
    // the run, not just print a diagnostic.
    if failures > 0 {
        eprintln!("probe: {failures} configuration(s) failed");
        std::process::exit(1);
    }
}
