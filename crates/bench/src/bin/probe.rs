//! Ad-hoc calibration probe (not one of the paper's figures).
//!
//! Sweeps PCIe bandwidth × DMA request size over the shared parallel
//! experiment engine, printing one line per point in sweep order (plus
//! module-counter diagnostics for any failing configuration). Flags:
//! `--jobs N`, `--json`. Wall-clock goes to stderr, so stdout is
//! byte-identical across worker counts.

use accesys::{Simulation, SystemConfig};
use accesys_exp::cli::Cli;
use accesys_exp::{Experiment, Grid};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// Outcome of one probed configuration.
#[derive(Clone, Debug, serde::Serialize)]
struct ProbePoint {
    /// Execution time in microseconds, when the run completed.
    time_us: Option<f64>,
    /// Failure message, when it did not.
    error: Option<String>,
    /// Key module counters captured on failure.
    diagnostics: Vec<(String, f64)>,
}

const DIAG_KEYS: [&str; 15] = [
    "accel0.jobs_done",
    "dma0.descriptors",
    "dma0.requests",
    "pcie.ep0.reads_sent",
    "pcie.ep0.completions",
    "pcie.ep0.tag_stalls",
    "link.ep_up0.credit_stall_tlps",
    "link.sw_down0.credit_stall_tlps",
    "link.rc_down.credit_stall_tlps",
    "link.sw_up.credit_stall_tlps",
    "link.rc_down.tlps",
    "link.sw_down0.tlps",
    "smmu.ptw_count",
    "host_mem.reads",
    "kernel.events",
];

fn probe_one(bw: f64, pkt: u32) -> ProbePoint {
    let cfg = SystemConfig::pcie_host(bw, MemTech::Ddr4).with_request_bytes(pkt);
    let mut sim = Simulation::new(cfg).expect("valid config");
    match sim.run_gemm(GemmSpec::square(256)) {
        Ok(r) => ProbePoint {
            time_us: Some(r.total_time_ns() / 1000.0),
            error: None,
            diagnostics: Vec::new(),
        },
        Err(e) => {
            let stats = sim.stats();
            ProbePoint {
                time_us: None,
                error: Some(e.to_string()),
                diagnostics: DIAG_KEYS
                    .iter()
                    .map(|&k| (k.to_string(), stats.get_or_zero(k)))
                    .collect(),
            }
        }
    }
}

fn main() {
    let cli = Cli::from_env("probe");
    let result = Grid::cross2(
        "probe",
        [4.0, 8.0, 16.0, 32.0, 64.0],
        [64u32, 128, 256, 512, 1024, 2048, 4096],
    )
    .sweep(|&(bw, pkt)| probe_one(bw, pkt))
    .run(cli.jobs);
    accesys_exp::cli::note_wall(&result);

    let mut failures = 0u32;
    for ((bw, pkt), point) in &result.points {
        match &point.time_us {
            Some(us) if !cli.json => println!("bw={bw:>4} pkt={pkt:>5}  t={us:>10.1} us"),
            Some(_) => {}
            None => {
                failures += 1;
                if !cli.json {
                    let msg = point.error.as_deref().unwrap_or("unknown");
                    println!("bw={bw:>4} pkt={pkt:>5}  FAILED: {msg}");
                    for (key, value) in &point.diagnostics {
                        println!("    {key:<36} {value}");
                    }
                }
            }
        }
    }
    if cli.json {
        accesys_exp::cli::emit_json(&serde::Serialize::to_value(&result));
    }
    // CI uses this bin as a smoke gate: a failing configuration must fail
    // the run, not just print a diagnostic.
    if failures > 0 {
        eprintln!("probe: {failures} configuration(s) failed");
        std::process::exit(1);
    }
}
