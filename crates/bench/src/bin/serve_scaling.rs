//! Online-serving sweep: open-loop Poisson traffic through the
//! continuous-batching engine, arrival rate × tree shape (extension).

use accesys_exp::cli::{self, Cli};

fn main() {
    let cli = Cli::from_env("serve_scaling");
    let value = accesys_bench::serve::run_cli(&cli);
    if cli.json {
        cli::emit_json(&value);
    }
}
