//! Decode performance harness: drives the prefill/decode serving
//! engine at its saturation point and records the bench trajectory
//! (`BENCH_decode.json`, via `--json` + redirect in CI) — the
//! autoregressive sibling of `serve_perf`.
//!
//! One measurement, three numbers that matter:
//!
//! * **decode throughput** — the top swept arrival rate on the
//!   four-leaf tree served end to end; reported as decode tokens
//!   generated per wall-clock second (how fast the engine simulates
//!   batched decode).
//! * **goodput gain** — within-SLO goodput of mixed prefill/decode
//!   continuous batching over the same trace served one request at a
//!   time. The acceptance bar (≥ 2.0) makes a batching regression a
//!   build failure, not an archived number.
//! * **KV pressure** — the same point under the tight budget must show
//!   eviction `Transfer` traffic (> 0), so the capacity-pressure path
//!   can't silently stop firing.
//!
//! Flags: `--json` (machine-readable report on stdout), `--jobs`/`--full`
//! accepted for CLI uniformity but ignored (single-point measurement).

use accesys_bench::{decode, Scale};
use accesys_exp::cli::Cli;
use std::time::Instant;

const REPS: usize = 3;

/// The bench-trajectory record emitted as `BENCH_decode.json`.
#[derive(Debug, serde::Serialize)]
struct DecodePerfReport {
    /// Offered arrival rate at the measured point, req/s (virtual).
    rate_rps: f64,
    /// Tree shape of the measured point.
    shape: String,
    /// Arrivals offered over the horizon.
    offered: u64,
    /// Requests admitted (batched run; a determinism canary).
    admitted: u64,
    /// Batching rounds executed (determinism canary).
    rounds: u64,
    /// Rounds mixing prefill and decode slices.
    mixed_rounds: u64,
    /// Peak requests in flight.
    peak_batch: usize,
    /// Decode tokens generated (batched run).
    tokens: u64,
    /// Decode tokens per virtual second of serving.
    decode_tps: f64,
    /// Median arrival→EOS latency, virtual ns.
    p50_ns: f64,
    /// Median time-to-first-token, virtual ns.
    ttft_p50_ns: f64,
    /// Within-SLO goodput of the batched serve, virtual req/s.
    goodput_rps: f64,
    /// Within-SLO goodput of one-at-a-time dispatch, virtual req/s.
    sequential_goodput_rps: f64,
    /// `goodput_rps / sequential_goodput_rps` — the acceptance bar
    /// is ≥ 2.0.
    goodput_gain: f64,
    /// KV evictions at the tight-budget sibling point (must be > 0).
    tight_kv_evictions: u64,
    /// KV bytes offloaded at the tight-budget sibling point.
    tight_kv_evicted_bytes: u64,
    /// Decode tokens generated per wall-clock second (best of reps).
    tokens_per_wallsec: f64,
    /// Wall-clock of the best rep, milliseconds.
    wall_ms: f64,
}

fn main() {
    let cli = Cli::from_env("decode_perf");

    let rate = decode::rates(Scale::Quick)[2];
    let shape = "2x2";
    eprintln!("# decode_perf: {rate} req/s on a {shape} tree ({REPS} reps)...");
    let mut best_tps = 0.0f64;
    let mut wall_ms = 0.0;
    let mut row = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let r = decode::measure(rate, shape, "ample", Scale::Quick);
        let secs = start.elapsed().as_secs_f64();
        let tps = r.tokens as f64 / secs;
        if tps > best_tps {
            best_tps = tps;
            wall_ms = secs * 1e3;
            row = Some(r);
        }
    }
    let row = row.expect("at least one rep ran");
    // The pressure canary: the same point under the tight budget must
    // surface eviction traffic.
    let tight = decode::measure(rate, shape, "tight", Scale::Quick);

    let report = DecodePerfReport {
        rate_rps: row.rate_rps,
        shape: row.shape.clone(),
        offered: row.offered,
        admitted: row.admitted,
        rounds: row.rounds,
        mixed_rounds: row.mixed_rounds,
        peak_batch: row.peak_batch,
        tokens: row.tokens,
        decode_tps: row.decode_tps,
        p50_ns: row.p50_ns,
        ttft_p50_ns: row.ttft_p50_ns,
        goodput_rps: row.goodput_rps,
        sequential_goodput_rps: row.sequential_goodput_rps,
        goodput_gain: row.goodput_gain,
        tight_kv_evictions: tight.kv_evictions,
        tight_kv_evicted_bytes: tight.kv_evicted_bytes,
        tokens_per_wallsec: best_tps,
        wall_ms,
    };

    if cli.json {
        accesys_exp::cli::emit_json(&serde::Serialize::to_value(&report));
    } else {
        println!("# decode perf harness (batched decode at saturation)");
        println!("{:<34} {:>14.0}", "offered rate (req/s)", report.rate_rps);
        println!("{:<34} {:>14}", "tree shape", report.shape);
        println!("{:<34} {:>14}", "offered", report.offered);
        println!("{:<34} {:>14}", "admitted", report.admitted);
        println!("{:<34} {:>14}", "rounds", report.rounds);
        println!("{:<34} {:>14}", "mixed rounds", report.mixed_rounds);
        println!("{:<34} {:>14}", "peak batch", report.peak_batch);
        println!("{:<34} {:>14}", "decode tokens", report.tokens);
        println!(
            "{:<34} {:>14.0}",
            "decode tok/s (virtual)", report.decode_tps
        );
        println!("{:<34} {:>14.0}", "p50 (µs)", report.p50_ns / 1e3);
        println!("{:<34} {:>14.0}", "ttft p50 (µs)", report.ttft_p50_ns / 1e3);
        println!("{:<34} {:>14.1}", "goodput (req/s)", report.goodput_rps);
        println!(
            "{:<34} {:>14.1}",
            "sequential goodput (req/s)", report.sequential_goodput_rps
        );
        println!("{:<34} {:>14.2}", "goodput gain", report.goodput_gain);
        println!(
            "{:<34} {:>14}",
            "tight-budget evictions", report.tight_kv_evictions
        );
        println!(
            "{:<34} {:>14}",
            "tight-budget evicted bytes", report.tight_kv_evicted_bytes
        );
        println!(
            "{:<34} {:>14.0}",
            "tokens / wall-sec", report.tokens_per_wallsec
        );
        println!("{:<34} {:>14.1}", "wall ms", report.wall_ms);
    }

    // Batched decode that stops doubling one-at-a-time goodput at
    // saturation is a serving regression: fail the build, don't
    // archive it. Same for a tight budget that stops evicting — that
    // means the capacity-pressure path went dead.
    const GAIN_BAR: f64 = 2.0;
    if report.goodput_gain < GAIN_BAR {
        eprintln!(
            "decode_perf: goodput gain {:.2}x fell below the {GAIN_BAR}x bar",
            report.goodput_gain
        );
        std::process::exit(1);
    }
    if report.tight_kv_evictions == 0 {
        eprintln!("decode_perf: tight KV budget produced no evictions");
        std::process::exit(1);
    }
}
