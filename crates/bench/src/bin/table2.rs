//! Print the Table II baseline configuration.

fn main() {
    accesys_bench::table2::run_and_print();
}
