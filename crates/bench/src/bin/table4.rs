//! Regenerate the paper's Table IV data.
//! Flags: `--jobs N` (parallel sweep workers), `--json`, `--full`
//! (paper-scale sizes, same as `ACCESYS_FULL=1`).

fn main() {
    let cli = accesys_exp::cli::Cli::from_env("table4");
    let value = accesys_bench::table4::run_cli(&cli);
    if cli.json {
        accesys_exp::cli::emit_json(&value);
    }
}
