//! Regenerate every table and figure in one go.
//!
//! Flags: `--jobs N` (parallel sweep workers, default all cores),
//! `--json` (one combined JSON object keyed by experiment), `--full`
//! (paper-scale sizes, same as `ACCESYS_FULL=1`). Per-experiment
//! wall-clock goes to stderr so stdout stays byte-identical across
//! worker counts.

use accesys_exp::cli::Cli;
use std::time::Instant;

type Runner = fn(&Cli) -> serde::Value;

fn main() {
    let cli = Cli::from_env("all_experiments");
    if !cli.json {
        // The worker count goes to stderr only: stdout must stay
        // byte-identical between --jobs 1 and --jobs N runs.
        println!(
            "== scale: {:?} (set ACCESYS_FULL=1 for paper sizes) ==\n",
            cli.scale
        );
    }
    eprintln!("# jobs: {}", cli.jobs);
    let experiments: Vec<(&str, Runner)> = vec![
        ("table2", accesys_bench::table2::run_cli),
        ("table3", accesys_bench::table3::run_cli),
        ("fig2", accesys_bench::fig2::run_cli),
        ("fig3", accesys_bench::fig3::run_cli),
        ("fig4", accesys_bench::fig4::run_cli),
        ("fig5", accesys_bench::fig5::run_cli),
        ("fig6", accesys_bench::fig6::run_cli),
        ("table4", accesys_bench::table4::run_cli),
        ("fig7", accesys_bench::fig7::run_cli),
        ("fig9", accesys_bench::fig9::run_cli),
        ("cxl", accesys_bench::cxl::run_cli),
        ("cluster", accesys_bench::cluster::run_cli),
        ("topo", accesys_bench::topo::run_cli),
        ("graph", accesys_bench::graph::run_cli),
        ("serve", accesys_bench::serve::run_cli),
        ("decode", accesys_bench::decode::run_cli),
        ("energy", accesys_bench::energy::run_cli),
        // In-process by default so the combined run never depends on
        // the fleet worker binary; --fleet-workers N still opts in.
        ("fleet", accesys_bench::fleet::run_cli_in_process),
    ];
    let start = Instant::now();
    let mut combined = Vec::new();
    for (i, (name, run)) in experiments.iter().enumerate() {
        if !cli.json {
            if i > 0 {
                println!();
            }
            if *name == "cxl" {
                println!("== extensions ==\n");
            }
        }
        let t0 = Instant::now();
        combined.push((name.to_string(), run(&cli)));
        eprintln!("# {name}: total {:.2}s", t0.elapsed().as_secs_f64());
    }
    eprintln!(
        "# all_experiments: {:.2}s wall (jobs={})",
        start.elapsed().as_secs_f64(),
        cli.jobs
    );
    if cli.json {
        accesys_exp::cli::emit_json(&serde::Value::Map(combined));
    }
}
