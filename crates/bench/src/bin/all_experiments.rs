//! Regenerate every table and figure in one go.
//! `ACCESYS_FULL=1` runs the paper's exact sizes.

use accesys_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    println!("== scale: {scale:?} (set ACCESYS_FULL=1 for paper sizes) ==\n");
    accesys_bench::table2::run_and_print();
    println!();
    accesys_bench::table3::run_and_print();
    println!();
    accesys_bench::fig2::run_and_print(scale);
    println!();
    accesys_bench::fig3::run_and_print(scale);
    println!();
    accesys_bench::fig4::run_and_print(scale);
    println!();
    accesys_bench::fig5::run_and_print(scale);
    println!();
    accesys_bench::fig6::run_and_print(scale);
    println!();
    accesys_bench::table4::run_and_print(scale);
    println!();
    accesys_bench::fig7::run_and_print(scale);
    println!();
    accesys_bench::fig9::run_and_print(scale);
    println!("\n== extensions ==\n");
    accesys_bench::cxl::run_and_print(scale);
    println!();
    accesys_bench::cluster::run_and_print(scale);
    println!();
    accesys_bench::energy::run_and_print(scale);
}
