//! Batched-decode sweep: open-loop LLM traffic through the
//! prefill/decode serving engine, arrival rate × tree shape × KV
//! budget (extension).

use accesys_exp::cli::{self, Cli};

fn main() {
    let cli = Cli::from_env("decode_scaling");
    let value = accesys_bench::decode::run_cli(&cli);
    if cli.json {
        cli::emit_json(&value);
    }
}
