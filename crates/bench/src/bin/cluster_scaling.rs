//! Extension experiment: accelerator-cluster scaling behind the switch.
//! Flags: `--jobs N` (parallel sweep workers), `--json`, `--full`
//! (paper-scale sizes, same as `ACCESYS_FULL=1`).

fn main() {
    let cli = accesys_exp::cli::Cli::from_env("cluster_scaling");
    let value = accesys_bench::cluster::run_cli(&cli);
    if cli.json {
        accesys_exp::cli::emit_json(&value);
    }
}
