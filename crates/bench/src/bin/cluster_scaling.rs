//! Extension experiment: accelerator-cluster scaling behind the switch.
//! `ACCESYS_FULL=1` for paper-scale matrix sizes.

fn main() {
    accesys_bench::cluster::run_and_print(accesys_bench::Scale::from_env());
}
