//! Kernel performance harness: measures event-throughput of the
//! two-level scheduler and records the bench trajectory
//! (`BENCH_kernel.json`, via `--json` + redirect in CI).
//!
//! Three measurements, each reported as events/sec:
//!
//! * **kernel microbench** — the shared schedule/drain workload
//!   (`accesys_sim::sched::bench_support`) driven through a real `Kernel`
//!   (self-rescheduling timers, ~1k outstanding events, mixed near/far
//!   delays), plus the observed peak queue depth.
//! * **queue pre/post reconstruction** — the identical schedule pushed
//!   through (a) the pre-change layout: single binary heap with the old
//!   ~100-byte inline-`Packet` message nodes, and (b) the post-change
//!   layout: two-level `EventQueue` with boxed-packet-sized nodes. Their
//!   ratio is `speedup_vs_prechange`, the number the acceptance bar
//!   (≥1.3×) is checked against.
//! * **end-to-end** — a real `Simulation::run_gemm` over the fig2
//!   configuration, so scheduler wins are visible against full module
//!   dispatch too.
//!
//! Flags: `--json` (machine-readable report on stdout), `--jobs`/`--full`
//! accepted for CLI uniformity but ignored (single-kernel measurements).

use accesys::sim::sched::bench_support::{kernel_schedule_drain, queue_schedule_drain, SchedQueue};
use accesys::sim::{BaselineQueue, EventQueue, Msg, Packet};
use accesys::{Simulation, SystemConfig};
use accesys_exp::cli::Cli;
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;
use std::time::Instant;

const OUTSTANDING: u64 = 1024;
const KERNEL_EVENTS: u64 = 2_000_000;
const QUEUE_EVENTS: u64 = 2_000_000;
const REPS: usize = 3;

/// Best-of-`REPS` events/sec for the kernel schedule/drain microbench
/// (the shared `bench_support` workload), plus the peak queue depth.
fn kernel_microbench() -> (f64, u64) {
    let mut best = 0.0f64;
    let mut peak = 0u64;
    for _ in 0..REPS {
        let start = Instant::now();
        let (events, depth) = kernel_schedule_drain(KERNEL_EVENTS, OUTSTANDING);
        let secs = start.elapsed().as_secs_f64();
        best = best.max(events as f64 / secs);
        peak = depth as u64;
    }
    (best, peak)
}

/// The pre-change message layout: `Packet` inline in the enum, so every
/// queue node carried ~100 bytes through every heap sift.
#[allow(dead_code)]
enum OldMsg {
    Packet(Packet),
    Timer(u64),
}

/// Best-of-`REPS` events/sec for the shared schedule/drain workload
/// through `make_queue`'s scheduler with `make_node` payloads.
fn queue_bench<T, Q: SchedQueue<T>>(make_queue: impl Fn() -> Q, make_node: fn(u64) -> T) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let mut q = make_queue();
        let start = Instant::now();
        let drained = queue_schedule_drain(&mut q, QUEUE_EVENTS, OUTSTANDING, make_node);
        best = best.max(drained as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// End-to-end fig2-configuration GEMM run; returns (events/sec, events,
/// wall ms, peak queue depth).
fn e2e_fig2_style() -> (f64, f64, f64, f64) {
    let cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    let mut best_eps = 0.0f64;
    let mut events = 0.0;
    let mut wall_ms = 0.0;
    let mut peak = 0.0;
    for _ in 0..REPS {
        let mut sim = Simulation::new(cfg.clone()).expect("valid config");
        let start = Instant::now();
        sim.run_gemm(GemmSpec::square(256)).expect("gemm completes");
        let secs = start.elapsed().as_secs_f64();
        let stats = sim.stats();
        events = stats.get_or_zero("kernel.events");
        peak = stats.get_or_zero("kernel.peak_queue_depth");
        let eps = events / secs;
        if eps > best_eps {
            best_eps = eps;
            wall_ms = secs * 1e3;
        }
    }
    (best_eps, events, wall_ms, peak)
}

/// The bench-trajectory record emitted as `BENCH_kernel.json`.
#[derive(Debug, serde::Serialize)]
struct PerfReport {
    /// Schedule/drain microbench through a real kernel: events/sec.
    kernel_events_per_sec: f64,
    /// Peak pending-event count during the microbench.
    kernel_peak_queue_depth: u64,
    /// Same schedule through the pre-change layout (binary heap,
    /// inline-packet nodes): events/sec.
    prechange_heap_events_per_sec: f64,
    /// Same schedule through the post-change layout (two-level queue,
    /// boxed-packet-sized nodes): events/sec.
    twolevel_events_per_sec: f64,
    /// `twolevel / prechange` — the acceptance bar is ≥ 1.3.
    speedup_vs_prechange: f64,
    /// Real fig2-configuration GEMM run: events/sec.
    e2e_events_per_sec: f64,
    /// Events processed by the end-to-end run (a determinism canary:
    /// this must never change across perf-only PRs).
    e2e_events: f64,
    /// Wall-clock of the best end-to-end rep, in milliseconds.
    e2e_wall_ms: f64,
    /// Peak queue depth of the end-to-end run.
    e2e_peak_queue_depth: f64,
}

fn main() {
    let cli = Cli::from_env("perf");

    eprintln!("# perf: kernel schedule/drain microbench ({KERNEL_EVENTS} events)...");
    let (kernel_eps, kernel_peak) = kernel_microbench();
    eprintln!("# perf: queue pre/post reconstruction ({QUEUE_EVENTS} events)...");
    let old_eps = queue_bench(BaselineQueue::new, |seq| (0u32, OldMsg::Timer(seq)));
    let new_eps = queue_bench(EventQueue::new, |seq| (0u32, Msg::Timer(seq)));
    eprintln!("# perf: end-to-end fig2-style GEMM...");
    let (e2e_eps, e2e_events, e2e_wall_ms, e2e_peak) = e2e_fig2_style();

    let report = PerfReport {
        kernel_events_per_sec: kernel_eps,
        kernel_peak_queue_depth: kernel_peak,
        prechange_heap_events_per_sec: old_eps,
        twolevel_events_per_sec: new_eps,
        speedup_vs_prechange: new_eps / old_eps,
        e2e_events_per_sec: e2e_eps,
        e2e_events,
        e2e_wall_ms,
        e2e_peak_queue_depth: e2e_peak,
    };

    if cli.json {
        accesys_exp::cli::emit_json(&serde::Serialize::to_value(&report));
    } else {
        println!("# kernel perf harness");
        println!(
            "{:<34} {:>14.0}",
            "kernel events/sec", report.kernel_events_per_sec
        );
        println!(
            "{:<34} {:>14}",
            "kernel peak queue depth", report.kernel_peak_queue_depth
        );
        println!(
            "{:<34} {:>14.0}",
            "pre-change heap events/sec", report.prechange_heap_events_per_sec
        );
        println!(
            "{:<34} {:>14.0}",
            "two-level queue events/sec", report.twolevel_events_per_sec
        );
        println!(
            "{:<34} {:>14.2}",
            "speedup vs pre-change", report.speedup_vs_prechange
        );
        println!(
            "{:<34} {:>14.0}",
            "e2e events/sec", report.e2e_events_per_sec
        );
        println!("{:<34} {:>14.0}", "e2e events", report.e2e_events);
        println!("{:<34} {:>14.1}", "e2e wall ms", report.e2e_wall_ms);
        println!(
            "{:<34} {:>14.0}",
            "e2e peak queue depth", report.e2e_peak_queue_depth
        );
    }

    // A regression below the accepted speedup bar is a build failure in
    // CI, not a silently archived number. Measured headroom is ~2x on a
    // 1-core container and larger on real hardware, so noisy shared
    // runners still clear the bar comfortably.
    const SPEEDUP_BAR: f64 = 1.3;
    if report.speedup_vs_prechange < SPEEDUP_BAR {
        eprintln!(
            "perf: two-level scheduler speedup {:.2}x is below the {SPEEDUP_BAR}x acceptance bar",
            report.speedup_vs_prechange
        );
        std::process::exit(1);
    }
}
