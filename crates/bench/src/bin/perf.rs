//! Kernel performance harness: measures event-throughput of the
//! two-level scheduler and records the bench trajectory
//! (`BENCH_kernel.json`, via `--json` + redirect in CI).
//!
//! Four measurements, each reported as events/sec:
//!
//! * **kernel microbench** — the shared schedule/drain workload
//!   (`accesys_sim::sched::bench_support`) driven through a real `Kernel`
//!   (self-rescheduling timers, ~1k outstanding events, mixed near/far
//!   delays), plus the observed peak queue depth.
//! * **queue pre/post reconstruction** — the identical schedule pushed
//!   through (a) the pre-change layout: single binary heap with the old
//!   ~100-byte inline-`Packet` message nodes, and (b) the post-change
//!   layout: two-level `EventQueue` with boxed-packet-sized nodes. Their
//!   ratio is `speedup_vs_prechange`, checked against the ≥1.3× bar.
//! * **end-to-end** — a real `Simulation::run_gemm` over the fig2
//!   configuration, so scheduler wins are visible against full module
//!   dispatch too — once as built, and once through the pre-change
//!   execution profile reconstructed in-process (buffered sends via
//!   `Kernel::set_buffered_compat`, packet recycling off via
//!   `PacketPool::set_bypass`). Their ratio is
//!   `e2e_speedup_vs_prechange`; falling below 1.0 fails the build.
//! * **allocation diet** — this binary installs a counting global
//!   allocator; after one warm-up run (packet pool and container
//!   capacities at their peaks) every allocator hit during a second,
//!   identical run is counted. `steady_state_allocs_per_event` must
//!   stay ≈ 0 (the report-assembly tail is O(1) per *run*, so the bar
//!   is a loose 0.01 per event).
//!
//! The report also records the parallel-engine shape: `domains` (how
//! the fig2 topology partitions at PCIe link cuts) and
//! `kernel_threads` (what the e2e measurement ran with — results are
//! byte-identical at any value, so CI keeps the default of 1).
//!
//! Flags: `--json` (machine-readable report on stdout),
//! `--kernel-threads N` (worker threads for the e2e run),
//! `--jobs`/`--full` accepted for CLI uniformity but ignored
//! (single-kernel measurements).

use accesys::sim::sched::bench_support::{kernel_schedule_drain, queue_schedule_drain, SchedQueue};
use accesys::sim::{BaselineQueue, EventQueue, Msg, Packet, PacketPool};
use accesys::{Simulation, SystemConfig};
use accesys_exp::cli::Cli;
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

const OUTSTANDING: u64 = 1024;
const KERNEL_EVENTS: u64 = 2_000_000;
const QUEUE_EVENTS: u64 = 2_000_000;
// Best-of-N estimates peak throughput; the e2e runs are ~20 ms each,
// so a generous N keeps scheduler noise out of the trajectory record.
const REPS: usize = 7;

/// Global allocator wrapper that counts allocations while
/// [`COUNTING`] is raised — the measurement window of the steady-state
/// allocation diet. Deallocations are deliberately not counted: the
/// diet is about pressure *created*, and frees of warm-up storage
/// would double-bill it.
struct CountingAlloc;

/// Allocator hits observed while [`COUNTING`] was raised.
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Measurement gate: only the steady-state window counts.
static COUNTING: AtomicBool = AtomicBool::new(false);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

/// Best-of-`REPS` events/sec for the kernel schedule/drain microbench
/// (the shared `bench_support` workload), plus the peak queue depth.
fn kernel_microbench() -> (f64, u64) {
    let mut best = 0.0f64;
    let mut peak = 0u64;
    for _ in 0..REPS {
        let start = Instant::now();
        let (events, depth) = kernel_schedule_drain(KERNEL_EVENTS, OUTSTANDING);
        let secs = start.elapsed().as_secs_f64();
        best = best.max(events as f64 / secs);
        peak = depth as u64;
    }
    (best, peak)
}

/// The pre-change message layout: `Packet` inline in the enum, so every
/// queue node carried ~100 bytes through every heap sift.
#[allow(dead_code)]
enum OldMsg {
    Packet(Packet),
    Timer(u64),
}

/// Best-of-`REPS` events/sec for the shared schedule/drain workload
/// through `make_queue`'s scheduler with `make_node` payloads.
fn queue_bench<T, Q: SchedQueue<T>>(make_queue: impl Fn() -> Q, make_node: fn(u64) -> T) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..REPS {
        let mut q = make_queue();
        let start = Instant::now();
        let drained = queue_schedule_drain(&mut q, QUEUE_EVENTS, OUTSTANDING, make_node);
        best = best.max(drained as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// The fig2 configuration every end-to-end measurement shares, at an
/// explicit kernel thread count.
fn fig2_cfg(kernel_threads: u32) -> SystemConfig {
    let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    cfg.kernel_threads = kernel_threads;
    cfg
}

/// End-to-end fig2-configuration GEMM run; returns (events/sec, events,
/// wall ms, peak queue depth).
fn e2e_fig2_style(kernel_threads: u32) -> (f64, u64, f64, u64) {
    let cfg = fig2_cfg(kernel_threads);
    let mut best_eps = 0.0f64;
    let mut events = 0u64;
    let mut wall_ms = 0.0;
    let mut peak = 0u64;
    for _ in 0..REPS {
        let mut sim = Simulation::new(cfg.clone()).expect("valid config");
        let start = Instant::now();
        sim.run_gemm(GemmSpec::square(256)).expect("gemm completes");
        let secs = start.elapsed().as_secs_f64();
        let stats = sim.stats();
        events = stats.get_or_zero("kernel.events") as u64;
        peak = stats.get_or_zero("kernel.peak_queue_depth") as u64;
        let eps = events as f64 / secs;
        if eps > best_eps {
            best_eps = eps;
            wall_ms = secs * 1e3;
        }
    }
    (best_eps, events, wall_ms, peak)
}

/// The same end-to-end run through the pre-change execution profile,
/// reconstructed in-process: sends buffered and replayed per event
/// (`Kernel::set_buffered_compat`) and every packet box drawn fresh
/// from the global allocator (`PacketPool::set_bypass`). Observable
/// results are identical; only the engine's mechanics differ.
fn e2e_prechange() -> f64 {
    let cfg = fig2_cfg(1);
    let mut best_eps = 0.0f64;
    for _ in 0..REPS {
        let mut sim = Simulation::new(cfg.clone()).expect("valid config");
        sim.kernel_mut().set_buffered_compat(true);
        PacketPool::set_bypass(true);
        let start = Instant::now();
        sim.run_gemm(GemmSpec::square(256)).expect("gemm completes");
        let secs = start.elapsed().as_secs_f64();
        let events = sim.stats().get_or_zero("kernel.events");
        best_eps = best_eps.max(events / secs);
    }
    PacketPool::set_bypass(false);
    best_eps
}

/// Steady-state allocation rate: one warm-up run brings the packet
/// pool and every container to its peak capacity, then a second,
/// identical run is measured with the counting allocator armed.
/// Returns (allocs/event, raw allocs, pool misses, pool reuses).
fn e2e_alloc_diet() -> (f64, u64, u64, u64) {
    let mut sim = Simulation::new(fig2_cfg(1)).expect("valid config");
    sim.run_gemm(GemmSpec::square(256))
        .expect("warm-up completes");
    let events_before = sim.stats().get_or_zero("kernel.events") as u64;

    PacketPool::reset_stats();
    ALLOCS.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    sim.run_gemm(GemmSpec::square(256))
        .expect("steady run completes");
    COUNTING.store(false, Ordering::Relaxed);

    let allocs = ALLOCS.load(Ordering::Relaxed);
    let pool = PacketPool::stats();
    let events = sim.stats().get_or_zero("kernel.events") as u64 - events_before;
    (
        allocs as f64 / events as f64,
        allocs,
        pool.fresh,
        pool.reused,
    )
}

/// How many conservative-parallel domains the fig2 topology splits
/// into (probed with the partition machinery forced on; the count is a
/// property of the topology, not of the thread knob).
fn fig2_domains() -> u64 {
    let sim = Simulation::new(fig2_cfg(2)).expect("valid config");
    sim.kernel()
        .partition()
        .map(|(domains, _, _)| domains as u64)
        .unwrap_or(1)
}

/// The bench-trajectory record emitted as `BENCH_kernel.json`.
#[derive(Debug, serde::Serialize)]
struct PerfReport {
    /// Schedule/drain microbench through a real kernel: events/sec.
    kernel_events_per_sec: f64,
    /// Peak pending-event count during the microbench.
    kernel_peak_queue_depth: u64,
    /// Same schedule through the pre-change layout (binary heap,
    /// inline-packet nodes): events/sec.
    prechange_heap_events_per_sec: f64,
    /// Same schedule through the post-change layout (two-level queue,
    /// boxed-packet-sized nodes): events/sec.
    twolevel_events_per_sec: f64,
    /// `twolevel / prechange` — the acceptance bar is ≥ 1.3.
    speedup_vs_prechange: f64,
    /// Real fig2-configuration GEMM run: events/sec.
    e2e_events_per_sec: f64,
    /// Events processed by the end-to-end run (a determinism canary:
    /// this must never change across perf-only PRs, at any thread
    /// count).
    e2e_events: u64,
    /// Wall-clock of the best end-to-end rep, in milliseconds.
    e2e_wall_ms: f64,
    /// Peak queue depth of the end-to-end run.
    e2e_peak_queue_depth: u64,
    /// The same run through the in-process pre-change reconstruction
    /// (buffered sends, no packet recycling): events/sec.
    e2e_prechange_events_per_sec: f64,
    /// `e2e / e2e_prechange` — the acceptance bar is ≥ 1.0 (the
    /// engine must never run slower than its pre-change self).
    e2e_speedup_vs_prechange: f64,
    /// Global-allocator hits per event across a warmed steady-state
    /// run — the allocation-diet headline; the bar is < 0.01.
    steady_state_allocs_per_event: f64,
    /// Raw allocator hits behind that rate (the O(1)-per-run report
    /// assembly tail, once the hot loop is clean).
    steady_state_allocs: u64,
    /// Packet-pool misses during the steady run (boxes drawn fresh
    /// because the pool was dry; 0 once warm).
    steady_state_pool_misses: u64,
    /// Packet boxes served from the recycled free list in that run.
    steady_state_pool_reuses: u64,
    /// Conservative-parallel domains the fig2 topology splits into.
    domains: u64,
    /// Worker threads the e2e measurement ran with.
    kernel_threads: u32,
}

fn main() {
    let cli = Cli::from_env("perf");
    let kernel_threads = cli.kernel_threads.unwrap_or(1);

    eprintln!("# perf: kernel schedule/drain microbench ({KERNEL_EVENTS} events)...");
    let (kernel_eps, kernel_peak) = kernel_microbench();
    eprintln!("# perf: queue pre/post reconstruction ({QUEUE_EVENTS} events)...");
    let old_eps = queue_bench(BaselineQueue::new, |seq| (0u32, OldMsg::Timer(seq)));
    let new_eps = queue_bench(EventQueue::new, |seq| (0u32, Msg::Timer(seq)));
    eprintln!("# perf: end-to-end fig2-style GEMM (kernel_threads={kernel_threads})...");
    let (e2e_eps, e2e_events, e2e_wall_ms, e2e_peak) = e2e_fig2_style(kernel_threads);
    eprintln!("# perf: end-to-end pre-change reconstruction...");
    let e2e_old_eps = e2e_prechange();
    eprintln!("# perf: steady-state allocation diet...");
    let (allocs_per_event, allocs, pool_misses, pool_reuses) = e2e_alloc_diet();

    let report = PerfReport {
        kernel_events_per_sec: kernel_eps,
        kernel_peak_queue_depth: kernel_peak,
        prechange_heap_events_per_sec: old_eps,
        twolevel_events_per_sec: new_eps,
        speedup_vs_prechange: new_eps / old_eps,
        e2e_events_per_sec: e2e_eps,
        e2e_events,
        e2e_wall_ms,
        e2e_peak_queue_depth: e2e_peak,
        e2e_prechange_events_per_sec: e2e_old_eps,
        e2e_speedup_vs_prechange: e2e_eps / e2e_old_eps,
        steady_state_allocs_per_event: allocs_per_event,
        steady_state_allocs: allocs,
        steady_state_pool_misses: pool_misses,
        steady_state_pool_reuses: pool_reuses,
        domains: fig2_domains(),
        kernel_threads,
    };

    if cli.json {
        accesys_exp::cli::emit_json(&serde::Serialize::to_value(&report));
    } else {
        println!("# kernel perf harness");
        println!(
            "{:<34} {:>14.0}",
            "kernel events/sec", report.kernel_events_per_sec
        );
        println!(
            "{:<34} {:>14}",
            "kernel peak queue depth", report.kernel_peak_queue_depth
        );
        println!(
            "{:<34} {:>14.0}",
            "pre-change heap events/sec", report.prechange_heap_events_per_sec
        );
        println!(
            "{:<34} {:>14.0}",
            "two-level queue events/sec", report.twolevel_events_per_sec
        );
        println!(
            "{:<34} {:>14.2}",
            "speedup vs pre-change", report.speedup_vs_prechange
        );
        println!(
            "{:<34} {:>14.0}",
            "e2e events/sec", report.e2e_events_per_sec
        );
        println!("{:<34} {:>14}", "e2e events", report.e2e_events);
        println!("{:<34} {:>14.1}", "e2e wall ms", report.e2e_wall_ms);
        println!(
            "{:<34} {:>14}",
            "e2e peak queue depth", report.e2e_peak_queue_depth
        );
        println!(
            "{:<34} {:>14.0}",
            "e2e pre-change events/sec", report.e2e_prechange_events_per_sec
        );
        println!(
            "{:<34} {:>14.2}",
            "e2e speedup vs pre-change", report.e2e_speedup_vs_prechange
        );
        println!(
            "{:<34} {:>14.4}",
            "steady allocs/event", report.steady_state_allocs_per_event
        );
        println!("{:<34} {:>14}", "steady allocs", report.steady_state_allocs);
        println!(
            "{:<34} {:>14}",
            "steady pool misses", report.steady_state_pool_misses
        );
        println!(
            "{:<34} {:>14}",
            "steady pool reuses", report.steady_state_pool_reuses
        );
        println!("{:<34} {:>14}", "domains", report.domains);
        println!("{:<34} {:>14}", "kernel threads", report.kernel_threads);
    }

    // Regressions below the accepted bars are build failures in CI, not
    // silently archived numbers. Measured headroom is ~2x on a 1-core
    // container and larger on real hardware, so noisy shared runners
    // still clear the bars comfortably.
    const SPEEDUP_BAR: f64 = 1.3;
    if report.speedup_vs_prechange < SPEEDUP_BAR {
        eprintln!(
            "perf: two-level scheduler speedup {:.2}x is below the {SPEEDUP_BAR}x acceptance bar",
            report.speedup_vs_prechange
        );
        std::process::exit(1);
    }
    // The engine must never be slower than its pre-change self on the
    // same machine, same process, same run.
    const E2E_BAR: f64 = 1.0;
    if report.e2e_speedup_vs_prechange < E2E_BAR {
        eprintln!(
            "perf: e2e speedup {:.2}x vs the pre-change reconstruction is below {E2E_BAR}x",
            report.e2e_speedup_vs_prechange
        );
        std::process::exit(1);
    }
    // Steady state must not allocate per event; only the O(1)-per-run
    // report assembly is allowed through.
    const ALLOC_BAR: f64 = 0.01;
    if report.steady_state_allocs_per_event >= ALLOC_BAR {
        eprintln!(
            "perf: steady-state allocation rate {:.4} allocs/event breaches the {ALLOC_BAR} bar",
            report.steady_state_allocs_per_event
        );
        std::process::exit(1);
    }
    if report.steady_state_pool_misses > 0 {
        eprintln!(
            "perf: {} packet boxes missed the warmed pool",
            report.steady_state_pool_misses
        );
        std::process::exit(1);
    }
}
