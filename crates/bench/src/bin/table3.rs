//! Print the Table III memory configurations.

fn main() {
    accesys_bench::table3::run_and_print();
}
