//! Fleet performance harness: drives the 1024-endpoint committed fleet
//! point through worker process pools and records the bench trajectory
//! (`BENCH_fleet.json`, via `--json` + redirect in CI).
//!
//! One point, measured twice:
//!
//! * **1 worker** — every host shard simulated sequentially in one
//!   worker process (the protocol overhead is paid, the parallelism
//!   is not).
//! * **4 workers** — the same shards spread over four processes.
//!
//! Two acceptance gates:
//!
//! * the two merged reports must be **byte-identical** (the fleet
//!   determinism contract) — always enforced;
//! * the 4-worker run must beat the 1-worker run by > 1.5× wall-clock
//!   — enforced only when the machine has ≥ 4 cores (a 1-core runner
//!   cannot speed up, and says so on stderr instead of failing).
//!
//! Each pool is reused across all reps of its measurement;
//! `workers_spawned` in the report equals the pool size, proving the
//! processes are spawned once, not once per run.
//!
//! Flags: `--json` (machine-readable report on stdout), `--jobs`/`--full`
//! accepted for CLI uniformity but ignored (single-point measurement).

use accesys_bench::{fleet, Scale};
use accesys_exp::cli::Cli;
use accesys_fleet::FleetPool;
use std::time::Instant;

const REPS: usize = 3;
const SPEEDUP_BAR: f64 = 1.5;

/// The bench-trajectory record emitted as `BENCH_fleet.json`.
#[derive(Debug, serde::Serialize)]
struct FleetPerfReport {
    /// Host count of the measured point.
    hosts: u32,
    /// Per-host tree shape of the measured point.
    shape: String,
    /// Total accelerator endpoints simulated (the 1000+ headline).
    endpoints: u64,
    /// Arrivals offered fleet-wide (a determinism canary).
    offered: u64,
    /// Requests completed fleet-wide (determinism canary).
    completed: u64,
    /// Batching rounds across all hosts (determinism canary).
    rounds: u64,
    /// Cores the harness saw (`available_parallelism`).
    cores: usize,
    /// Worker processes spawned over all 1-worker reps (= 1 proves
    /// pool reuse).
    workers_spawned_1w: u64,
    /// Worker processes spawned over all 4-worker reps (= 4 proves
    /// pool reuse).
    workers_spawned_4w: u64,
    /// Wall-clock of the best 1-worker rep, milliseconds.
    wall_ms_1w: f64,
    /// Wall-clock of the best 4-worker rep, milliseconds.
    wall_ms_4w: f64,
    /// `wall_ms_1w / wall_ms_4w` — the acceptance bar is > 1.5 on
    /// machines with ≥ 4 cores.
    speedup: f64,
    /// Whether the speedup bar was enforced on this machine.
    bar_enforced: bool,
}

/// Best-of-`REPS` wall clock of the point on a reused pool; returns
/// (best wall ms, merged report pretty-JSON, processes spawned, the
/// last merged report).
fn measure(
    pool: &mut FleetPool,
    spec: &accesys_fleet::FleetSpec,
) -> (f64, String, u64, accesys_fleet::FleetReport) {
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let report = pool.run(spec).unwrap_or_else(|e| panic!("fleet run: {e}"));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
        }
        last = Some(report);
    }
    let report = last.expect("at least one rep ran");
    let json = serde_json::to_string_pretty(&serde::Serialize::to_value(&report))
        .expect("fleet reports serialize");
    (best_ms, json, pool.spawned(), report)
}

fn main() {
    let cli = Cli::from_env("fleet_perf");

    let sc = fleet::scenario();
    let &hosts = sc.hosts.iter().max().expect("hosts swept");
    let shape = sc.shapes.last().expect("shapes swept").clone();
    let spec = fleet::lower(sc, hosts, &shape, Scale::Quick);
    let endpoints = sc.endpoints(hosts, &shape);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "# fleet_perf: {hosts} hosts x {shape} trees = {endpoints} endpoints, \
         1 vs 4 worker processes ({REPS} reps each, {cores} cores)..."
    );

    let (wall_ms_1w, json_1w, spawned_1w, merged) = measure(&mut fleet::pool(1), &spec);
    let (wall_ms_4w, json_4w, spawned_4w, _) = measure(&mut fleet::pool(4), &spec);

    // The determinism contract is unconditional: the merged report must
    // not depend on how many processes computed it.
    if json_1w != json_4w {
        eprintln!("fleet_perf: 1-worker and 4-worker reports differ — determinism violation");
        std::process::exit(1);
    }

    let speedup = wall_ms_1w / wall_ms_4w;
    let bar_enforced = cores >= 4;
    let report = FleetPerfReport {
        hosts,
        shape,
        endpoints,
        offered: merged.offered,
        completed: merged.completed,
        rounds: merged.rounds,
        cores,
        workers_spawned_1w: spawned_1w,
        workers_spawned_4w: spawned_4w,
        wall_ms_1w,
        wall_ms_4w,
        speedup,
        bar_enforced,
    };

    if cli.json {
        accesys_exp::cli::emit_json(&serde::Serialize::to_value(&report));
    } else {
        println!("# fleet perf harness (1024-endpoint fleet, 1 vs 4 worker processes)");
        println!("{:<34} {:>14}", "hosts", report.hosts);
        println!("{:<34} {:>14}", "per-host shape", report.shape);
        println!("{:<34} {:>14}", "endpoints", report.endpoints);
        println!("{:<34} {:>14}", "offered", report.offered);
        println!("{:<34} {:>14}", "completed", report.completed);
        println!("{:<34} {:>14}", "rounds", report.rounds);
        println!("{:<34} {:>14}", "cores", report.cores);
        println!(
            "{:<34} {:>14}",
            "spawned (1w pool)", report.workers_spawned_1w
        );
        println!(
            "{:<34} {:>14}",
            "spawned (4w pool)", report.workers_spawned_4w
        );
        println!("{:<34} {:>14.1}", "wall ms (1 worker)", report.wall_ms_1w);
        println!("{:<34} {:>14.1}", "wall ms (4 workers)", report.wall_ms_4w);
        println!("{:<34} {:>14.2}", "speedup", report.speedup);
    }

    // Pool reuse is part of the contract: one spawn per slot for the
    // whole rep loop, never one per run.
    if spawned_1w != 1 || spawned_4w != 4 {
        eprintln!(
            "fleet_perf: pools respawned workers across reps \
             (1w spawned {spawned_1w}, 4w spawned {spawned_4w})"
        );
        std::process::exit(1);
    }
    if bar_enforced && speedup <= SPEEDUP_BAR {
        eprintln!(
            "fleet_perf: 4-worker speedup {speedup:.2}x fell to/below the \
             {SPEEDUP_BAR}x bar on a {cores}-core machine"
        );
        std::process::exit(1);
    }
    if !bar_enforced {
        eprintln!(
            "fleet_perf: {cores} core(s) — the {SPEEDUP_BAR}x speedup bar \
             needs >= 4 cores and was not enforced (speedup {speedup:.2}x)"
        );
    }
}
