//! `accesys` — the spec front-end CLI: run, validate and list text
//! scenario files.
//!
//! ```text
//! accesys run specs/paper_baseline.spec --json --jobs 4
//! accesys validate specs/*.spec
//! accesys list
//! ```
//!
//! `run` loads a scenario file through the staged loader (parse →
//! resolve → validate), dispatches it to the driver of its kind, and
//! prints the same table (or `--json` document) as the dedicated bin
//! for that experiment family. A bare name (`paper_baseline`) resolves
//! against the committed library embedded in the binary, so `accesys
//! run fig2`'s spelling is `accesys run paper_baseline` from any
//! directory.
//!
//! `validate` loads every named file, dry-builds its topologies and
//! traffic at both scales without running a sweep, and reports one
//! line per file; any diagnostic makes the exit status 1.
//!
//! Every loader failure is a typed [`accesys_spec::SpecError`] printed
//! with its line and field — never a panic.

use accesys_bench::specs::LIBRARY;
use accesys_bench::{decode, fig2, fleet, graph, serve, topo, Scale};
use accesys_exp::cli::{self, Cli, CliError};
use accesys_spec::{Scenario, Spec, SpecError};

const USAGE: &str = "usage: accesys <command> [args]

commands:
  run <spec> [--jobs N] [--json] [--full] [--kernel-threads N]
                  load a scenario file, validate it, and run its sweep
                  (<spec> is a file path, or the bare name of a
                  committed spec from `accesys list`)
  validate <spec>...
                  load + dry-build each file at both scales; report one
                  line per file, exit 1 if any fails
  list            show the committed specs/ library
  help            show this help

run flags:
  --jobs N, -j N  run the sweep on N worker threads
                  (default: ACCESYS_JOBS, else all cores)
  --json          emit the machine-readable sweep result on stdout
  --full          paper-scale workload sizes (same as ACCESYS_FULL=1)
  --kernel-threads N
                  parallel domain-engine threads per simulation
                  (overrides the spec's [kernel] threads; results are
                  byte-identical at any value)
  --fleet-workers N
                  worker OS processes for fleet scenarios, 0 = run the
                  host shards in-process (overrides the spec's [fleet]
                  workers and ACCESYS_FLEET_WORKERS; results are
                  byte-identical at any value)";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("validate") => cmd_validate(&args[1..]),
        Some("list") => cmd_list(),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("accesys: unknown command `{other}`\n\n{USAGE}");
            2
        }
        None => {
            eprintln!("accesys: a command is required\n\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Split a subcommand's arguments into positional spec names and the
/// shared sweep flags (`--jobs` keeps its value attached).
fn split_args(args: &[String]) -> Result<(Vec<&str>, Cli), CliError> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--jobs" || arg == "-j" || arg == "--kernel-threads" || arg == "--fleet-workers" {
            flags.push(arg.clone());
            if let Some(value) = iter.next() {
                flags.push(value.clone());
            }
        } else if arg.starts_with('-') {
            flags.push(arg.clone());
        } else {
            positional.push(arg.as_str());
        }
    }
    Ok((positional, Cli::parse(flags.into_iter())?))
}

/// Load a spec argument: an existing file path wins; otherwise a bare
/// committed-library name is resolved against the embedded text.
fn load(name: &str) -> Result<Spec, SpecError> {
    let path = std::path::Path::new(name);
    if path.exists() {
        return accesys_spec::load_file(path);
    }
    let stem = name.strip_suffix(".spec").unwrap_or(name);
    if let Some((_, text)) = LIBRARY.iter().find(|(s, _)| *s == stem) {
        return accesys_spec::load_str(text);
    }
    Err(SpecError::Io {
        path: name.to_string(),
        message: "no such file, and no committed spec with that name \
                  (see `accesys list`)"
            .to_string(),
    })
}

fn cmd_run(args: &[String]) -> i32 {
    let (names, cli) = match split_args(args) {
        Ok(split) => split,
        Err(CliError::Help) => {
            println!("{USAGE}");
            return 0;
        }
        Err(err) => {
            eprintln!("accesys run: {err}\n\n{USAGE}");
            return 2;
        }
    };
    let [name] = names[..] else {
        eprintln!("accesys run: exactly one spec file is required\n\n{USAGE}");
        return 2;
    };
    let mut spec = match load(name) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("accesys run: {name}: {err}");
            return 1;
        }
    };
    if let Some(threads) = cli.kernel_threads {
        spec.scenario.set_kernel_threads(threads);
    }
    if let Err(err) = spec.dry_build(cli.scale) {
        eprintln!("accesys run: {name}: {err}");
        return 1;
    }
    let value = match &spec.scenario {
        Scenario::Roofline(sc) => fig2::run_cli_for(sc, &cli),
        Scenario::Topo(sc) => topo::run_cli_for(sc, &cli),
        Scenario::Pipeline(sc) => graph::run_cli_for(sc, &cli),
        Scenario::Serving(sc) => serve::run_cli_for(sc, &cli),
        Scenario::Decode(sc) => decode::run_cli_for(sc, &cli),
        Scenario::Fleet(sc) => fleet::run_cli_for(sc, &cli),
    };
    if cli.json {
        cli::emit_json(&value);
    }
    0
}

fn cmd_validate(args: &[String]) -> i32 {
    let (names, _cli) = match split_args(args) {
        Ok(split) => split,
        Err(CliError::Help) => {
            println!("{USAGE}");
            return 0;
        }
        Err(err) => {
            eprintln!("accesys validate: {err}\n\n{USAGE}");
            return 2;
        }
    };
    if names.is_empty() {
        eprintln!("accesys validate: at least one spec file is required\n\n{USAGE}");
        return 2;
    }
    let mut failures = 0;
    for name in names {
        match validate_one(name) {
            Ok(summary) => println!("{name}: ok ({summary})"),
            Err(err) => {
                println!("{name}: error: {err}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        1
    } else {
        0
    }
}

/// Load + dry-build one file at both scales; a one-line summary on
/// success.
fn validate_one(name: &str) -> Result<String, SpecError> {
    let spec = load(name)?;
    spec.dry_build(Scale::Quick)?;
    spec.dry_build(Scale::Paper)?;
    let sc = &spec.scenario;
    Ok(format!("kind {}, scenario `{}`", sc.kind(), sc.name()))
}

fn cmd_list() -> i32 {
    println!("{:<20} {:<10} {:<16} sweep", "spec", "kind", "scenario");
    for (stem, text) in LIBRARY {
        match accesys_spec::load_str(text) {
            Ok(spec) => {
                let sc = &spec.scenario;
                println!(
                    "{:<20} {:<10} {:<16} {}",
                    format!("{stem}.spec"),
                    sc.kind(),
                    sc.name(),
                    sweep_label(sc)
                );
            }
            Err(err) => println!("{stem}.spec: error: {err}"),
        }
    }
    0
}

/// A short human label for a scenario's swept axes.
fn sweep_label(sc: &Scenario) -> String {
    match sc {
        Scenario::Roofline(s) => format!("{} compute times", s.compute_ns.len()),
        Scenario::Topo(s) => format!("{} tree shapes", s.shapes.len()),
        Scenario::Pipeline(s) => format!("{} tree shapes", s.shapes.len()),
        Scenario::Serving(s) => {
            format!("{} rates x {} shapes", s.rates.len(), s.shapes.len())
        }
        Scenario::Decode(s) => format!(
            "{} rates x {} shapes x {} budgets",
            s.rates.len(),
            s.shapes.len(),
            s.budgets.len()
        ),
        Scenario::Fleet(s) => {
            format!("{} host counts x {} shapes", s.hosts.len(), s.shapes.len())
        }
    }
}
