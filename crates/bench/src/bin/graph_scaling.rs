//! Workload-graph scaling sweep: sequential chain vs pipelined
//! multi-device schedule across switch-tree shapes (extension).

use accesys_exp::cli::{self, Cli};

fn main() {
    let cli = Cli::from_env("graph_scaling");
    let value = accesys_bench::graph::run_cli(&cli);
    if cli.json {
        cli::emit_json(&value);
    }
}
