//! Extension experiment: DRAM energy breakdown and controller-policy
//! ablation. `ACCESYS_FULL=1` for paper-scale matrix sizes.

fn main() {
    accesys_bench::energy::run_and_print(accesys_bench::Scale::from_env());
}
