//! Run-size selection (now shared harness-wide via [`accesys_exp`]).

pub use accesys_exp::Scale;
