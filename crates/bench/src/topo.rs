//! Extension experiment — topology scaling: switch-tree depth × fan-out.
//!
//! The paper's switch exists for "supporting multiple connections and
//! enhancing scalability"; the topology layer turns its shape into a
//! swept parameter. This experiment shards one GEMM across every leaf of
//! a family of PCIe switch trees — from the flat Fig. 1 shape to
//! cascaded depth-3 trees — and reports how endpoint count buys
//! parallelism while every extra switch level costs store-and-forward
//! latency on the shared path to host memory.
//!
//! Both regimes' testbeds, the matrix sizes and the swept shapes lower
//! from the committed `specs/switch_trees.spec`.

use crate::cli::Cli;
use crate::{specs, Scale};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_spec::{SystemSpec, TopoScenario};
use accesys_workload::GemmSpec;

/// The committed scenario this sweep lowers from.
pub fn scenario() -> &'static TopoScenario {
    specs::topo()
}

/// One topology measurement.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TopoRow {
    /// Tree shape (per-level fan-outs, `x`-separated).
    pub shape: String,
    /// Switch levels between the root complex and the endpoints.
    pub depth: u32,
    /// Leaf endpoints (= accelerators) in the tree.
    pub endpoints: u32,
    /// Compute-bound sharded time, ns (slow array override: endpoint
    /// count should scale near-linearly, switch depth should not hurt).
    pub compute_bound_ns: f64,
    /// Transfer-bound sharded time, ns (default array: the shared
    /// uplink and every extra switch level dominate).
    pub transfer_bound_ns: f64,
    /// TLPs that crossed the root switch's uplink in the transfer-bound
    /// run (shared-path load).
    pub root_up_tlps: f64,
}

/// Parse a `FxF` shape string into per-level fan-outs.
pub fn parse_shape(shape: &str) -> Vec<u32> {
    accesys_spec::parse_shape(shape).expect("shape levels are positive integers")
}

/// Matrix size at each scale.
pub fn matrix_size(scale: Scale) -> u32 {
    scenario().matrix.pick(scale)
}

fn sharded_report(system: &SystemSpec, levels: &[u32], matrix: u32) -> accesys::RunReport {
    let mut sim = system
        .simulation(levels)
        .expect("validated spec testbed builds");
    sim.run_gemm_sharded(GemmSpec::square(matrix))
        .expect("sharded gemm completes")
}

/// Measure one tree shape in both committed regimes.
pub fn measure(shape: &str, matrix: u32) -> TopoRow {
    measure_for(scenario(), shape, matrix)
}

/// Measure one tree shape in both of `sc`'s regimes.
pub fn measure_for(sc: &TopoScenario, shape: &str, matrix: u32) -> TopoRow {
    let levels = parse_shape(shape);
    let compute_report = sharded_report(&sc.compute_bound, &levels, matrix);
    let transfer_report = sharded_report(&sc.transfer_bound, &levels, matrix);
    TopoRow {
        shape: shape.to_string(),
        depth: levels.len() as u32,
        endpoints: levels.iter().product(),
        compute_bound_ns: compute_report.total_time_ns(),
        transfer_bound_ns: transfer_report.total_time_ns(),
        root_up_tlps: transfer_report.stats.get_or_zero("pcie.sw0.up_tlps"),
    }
}

/// The sweep as a declarative experiment over the scenario's shapes.
pub fn experiment(scale: Scale) -> impl Experiment<Point = String, Out = TopoRow> {
    experiment_for(scenario(), scale)
}

/// `sc` as a declarative experiment (the `accesys run` entry point).
pub fn experiment_for(
    sc: &TopoScenario,
    scale: Scale,
) -> impl Experiment<Point = String, Out = TopoRow> {
    let matrix = sc.matrix.pick(scale);
    let sc = sc.clone();
    Grid::new(sc.name.clone(), sc.shapes.clone()).sweep(move |s| measure_for(&sc, s, matrix))
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<TopoRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<TopoRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    run_cli_for(scenario(), cli)
}

/// [`run_cli`] against an arbitrary loaded scenario.
pub fn run_cli_for(sc: &TopoScenario, cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment_for(sc, cli.scale), |r| {
        print_for(
            sc,
            &r.points.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the scaling table.
pub fn run_and_print(scale: Scale) -> Vec<TopoRow> {
    let rows = run(scale);
    print(&rows, scale);
    rows
}

/// Print the scaling table.
pub fn print(rows: &[TopoRow], scale: Scale) {
    print_for(scenario(), rows, scale)
}

/// Print the scaling table of an arbitrary topo scenario.
pub fn print_for(sc: &TopoScenario, rows: &[TopoRow], scale: Scale) {
    let base_c = rows[0].compute_bound_ns;
    let base_t = rows[0].transfer_bound_ns;
    println!(
        "# Topology scaling (extension): sharded GEMM, matrix {}",
        sc.matrix.pick(scale)
    );
    println!(
        "{:>8} {:>6} {:>10} {:>16} {:>9} {:>17} {:>9} {:>13}",
        "shape",
        "depth",
        "endpoints",
        "compute-bnd (µs)",
        "speedup",
        "transfer-bnd (µs)",
        "speedup",
        "root up TLPs"
    );
    for r in rows {
        println!(
            "{:>8} {:>6} {:>10} {:>16.1} {:>8.2}x {:>17.1} {:>8.2}x {:>13.0}",
            r.shape,
            r.depth,
            r.endpoints,
            r.compute_bound_ns / 1000.0,
            base_c / r.compute_bound_ns,
            r.transfer_bound_ns / 1000.0,
            base_t / r.transfer_bound_ns,
            r.root_up_tlps
        );
    }
    println!("# expected: compute-bound runs scale with endpoints regardless of tree depth;");
    println!("# transfer-bound runs pay for the shared uplink and every extra switch level");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_two_eight_endpoint_tree_is_in_the_sweep() {
        // The acceptance shape: a depth-2 tree with 8 endpoints builds,
        // runs a sharded GEMM, and reports through the sweep.
        let row = measure("2x4", 128);
        assert_eq!(row.depth, 2);
        assert_eq!(row.endpoints, 8);
        assert!(row.compute_bound_ns > 0.0);
        assert!(row.transfer_bound_ns > 0.0);
        assert!(row.root_up_tlps > 0.0);
        assert!(scenario().shapes.iter().any(|s| s == "2x4"));
    }

    #[test]
    fn flat_shape_matches_the_classic_cluster_preset() {
        // Shape "4" is the Fig. 1 cluster: same endpoint count, both run.
        let row = measure("4", 128);
        assert_eq!(row.depth, 1);
        assert_eq!(row.endpoints, 4);
        assert!(row.transfer_bound_ns > 0.0);
        // Compute-bound sharding scales: 4 leaves beat 1 clearly.
        let one = measure("1", 128);
        assert!(
            one.compute_bound_ns / row.compute_bound_ns > 2.5,
            "compute-bound 4-leaf speedup {:.2}",
            one.compute_bound_ns / row.compute_bound_ns
        );
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let a = run_jobs(Scale::Quick, Jobs::serial());
        let b = run_jobs(Scale::Quick, Jobs::new(4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.compute_bound_ns.to_bits(), y.compute_bound_ns.to_bits());
            assert_eq!(x.transfer_bound_ns.to_bits(), y.transfer_bound_ns.to_bits());
        }
    }
}
