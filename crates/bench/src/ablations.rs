//! Ablations of the framework's own design choices (beyond the paper's
//! figures): how much each mechanism contributes.
//!
//! * PCIe endpoint tag pool — outstanding-read window vs throughput.
//! * SMMU µTLB capacity — translation overhead vs reach.
//! * SMMU walk cache on/off.
//! * LLC coherence point on/off (probe overhead for DC-mode traffic).

use crate::cli::Cli;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs, SweepResult};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// `(parameter, exec_ns)` series of one ablation.
#[derive(Clone, Debug, serde::Serialize)]
pub struct Ablation {
    /// Which knob was swept.
    pub name: &'static str,
    /// `(knob value, exec_time_ns)` points.
    pub points: Vec<(u64, f64)>,
}

fn exec(cfg: SystemConfig, matrix: u32) -> f64 {
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns()
}

/// The tag-pool ablation as a declarative experiment.
pub fn tags_experiment(matrix: u32) -> impl Experiment<Point = u64, Out = f64> {
    Grid::new("ablation.ep.tags", [1u64, 2, 4, 8, 16, 32, 64, 128, 256]).sweep(move |&t| {
        let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
        cfg.pcie.ep.tags = t as u32;
        exec(cfg, matrix)
    })
}

/// The µTLB-capacity ablation as a declarative experiment.
pub fn tlb_experiment(matrix: u32) -> impl Experiment<Point = u64, Out = f64> {
    Grid::new("ablation.smmu.tlb_entries", [4u64, 8, 16, 32, 64, 128]).sweep(move |&e| {
        let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
        if let Some(smmu) = cfg.smmu.as_mut() {
            smmu.tlb_entries = e as u32;
        }
        exec(cfg, matrix)
    })
}

/// The walk-cache ablation as a declarative experiment.
pub fn walk_cache_experiment(matrix: u32) -> impl Experiment<Point = u64, Out = f64> {
    Grid::new("ablation.smmu.walk_cache_entries", [0u64, 16]).sweep(move |&e| {
        let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
        if let Some(smmu) = cfg.smmu.as_mut() {
            smmu.walk_cache_entries = e as u32;
            smmu.tlb_entries = 8; // force walks so the cache matters
        }
        exec(cfg, matrix)
    })
}

/// The coherence-point ablation as a declarative experiment (0 = off,
/// 1 = on).
pub fn coherence_experiment(matrix: u32) -> impl Experiment<Point = u64, Out = f64> {
    Grid::new("ablation.llc.coherent", [0u64, 1]).sweep(move |&on| {
        let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
        cfg.coherent = on != 0;
        exec(cfg, matrix)
    })
}

fn ablation(name: &'static str, result: &SweepResult<u64, f64>) -> Ablation {
    Ablation {
        name,
        points: result.points.clone(),
    }
}

/// Sweep the endpoint's non-posted tag pool.
pub fn tags(matrix: u32) -> Ablation {
    ablation("ep.tags", &tags_experiment(matrix).run(Jobs::from_env()))
}

/// Sweep the µTLB capacity.
pub fn tlb_entries(matrix: u32) -> Ablation {
    ablation(
        "smmu.tlb_entries",
        &tlb_experiment(matrix).run(Jobs::from_env()),
    )
}

/// Walk cache on vs off.
pub fn walk_cache(matrix: u32) -> Ablation {
    ablation(
        "smmu.walk_cache_entries",
        &walk_cache_experiment(matrix).run(Jobs::from_env()),
    )
}

/// Coherence point on vs off (0 = off, 1 = on).
pub fn coherence(matrix: u32) -> Ablation {
    ablation(
        "llc.coherent",
        &coherence_experiment(matrix).run(Jobs::from_env()),
    )
}

/// Run all four ablations on `jobs` workers, noting wall-clock on
/// stderr; returns `(human rows, machine-readable values)`.
pub fn run_jobs(matrix: u32, jobs: Jobs) -> (Vec<Ablation>, serde::Value) {
    let results = [
        ("ep.tags", tags_experiment(matrix).run(jobs)),
        ("smmu.tlb_entries", tlb_experiment(matrix).run(jobs)),
        (
            "smmu.walk_cache_entries",
            walk_cache_experiment(matrix).run(jobs),
        ),
        ("llc.coherent", coherence_experiment(matrix).run(jobs)),
    ];
    let mut all = Vec::new();
    let mut values = Vec::new();
    for (name, result) in &results {
        crate::cli::note_wall(result);
        all.push(ablation(name, result));
        values.push(serde::Serialize::to_value(result));
    }
    (all, serde::Value::Seq(values))
}

/// The matrix size the ablations bin uses at each scale.
pub fn matrix_size(scale: crate::Scale) -> u32 {
    scale.pick(256, 1024)
}

/// Run at the CLI's settings; print the series unless `--json`; return
/// the machine-readable sweep values.
pub fn run_cli(cli: &Cli) -> serde::Value {
    let matrix = matrix_size(cli.scale);
    let (all, value) = run_jobs(matrix, cli.jobs);
    if !cli.json {
        print(&all, matrix);
    }
    value
}

/// Run all ablations and print them.
pub fn run_and_print(matrix: u32) -> Vec<Ablation> {
    let (all, _) = run_jobs(matrix, Jobs::from_env());
    print(&all, matrix);
    all
}

/// Print the ablation series.
pub fn print(all: &[Ablation], matrix: u32) {
    println!("# Ablations (GEMM {matrix}, 16 GB/s PCIe, DDR4 host)");
    for a in all {
        println!("{}:", a.name);
        for &(v, t) in &a.points {
            println!("  {v:>6} -> {:>10.1} us", t / 1000.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_tag_pools_throttle_reads() {
        let a = tags(128);
        let t1 = a.points[0].1; // 1 tag
        let t128 = a.points[7].1; // 128 tags
        assert!(
            t1 > 3.0 * t128,
            "stop-and-wait should be much slower: {t1} vs {t128}"
        );
        // Diminishing returns: 128 -> 256 changes little.
        let t256 = a.points[8].1;
        assert!((t128 / t256 - 1.0).abs() < 0.10);
    }

    #[test]
    fn bigger_tlbs_do_not_hurt() {
        let a = tlb_entries(128);
        let first = a.points.first().unwrap().1;
        let last = a.points.last().unwrap().1;
        assert!(
            last <= first * 1.02,
            "TLB growth regressed: {first} -> {last}"
        );
    }

    #[test]
    fn walk_cache_helps_when_tlb_thrashes() {
        let a = walk_cache(128);
        let off = a.points[0].1;
        let on = a.points[1].1;
        assert!(on <= off, "walk cache should not hurt: {off} -> {on}");
    }

    #[test]
    fn coherence_costs_little_without_sharing() {
        let a = coherence(128);
        let off = a.points[0].1;
        let on = a.points[1].1;
        // GEMM data is not CPU-shared, so the probe overhead is tiny.
        assert!(
            on <= off * 1.05,
            "coherence overhead too high: {off} -> {on}"
        );
    }
}
