//! Ablations of the framework's own design choices (beyond the paper's
//! figures): how much each mechanism contributes.
//!
//! * PCIe endpoint tag pool — outstanding-read window vs throughput.
//! * SMMU µTLB capacity — translation overhead vs reach.
//! * SMMU walk cache on/off.
//! * LLC coherence point on/off (probe overhead for DC-mode traffic).

use accesys::{Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// `(parameter, exec_ns)` series of one ablation.
#[derive(Clone, Debug)]
pub struct Ablation {
    /// Which knob was swept.
    pub name: &'static str,
    /// `(knob value, exec_time_ns)` points.
    pub points: Vec<(u64, f64)>,
}

fn exec(cfg: SystemConfig, matrix: u32) -> f64 {
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns()
}

/// Sweep the endpoint's non-posted tag pool.
pub fn tags(matrix: u32) -> Ablation {
    let points = [1u32, 2, 4, 8, 16, 32, 64, 128, 256]
        .iter()
        .map(|&t| {
            let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
            cfg.pcie.ep.tags = t;
            (u64::from(t), exec(cfg, matrix))
        })
        .collect();
    Ablation {
        name: "ep.tags",
        points,
    }
}

/// Sweep the µTLB capacity.
pub fn tlb_entries(matrix: u32) -> Ablation {
    let points = [4u32, 8, 16, 32, 64, 128]
        .iter()
        .map(|&e| {
            let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
            if let Some(smmu) = cfg.smmu.as_mut() {
                smmu.tlb_entries = e;
            }
            (u64::from(e), exec(cfg, matrix))
        })
        .collect();
    Ablation {
        name: "smmu.tlb_entries",
        points,
    }
}

/// Walk cache on vs off.
pub fn walk_cache(matrix: u32) -> Ablation {
    let points = [0u32, 16]
        .iter()
        .map(|&e| {
            let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
            if let Some(smmu) = cfg.smmu.as_mut() {
                smmu.walk_cache_entries = e;
                smmu.tlb_entries = 8; // force walks so the cache matters
            }
            (u64::from(e), exec(cfg, matrix))
        })
        .collect();
    Ablation {
        name: "smmu.walk_cache_entries",
        points,
    }
}

/// Coherence point on vs off (0 = off, 1 = on).
pub fn coherence(matrix: u32) -> Ablation {
    let points = [false, true]
        .iter()
        .map(|&on| {
            let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
            cfg.coherent = on;
            (u64::from(on), exec(cfg, matrix))
        })
        .collect();
    Ablation {
        name: "llc.coherent",
        points,
    }
}

/// Run all ablations and print them.
pub fn run_and_print(matrix: u32) -> Vec<Ablation> {
    let all = vec![
        tags(matrix),
        tlb_entries(matrix),
        walk_cache(matrix),
        coherence(matrix),
    ];
    println!("# Ablations (GEMM {matrix}, 16 GB/s PCIe, DDR4 host)");
    for a in &all {
        println!("{}:", a.name);
        for &(v, t) in &a.points {
            println!("  {v:>6} -> {:>10.1} us", t / 1000.0);
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_tag_pools_throttle_reads() {
        let a = tags(128);
        let t1 = a.points[0].1; // 1 tag
        let t128 = a.points[7].1; // 128 tags
        assert!(
            t1 > 3.0 * t128,
            "stop-and-wait should be much slower: {t1} vs {t128}"
        );
        // Diminishing returns: 128 -> 256 changes little.
        let t256 = a.points[8].1;
        assert!((t128 / t256 - 1.0).abs() < 0.10);
    }

    #[test]
    fn bigger_tlbs_do_not_hurt() {
        let a = tlb_entries(128);
        let first = a.points.first().unwrap().1;
        let last = a.points.last().unwrap().1;
        assert!(
            last <= first * 1.02,
            "TLB growth regressed: {first} -> {last}"
        );
    }

    #[test]
    fn walk_cache_helps_when_tlb_thrashes() {
        let a = walk_cache(128);
        let off = a.points[0].1;
        let on = a.points[1].1;
        assert!(on <= off, "walk cache should not hurt: {off} -> {on}");
    }

    #[test]
    fn coherence_costs_little_without_sharing() {
        let a = coherence(128);
        let off = a.points[0].1;
        let on = a.points[1].1;
        // GEMM data is not CPU-shared, so the probe overhead is tiny.
        assert!(
            on <= off * 1.05,
            "coherence overhead too high: {off} -> {on}"
        );
    }
}
