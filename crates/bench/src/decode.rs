//! Extension experiment — batched autoregressive decode: open-loop LLM
//! traffic through the prefill/decode serving engine, across arrival
//! rates, tree shapes and KV budgets.
//!
//! Decode is the serving regime the paper's interconnect questions bite
//! hardest in: every round is a batch of skinny memory-bound GEMMs,
//! and the working set that decides who runs where is the KV cache
//! growing in each leaf's `devmem` slice. Each point serves the same
//! seeded Poisson trace twice on the same tree:
//!
//! * **batched** — continuous batching up to the policy's cap
//!   (`2 × endpoints` for `batch_cap = "auto"`): prefills fold in at
//!   round barriers next to the veterans' decode slices.
//! * **sequential** — the same engine clamped to one request in flight:
//!   prefill, decode to EOS, only then look at the queue again.
//!
//! The third axis is the per-device KV budget: **ample** (slices never
//! fill) vs **tight** (a fraction over one request's worth — concurrent
//! decoders must evict each other, and the pressure shows up as
//! host-memory `Transfer` traffic in the row). The testbed, request
//! shape, traffic, policy, budgets and sweep axes lower from the
//! committed `specs/llm_decode.spec`; the `decode_perf` bin turns the
//! saturation goodput ratio into a CI bar.

use crate::cli::Cli;
use crate::topo::parse_shape;
use crate::{specs, Scale};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_serve::{serve_llm, LlmRequestShape, LlmServeConfig, LlmServeReport};
use accesys_spec::DecodeScenario;

/// The committed scenario this sweep lowers from.
pub fn scenario() -> &'static DecodeScenario {
    specs::decode()
}

/// Offered arrival rates swept, requests per second: below every
/// shape's saturation, past the one-leaf knee, and past it everywhere.
pub fn rates(_scale: Scale) -> Vec<f64> {
    scenario().rates.clone()
}

/// Trace horizon in virtual nanoseconds.
pub fn horizon_ns(scale: Scale) -> u64 {
    scenario().traffic.horizon_ns.pick(scale)
}

/// The request every client sends: a tiny two-layer autoregressive
/// model, short prompt, a handful of generated tokens —
/// compute-dominated so serving stresses the scheduler and the KV
/// model, not streaming bandwidth.
pub fn request_shape(_scale: Scale) -> LlmRequestShape {
    scenario().request
}

/// The per-device KV budget of a named regime, in bytes.
pub fn kv_budget(budget: &str, shape: &LlmRequestShape) -> u64 {
    scenario()
        .kv
        .budget_bytes(budget, shape)
        .unwrap_or_else(|| panic!("unknown KV budget regime {budget:?}"))
}

/// Latency SLO (arrival → EOS): completions slower than this do not
/// count as goodput.
pub fn slo_ns(_scale: Scale) -> f64 {
    scenario().policy.slo_ns
}

/// One decode-serving measurement: one arrival rate on one tree shape
/// under one KV budget.
#[derive(Clone, Debug, serde::Serialize)]
pub struct DecodeRow {
    /// Offered arrival rate, requests per second.
    pub rate_rps: f64,
    /// Tree shape (per-level fan-outs, `x`-separated).
    pub shape: String,
    /// KV budget regime (`ample` or `tight`).
    pub budget: String,
    /// Leaf endpoints (= devices KV homes spread over).
    pub endpoints: u32,
    /// Per-device KV budget, bytes.
    pub kv_budget: u64,
    /// Arrivals offered over the horizon.
    pub offered: u64,
    /// Requests admitted (batched run).
    pub admitted: u64,
    /// Requests rejected at the admission bound (batched run).
    pub rejected: u64,
    /// Batching rounds executed (batched run).
    pub rounds: u64,
    /// Rounds mixing prefill and decode slices (batched run).
    pub mixed_rounds: u64,
    /// Peak requests in flight (batched run).
    pub peak_batch: usize,
    /// Decode tokens generated (batched run).
    pub tokens: u64,
    /// Decode tokens per second of serving time (batched run).
    pub decode_tps: f64,
    /// Median arrival→EOS latency, ns (batched run).
    pub p50_ns: f64,
    /// 99th-percentile arrival→EOS latency, ns (batched run).
    pub p99_ns: f64,
    /// Median time-to-first-token, ns (batched run).
    pub ttft_p50_ns: f64,
    /// KV evictions forced by the budget (batched run).
    pub kv_evictions: u64,
    /// KV bytes offloaded to host memory (batched run).
    pub kv_evicted_bytes: u64,
    /// KV eviction/restore `Transfer` tasks added to round graphs.
    pub kv_transfer_tasks: u64,
    /// Within-SLO completions per second, batched.
    pub goodput_rps: f64,
    /// Within-SLO completions per second, one-request-at-a-time.
    pub sequential_goodput_rps: f64,
    /// `goodput_rps / sequential_goodput_rps` — the continuous-batching
    /// win (1.0 when both serve everything, i.e. below saturation).
    pub goodput_gain: f64,
}

/// Serve the point's trace once at `batch_cap` requests in flight.
fn serve_once(
    sc: &DecodeScenario,
    rate: f64,
    levels: &[u32],
    batch_cap: usize,
    budget_bytes: u64,
    scale: Scale,
) -> LlmServeReport {
    let arrivals = sc.traffic.arrivals(rate, scale);
    let mut sim = sc
        .system
        .simulation(levels)
        .expect("validated spec testbed builds");
    serve_llm(
        &mut sim,
        &sc.request,
        &arrivals,
        &sc.policy.policy(),
        &LlmServeConfig::new(batch_cap, sc.policy.queue_cap, budget_bytes)
            .with_slo_ns(sc.policy.slo_ns),
    )
    .expect("decode serving completes")
}

/// Measure one (rate, shape, budget) point: batched vs sequential.
pub fn measure(rate: f64, shape: &str, budget: &str, scale: Scale) -> DecodeRow {
    measure_for(scenario(), rate, shape, budget, scale)
}

/// Measure one (rate, shape, budget) point of an arbitrary decode
/// scenario.
pub fn measure_for(
    sc: &DecodeScenario,
    rate: f64,
    shape: &str,
    budget: &str,
    scale: Scale,
) -> DecodeRow {
    let levels = parse_shape(shape);
    let endpoints: u32 = levels.iter().product();
    let budget_bytes = sc
        .kv
        .budget_bytes(budget, &sc.request)
        .unwrap_or_else(|| panic!("unknown KV budget regime {budget:?}"));
    let batch_cap = sc.policy.batch_cap.cap(endpoints);
    let batched = serve_once(sc, rate, &levels, batch_cap, budget_bytes, scale);
    let sequential = serve_once(sc, rate, &levels, 1, budget_bytes, scale);
    let gain = if sequential.goodput_rps > 0.0 {
        batched.goodput_rps / sequential.goodput_rps
    } else if batched.goodput_rps > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    DecodeRow {
        rate_rps: rate,
        shape: shape.to_string(),
        budget: budget.to_string(),
        endpoints,
        kv_budget: budget_bytes,
        offered: batched.offered,
        admitted: batched.admitted,
        rejected: batched.rejected,
        rounds: batched.rounds,
        mixed_rounds: batched.mixed_rounds,
        peak_batch: batched.peak_batch,
        tokens: batched.tokens_decoded,
        decode_tps: batched.decode_tps,
        p50_ns: batched.latency.p50_ns,
        p99_ns: batched.latency.p99_ns,
        ttft_p50_ns: batched.ttft.p50_ns,
        kv_evictions: batched.kv.evictions,
        kv_evicted_bytes: batched.kv.evicted_bytes,
        kv_transfer_tasks: batched.kv.transfer_tasks,
        goodput_rps: batched.goodput_rps,
        sequential_goodput_rps: sequential.goodput_rps,
        goodput_gain: gain,
    }
}

/// The sweep as a declarative experiment: rate × shape × budget,
/// row-major.
pub fn experiment(scale: Scale) -> impl Experiment<Point = (f64, String, String), Out = DecodeRow> {
    experiment_for(scenario(), scale)
}

/// `sc` as a declarative experiment (the `accesys run` entry point).
pub fn experiment_for(
    sc: &DecodeScenario,
    scale: Scale,
) -> impl Experiment<Point = (f64, String, String), Out = DecodeRow> {
    let sc = sc.clone();
    Grid::cross3(
        sc.name.clone(),
        sc.rates.clone(),
        sc.shapes.clone(),
        sc.budgets.clone(),
    )
    .sweep(move |(rate, shape, budget)| measure_for(&sc, *rate, shape, budget, scale))
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<DecodeRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<DecodeRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    run_cli_for(scenario(), cli)
}

/// [`run_cli`] against an arbitrary loaded scenario.
pub fn run_cli_for(sc: &DecodeScenario, cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment_for(sc, cli.scale), |r| {
        print_for(
            sc,
            &r.points.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the decode table.
pub fn run_and_print(scale: Scale) -> Vec<DecodeRow> {
    let rows = run(scale);
    print(&rows, scale);
    rows
}

/// Print the decode table.
pub fn print(rows: &[DecodeRow], scale: Scale) {
    print_for(scenario(), rows, scale)
}

/// Print the decode table of an arbitrary decode scenario.
pub fn print_for(sc: &DecodeScenario, rows: &[DecodeRow], _scale: Scale) {
    let s = sc.request;
    println!(
        "# Batched decode (extension): {}-token prompts, {} generated \
         tokens (hidden {}, {} layers), Poisson 2-tenant traffic, \
         SLO {:.0} ms",
        s.prompt,
        s.decode,
        s.spec.hidden,
        s.spec.layers,
        sc.policy.slo_ns / 1e6
    );
    println!(
        "{:>6} {:>6} {:>6} {:>8} {:>6} {:>7} {:>9} {:>10} {:>10} {:>8} {:>9} {:>9} {:>6}",
        "rate",
        "shape",
        "kv",
        "offered",
        "batch",
        "tokens",
        "evicted",
        "p50 (µs)",
        "ttft(µs)",
        "tok/s",
        "goodput",
        "seq good",
        "gain"
    );
    for r in rows {
        println!(
            "{:>6.0} {:>6} {:>6} {:>8} {:>6} {:>7} {:>9} {:>10.0} {:>10.0} {:>8.0} {:>9.1} {:>9.1} {:>5.2}x",
            r.rate_rps,
            r.shape,
            r.budget,
            r.offered,
            r.peak_batch,
            r.tokens,
            r.kv_evictions,
            r.p50_ns / 1e3,
            r.ttft_p50_ns / 1e3,
            r.decode_tps,
            r.goodput_rps,
            r.sequential_goodput_rps,
            r.goodput_gain
        );
    }
    println!("# expected: below saturation both serve everything (gain ~1x); past it,");
    println!("# mixed prefill/decode batching over >1 leaf holds goodput the sequential");
    println!("# loop sheds; tight KV budgets surface eviction Transfer traffic");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_goodput_beats_sequential_by_2x_on_a_four_leaf_tree() {
        // The acceptance bar: at the top swept rate on the four-leaf
        // tree with an ample budget, batched decode goodput must be at
        // least twice the one-request-at-a-time engine's.
        let rate = rates(Scale::Quick)[2];
        let row = measure(rate, "2x2", "ample", Scale::Quick);
        assert_eq!(row.endpoints, 4);
        assert!(row.peak_batch > 1, "batching never engaged: {row:?}");
        assert!(
            row.goodput_gain >= 2.0,
            "batched decode should be ≥2x sequential at saturation, got {:.2}x",
            row.goodput_gain
        );
        assert!(row.mixed_rounds > 0, "saturation implies mixed rounds");
    }

    #[test]
    fn tight_budgets_surface_eviction_transfer_traffic() {
        // The second acceptance shape: a constrained-KV point must show
        // observable eviction traffic in the report — and still finish
        // everything it admitted.
        let rate = rates(Scale::Quick)[2];
        let row = measure(rate, "2x2", "tight", Scale::Quick);
        assert!(row.kv_evictions > 0, "tight budget never evicted: {row:?}");
        assert!(row.kv_evicted_bytes > 0);
        assert!(row.kv_transfer_tasks >= row.kv_evictions);
        let ample = measure(rate, "2x2", "ample", Scale::Quick);
        assert_eq!(ample.kv_evictions, 0, "ample budget must not evict");
    }

    #[test]
    fn below_saturation_everything_is_served_either_way() {
        let rate = rates(Scale::Quick)[0];
        let row = measure(rate, "2", "ample", Scale::Quick);
        assert_eq!(row.rejected, 0, "no load shedding below saturation");
        assert_eq!(row.admitted, row.offered);
        assert!(
            (0.8..=1.25).contains(&row.goodput_gain),
            "gain should be ~1x below saturation, got {:.2}x",
            row.goodput_gain
        );
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let a = run_jobs(Scale::Quick, Jobs::serial());
        let b = run_jobs(Scale::Quick, Jobs::new(4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.budget, y.budget);
            assert_eq!(x.p99_ns.to_bits(), y.p99_ns.to_bits());
            assert_eq!(x.goodput_rps.to_bits(), y.goodput_rps.to_bits());
            assert_eq!(x.kv_evicted_bytes, y.kv_evicted_bytes);
        }
    }
}
