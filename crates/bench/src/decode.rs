//! Extension experiment — batched autoregressive decode: open-loop LLM
//! traffic through the prefill/decode serving engine, across arrival
//! rates, tree shapes and KV budgets.
//!
//! Decode is the serving regime the paper's interconnect questions bite
//! hardest in: every round is a batch of skinny memory-bound GEMMs,
//! and the working set that decides who runs where is the KV cache
//! growing in each leaf's `devmem` slice. Each point serves the same
//! seeded Poisson trace twice on the same tree:
//!
//! * **batched** — continuous batching up to `2 × endpoints` requests
//!   in flight: prefills fold in at round barriers next to the veterans'
//!   decode slices.
//! * **sequential** — the same engine clamped to one request in flight:
//!   prefill, decode to EOS, only then look at the queue again.
//!
//! The third axis is the per-device KV budget: **ample** (slices never
//! fill) vs **tight** (1.5 requests' worth — concurrent decoders must
//! evict each other, and the pressure shows up as host-memory
//! `Transfer` traffic in the row). The `decode_perf` bin turns the
//! saturation goodput ratio into a CI bar.

use crate::cli::Cli;
use crate::topo::parse_shape;
use crate::Scale;
use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_serve::{
    serve_llm, ArrivalSpec, LlmRequestShape, LlmServeConfig, LlmServeReport, Policy,
};
use accesys_workload::llm::LlmSpec;

/// Tree shapes swept: one leaf (no batching headroom) to four.
pub const SHAPES: [&str; 3] = ["1", "2", "2x2"];

/// KV-budget regimes swept: `ample` never fills a slice, `tight` holds
/// 1.5 requests' worth so concurrent decoders thrash.
pub const BUDGETS: [&str; 2] = ["ample", "tight"];

/// Arrival-trace seed: every point serves the same seeded traffic.
pub const SEED: u64 = 0xDEC0DE;

/// Offered arrival rates swept, requests per second: below every
/// shape's saturation, past the one-leaf knee, and past it everywhere.
pub fn rates(_scale: Scale) -> [f64; 3] {
    [50.0, 200.0, 2000.0]
}

/// Trace horizon in virtual nanoseconds.
pub fn horizon_ns(scale: Scale) -> u64 {
    scale.pick(50_000_000, 250_000_000)
}

/// The request every client sends: a tiny two-layer autoregressive
/// model, 12-token prompt, 6 generated tokens — 7 rounds per request,
/// compute-dominated so serving stresses the scheduler and the KV
/// model, not streaming bandwidth.
pub fn request_shape(_scale: Scale) -> LlmRequestShape {
    LlmRequestShape {
        spec: LlmSpec::tiny(),
        prompt: 12,
        decode: 6,
    }
}

/// The per-device KV budget of a named regime, in bytes.
pub fn kv_budget(budget: &str, shape: &LlmRequestShape) -> u64 {
    match budget {
        // Never fills: dozens of requests fit a slice.
        "ample" => 1 << 20,
        // 1.5 requests' worth: any two concurrent decoders must evict
        // each other (capacity pressure by construction).
        "tight" => shape.max_kv_bytes() * 3 / 2,
        other => panic!("unknown KV budget regime {other:?}"),
    }
}

/// Latency SLO (arrival → EOS): completions slower than this do not
/// count as goodput.
pub fn slo_ns(_scale: Scale) -> f64 {
    50e6
}

/// One decode-serving measurement: one arrival rate on one tree shape
/// under one KV budget.
#[derive(Clone, Debug, serde::Serialize)]
pub struct DecodeRow {
    /// Offered arrival rate, requests per second.
    pub rate_rps: f64,
    /// Tree shape (per-level fan-outs, `x`-separated).
    pub shape: String,
    /// KV budget regime (`ample` or `tight`).
    pub budget: String,
    /// Leaf endpoints (= devices KV homes spread over).
    pub endpoints: u32,
    /// Per-device KV budget, bytes.
    pub kv_budget: u64,
    /// Arrivals offered over the horizon.
    pub offered: u64,
    /// Requests admitted (batched run).
    pub admitted: u64,
    /// Requests rejected at the admission bound (batched run).
    pub rejected: u64,
    /// Batching rounds executed (batched run).
    pub rounds: u64,
    /// Rounds mixing prefill and decode slices (batched run).
    pub mixed_rounds: u64,
    /// Peak requests in flight (batched run).
    pub peak_batch: usize,
    /// Decode tokens generated (batched run).
    pub tokens: u64,
    /// Decode tokens per second of serving time (batched run).
    pub decode_tps: f64,
    /// Median arrival→EOS latency, ns (batched run).
    pub p50_ns: f64,
    /// 99th-percentile arrival→EOS latency, ns (batched run).
    pub p99_ns: f64,
    /// Median time-to-first-token, ns (batched run).
    pub ttft_p50_ns: f64,
    /// KV evictions forced by the budget (batched run).
    pub kv_evictions: u64,
    /// KV bytes offloaded to host memory (batched run).
    pub kv_evicted_bytes: u64,
    /// KV eviction/restore `Transfer` tasks added to round graphs.
    pub kv_transfer_tasks: u64,
    /// Within-SLO completions per second, batched.
    pub goodput_rps: f64,
    /// Within-SLO completions per second, one-request-at-a-time.
    pub sequential_goodput_rps: f64,
    /// `goodput_rps / sequential_goodput_rps` — the continuous-batching
    /// win (1.0 when both serve everything, i.e. below saturation).
    pub goodput_gain: f64,
}

/// The serving testbed: the [`crate::serve`] tree (per-leaf local
/// memory), but with a 10× faster per-op compute override — decode
/// requests run 7 rounds of skinny GEMMs, so per-request service has
/// to stay well under the trace horizon for the open-loop regimes to
/// separate cleanly.
fn tree_sim(levels: &[u32]) -> Simulation {
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(5_000.0);
    cfg.smmu = None;
    let spec = switch_tree_with(&cfg, levels, |_| EndpointOptions {
        accel: None,
        dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
    })
    .expect("swept shapes are valid");
    Simulation::from_topology(cfg, &spec).expect("valid topology")
}

/// Serve the point's trace once at `batch_cap` requests in flight.
fn serve_once(
    rate: f64,
    levels: &[u32],
    batch_cap: usize,
    budget_bytes: u64,
    scale: Scale,
) -> LlmServeReport {
    let arrivals = ArrivalSpec::poisson(rate, 2, SEED).generate(horizon_ns(scale));
    let mut sim = tree_sim(levels);
    serve_llm(
        &mut sim,
        &request_shape(scale),
        &arrivals,
        &Policy::round_robin(),
        &LlmServeConfig::new(batch_cap, 32, budget_bytes).with_slo_ns(slo_ns(scale)),
    )
    .expect("decode serving completes")
}

/// Measure one (rate, shape, budget) point: batched vs sequential.
pub fn measure(rate: f64, shape: &str, budget: &str, scale: Scale) -> DecodeRow {
    let levels = parse_shape(shape);
    let endpoints: u32 = levels.iter().product();
    let req = request_shape(scale);
    let budget_bytes = kv_budget(budget, &req);
    let batched = serve_once(rate, &levels, endpoints as usize * 2, budget_bytes, scale);
    let sequential = serve_once(rate, &levels, 1, budget_bytes, scale);
    let gain = if sequential.goodput_rps > 0.0 {
        batched.goodput_rps / sequential.goodput_rps
    } else if batched.goodput_rps > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    DecodeRow {
        rate_rps: rate,
        shape: shape.to_string(),
        budget: budget.to_string(),
        endpoints,
        kv_budget: budget_bytes,
        offered: batched.offered,
        admitted: batched.admitted,
        rejected: batched.rejected,
        rounds: batched.rounds,
        mixed_rounds: batched.mixed_rounds,
        peak_batch: batched.peak_batch,
        tokens: batched.tokens_decoded,
        decode_tps: batched.decode_tps,
        p50_ns: batched.latency.p50_ns,
        p99_ns: batched.latency.p99_ns,
        ttft_p50_ns: batched.ttft.p50_ns,
        kv_evictions: batched.kv.evictions,
        kv_evicted_bytes: batched.kv.evicted_bytes,
        kv_transfer_tasks: batched.kv.transfer_tasks,
        goodput_rps: batched.goodput_rps,
        sequential_goodput_rps: sequential.goodput_rps,
        goodput_gain: gain,
    }
}

/// The sweep as a declarative experiment: rate × shape × budget,
/// row-major.
pub fn experiment(scale: Scale) -> impl Experiment<Point = (f64, String, String), Out = DecodeRow> {
    Grid::cross3(
        "decode_scaling",
        rates(scale),
        SHAPES.map(String::from),
        BUDGETS.map(String::from),
    )
    .sweep(move |(rate, shape, budget)| measure(*rate, shape, budget, scale))
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<DecodeRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<DecodeRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(cli.scale), |r| {
        print(
            &r.points.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the decode table.
pub fn run_and_print(scale: Scale) -> Vec<DecodeRow> {
    let rows = run(scale);
    print(&rows, scale);
    rows
}

/// Print the decode table.
pub fn print(rows: &[DecodeRow], scale: Scale) {
    let s = request_shape(scale);
    println!(
        "# Batched decode (extension): {}-token prompts, {} generated \
         tokens (hidden {}, {} layers), Poisson 2-tenant traffic, \
         SLO {:.0} ms",
        s.prompt,
        s.decode,
        s.spec.hidden,
        s.spec.layers,
        slo_ns(scale) / 1e6
    );
    println!(
        "{:>6} {:>6} {:>6} {:>8} {:>6} {:>7} {:>9} {:>10} {:>10} {:>8} {:>9} {:>9} {:>6}",
        "rate",
        "shape",
        "kv",
        "offered",
        "batch",
        "tokens",
        "evicted",
        "p50 (µs)",
        "ttft(µs)",
        "tok/s",
        "goodput",
        "seq good",
        "gain"
    );
    for r in rows {
        println!(
            "{:>6.0} {:>6} {:>6} {:>8} {:>6} {:>7} {:>9} {:>10.0} {:>10.0} {:>8.0} {:>9.1} {:>9.1} {:>5.2}x",
            r.rate_rps,
            r.shape,
            r.budget,
            r.offered,
            r.peak_batch,
            r.tokens,
            r.kv_evictions,
            r.p50_ns / 1e3,
            r.ttft_p50_ns / 1e3,
            r.decode_tps,
            r.goodput_rps,
            r.sequential_goodput_rps,
            r.goodput_gain
        );
    }
    println!("# expected: below saturation both serve everything (gain ~1x); past it,");
    println!("# mixed prefill/decode batching over >1 leaf holds goodput the sequential");
    println!("# loop sheds; tight KV budgets surface eviction Transfer traffic");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_goodput_beats_sequential_by_2x_on_a_four_leaf_tree() {
        // The acceptance bar: at the top swept rate on the four-leaf
        // tree with an ample budget, batched decode goodput must be at
        // least twice the one-request-at-a-time engine's.
        let rate = rates(Scale::Quick)[2];
        let row = measure(rate, "2x2", "ample", Scale::Quick);
        assert_eq!(row.endpoints, 4);
        assert!(row.peak_batch > 1, "batching never engaged: {row:?}");
        assert!(
            row.goodput_gain >= 2.0,
            "batched decode should be ≥2x sequential at saturation, got {:.2}x",
            row.goodput_gain
        );
        assert!(row.mixed_rounds > 0, "saturation implies mixed rounds");
    }

    #[test]
    fn tight_budgets_surface_eviction_transfer_traffic() {
        // The second acceptance shape: a constrained-KV point must show
        // observable eviction traffic in the report — and still finish
        // everything it admitted.
        let rate = rates(Scale::Quick)[2];
        let row = measure(rate, "2x2", "tight", Scale::Quick);
        assert!(row.kv_evictions > 0, "tight budget never evicted: {row:?}");
        assert!(row.kv_evicted_bytes > 0);
        assert!(row.kv_transfer_tasks >= row.kv_evictions);
        let ample = measure(rate, "2x2", "ample", Scale::Quick);
        assert_eq!(ample.kv_evictions, 0, "ample budget must not evict");
    }

    #[test]
    fn below_saturation_everything_is_served_either_way() {
        let rate = rates(Scale::Quick)[0];
        let row = measure(rate, "2", "ample", Scale::Quick);
        assert_eq!(row.rejected, 0, "no load shedding below saturation");
        assert_eq!(row.admitted, row.offered);
        assert!(
            (0.8..=1.25).contains(&row.goodput_gain),
            "gain should be ~1x below saturation, got {:.2}x",
            row.goodput_gain
        );
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let a = run_jobs(Scale::Quick, Jobs::serial());
        let b = run_jobs(Scale::Quick, Jobs::new(4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.budget, y.budget);
            assert_eq!(x.p99_ns.to_bits(), y.p99_ns.to_bits());
            assert_eq!(x.goodput_rps.to_bits(), y.goodput_rps.to_bits());
            assert_eq!(x.kv_evicted_bytes, y.kv_evicted_bytes);
        }
    }
}
