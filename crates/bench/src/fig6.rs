//! Fig. 6 — impact of memory bandwidth (a) and latency (b), using the
//! "gem5 default DRAM model" ([`accesys_mem::SimpleMemory`]). The paper
//! reports large gains up to ≈50 GB/s then a plateau (bandwidth), and a
//! total overhead of only ≈5 % across a 1–36 ns latency sweep.

use crate::cli::Cli;
use crate::Scale;
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::SimpleMemoryConfig;
use accesys_workload::GemmSpec;

/// One sweep panel: `(swept value, execution time ns)` points.
pub type Sweep = Vec<(f64, f64)>;

/// Bandwidths swept in GB/s.
pub const BANDWIDTHS: [f64; 8] = [8.0, 16.0, 25.0, 50.0, 75.0, 100.0, 160.0, 256.0];

/// Latencies swept in ns.
pub const LATENCIES: [f64; 7] = [1.0, 6.0, 12.0, 18.0, 24.0, 30.0, 36.0];

/// Matrix size at each scale.
pub fn matrix_size(scale: Scale) -> u32 {
    scale.pick(256, 1024)
}

fn config(bandwidth_gbps: f64, latency_ns: f64) -> SystemConfig {
    // High PCIe bandwidth so host memory itself is the studied bottleneck.
    let mut cfg = SystemConfig::pcie_host(64.0, accesys_mem::MemTech::Hbm2);
    cfg.host_mem = MemBackendConfig::Simple(SimpleMemoryConfig {
        latency_ns,
        bandwidth_gbps,
    });
    cfg
}

/// Measure one point of either sweep.
pub fn measure(bandwidth_gbps: f64, latency_ns: f64, matrix: u32) -> f64 {
    let mut sim = Simulation::new(config(bandwidth_gbps, latency_ns)).expect("valid config");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns()
}

/// Panel (a) as a declarative experiment: bandwidth sweep, latency
/// pinned at 18 ns.
pub fn bandwidth_experiment(scale: Scale) -> impl Experiment<Point = f64, Out = f64> {
    let matrix = matrix_size(scale);
    Grid::new("fig6a_bandwidth", BANDWIDTHS).sweep(move |&bw| measure(bw, 18.0, matrix))
}

/// Panel (b) as a declarative experiment: latency sweep, bandwidth
/// pinned at 64 GB/s.
pub fn latency_experiment(scale: Scale) -> impl Experiment<Point = f64, Out = f64> {
    let matrix = matrix_size(scale);
    Grid::new("fig6b_latency", LATENCIES).sweep(move |&lat| measure(64.0, lat, matrix))
}

/// Run the bandwidth sweep on `jobs` workers (latency pinned at 18 ns).
pub fn run_bandwidth_jobs(scale: Scale, jobs: Jobs) -> Sweep {
    bandwidth_experiment(scale).run(jobs).points
}

/// Run the bandwidth sweep (latency pinned at 18 ns).
pub fn run_bandwidth(scale: Scale) -> Sweep {
    run_bandwidth_jobs(scale, Jobs::from_env())
}

/// Run the latency sweep on `jobs` workers (bandwidth pinned at 64 GB/s).
pub fn run_latency_jobs(scale: Scale, jobs: Jobs) -> Sweep {
    latency_experiment(scale).run(jobs).points
}

/// Run the latency sweep (bandwidth pinned at 64 GB/s).
pub fn run_latency(scale: Scale) -> Sweep {
    run_latency_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print both panels unless `--json`; return
/// the machine-readable sweep values.
pub fn run_cli(cli: &Cli) -> serde::Value {
    let bw = bandwidth_experiment(cli.scale).run(cli.jobs);
    let lat = latency_experiment(cli.scale).run(cli.jobs);
    crate::cli::note_wall(&bw);
    crate::cli::note_wall(&lat);
    let value = serde::Value::Map(vec![
        ("bandwidth".to_string(), serde::Serialize::to_value(&bw)),
        ("latency".to_string(), serde::Serialize::to_value(&lat)),
    ]);
    if !cli.json {
        print(&bw.points, &lat.points, cli.scale);
    }
    value
}

/// Run and print both panels.
pub fn run_and_print(scale: Scale) -> (Sweep, Sweep) {
    let bw = run_bandwidth(scale);
    let lat = run_latency(scale);
    print(&bw, &lat, scale);
    (bw, lat)
}

/// Print both panels.
pub fn print(bw: &Sweep, lat: &Sweep, scale: Scale) {
    println!(
        "# Fig 6a: memory bandwidth sweep, matrix {}",
        matrix_size(scale)
    );
    println!(
        "{:>12} {:>14} {:>12}",
        "BW (GB/s)", "exec (us)", "normalized"
    );
    let worst = bw.first().expect("nonempty").1;
    for &(b, t) in bw {
        println!("{b:>12} {:>14.1} {:>12.3}", t / 1000.0, t / worst);
    }
    let best = bw.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    println!(
        "# improvement from {} GB/s: {:.0}% (paper: ~60% up to ~50 GB/s, then plateau)",
        BANDWIDTHS[0],
        100.0 * (1.0 - best / worst)
    );
    println!("# Fig 6b: memory latency sweep");
    println!(
        "{:>12} {:>14} {:>12}",
        "lat (ns)", "exec (us)", "normalized"
    );
    let base = lat.first().expect("nonempty").1;
    for &(l, t) in lat {
        println!("{l:>12} {:>14.1} {:>12.3}", t / 1000.0, t / base);
    }
    let worst_lat = lat.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
    println!(
        "# latency overhead across sweep: {:.1}% (paper: ~4.9%)",
        100.0 * (worst_lat / base - 1.0)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_matters_then_plateaus() {
        let matrix = 128;
        let t8 = measure(8.0, 18.0, matrix);
        let t50 = measure(50.0, 18.0, matrix);
        let t256 = measure(256.0, 18.0, matrix);
        assert!(t8 > t50, "{t8} vs {t50}");
        // Past the knee, gains are small.
        let tail_gain = t50 / t256;
        assert!(tail_gain < 1.15, "tail gain {tail_gain}");
    }

    #[test]
    fn latency_sensitivity_is_mild() {
        let matrix = 128;
        let fast = measure(64.0, 1.0, matrix);
        let slow = measure(64.0, 36.0, matrix);
        let overhead = slow / fast - 1.0;
        assert!(
            overhead < 0.25,
            "latency should be mostly hidden: {overhead}"
        );
    }
}
