//! Extension experiment — fleet scale-out: a cluster of hosts, each
//! one switch tree of accelerators behind its own serving engine, fed
//! shares of one open-loop trace over latency/bandwidth-bounded
//! network links.
//!
//! This is the layer above every earlier experiment family: PR 4's
//! switch trees are the per-host topology, PR 6's continuous-batching
//! engine serves each host's shard, and the host shards themselves run
//! in `accesys-fleet-worker` OS processes pooled across sweep points
//! (`--fleet-workers`). The determinism contract stacks: the merged
//! fleet report is byte-identical at any `--jobs`, any
//! `--kernel-threads`, and any `--fleet-workers` count — CI pins the
//! 1-vs-4-process comparison with `cmp`.
//!
//! The scenario (testbed, request, traffic, policy, link model, sweep
//! axes) lowers from the committed `specs/fleet_1k.spec`; its top grid
//! point (64 hosts × `4x4` trees) is a 1024-endpoint fleet. The
//! `fleet_perf` bin turns the 4-process wall-clock speedup into a CI
//! bar and records `workers_spawned` to prove pool reuse.

use crate::cli::Cli;
use crate::topo::parse_shape;
use crate::{specs, Scale};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_fleet::{
    FleetPolicy, FleetPool, FleetReport, FleetSpec, FleetTraffic, HostSystem, NetLink, PolicyKind,
};
use accesys_spec::FleetScenario;
use std::sync::{Arc, Mutex};

/// The committed scenario this sweep lowers from.
pub fn scenario() -> &'static FleetScenario {
    specs::fleet()
}

/// Lower one (hosts, shape) grid point of a spec-layer fleet scenario
/// into the fleet crate's self-contained [`FleetSpec`] (the form that
/// ships to worker processes as JSON).
pub fn lower(sc: &FleetScenario, hosts: u32, shape: &str, scale: Scale) -> FleetSpec {
    let levels = parse_shape(shape);
    let endpoints_per_host: u32 = levels.iter().product();
    let (tenants, seed) = match &sc.traffic.process {
        accesys_spec::TrafficProcess::Poisson { tenants, seed } => (*tenants, *seed),
        other => panic!("fleet scenarios are validated to poisson traffic, got {other:?}"),
    };
    let (kind, weights) = match &sc.policy.kind {
        accesys_spec::PolicyKind::Fifo => (PolicyKind::Fifo, Vec::new()),
        accesys_spec::PolicyKind::RoundRobin => (PolicyKind::RoundRobin, Vec::new()),
        accesys_spec::PolicyKind::WeightedShare(w) => (PolicyKind::WeightedShare, w.clone()),
    };
    FleetSpec {
        hosts,
        shape: levels,
        host: HostSystem {
            link_gbps: sc.system.link_gbps,
            host_mem: sc.system.host_mem,
            compute_ns: sc.system.compute_ns,
            smmu: sc.system.smmu,
            devmem: sc.system.devmem,
            kernel_threads: sc.system.kernel_threads.unwrap_or(0),
        },
        request: sc.request,
        traffic: FleetTraffic {
            rate_rps: sc.rate_rps,
            tenants,
            seed,
            horizon_ns: sc.traffic.horizon_ns.pick(scale),
        },
        policy: FleetPolicy {
            kind,
            weights,
            batch_cap: sc.policy.batch_cap.cap(endpoints_per_host) as u64,
            queue_cap: sc.policy.queue_cap as u64,
            slo_ns: sc.policy.slo_ns,
        },
        link: NetLink {
            latency_ns: sc.link_latency_ns,
            gbps: sc.link_gbps,
            request_bytes: sc.request_bytes,
        },
    }
}

/// The worker pool of one sweep (shared across grid points so worker
/// processes are spawned once, not once per point).
///
/// # Panics
///
/// Panics when `workers > 0` and the `accesys-fleet-worker` binary is
/// not next to the current executable (build the workspace first, or
/// set `ACCESYS_FLEET_WORKER_BIN`).
pub fn pool(workers: u32) -> FleetPool {
    FleetPool::spawn(workers).unwrap_or_else(|e| {
        panic!("fleet worker pool: {e} (hint: `cargo build --release --workspace`)")
    })
}

/// One fleet measurement: one host count on one per-host tree shape.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FleetRow {
    /// Host count.
    pub hosts: u32,
    /// Per-host tree shape (per-level fan-outs, `x`-separated).
    pub shape: String,
    /// Total accelerator endpoints simulated.
    pub endpoints: u64,
    /// Arrivals offered fleet-wide over the horizon.
    pub offered: u64,
    /// Requests admitted fleet-wide.
    pub admitted: u64,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Requests rejected at per-host admission bounds.
    pub rejected: u64,
    /// Batching rounds executed across all hosts.
    pub rounds: u64,
    /// Peak single-round batch on any host.
    pub peak_batch: u64,
    /// Median end-to-end (frontend→host→frontend) latency, ns.
    pub p50_ns: f64,
    /// 99th-percentile end-to-end latency, ns.
    pub p99_ns: f64,
    /// Median network share of the end-to-end latency, ns.
    pub net_p50_ns: f64,
    /// Completions per second of frontend time.
    pub throughput_rps: f64,
    /// Within-SLO completions per second of frontend time.
    pub goodput_rps: f64,
}

fn row_of(hosts: u32, shape: &str, report: &FleetReport) -> FleetRow {
    FleetRow {
        hosts,
        shape: shape.to_string(),
        endpoints: report.endpoints,
        offered: report.offered,
        admitted: report.admitted,
        completed: report.completed,
        rejected: report.rejected,
        rounds: report.rounds,
        peak_batch: report.peak_batch,
        p50_ns: report.latency.p50_ns,
        p99_ns: report.latency.p99_ns,
        net_p50_ns: report.network.p50_ns,
        throughput_rps: report.throughput_rps,
        goodput_rps: report.goodput_rps,
    }
}

/// Measure one (hosts, shape) point on a shared pool.
pub fn measure_for(
    sc: &FleetScenario,
    pool: &Mutex<FleetPool>,
    hosts: u32,
    shape: &str,
    scale: Scale,
) -> FleetRow {
    let spec = lower(sc, hosts, shape, scale);
    let report = pool
        .lock()
        .expect("fleet pool lock")
        .run(&spec)
        .unwrap_or_else(|e| panic!("fleet run ({hosts} hosts, shape {shape}): {e}"));
    row_of(hosts, shape, &report)
}

/// The sweep as a declarative experiment: hosts × shapes, row-major,
/// every point sharing `pool`'s worker processes.
pub fn experiment_for(
    sc: &FleetScenario,
    scale: Scale,
    pool: Arc<Mutex<FleetPool>>,
) -> impl Experiment<Point = (u32, String), Out = FleetRow> {
    let sc = sc.clone();
    Grid::cross2(sc.name.clone(), sc.hosts.clone(), sc.shapes.clone())
        .sweep(move |(hosts, shape)| measure_for(&sc, &pool, *hosts, shape, scale))
}

/// The committed sweep on a fresh pool of `workers` processes.
pub fn experiment(
    scale: Scale,
    workers: u32,
) -> impl Experiment<Point = (u32, String), Out = FleetRow> {
    experiment_for(scenario(), scale, Arc::new(Mutex::new(pool(workers))))
}

/// The sweep of `sc` with every host shard run in-process — no worker
/// binary needed. Golden tests pin this form; its output is
/// byte-identical to any worker-process run (the fleet contract).
pub fn experiment_in_process(
    sc: &FleetScenario,
    scale: Scale,
) -> impl Experiment<Point = (u32, String), Out = FleetRow> {
    experiment_for(sc, scale, Arc::new(Mutex::new(FleetPool::in_process())))
}

/// Run the committed sweep in-process (no worker processes).
pub fn run(scale: Scale) -> Vec<FleetRow> {
    experiment(scale, 0).run(Jobs::serial()).into_outputs()
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value. Worker count: `--fleet-workers` /
/// `ACCESYS_FLEET_WORKERS`, else the spec's `[fleet] workers`. The
/// spawn count goes to **stderr**, so stdout stays byte-identical
/// across worker counts.
pub fn run_cli(cli: &Cli) -> serde::Value {
    run_cli_for(scenario(), cli)
}

/// [`run_cli`] with the worker default flipped: unless
/// `--fleet-workers` / `ACCESYS_FLEET_WORKERS` asks for processes, the
/// host shards run in-process. `all_experiments` uses this so the
/// combined run never depends on the worker binary having been built;
/// stdout is byte-identical either way.
pub fn run_cli_in_process(cli: &Cli) -> serde::Value {
    run_cli_with(scenario(), cli, cli.fleet_workers.unwrap_or(0))
}

/// [`run_cli`] against an arbitrary loaded fleet scenario.
pub fn run_cli_for(sc: &FleetScenario, cli: &Cli) -> serde::Value {
    run_cli_with(sc, cli, cli.fleet_workers.unwrap_or(sc.workers))
}

fn run_cli_with(sc: &FleetScenario, cli: &Cli, workers: u32) -> serde::Value {
    let shared = Arc::new(Mutex::new(pool(workers)));
    let value = crate::cli::run_sweep_cli(
        cli,
        &experiment_for(sc, cli.scale, Arc::clone(&shared)),
        |r| {
            print_for(
                sc,
                &r.points.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            )
        },
    );
    let pool = shared.lock().expect("fleet pool lock");
    eprintln!(
        "# fleet workers: {} requested, {} spawned over the sweep",
        pool.workers(),
        pool.spawned()
    );
    value
}

/// Print the fleet table.
pub fn print(rows: &[FleetRow]) {
    print_for(scenario(), rows)
}

/// Print the fleet table of an arbitrary fleet scenario.
pub fn print_for(sc: &FleetScenario, rows: &[FleetRow]) {
    println!(
        "# Fleet scale-out (extension): {} req/s Poisson over {} tenant(s), \
         link {:.0} ns + {:.0} Gbit/s, SLO {:.0} ms",
        sc.rate_rps,
        sc.traffic.tenants(),
        sc.link_latency_ns,
        sc.link_gbps,
        sc.policy.slo_ns / 1e6
    );
    println!(
        "{:>6} {:>6} {:>9} {:>8} {:>8} {:>8} {:>7} {:>5} {:>10} {:>10} {:>9} {:>9} {:>9}",
        "hosts",
        "shape",
        "endpts",
        "offered",
        "admitted",
        "rejected",
        "rounds",
        "peak",
        "p50 (µs)",
        "p99 (µs)",
        "net p50",
        "thruput",
        "goodput"
    );
    for r in rows {
        println!(
            "{:>6} {:>6} {:>9} {:>8} {:>8} {:>8} {:>7} {:>5} {:>10.1} {:>10.1} {:>9.1} {:>9.0} {:>9.0}",
            r.hosts,
            r.shape,
            r.endpoints,
            r.offered,
            r.admitted,
            r.rejected,
            r.rounds,
            r.peak_batch,
            r.p50_ns / 1e3,
            r.p99_ns / 1e3,
            r.net_p50_ns / 1e3,
            r.throughput_rps,
            r.goodput_rps
        );
    }
    println!("# expected: the same trace spread over more hosts/leaves lifts throughput");
    println!("# toward the offered rate and shrinks queueing in p99; the network share");
    println!("# stays at the link floor (2x latency + 2x serialization)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_committed_sweep_reaches_a_1024_endpoint_fleet() {
        let sc = scenario();
        let &hosts = sc.hosts.iter().max().expect("hosts swept");
        let shape = sc.shapes.last().expect("shapes swept");
        assert!(
            sc.endpoints(hosts, shape) >= 1024,
            "the top grid point must simulate >= 1024 endpoints"
        );
    }

    #[test]
    fn every_committed_grid_point_lowers_to_a_valid_fleet_spec() {
        let sc = scenario();
        for &hosts in &sc.hosts {
            for shape in &sc.shapes {
                for scale in [Scale::Quick, Scale::Paper] {
                    let spec = lower(sc, hosts, shape, scale);
                    spec.validate()
                        .unwrap_or_else(|e| panic!("({hosts} hosts, {shape}, {scale:?}): {e}"));
                }
            }
        }
    }

    #[test]
    fn the_sweep_is_deterministic_across_jobs_and_covers_the_grid() {
        let sc = scenario();
        // One small point per axis keeps this a unit test; the full
        // grid and the process pool run in CI.
        let mut small = sc.clone();
        small.hosts = vec![2];
        small.shapes = vec!["2".to_string()];
        let run = |jobs: Jobs| {
            experiment_for(
                &small,
                Scale::Quick,
                Arc::new(Mutex::new(FleetPool::in_process())),
            )
            .run(jobs)
            .into_outputs()
        };
        let a = run(Jobs::serial());
        let b = run(Jobs::new(4));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        let (x, y) = (&a[0], &b[0]);
        assert_eq!(x.offered, y.offered);
        assert_eq!(x.rounds, y.rounds);
        assert_eq!(x.p99_ns.to_bits(), y.p99_ns.to_bits());
        assert_eq!(x.goodput_rps.to_bits(), y.goodput_rps.to_bits());
        assert!(x.completed > 0, "the demo point must serve something");
    }

    #[test]
    fn more_capacity_never_loses_throughput_on_the_committed_grid_edge() {
        // Same trace, one host vs the smallest committed host count:
        // adding hosts must not reduce completions.
        let sc = scenario();
        let shape = &sc.shapes[0];
        let mut pool = FleetPool::in_process();
        let one = pool
            .run(&lower(sc, 1, shape, Scale::Quick))
            .expect("1-host fleet runs");
        let &few = sc.hosts.first().expect("hosts swept");
        let spread = pool
            .run(&lower(sc, few, shape, Scale::Quick))
            .expect("committed fleet point runs");
        assert_eq!(one.offered, spread.offered, "same frontend trace");
        assert!(
            spread.completed >= one.completed,
            "spreading the trace over {few} hosts lost completions: {} < {}",
            spread.completed,
            one.completed
        );
    }
}
