//! Fig. 9 — overall Transformer performance as a function of the
//! Non-GEMM workload fraction, for each PCIe bandwidth vs DevMem, using
//! the paper's Section V-D analytic model fed with *measured* phase
//! times. The paper reports DevMem preferable when W_GEMM exceeds
//! 34.31 % (2 GB/s), 10.16 % (8 GB/s) and 4.27 % (64 GB/s).

use crate::cli::Cli;
use crate::fig7::{measure, SystemKind, VitCell};
use crate::Scale;
use accesys::analytic::{PhaseTimes, ThresholdModel};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_workload::VitModel;

/// One bandwidth's fitted model and threshold.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ThresholdRow {
    /// The PCIe system compared against DevMem.
    pub system: SystemKind,
    /// The fitted model.
    pub model: ThresholdModel,
    /// Minimum GEMM fraction above which DevMem wins, if any.
    pub gemm_threshold: Option<f64>,
    /// Crossover on the Fig. 9 x-axis: DevMem wins when the Non-GEMM
    /// fraction is *below* this value.
    pub non_gemm_crossover: Option<f64>,
}

/// The figure's measurement phase as a declarative experiment: one
/// ViT-Base layer on each of the four systems (the analytic fit is
/// cheap post-processing over the collected phase times).
pub fn experiment(_scale: Scale) -> impl Experiment<Point = SystemKind, Out = VitCell> {
    Grid::new("fig9", SystemKind::ALL).sweep(|&system| measure(VitModel::Base, system))
}

/// Fit the Section V-D model for each PCIe system against DevMem.
pub fn fit(cells: &[VitCell]) -> Vec<ThresholdRow> {
    let dev = cells
        .iter()
        .find(|c| c.system == SystemKind::DevMem)
        .expect("DevMem measured");
    let dev_phase = PhaseTimes {
        gemm_ns: dev.report.gemm_ns(),
        non_gemm_ns: dev.report.non_gemm_ns(),
    };
    cells
        .iter()
        .filter(|c| c.system != SystemKind::DevMem)
        .map(|host| {
            let model = ThresholdModel {
                pcie: PhaseTimes {
                    gemm_ns: host.report.gemm_ns(),
                    non_gemm_ns: host.report.non_gemm_ns(),
                },
                devmem: dev_phase,
                t_other_ns: host.report.other_ns().min(dev.report.other_ns()),
            };
            ThresholdRow {
                system: host.system,
                gemm_threshold: model.devmem_wins_above_gemm_fraction(),
                non_gemm_crossover: model.crossover_non_gemm_fraction(),
                model,
            }
        })
        .collect()
}

/// Measure phase times on `jobs` workers and fit the model for each
/// PCIe bandwidth.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<ThresholdRow> {
    fit(&experiment(scale).run(jobs).into_outputs())
}

/// Measure and fit (worker count from the environment).
pub fn run(scale: Scale) -> Vec<ThresholdRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the series unless `--json`; return
/// the machine-readable sweep value (measured points plus fitted rows).
pub fn run_cli(cli: &Cli) -> serde::Value {
    let result = experiment(cli.scale).run(cli.jobs);
    crate::cli::note_wall(&result);
    let rows = fit(&result
        .points
        .iter()
        .map(|(_, c)| c.clone())
        .collect::<Vec<_>>());
    let mut value = serde::Serialize::to_value(&result);
    if let serde::Value::Map(entries) = &mut value {
        entries.push(("rows".to_string(), serde::Serialize::to_value(&rows)));
    }
    if !cli.json {
        print(&rows);
    }
    value
}

/// Run and print the Fig. 9 series and thresholds.
pub fn run_and_print(scale: Scale) -> Vec<ThresholdRow> {
    let rows = run(scale);
    print(&rows);
    rows
}

/// Print the Fig. 9 series and thresholds.
pub fn print(rows: &[ThresholdRow]) {
    println!("# Fig 9: total time (us) vs Non-GEMM fraction (ViT-Base phase times)");
    print!("{:>10}", "w_nonG");
    for r in rows {
        print!("{:>12}", r.system.label());
    }
    print!("{:>12}", "DevMem");
    println!();
    let sweeps: Vec<Vec<(f64, f64, f64)>> = rows.iter().map(|r| r.model.sweep(11)).collect();
    for i in 0..11 {
        print!("{:>10.1}", sweeps[0][i].0);
        for s in &sweeps {
            print!("{:>12.1}", s[i].1 / 1000.0);
        }
        print!("{:>12.1}", sweeps[0][i].2 / 1000.0);
        println!();
    }
    for r in rows {
        match (r.non_gemm_crossover, r.gemm_threshold) {
            (Some(w), Some(g)) => println!(
                "# vs {}: DevMem wins when Non-GEMM fraction < {:.2}% (W_GEMM > {:.2}%)",
                r.system.label(),
                w * 100.0,
                g * 100.0
            ),
            _ => println!("# vs {}: no crossover in [0,1]", r.system.label()),
        }
    }
    println!("# paper thresholds: 34.31% (2 GB/s), 10.16% (8 GB/s), 4.27% (64 GB/s),");
    println!("# decreasing with bandwidth on the Fig. 9 Non-GEMM-fraction axis.");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossovers_fall_with_pcie_bandwidth() {
        let rows = run(Scale::Quick);
        let t: Vec<f64> = rows
            .iter()
            .map(|r| r.non_gemm_crossover.unwrap_or(f64::NAN))
            .collect();
        assert!(t[0].is_finite(), "2 GB/s crossover exists");
        assert!(t[2].is_finite(), "64 GB/s crossover exists");
        // Faster PCIe narrows DevMem's GEMM advantage, so DevMem needs an
        // ever more GEMM-dominated mix: the Non-GEMM crossover falls with
        // bandwidth, exactly the paper's monotone trend.
        assert!(
            t[0] > t[1] && t[1] > t[2],
            "crossovers should fall with bandwidth: {t:?}"
        );
    }
}
