//! Figs. 7 & 8 — Transformer (ViT) inference across the four system
//! configurations of Section V-C, with the GEMM / Non-GEMM split of
//! Section V-D.1:
//!
//! * Fig. 7: PCIe-64GB is ~2.5–3.4× faster than PCIe-2GB; DevMem is
//!   *slightly worse* than PCIe-64GB despite its faster GEMMs.
//! * Fig. 8: DevMem has the best GEMM time but up to ~5× worse Non-GEMM
//!   time (NUMA access from the CPU to device memory).

use crate::cli::Cli;
use crate::Scale;
use accesys::{Simulation, SystemConfig, VitReport};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::VitModel;

/// The four systems of Section V-C.
#[derive(Copy, Clone, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum SystemKind {
    /// Host memory, 2 GB/s PCIe, DDR4, 256 B packets.
    Pcie2,
    /// Host memory, 8 GB/s PCIe, DDR4, 256 B packets.
    Pcie8,
    /// Host memory, 64 GB/s PCIe, HBM2, 256 B packets.
    Pcie64,
    /// Device-side HBM2, 64 B bursts.
    DevMem,
}

impl SystemKind {
    /// All four systems in the paper's order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Pcie2,
        SystemKind::Pcie8,
        SystemKind::Pcie64,
        SystemKind::DevMem,
    ];

    /// The paper's configuration for this system.
    pub fn config(self) -> SystemConfig {
        match self {
            SystemKind::Pcie2 => {
                SystemConfig::pcie_host(2.0, MemTech::Ddr4).with_request_bytes(256)
            }
            SystemKind::Pcie8 => {
                SystemConfig::pcie_host(8.0, MemTech::Ddr4).with_request_bytes(256)
            }
            SystemKind::Pcie64 => {
                SystemConfig::pcie_host(64.0, MemTech::Hbm2).with_request_bytes(256)
            }
            SystemKind::DevMem => SystemConfig::devmem(MemTech::Hbm2),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Pcie2 => "PCIe-2GB",
            SystemKind::Pcie8 => "PCIe-8GB",
            SystemKind::Pcie64 => "PCIe-64GB",
            SystemKind::DevMem => "DevMem",
        }
    }
}

/// One (model, system) measurement.
#[derive(Clone, Debug, serde::Serialize)]
pub struct VitCell {
    /// The ViT variant.
    pub model: VitModel,
    /// The system configuration.
    pub system: SystemKind,
    /// One-layer report.
    pub report: VitReport,
}

impl VitCell {
    /// Full-model time (layer time × layer count), ns.
    pub fn full_model_ns(&self) -> f64 {
        self.report.full_model_ns(self.model.layers())
    }
}

/// Models evaluated at each scale (paper: all three).
pub fn models(scale: Scale) -> Vec<VitModel> {
    scale.pick(vec![VitModel::Base], VitModel::ALL.to_vec())
}

/// Measure one layer of `model` on `system`.
pub fn measure(model: VitModel, system: SystemKind) -> VitCell {
    let mut sim = Simulation::new(system.config()).expect("valid config");
    let report = sim.run_vit_layer(model).expect("layer completes");
    VitCell {
        model,
        system,
        report,
    }
}

/// The figure as a declarative experiment over model × system.
pub fn experiment(scale: Scale) -> impl Experiment<Point = (VitModel, SystemKind), Out = VitCell> {
    Grid::cross2("fig7", models(scale), SystemKind::ALL)
        .sweep(|&(model, system)| measure(model, system))
}

/// Run the grid on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<VitCell> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the grid (worker count from the environment).
pub fn run(scale: Scale) -> Vec<VitCell> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the tables unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    let result = experiment(cli.scale).run(cli.jobs);
    crate::cli::note_wall(&result);
    if !cli.json {
        print(
            &result
                .points
                .iter()
                .map(|(_, c)| c.clone())
                .collect::<Vec<_>>(),
        );
    }
    serde::Serialize::to_value(&result)
}

/// Run and print Fig. 7 (total speedups) and Fig. 8 (GEMM / Non-GEMM
/// split).
pub fn run_and_print(scale: Scale) -> Vec<VitCell> {
    let cells = run(scale);
    print(&cells);
    cells
}

/// Print Fig. 7 and Fig. 8 from measured cells.
pub fn print(cells: &[VitCell]) {
    println!("# Fig 7: ViT inference time (one layer x layers), speedup vs PCIe-2GB");
    println!(
        "{:>10} {:>11} {:>12} {:>10}",
        "model", "system", "total (ms)", "speedup"
    );
    let mut seen = Vec::new();
    for c in cells {
        if !seen.contains(&c.model) {
            seen.push(c.model);
        }
    }
    for model in seen {
        let base = cells
            .iter()
            .find(|c| c.model == model && c.system == SystemKind::Pcie2)
            .expect("PCIe-2GB measured")
            .full_model_ns();
        for c in cells.iter().filter(|c| c.model == model) {
            println!(
                "{:>10} {:>11} {:>12.2} {:>9.2}x",
                c.model.to_string(),
                c.system.label(),
                c.full_model_ns() / 1e6,
                base / c.full_model_ns()
            );
        }
    }
    println!("# paper: PCIe-64GB 2.5-3.4x over PCIe-2GB; DevMem slightly below PCIe-64GB");
    println!();
    println!("# Fig 8: GEMM vs Non-GEMM time per layer (us)");
    println!(
        "{:>10} {:>11} {:>12} {:>12} {:>14}",
        "model", "system", "gemm", "non-gemm", "non-gemm frac"
    );
    for c in cells {
        println!(
            "{:>10} {:>11} {:>12.1} {:>12.1} {:>13.1}%",
            c.model.to_string(),
            c.system.label(),
            c.report.gemm_ns() / 1000.0,
            c.report.non_gemm_ns() / 1000.0,
            100.0 * c.report.non_gemm_fraction()
        );
    }
    println!("# paper: DevMem best at GEMM, up to ~500% Non-GEMM overhead vs PCIe systems");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devmem_wins_gemm_but_loses_non_gemm() {
        let dev = measure(VitModel::Base, SystemKind::DevMem);
        let p64 = measure(VitModel::Base, SystemKind::Pcie64);
        assert!(
            dev.report.gemm_ns() <= p64.report.gemm_ns() * 1.1,
            "DevMem GEMM should be competitive: {} vs {}",
            dev.report.gemm_ns(),
            p64.report.gemm_ns()
        );
        assert!(
            dev.report.non_gemm_ns() > 2.0 * p64.report.non_gemm_ns(),
            "DevMem Non-GEMM should suffer NUMA: {} vs {}",
            dev.report.non_gemm_ns(),
            p64.report.non_gemm_ns()
        );
    }

    #[test]
    fn pcie64_beats_pcie2_by_paper_magnitude() {
        let p2 = measure(VitModel::Base, SystemKind::Pcie2);
        let p64 = measure(VitModel::Base, SystemKind::Pcie64);
        let speedup = p2.report.total_time_ns() / p64.report.total_time_ns();
        assert!(
            speedup > 1.8,
            "expected a strong speedup from 2 -> 64 GB/s: {speedup}"
        );
    }
}
