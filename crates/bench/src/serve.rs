//! Extension experiment — online serving: open-loop traffic through the
//! continuous-batching engine, across arrival rates and tree shapes.
//!
//! Every other experiment in this crate is closed-loop: a fixed
//! workload, a makespan. This one is open-loop — requests arrive on
//! their own clock ([`ArrivalSpec::poisson`], seeded, two tenants) and
//! the measured quantities are the serving ones: p50/p99/p99.9 latency,
//! goodput under an SLO, rejections past the admission bound. Each
//! point serves the same trace twice on the same tree:
//!
//! * **batched** — continuous batching up to `2 × endpoints` requests
//!   in flight, folded in and out at round barriers (round-robin across
//!   tenants);
//! * **sequential** — the same engine clamped to one request in flight,
//!   which is exactly what the pre-serving sequential drivers would do:
//!   finish a request end to end before looking at the queue again.
//!
//! The ratio of saturation goodput between the two is the win the
//! serving layer extracts from hardware the topology already paid for;
//! the `serve_perf` bin turns it into a CI bar.

use crate::cli::Cli;
use crate::topo::parse_shape;
use crate::Scale;
use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_serve::{serve, ArrivalSpec, Policy, RequestShape, ServeConfig, ServeReport};

/// Tree shapes swept: one leaf (no batching headroom) to four.
pub const SHAPES: [&str; 3] = ["1", "2", "2x2"];

/// Arrival-trace seed: every point serves the same seeded traffic.
pub const SEED: u64 = 0xACCE5;

/// Offered arrival rates swept, requests per second: well below every
/// shape's saturation, past the one-leaf knee, and past it everywhere
/// (paper scale keeps the same rates over a longer horizon so the
/// tails are better resolved).
pub fn rates(_scale: Scale) -> [f64; 3] {
    [100.0, 400.0, 1200.0]
}

/// Trace horizon in virtual nanoseconds.
pub fn horizon_ns(scale: Scale) -> u64 {
    scale.pick(50_000_000, 250_000_000)
}

/// The request every client sends: a compute-dominated two-layer
/// encoder, small enough that its non-GEMM streams are negligible next
/// to the per-job compute override — serving stresses the *scheduler*,
/// not the CPU's streaming bandwidth.
pub fn request_shape(_scale: Scale) -> RequestShape {
    RequestShape {
        seq: 16,
        hidden: 64,
        heads: 4,
        mlp: 128,
        slices: 2,
    }
}

/// Latency SLO: completions slower than this do not count as goodput.
pub fn slo_ns(_scale: Scale) -> f64 {
    20e6
}

/// One serving measurement: one arrival rate on one tree shape.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServeRow {
    /// Offered arrival rate, requests per second.
    pub rate_rps: f64,
    /// Tree shape (per-level fan-outs, `x`-separated).
    pub shape: String,
    /// Leaf endpoints (= devices the batch can spread over).
    pub endpoints: u32,
    /// Arrivals offered over the horizon.
    pub offered: u64,
    /// Requests admitted (batched run).
    pub admitted: u64,
    /// Requests rejected at the admission bound (batched run).
    pub rejected: u64,
    /// Batching rounds executed (batched run).
    pub rounds: u64,
    /// Peak requests in flight (batched run).
    pub peak_batch: usize,
    /// Median latency, ns (batched run).
    pub p50_ns: f64,
    /// 99th-percentile latency, ns (batched run).
    pub p99_ns: f64,
    /// 99.9th-percentile latency, ns (batched run).
    pub p999_ns: f64,
    /// Within-SLO completions per second, batched.
    pub goodput_rps: f64,
    /// Within-SLO completions per second, one-request-at-a-time.
    pub sequential_goodput_rps: f64,
    /// `goodput_rps / sequential_goodput_rps` — the serving-layer win
    /// (1.0 when both serve everything, i.e. below saturation).
    pub goodput_gain: f64,
}

/// The serving testbed: per-leaf local memory (job DMA off the shared
/// uplink), fixed per-op compute — the [`crate::graph`] tree.
fn tree_sim(levels: &[u32]) -> Simulation {
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(50_000.0);
    cfg.smmu = None;
    let spec = switch_tree_with(&cfg, levels, |_| EndpointOptions {
        accel: None,
        dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
    })
    .expect("swept shapes are valid");
    Simulation::from_topology(cfg, &spec).expect("valid topology")
}

/// Serve the point's trace once at `batch_cap` requests in flight.
fn serve_once(rate: f64, levels: &[u32], batch_cap: usize, scale: Scale) -> ServeReport {
    let arrivals = ArrivalSpec::poisson(rate, 2, SEED).generate(horizon_ns(scale));
    let mut sim = tree_sim(levels);
    serve(
        &mut sim,
        &request_shape(scale),
        &arrivals,
        &Policy::round_robin(),
        &ServeConfig::new(batch_cap, 32).with_slo_ns(slo_ns(scale)),
    )
    .expect("serving completes")
}

/// Measure one (rate, shape) point: batched vs sequential dispatch.
pub fn measure(rate: f64, shape: &str, scale: Scale) -> ServeRow {
    let levels = parse_shape(shape);
    let endpoints: u32 = levels.iter().product();
    let batched = serve_once(rate, &levels, endpoints as usize * 2, scale);
    let sequential = serve_once(rate, &levels, 1, scale);
    let gain = if sequential.goodput_rps > 0.0 {
        batched.goodput_rps / sequential.goodput_rps
    } else if batched.goodput_rps > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    ServeRow {
        rate_rps: rate,
        shape: shape.to_string(),
        endpoints,
        offered: batched.offered,
        admitted: batched.admitted,
        rejected: batched.rejected,
        rounds: batched.rounds,
        peak_batch: batched.peak_batch,
        p50_ns: batched.latency.p50_ns,
        p99_ns: batched.latency.p99_ns,
        p999_ns: batched.latency.p999_ns,
        goodput_rps: batched.goodput_rps,
        sequential_goodput_rps: sequential.goodput_rps,
        goodput_gain: gain,
    }
}

/// The sweep as a declarative experiment: rate × shape, row-major.
pub fn experiment(scale: Scale) -> impl Experiment<Point = (f64, String), Out = ServeRow> {
    Grid::cross2("serve_scaling", rates(scale), SHAPES.map(String::from))
        .sweep(move |(rate, shape)| measure(*rate, shape, scale))
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<ServeRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<ServeRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(cli.scale), |r| {
        print(
            &r.points.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the serving table.
pub fn run_and_print(scale: Scale) -> Vec<ServeRow> {
    let rows = run(scale);
    print(&rows, scale);
    rows
}

/// Print the serving table.
pub fn print(rows: &[ServeRow], scale: Scale) {
    let s = request_shape(scale);
    println!(
        "# Online serving (extension): {}-slice encoder requests \
         ({}x{}, {} heads, mlp {}), Poisson 2-tenant traffic, \
         SLO {:.0} ms",
        s.slices,
        s.seq,
        s.hidden,
        s.heads,
        s.mlp,
        slo_ns(scale) / 1e6
    );
    println!(
        "{:>8} {:>6} {:>8} {:>9} {:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>6}",
        "rate",
        "shape",
        "offered",
        "rejected",
        "batch",
        "p50 (µs)",
        "p99 (µs)",
        "p99.9(µs)",
        "goodput",
        "seq good",
        "gain"
    );
    for r in rows {
        println!(
            "{:>8.0} {:>6} {:>8} {:>9} {:>6} {:>10.0} {:>10.0} {:>10.0} {:>10.1} {:>9.1} {:>5.2}x",
            r.rate_rps,
            r.shape,
            r.offered,
            r.rejected,
            r.peak_batch,
            r.p50_ns / 1e3,
            r.p99_ns / 1e3,
            r.p999_ns / 1e3,
            r.goodput_rps,
            r.sequential_goodput_rps,
            r.goodput_gain
        );
    }
    println!("# expected: below saturation both serve everything (gain ~1x);");
    println!("# past it, batching over >1 leaf holds goodput the sequential loop sheds");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_goodput_beats_sequential_dispatch_on_a_multi_leaf_tree() {
        // The acceptance shape: at the top swept rate on the four-leaf
        // tree, continuous batching must out-serve one-at-a-time
        // dispatch outright.
        let rate = rates(Scale::Quick)[2];
        let row = measure(rate, "2x2", Scale::Quick);
        assert_eq!(row.endpoints, 4);
        assert!(row.peak_batch > 1, "batching never engaged: {row:?}");
        assert!(
            row.goodput_gain > 1.0,
            "batched goodput should beat sequential at saturation, got {:.2}x",
            row.goodput_gain
        );
    }

    #[test]
    fn below_saturation_everything_is_served_either_way() {
        let rate = rates(Scale::Quick)[0];
        let row = measure(rate, "2", Scale::Quick);
        assert_eq!(row.rejected, 0, "no load shedding below saturation");
        assert_eq!(row.admitted, row.offered);
        assert!(
            (0.8..=1.25).contains(&row.goodput_gain),
            "gain should be ~1x below saturation, got {:.2}x",
            row.goodput_gain
        );
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let a = run_jobs(Scale::Quick, Jobs::serial());
        let b = run_jobs(Scale::Quick, Jobs::new(4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.p99_ns.to_bits(), y.p99_ns.to_bits());
            assert_eq!(x.goodput_rps.to_bits(), y.goodput_rps.to_bits());
            assert_eq!(
                x.sequential_goodput_rps.to_bits(),
                y.sequential_goodput_rps.to_bits()
            );
        }
    }
}
