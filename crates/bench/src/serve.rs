//! Extension experiment — online serving: open-loop traffic through the
//! continuous-batching engine, across arrival rates and tree shapes.
//!
//! Every other experiment in this crate is closed-loop: a fixed
//! workload, a makespan. This one is open-loop — requests arrive on
//! their own clock (seeded Poisson, two tenants) and the measured
//! quantities are the serving ones: p50/p99/p99.9 latency, goodput
//! under an SLO, rejections past the admission bound. Each point
//! serves the same trace twice on the same tree:
//!
//! * **batched** — continuous batching up to the policy's cap
//!   (`2 × endpoints` for `batch_cap = "auto"`), folded in and out at
//!   round barriers (round-robin across tenants);
//! * **sequential** — the same engine clamped to one request in flight,
//!   which is exactly what the pre-serving sequential drivers would do:
//!   finish a request end to end before looking at the queue again.
//!
//! The testbed, request shape, traffic, policy and sweep axes lower
//! from the committed `specs/two_tenant_mix.spec`. The ratio of
//! saturation goodput between the two regimes is the win the serving
//! layer extracts from hardware the topology already paid for; the
//! `serve_perf` bin turns it into a CI bar.

use crate::cli::Cli;
use crate::topo::parse_shape;
use crate::{specs, Scale};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_serve::{serve, RequestShape, ServeConfig, ServeReport};
use accesys_spec::ServingScenario;

/// The committed scenario this sweep lowers from.
pub fn scenario() -> &'static ServingScenario {
    specs::serving()
}

/// Offered arrival rates swept, requests per second (paper scale keeps
/// the same rates over a longer horizon so the tails are better
/// resolved).
pub fn rates(_scale: Scale) -> Vec<f64> {
    scenario().rates.clone()
}

/// Trace horizon in virtual nanoseconds.
pub fn horizon_ns(scale: Scale) -> u64 {
    scenario().traffic.horizon_ns.pick(scale)
}

/// The request every client sends: a compute-dominated two-layer
/// encoder, small enough that its non-GEMM streams are negligible next
/// to the per-job compute override — serving stresses the *scheduler*,
/// not the CPU's streaming bandwidth.
pub fn request_shape(_scale: Scale) -> RequestShape {
    scenario().request
}

/// Latency SLO: completions slower than this do not count as goodput.
pub fn slo_ns(_scale: Scale) -> f64 {
    scenario().policy.slo_ns
}

/// One serving measurement: one arrival rate on one tree shape.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServeRow {
    /// Offered arrival rate, requests per second.
    pub rate_rps: f64,
    /// Tree shape (per-level fan-outs, `x`-separated).
    pub shape: String,
    /// Leaf endpoints (= devices the batch can spread over).
    pub endpoints: u32,
    /// Arrivals offered over the horizon.
    pub offered: u64,
    /// Requests admitted (batched run).
    pub admitted: u64,
    /// Requests rejected at the admission bound (batched run).
    pub rejected: u64,
    /// Batching rounds executed (batched run).
    pub rounds: u64,
    /// Peak requests in flight (batched run).
    pub peak_batch: usize,
    /// Median latency, ns (batched run).
    pub p50_ns: f64,
    /// 99th-percentile latency, ns (batched run).
    pub p99_ns: f64,
    /// 99.9th-percentile latency, ns (batched run).
    pub p999_ns: f64,
    /// Within-SLO completions per second, batched.
    pub goodput_rps: f64,
    /// Within-SLO completions per second, one-request-at-a-time.
    pub sequential_goodput_rps: f64,
    /// `goodput_rps / sequential_goodput_rps` — the serving-layer win
    /// (1.0 when both serve everything, i.e. below saturation).
    pub goodput_gain: f64,
}

/// Serve the point's trace once at `batch_cap` requests in flight.
fn serve_once(
    sc: &ServingScenario,
    rate: f64,
    levels: &[u32],
    batch_cap: usize,
    scale: Scale,
) -> ServeReport {
    let arrivals = sc.traffic.arrivals(rate, scale);
    let mut sim = sc
        .system
        .simulation(levels)
        .expect("validated spec testbed builds");
    serve(
        &mut sim,
        &sc.request,
        &arrivals,
        &sc.policy.policy(),
        &ServeConfig::new(batch_cap, sc.policy.queue_cap).with_slo_ns(sc.policy.slo_ns),
    )
    .expect("serving completes")
}

/// Measure one (rate, shape) point: batched vs sequential dispatch.
pub fn measure(rate: f64, shape: &str, scale: Scale) -> ServeRow {
    measure_for(scenario(), rate, shape, scale)
}

/// Measure one (rate, shape) point of an arbitrary serving scenario.
pub fn measure_for(sc: &ServingScenario, rate: f64, shape: &str, scale: Scale) -> ServeRow {
    let levels = parse_shape(shape);
    let endpoints: u32 = levels.iter().product();
    let batched = serve_once(sc, rate, &levels, sc.policy.batch_cap.cap(endpoints), scale);
    let sequential = serve_once(sc, rate, &levels, 1, scale);
    let gain = if sequential.goodput_rps > 0.0 {
        batched.goodput_rps / sequential.goodput_rps
    } else if batched.goodput_rps > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    ServeRow {
        rate_rps: rate,
        shape: shape.to_string(),
        endpoints,
        offered: batched.offered,
        admitted: batched.admitted,
        rejected: batched.rejected,
        rounds: batched.rounds,
        peak_batch: batched.peak_batch,
        p50_ns: batched.latency.p50_ns,
        p99_ns: batched.latency.p99_ns,
        p999_ns: batched.latency.p999_ns,
        goodput_rps: batched.goodput_rps,
        sequential_goodput_rps: sequential.goodput_rps,
        goodput_gain: gain,
    }
}

/// The sweep as a declarative experiment: rate × shape, row-major.
pub fn experiment(scale: Scale) -> impl Experiment<Point = (f64, String), Out = ServeRow> {
    experiment_for(scenario(), scale)
}

/// `sc` as a declarative experiment (the `accesys run` entry point).
pub fn experiment_for(
    sc: &ServingScenario,
    scale: Scale,
) -> impl Experiment<Point = (f64, String), Out = ServeRow> {
    let sc = sc.clone();
    Grid::cross2(sc.name.clone(), sc.rates.clone(), sc.shapes.clone())
        .sweep(move |(rate, shape)| measure_for(&sc, *rate, shape, scale))
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<ServeRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<ServeRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    run_cli_for(scenario(), cli)
}

/// [`run_cli`] against an arbitrary loaded scenario.
pub fn run_cli_for(sc: &ServingScenario, cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment_for(sc, cli.scale), |r| {
        print_for(
            sc,
            &r.points.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the serving table.
pub fn run_and_print(scale: Scale) -> Vec<ServeRow> {
    let rows = run(scale);
    print(&rows, scale);
    rows
}

/// Print the serving table.
pub fn print(rows: &[ServeRow], scale: Scale) {
    print_for(scenario(), rows, scale)
}

/// Print the serving table of an arbitrary serving scenario.
pub fn print_for(sc: &ServingScenario, rows: &[ServeRow], _scale: Scale) {
    let s = sc.request;
    println!(
        "# Online serving (extension): {}-slice encoder requests \
         ({}x{}, {} heads, mlp {}), {} traffic, \
         SLO {:.0} ms",
        s.slices,
        s.seq,
        s.hidden,
        s.heads,
        s.mlp,
        traffic_label(sc),
        sc.policy.slo_ns / 1e6
    );
    println!(
        "{:>8} {:>6} {:>8} {:>9} {:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>6}",
        "rate",
        "shape",
        "offered",
        "rejected",
        "batch",
        "p50 (µs)",
        "p99 (µs)",
        "p99.9(µs)",
        "goodput",
        "seq good",
        "gain"
    );
    for r in rows {
        println!(
            "{:>8.0} {:>6} {:>8} {:>9} {:>6} {:>10.0} {:>10.0} {:>10.0} {:>10.1} {:>9.1} {:>5.2}x",
            r.rate_rps,
            r.shape,
            r.offered,
            r.rejected,
            r.peak_batch,
            r.p50_ns / 1e3,
            r.p99_ns / 1e3,
            r.p999_ns / 1e3,
            r.goodput_rps,
            r.sequential_goodput_rps,
            r.goodput_gain
        );
    }
    println!("# expected: below saturation both serve everything (gain ~1x);");
    println!("# past it, batching over >1 leaf holds goodput the sequential loop sheds");
}

/// A short human label for the scenario's arrival process.
fn traffic_label(sc: &ServingScenario) -> String {
    match &sc.traffic.process {
        accesys_spec::TrafficProcess::Poisson { tenants, .. } => {
            format!("Poisson {tenants}-tenant")
        }
        accesys_spec::TrafficProcess::Bursty { tenants, .. } => format!("bursty {tenants}-tenant"),
        accesys_spec::TrafficProcess::Trace(arrivals) => {
            format!("{}-arrival trace", arrivals.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_goodput_beats_sequential_dispatch_on_a_multi_leaf_tree() {
        // The acceptance shape: at the top swept rate on the four-leaf
        // tree, continuous batching must out-serve one-at-a-time
        // dispatch outright.
        let rate = rates(Scale::Quick)[2];
        let row = measure(rate, "2x2", Scale::Quick);
        assert_eq!(row.endpoints, 4);
        assert!(row.peak_batch > 1, "batching never engaged: {row:?}");
        assert!(
            row.goodput_gain > 1.0,
            "batched goodput should beat sequential at saturation, got {:.2}x",
            row.goodput_gain
        );
    }

    #[test]
    fn below_saturation_everything_is_served_either_way() {
        let rate = rates(Scale::Quick)[0];
        let row = measure(rate, "2", Scale::Quick);
        assert_eq!(row.rejected, 0, "no load shedding below saturation");
        assert_eq!(row.admitted, row.offered);
        assert!(
            (0.8..=1.25).contains(&row.goodput_gain),
            "gain should be ~1x below saturation, got {:.2}x",
            row.goodput_gain
        );
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let a = run_jobs(Scale::Quick, Jobs::serial());
        let b = run_jobs(Scale::Quick, Jobs::new(4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.p99_ns.to_bits(), y.p99_ns.to_bits());
            assert_eq!(x.goodput_rps.to_bits(), y.goodput_rps.to_bits());
            assert_eq!(
                x.sequential_goodput_rps.to_bits(),
                y.sequential_goodput_rps.to_bits()
            );
        }
    }
}
