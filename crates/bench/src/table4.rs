//! Table IV — address-translation behaviour vs matrix size: memory
//! footprint, translation counts and mean latency, page-table walks,
//! µTLB lookups/misses, and the translation-overhead percentage. The
//! paper reports a U-shaped overhead: high for tiny matrices (fixed costs
//! dominate), minimal near 1024, rising again at 2048 (µTLB thrash).

use crate::cli::Cli;
use crate::Scale;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_smmu::SmmuStats;
use accesys_workload::GemmSpec;

/// One row of the table.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TranslationRow {
    /// Matrix size (m = n = k).
    pub matrix: u32,
    /// Footprint in 4 KiB pages (3·n²·4 bytes).
    pub pages: u64,
    /// SMMU statistics for the run.
    pub smmu: SmmuStats,
    /// End-to-end run time in ns.
    pub total_ns: f64,
}

impl TranslationRow {
    /// Translation overhead (Table IV "Trans Overhead").
    pub fn overhead(&self) -> f64 {
        if self.total_ns == 0.0 {
            0.0
        } else {
            self.smmu.trans_time_sum_ns / self.total_ns
        }
    }
}

/// Matrix sizes at each scale (paper: 64 – 2048).
pub fn matrix_sizes(scale: Scale) -> Vec<u32> {
    scale.pick(vec![64, 128, 256, 512], vec![64, 128, 256, 512, 1024, 2048])
}

/// Measure one row on the Table II baseline (PCIe 2 GB/s, DDR3, SMMU on).
pub fn measure(matrix: u32) -> TranslationRow {
    let cfg = SystemConfig::pcie_host(2.0, MemTech::Ddr3);
    let mut sim = Simulation::new(cfg).expect("valid config");
    let spec = GemmSpec::square(matrix);
    let report = sim.run_gemm(spec).expect("gemm completes");
    TranslationRow {
        matrix,
        pages: spec.footprint_pages(4096),
        smmu: report.smmu,
        total_ns: report.total_time_ns(),
    }
}

/// The table as a declarative experiment over matrix sizes.
pub fn experiment(scale: Scale) -> impl Experiment<Point = u32, Out = TranslationRow> {
    Grid::new("table4", matrix_sizes(scale)).sweep(|&matrix| measure(matrix))
}

/// Run all rows on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<TranslationRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run all rows (worker count from the environment).
pub fn run(scale: Scale) -> Vec<TranslationRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    let result = experiment(cli.scale).run(cli.jobs);
    crate::cli::note_wall(&result);
    if !cli.json {
        print(
            &result
                .points
                .iter()
                .map(|(_, r)| r.clone())
                .collect::<Vec<_>>(),
        );
    }
    serde::Serialize::to_value(&result)
}

/// Run and print the table (times in CPU cycles at 1 GHz = ns).
pub fn run_and_print(scale: Scale) -> Vec<TranslationRow> {
    let rows = run(scale);
    print(&rows);
    rows
}

/// Print the table.
pub fn print(rows: &[TranslationRow]) {
    println!("# Table IV: address translation vs matrix size");
    print!("{:<22}", "Metric");
    for r in rows {
        print!("{:>14}", r.matrix);
    }
    println!();
    let line = |name: &str, f: &dyn Fn(&TranslationRow) -> String| {
        print!("{name:<22}");
        for r in rows {
            print!("{:>14}", f(r));
        }
        println!();
    };
    line("Footprint (pages)", &|r| r.pages.to_string());
    line("Translation times", &|r| r.smmu.translations.to_string());
    line("Trans mean (cyc)", &|r| {
        format!("{:.2}", r.smmu.trans_mean_ns())
    });
    line("PTW times", &|r| r.smmu.ptw_count.to_string());
    line("PTW mean (cyc)", &|r| {
        format!("{:.2}", r.smmu.ptw_mean_ns())
    });
    line("uTLB lookups", &|r| r.smmu.utlb_lookups.to_string());
    line("uTLB misses", &|r| r.smmu.utlb_misses.to_string());
    line("Trans overhead", &|r| {
        format!("{:.2}%", r.overhead() * 100.0)
    });
    println!("# paper overhead: 6.02% @64 ... 1.00% @1024 ... 6.49% @2048 (U-shape)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprints_match_table_iv() {
        let r64 = measure(64);
        assert_eq!(r64.pages, 12);
        assert!(r64.smmu.translations > 0);
        assert!(r64.smmu.ptw_count > 0);
    }

    #[test]
    fn bigger_matrices_do_more_translations() {
        let small = measure(64);
        let large = measure(256);
        assert!(large.smmu.translations > small.smmu.translations);
        assert!(large.smmu.utlb_lookups > small.smmu.utlb_lookups);
        // Per-translation overhead share shrinks from 64 to 256 (left
        // side of the paper's U-shape).
        assert!(large.overhead() < small.overhead());
    }
}
