//! Fig. 5 — device-side vs host-side memory across memory technologies.
//! The paper normalizes speedup to DDR4 device-side and reports
//! device-side winning across the board, with a 64 GB/s PCIe host
//! configuration reaching ≈78 % of device-side performance.

use crate::cli::Cli;
use crate::Scale;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// Memory technologies compared (as in the paper's Fig. 5).
pub const TECHS: [MemTech; 4] = [
    MemTech::Ddr4,
    MemTech::Hbm2,
    MemTech::Gddr5,
    MemTech::Lpddr5,
];

/// One measurement triple for a memory technology.
#[derive(Clone, Debug, serde::Serialize)]
pub struct MemRow {
    /// Memory technology.
    pub tech: MemTech,
    /// Execution time with device-side memory, ns.
    pub device_ns: f64,
    /// Execution time with host memory over a 2 GB/s PCIe link, ns.
    pub host_2gb_ns: f64,
    /// Execution time with host memory over a 64 GB/s PCIe link, ns.
    pub host_64gb_ns: f64,
}

/// Matrix size at each scale.
pub fn matrix_size(scale: Scale) -> u32 {
    scale.pick(256, 1024)
}

fn run_one(cfg: SystemConfig, matrix: u32) -> f64 {
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns()
}

/// The figure as a declarative experiment over [`TECHS`]; each point
/// measures the device-side and both host-side placements.
pub fn experiment(scale: Scale) -> impl Experiment<Point = MemTech, Out = MemRow> {
    let matrix = matrix_size(scale);
    Grid::new("fig5", TECHS).sweep(move |&tech| MemRow {
        tech,
        device_ns: run_one(SystemConfig::devmem(tech), matrix),
        host_2gb_ns: run_one(SystemConfig::pcie_host(2.0, tech), matrix),
        host_64gb_ns: run_one(SystemConfig::pcie_host(64.0, tech), matrix),
    })
}

/// Run the comparison on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<MemRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the comparison (worker count from the environment).
pub fn run(scale: Scale) -> Vec<MemRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(cli.scale), |r| {
        print(
            &r.points.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print normalized speedups (reference: DDR4 device-side).
pub fn run_and_print(scale: Scale) -> Vec<MemRow> {
    let rows = run(scale);
    print(&rows, scale);
    rows
}

/// Print normalized speedups (reference: DDR4 device-side).
pub fn print(rows: &[MemRow], scale: Scale) {
    let reference = rows
        .iter()
        .find(|r| r.tech == MemTech::Ddr4)
        .expect("DDR4 measured")
        .device_ns;
    println!(
        "# Fig 5: normalized speedup wrt DDR4 device-side, matrix {}",
        matrix_size(scale)
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>16}",
        "memory", "device", "host@2GB/s", "host@64GB/s", "host64/device"
    );
    for r in rows {
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3} {:>15.1}%",
            r.tech.to_string(),
            reference / r.device_ns,
            reference / r.host_2gb_ns,
            reference / r.host_64gb_ns,
            100.0 * r.device_ns / r.host_64gb_ns
        );
    }
    println!("# paper: host@64GB/s reaches ~78% of device-side");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_side_beats_host_side_for_gemm() {
        let matrix = 128;
        let dev = run_one(SystemConfig::devmem(MemTech::Hbm2), matrix);
        let host2 = run_one(SystemConfig::pcie_host(2.0, MemTech::Hbm2), matrix);
        let host64 = run_one(SystemConfig::pcie_host(64.0, MemTech::Hbm2), matrix);
        assert!(dev < host2, "device {dev} vs host@2 {host2}");
        assert!(dev <= host64 * 1.05, "device {dev} vs host@64 {host64}");
        // And faster PCIe closes most of the gap.
        assert!(host64 < host2 / 2.0);
    }
}
