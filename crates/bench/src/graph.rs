//! Extension experiment — workload-graph scaling: pipelined multi-device
//! inference vs the sequential chain, across switch-tree shapes.
//!
//! The workload graph layer makes the *schedule* a swept parameter the
//! same way the topology layer made the *system shape* one: the same
//! encoder workload is lowered twice — as the sequential chain the
//! paper's Section V-D composition implies (every GEMM through device
//! 0, one at a time) and as a pipeline (encoder layers split into
//! per-leaf stages, a batch of images in flight, activations handed
//! hop to hop) — and both run on the same switch tree. The ratio is the
//! scheduling win the dispatcher extracts from the hardware the
//! topology already paid for.
//!
//! The testbed, encoder geometry and swept shapes lower from the
//! committed `specs/pipelined_encoder.spec`. Each leaf carries local
//! device memory for its working set, so job DMA does not serialize on
//! the shared uplink and the pipeline's speedup reflects scheduling,
//! not link contention.

use crate::cli::Cli;
use crate::topo::parse_shape;
use crate::{specs, Scale};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_spec::PipelineScenario;
use accesys_workload::encoder_ops;
use accesys_workload::graph::{op_chain, pipelined_encoder, PipelineSpec};

/// The committed scenario this sweep lowers from.
pub fn scenario() -> &'static PipelineScenario {
    specs::pipeline()
}

/// Encoder geometry at each scale: `(seq, hidden, heads, mlp)` —
/// scaled-down synthetic dims for quick runs, ViT-Base for paper scale.
pub fn encoder_dims(scale: Scale) -> (u32, u32, u32, u32) {
    let d = scenario().dims.pick(scale);
    (d.seq, d.hidden, d.heads, d.mlp)
}

/// Pipeline workload at each scale: `(layers, images)`.
pub fn workload_size(scale: Scale) -> (u32, u32) {
    let sc = scenario();
    (sc.layers.pick(scale), sc.images.pick(scale))
}

/// One schedule-shape measurement on one tree shape.
#[derive(Clone, Debug, serde::Serialize)]
pub struct GraphRow {
    /// Tree shape (per-level fan-outs, `x`-separated).
    pub shape: String,
    /// Switch levels between the root complex and the endpoints.
    pub depth: u32,
    /// Leaf endpoints (= pipeline stages available).
    pub endpoints: u32,
    /// Tasks in the pipelined graph.
    pub tasks: usize,
    /// Peak accelerator jobs simultaneously in flight (dispatcher
    /// overlap actually achieved).
    pub max_in_flight: usize,
    /// Inter-stage activation handoffs executed.
    pub transfers: u64,
    /// Sequential chain (all GEMMs through device 0), ns.
    pub sequential_ns: f64,
    /// Pipelined schedule over every leaf, ns.
    pub pipelined_ns: f64,
    /// `sequential_ns / pipelined_ns` — the scheduling win.
    pub speedup: f64,
}

/// The pipeline workload of `sc` on a tree with `endpoints` leaves.
fn pipeline_graph(
    sc: &PipelineScenario,
    endpoints: u32,
    scale: Scale,
) -> accesys_workload::graph::TaskGraph {
    let d = sc.dims.pick(scale);
    pipelined_encoder(
        d.seq,
        d.hidden,
        d.heads,
        d.mlp,
        &PipelineSpec {
            layers: sc.layers.pick(scale),
            images: sc.images.pick(scale),
            devices: sc.device_count(endpoints),
        },
    )
}

/// Measure one tree shape under both schedules (committed scenario).
pub fn measure(shape: &str, scale: Scale) -> GraphRow {
    measure_for(scenario(), shape, scale)
}

/// Measure one tree shape under both of `sc`'s schedules.
pub fn measure_for(sc: &PipelineScenario, shape: &str, scale: Scale) -> GraphRow {
    let levels = parse_shape(shape);
    let endpoints: u32 = levels.iter().product();
    let d = sc.dims.pick(scale);
    let (layers, images) = (sc.layers.pick(scale), sc.images.pick(scale));

    // Sequential chain: the same total work as one flat op list.
    let chain_ops: Vec<_> = (0..images * layers)
        .flat_map(|_| encoder_ops(d.seq, d.hidden, d.heads, d.mlp))
        .collect();
    let sequential = sc
        .system
        .simulation(&levels)
        .expect("validated spec testbed builds")
        .run_graph(&op_chain(&chain_ops))
        .expect("chain completes");

    // Pipelined: layers split into per-leaf stages, images in flight.
    let pipeline = pipeline_graph(sc, endpoints, scale);
    let (pipelined, plan) = sc
        .system
        .simulation(&levels)
        .expect("validated spec testbed builds")
        .run_graph_planned(&pipeline)
        .expect("pipeline completes");

    GraphRow {
        shape: shape.to_string(),
        depth: levels.len() as u32,
        endpoints,
        tasks: pipeline.len(),
        max_in_flight: plan.max_in_flight,
        transfers: plan.transfers,
        sequential_ns: sequential.total_time_ns(),
        pipelined_ns: pipelined.total_time_ns(),
        speedup: sequential.total_time_ns() / pipelined.total_time_ns(),
    }
}

/// Run just the pipelined schedule on `shape` and hand back the full
/// report + plan (the `graph_perf` bin reads kernel event counts off
/// it).
pub fn instrumented_pipeline_run(
    shape: &str,
    scale: Scale,
) -> (accesys::VitReport, accesys::DispatchPlan) {
    let sc = scenario();
    let levels = parse_shape(shape);
    let endpoints: u32 = levels.iter().product();
    let pipeline = pipeline_graph(sc, endpoints, scale);
    sc.system
        .simulation(&levels)
        .expect("validated spec testbed builds")
        .run_graph_planned(&pipeline)
        .expect("pipeline completes")
}

/// The sweep as a declarative experiment over the scenario's shapes.
pub fn experiment(scale: Scale) -> impl Experiment<Point = String, Out = GraphRow> {
    experiment_for(scenario(), scale)
}

/// `sc` as a declarative experiment (the `accesys run` entry point).
pub fn experiment_for(
    sc: &PipelineScenario,
    scale: Scale,
) -> impl Experiment<Point = String, Out = GraphRow> {
    let sc = sc.clone();
    Grid::new(sc.name.clone(), sc.shapes.clone()).sweep(move |s| measure_for(&sc, s, scale))
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<GraphRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<GraphRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    run_cli_for(scenario(), cli)
}

/// [`run_cli`] against an arbitrary loaded scenario.
pub fn run_cli_for(sc: &PipelineScenario, cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment_for(sc, cli.scale), |r| {
        print_for(
            sc,
            &r.points.iter().map(|(_, p)| p.clone()).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the scaling table.
pub fn run_and_print(scale: Scale) -> Vec<GraphRow> {
    let rows = run(scale);
    print(&rows, scale);
    rows
}

/// Print the scaling table.
pub fn print(rows: &[GraphRow], scale: Scale) {
    print_for(scenario(), rows, scale)
}

/// Print the scaling table of an arbitrary pipeline scenario.
pub fn print_for(sc: &PipelineScenario, rows: &[GraphRow], scale: Scale) {
    let (layers, images) = (sc.layers.pick(scale), sc.images.pick(scale));
    let d = sc.dims.pick(scale);
    println!(
        "# Workload-graph scaling (extension): {layers}-layer encoder \
         ({}x{}, {} heads, mlp {}), {images} images",
        d.seq, d.hidden, d.heads, d.mlp
    );
    println!(
        "{:>8} {:>6} {:>10} {:>7} {:>10} {:>6} {:>16} {:>15} {:>9}",
        "shape",
        "depth",
        "endpoints",
        "tasks",
        "in-flight",
        "xfers",
        "sequential (µs)",
        "pipelined (µs)",
        "speedup"
    );
    for r in rows {
        println!(
            "{:>8} {:>6} {:>10} {:>7} {:>10} {:>6} {:>16.1} {:>15.1} {:>8.2}x",
            r.shape,
            r.depth,
            r.endpoints,
            r.tasks,
            r.max_in_flight,
            r.transfers,
            r.sequential_ns / 1000.0,
            r.pipelined_ns / 1000.0,
            r.speedup
        );
    }
    println!("# expected: one leaf pins speedup at ~1x (same schedule);");
    println!("# more leaves buy pipeline stages until images-in-flight run out");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_two_tree_pipelines_beat_the_sequential_chain() {
        // The acceptance shape: on a depth-2 switch tree the pipelined
        // schedule must beat the sequential chain outright.
        let row = measure("2x4", Scale::Quick);
        assert_eq!(row.depth, 2);
        assert_eq!(row.endpoints, 8);
        assert!(row.max_in_flight >= 2, "no overlap: {row:?}");
        assert!(row.transfers > 0);
        assert!(
            row.speedup > 1.2,
            "pipelined ViT should beat the chain on a depth-2 tree, got {:.2}x",
            row.speedup
        );
    }

    #[test]
    fn single_leaf_degenerates_to_the_chain() {
        // One device = one stage: the pipeline cannot beat the chain by
        // more than scheduling noise, and must not be slower than 0.9x.
        let row = measure("1", Scale::Quick);
        assert_eq!(row.endpoints, 1);
        assert!(
            (0.9..=1.1).contains(&row.speedup),
            "one-leaf speedup should be ~1x, got {:.2}x",
            row.speedup
        );
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let a = run_jobs(Scale::Quick, Jobs::serial());
        let b = run_jobs(Scale::Quick, Jobs::new(4));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.shape, y.shape);
            assert_eq!(x.sequential_ns.to_bits(), y.sequential_ns.to_bits());
            assert_eq!(x.pipelined_ns.to_bits(), y.pipelined_ns.to_bits());
        }
    }
}
