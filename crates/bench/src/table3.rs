//! Table III — memory technology configurations.

use crate::cli::Cli;
use accesys_exp::{Experiment, Grid};
use accesys_mem::MemTech;

/// One row of Table III, rendered from a technology preset.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TechRow {
    /// Memory technology.
    pub tech: MemTech,
    /// Channel count.
    pub channels: u32,
    /// Per-channel data width in bits.
    pub data_width_bits: u32,
    /// Aggregate bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Data rate in MT/s.
    pub data_rate_mts: u32,
}

/// The table as a declarative experiment over [`TECHS`].
pub fn experiment() -> impl Experiment<Point = MemTech, Out = TechRow> {
    Grid::new("table3", TECHS).sweep(|&tech| TechRow {
        tech,
        channels: tech.channels(),
        data_width_bits: tech.data_width_bits(),
        bandwidth_gbps: tech.bandwidth_gbps(),
        data_rate_mts: tech.data_rate_mts(),
    })
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(), |r| {
        print(&r.points.iter().map(|(_, t)| t.clone()).collect::<Vec<_>>())
    })
}

/// The technologies listed by the paper's Table III.
pub const TECHS: [MemTech; 5] = [
    MemTech::Ddr3,
    MemTech::Ddr4,
    MemTech::Ddr5,
    MemTech::Hbm2,
    MemTech::Gddr6,
];

/// Print Table III from the presets.
pub fn run_and_print() {
    print(
        &TECHS
            .iter()
            .map(|&tech| TechRow {
                tech,
                channels: tech.channels(),
                data_width_bits: tech.data_width_bits(),
                bandwidth_gbps: tech.bandwidth_gbps(),
                data_rate_mts: tech.data_rate_mts(),
            })
            .collect::<Vec<_>>(),
    );
}

/// Print Table III rows.
pub fn print(rows: &[TechRow]) {
    println!("# Table III: memory configuration");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>11}",
        "tech", "channels", "width(bit)", "BW(GB/s)", "rate(MT/s)"
    );
    for r in rows {
        println!(
            "{:>8} {:>9} {:>12} {:>12.1} {:>11}",
            r.tech.to_string(),
            r.channels,
            r.data_width_bits,
            r.bandwidth_gbps,
            r.data_rate_mts
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iii_exactly() {
        let expect = [
            (MemTech::Ddr3, 1, 64, 12.8, 1600),
            (MemTech::Ddr4, 1, 64, 19.2, 2400),
            (MemTech::Ddr5, 2, 32, 25.6, 3200),
            (MemTech::Hbm2, 2, 128, 64.0, 2000),
            (MemTech::Gddr6, 2, 64, 32.0, 2000),
        ];
        for (t, ch, width, bw, rate) in expect {
            assert_eq!(t.channels(), ch, "{t} channels");
            assert_eq!(t.data_width_bits(), width, "{t} width");
            assert!((t.bandwidth_gbps() - bw).abs() < 1e-9, "{t} bandwidth");
            assert_eq!(t.data_rate_mts(), rate, "{t} rate");
        }
    }
}
