//! Table III — memory technology configurations.

use accesys_mem::MemTech;

/// The technologies listed by the paper's Table III.
pub const TECHS: [MemTech; 5] = [
    MemTech::Ddr3,
    MemTech::Ddr4,
    MemTech::Ddr5,
    MemTech::Hbm2,
    MemTech::Gddr6,
];

/// Print Table III from the presets.
pub fn run_and_print() {
    println!("# Table III: memory configuration");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>11}",
        "tech", "channels", "width(bit)", "BW(GB/s)", "rate(MT/s)"
    );
    for t in TECHS {
        println!(
            "{:>8} {:>9} {:>12} {:>12.1} {:>11}",
            t.to_string(),
            t.channels(),
            t.data_width_bits(),
            t.bandwidth_gbps(),
            t.data_rate_mts()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_iii_exactly() {
        let expect = [
            (MemTech::Ddr3, 1, 64, 12.8, 1600),
            (MemTech::Ddr4, 1, 64, 19.2, 2400),
            (MemTech::Ddr5, 2, 32, 25.6, 3200),
            (MemTech::Hbm2, 2, 128, 64.0, 2000),
            (MemTech::Gddr6, 2, 64, 32.0, 2000),
        ];
        for (t, ch, width, bw, rate) in expect {
            assert_eq!(t.channels(), ch, "{t} channels");
            assert_eq!(t.data_width_bits(), width, "{t} width");
            assert!((t.bandwidth_gbps() - bw).abs() < 1e-9, "{t} bandwidth");
            assert_eq!(t.data_rate_mts(), rate, "{t} rate");
        }
    }
}
