//! Table II — the baseline system configuration.

use crate::cli::Cli;
use accesys::{MemBackendConfig, SystemConfig};
use accesys_exp::{Experiment, Grid};

/// The table as a (single-point) declarative experiment: the point is
/// the baseline config, the measurement renders its rows.
pub fn experiment() -> impl Experiment<Point = SystemConfig, Out = Vec<(String, String)>> {
    Grid::new("table2", [SystemConfig::paper_baseline()]).sweep(rows_of)
}

/// Render the baseline configuration as Table II rows.
pub fn rows() -> Vec<(String, String)> {
    rows_of(&SystemConfig::paper_baseline())
}

/// Render any configuration as Table II rows.
pub fn rows_of(cfg: &SystemConfig) -> Vec<(String, String)> {
    let mem = match cfg.host_mem {
        MemBackendConfig::Dram(t) => format!(
            "{t} {} MT/s, {} GB/s",
            t.data_rate_mts(),
            t.bandwidth_gbps()
        ),
        MemBackendConfig::Simple(s) => {
            format!("simple {} GB/s / {} ns", s.bandwidth_gbps, s.latency_ns)
        }
    };
    vec![
        ("CPU".into(), format!("ARM-class, {} GHz", cfg.cpu.freq_ghz)),
        (
            "Data Cache".into(),
            format!("{} kB", cfg.l1d.size_bytes >> 10),
        ),
        (
            "Last Level Cache".into(),
            format!("{} MB", cfg.llc.size_bytes >> 20),
        ),
        (
            "IOCache".into(),
            format!("{} kB", cfg.iocache.size_bytes >> 10),
        ),
        ("Memory".into(), mem),
        (
            "PCIe Link".into(),
            format!(
                "{} lanes x {} Gb/s ({:.1} GB/s effective)",
                cfg.pcie.link.lanes,
                cfg.pcie.link.lane_gbps,
                cfg.pcie.bandwidth_gbps()
            ),
        ),
        (
            "PCIe RootComplex".into(),
            format!("{} ns latency", cfg.pcie.rc.latency_ns),
        ),
        (
            "PCIe Switch".into(),
            format!("{} ns latency", cfg.pcie.switch.latency_ns),
        ),
    ]
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(), |r| {
        println!("# Table II: system configuration");
        for (_, rows) in &r.points {
            for (k, v) in rows {
                println!("{k:<22} {v}");
            }
        }
    })
}

/// Print Table II.
pub fn run_and_print() {
    println!("# Table II: system configuration");
    for (k, v) in rows() {
        println!("{k:<22} {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_match_the_paper() {
        let rows = rows();
        let get = |k: &str| {
            rows.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert!(get("CPU").contains("1 GHz"));
        assert!(get("Data Cache").contains("64 kB"));
        assert!(get("Last Level Cache").contains("2 MB"));
        assert!(get("IOCache").contains("32 kB"));
        assert!(get("PCIe RootComplex").contains("150 ns"));
        assert!(get("PCIe Switch").contains("50 ns"));
    }
}
