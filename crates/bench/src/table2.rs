//! Table II — the baseline system configuration.

use accesys::{MemBackendConfig, SystemConfig};

/// Render the baseline configuration as Table II rows.
pub fn rows() -> Vec<(String, String)> {
    let cfg = SystemConfig::paper_baseline();
    let mem = match cfg.host_mem {
        MemBackendConfig::Dram(t) => format!(
            "{t} {} MT/s, {} GB/s",
            t.data_rate_mts(),
            t.bandwidth_gbps()
        ),
        MemBackendConfig::Simple(s) => {
            format!("simple {} GB/s / {} ns", s.bandwidth_gbps, s.latency_ns)
        }
    };
    vec![
        ("CPU".into(), format!("ARM-class, {} GHz", cfg.cpu.freq_ghz)),
        (
            "Data Cache".into(),
            format!("{} kB", cfg.l1d.size_bytes >> 10),
        ),
        (
            "Last Level Cache".into(),
            format!("{} MB", cfg.llc.size_bytes >> 20),
        ),
        (
            "IOCache".into(),
            format!("{} kB", cfg.iocache.size_bytes >> 10),
        ),
        ("Memory".into(), mem),
        (
            "PCIe Link".into(),
            format!(
                "{} lanes x {} Gb/s ({:.1} GB/s effective)",
                cfg.pcie.link.lanes,
                cfg.pcie.link.lane_gbps,
                cfg.pcie.bandwidth_gbps()
            ),
        ),
        (
            "PCIe RootComplex".into(),
            format!("{} ns latency", cfg.pcie.rc.latency_ns),
        ),
        (
            "PCIe Switch".into(),
            format!("{} ns latency", cfg.pcie.switch.latency_ns),
        ),
    ]
}

/// Print Table II.
pub fn run_and_print() {
    println!("# Table II: system configuration");
    for (k, v) in rows() {
        println!("{k:<22} {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_match_the_paper() {
        let rows = rows();
        let get = |k: &str| {
            rows.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert!(get("CPU").contains("1 GHz"));
        assert!(get("Data Cache").contains("64 kB"));
        assert!(get("Last Level Cache").contains("2 MB"));
        assert!(get("IOCache").contains("32 kB"));
        assert!(get("PCIe RootComplex").contains("150 ns"));
        assert!(get("PCIe Switch").contains("50 ns"));
    }
}
