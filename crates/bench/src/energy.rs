//! Extension experiment — DRAM energy and controller-policy ablation.
//!
//! The paper interfaces with DRAMsim3-class simulators for "accurate
//! DRAM timing **and power** statistics"; its evaluation reports timing
//! only. This experiment surfaces the power half: per-technology energy
//! breakdown for the same GEMM, plus an ablation of the two controller
//! policies (page policy, address mapping) the Ramulator-class backend
//! exposes.

use crate::cli::Cli;
use crate::Scale;
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::{AddressMapping, MemTech, PagePolicy};
use accesys_workload::GemmSpec;

/// The technologies of the energy sweep.
pub const TECHS: [MemTech; 6] = [
    MemTech::Ddr3,
    MemTech::Ddr4,
    MemTech::Ddr5,
    MemTech::Gddr6,
    MemTech::Hbm2,
    MemTech::Lpddr5,
];

/// Per-technology energy measurement for one fixed GEMM.
#[derive(Clone, Debug, serde::Serialize)]
pub struct EnergyRow {
    /// Memory technology.
    pub tech: MemTech,
    /// Execution time, ns.
    pub time_ns: f64,
    /// Host-DRAM energy, nanojoules.
    pub energy_nj: f64,
    /// DRAM energy per accelerator byte moved, picojoules.
    pub pj_per_byte: f64,
}

/// Matrix size at each scale.
pub fn matrix_size(scale: Scale) -> u32 {
    scale.pick(256, 1024)
}

/// The energy sweep as a declarative experiment over [`TECHS`].
pub fn experiment(scale: Scale) -> impl Experiment<Point = MemTech, Out = EnergyRow> {
    let matrix = matrix_size(scale);
    Grid::new("energy", TECHS).sweep(move |&tech| {
        let mut sim = Simulation::new(SystemConfig::pcie_host(16.0, tech)).expect("valid config");
        let report = sim.run_gemm(GemmSpec::square(matrix)).expect("completes");
        EnergyRow {
            tech,
            time_ns: report.total_time_ns(),
            energy_nj: report.host_mem_energy_nj(),
            pj_per_byte: report.dram_pj_per_byte(),
        }
    })
}

/// Run the per-technology energy sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<EnergyRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the per-technology energy sweep.
pub fn run(scale: Scale) -> Vec<EnergyRow> {
    run_jobs(scale, Jobs::from_env())
}

/// One page-policy × address-mapping ablation cell.
#[derive(Clone, Debug, serde::Serialize)]
pub struct PolicyRow {
    /// Row-buffer policy.
    pub policy: PagePolicy,
    /// Address mapping.
    pub mapping: AddressMapping,
    /// Execution time, ns.
    pub time_ns: f64,
    /// Row-buffer hit count.
    pub row_hits: f64,
}

/// The controller-policy ablation as a declarative experiment over
/// page policy × address mapping (DDR4 host, fixed GEMM).
pub fn policy_experiment(
    scale: Scale,
) -> impl Experiment<Point = (PagePolicy, AddressMapping), Out = PolicyRow> {
    let matrix = matrix_size(scale);
    Grid::cross2(
        "energy_policies",
        [PagePolicy::Open, PagePolicy::Closed],
        [
            AddressMapping::LineChannelRowBank,
            AddressMapping::LineChannelLineBank,
            AddressMapping::RowChannelRowBank,
        ],
    )
    .sweep(move |&(policy, mapping)| {
        let mut dram = MemTech::Ddr4.dram_config();
        dram.page_policy = policy;
        dram.mapping = mapping;
        let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4);
        cfg.host_mem = MemBackendConfig::Dram(MemTech::Ddr4);
        // Rebuild with the custom controller: route through the Simple
        // path is wrong here, so instead use the tech preset override.
        let mut sim = Simulation::new(cfg).expect("valid config");
        // Swap the host DRAM module for one with the ablated policy.
        let (_, _, host_mem, ..) = sim.debug_handles();
        sim.kernel_mut()
            .set_module(host_mem, Box::new(accesys_mem::Dram::new("host_mem", dram)));
        let report = sim.run_gemm(GemmSpec::square(matrix)).expect("completes");
        PolicyRow {
            policy,
            mapping,
            time_ns: report.total_time_ns(),
            row_hits: report.stats.get_or_zero("host_mem.row_hits"),
        }
    })
}

/// Run the controller-policy ablation on `jobs` workers.
pub fn run_policies_jobs(scale: Scale, jobs: Jobs) -> Vec<PolicyRow> {
    policy_experiment(scale).run(jobs).into_outputs()
}

/// Run the controller-policy ablation (DDR4 host, fixed GEMM).
pub fn run_policies(scale: Scale) -> Vec<PolicyRow> {
    run_policies_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print both tables unless `--json`; return
/// the machine-readable sweep values.
pub fn run_cli(cli: &Cli) -> serde::Value {
    let energy = experiment(cli.scale).run(cli.jobs);
    let policies = policy_experiment(cli.scale).run(cli.jobs);
    crate::cli::note_wall(&energy);
    crate::cli::note_wall(&policies);
    let value = serde::Value::Map(vec![
        ("energy".to_string(), serde::Serialize::to_value(&energy)),
        (
            "policies".to_string(),
            serde::Serialize::to_value(&policies),
        ),
    ]);
    if !cli.json {
        print(&energy.into_outputs(), &policies.into_outputs(), cli.scale);
    }
    value
}

/// Run and print both tables.
pub fn run_and_print(scale: Scale) -> (Vec<EnergyRow>, Vec<PolicyRow>) {
    let rows = run(scale);
    let policies = run_policies(scale);
    print(&rows, &policies, scale);
    (rows, policies)
}

/// Print both tables.
pub fn print(rows: &[EnergyRow], policies: &[PolicyRow], scale: Scale) {
    println!(
        "# DRAM energy (extension): GEMM matrix {}, 16 GB/s PCIe",
        matrix_size(scale)
    );
    println!(
        "{:>8} {:>11} {:>12} {:>10}",
        "memory", "time (µs)", "energy (µJ)", "pJ/byte"
    );
    for r in rows {
        println!(
            "{:>8} {:>11.1} {:>12.2} {:>10.1}",
            r.tech.to_string(),
            r.time_ns / 1000.0,
            r.energy_nj / 1000.0,
            r.pj_per_byte
        );
    }
    println!("# expected: HBM2 lowest pJ/byte, DDR3 highest");
    println!("\n# Controller-policy ablation (DDR4):");
    println!(
        "{:>8} {:>22} {:>11} {:>10}",
        "policy", "mapping", "time (µs)", "row hits"
    );
    for p in policies {
        println!(
            "{:>8} {:>22} {:>11.1} {:>10.0}",
            format!("{:?}", p.policy),
            format!("{:?}", p.mapping),
            p.time_ns / 1000.0,
            p.row_hits
        );
    }
    println!("# expected: open-page + row-bank mapping maximizes row hits for streaming DMA");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_is_most_efficient_ddr3_least() {
        let rows = run(Scale::Quick);
        let pj = |t: MemTech| rows.iter().find(|r| r.tech == t).unwrap().pj_per_byte;
        assert!(pj(MemTech::Hbm2) < pj(MemTech::Ddr4));
        assert!(pj(MemTech::Ddr4) < pj(MemTech::Ddr3));
        for r in &rows {
            assert!(r.energy_nj > 0.0, "{}: no energy recorded", r.tech);
        }
    }

    #[test]
    fn open_page_wins_row_hits_for_streaming_dma() {
        let rows = run_policies(Scale::Quick);
        let hits = |p: PagePolicy, m: AddressMapping| {
            rows.iter()
                .find(|r| r.policy == p && r.mapping == m)
                .unwrap()
                .row_hits
        };
        let open = hits(PagePolicy::Open, AddressMapping::LineChannelRowBank);
        let closed = hits(PagePolicy::Closed, AddressMapping::LineChannelRowBank);
        assert!(open > 2.0 * closed, "open {open} vs closed {closed}");
    }
}
