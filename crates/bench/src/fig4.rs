//! Fig. 4 — execution time vs DMA request (packet) size per PCIe
//! bandwidth. The paper reports a convex curve with its optimum around
//! 256 B: tiny packets pay per-TLP header and TLP-rate overhead, huge
//! packets exhaust per-hop credits and stretch completion round-trips.

use crate::cli::Cli;
use crate::Scale;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// Packet sizes swept (bytes), as in the paper.
pub const PACKET_SIZES: [u32; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// PCIe bandwidths swept (GB/s), as in the paper.
pub const BANDWIDTHS: [f64; 5] = [4.0, 8.0, 16.0, 32.0, 64.0];

/// One measured curve: execution time per packet size at one bandwidth.
#[derive(Clone, Debug)]
pub struct PacketCurve {
    /// Link bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// `(packet_bytes, exec_time_ns)` points.
    pub points: Vec<(u32, f64)>,
}

impl PacketCurve {
    /// The packet size with the lowest execution time.
    pub fn optimum(&self) -> u32 {
        self.points
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(s, _)| s)
            .expect("curve has points")
    }

    /// Relative overhead of `packet` vs the optimum (0.12 = +12 %).
    pub fn overhead_at(&self, packet: u32) -> f64 {
        let best = self
            .points
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let t = self
            .points
            .iter()
            .find(|&&(s, _)| s == packet)
            .map(|&(_, t)| t)
            .expect("packet size in sweep");
        t / best - 1.0
    }
}

/// Matrix size used at each scale (paper: 2048).
pub fn matrix_size(scale: Scale) -> u32 {
    scale.pick(256, 2048)
}

/// Measure one point.
pub fn measure(bandwidth_gbps: f64, packet_bytes: u32, matrix: u32) -> f64 {
    let cfg =
        SystemConfig::pcie_host(bandwidth_gbps, MemTech::Ddr4).with_request_bytes(packet_bytes);
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns()
}

/// The figure as a declarative experiment over [`BANDWIDTHS`] ×
/// [`PACKET_SIZES`].
pub fn experiment(scale: Scale) -> impl Experiment<Point = (f64, u32), Out = f64> {
    let matrix = matrix_size(scale);
    Grid::cross2("fig4", BANDWIDTHS, PACKET_SIZES).sweep(move |&(bw, p)| measure(bw, p, matrix))
}

fn curves(points: &[((f64, u32), f64)]) -> Vec<PacketCurve> {
    // cross2 is row-major: one contiguous chunk of points per bandwidth.
    points
        .chunks(PACKET_SIZES.len())
        .map(|chunk| PacketCurve {
            bandwidth_gbps: chunk[0].0 .0,
            points: chunk.iter().map(|&((_, p), t)| (p, t)).collect(),
        })
        .collect()
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<PacketCurve> {
    curves(&experiment(scale).run(jobs).points)
}

/// Run the full sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<PacketCurve> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(cli.scale), |r| {
        print(&curves(&r.points), cli.scale)
    })
}

/// Run and print the figure's series.
pub fn run_and_print(scale: Scale) -> Vec<PacketCurve> {
    let curves = run(scale);
    print(&curves, scale);
    curves
}

/// Print the figure's series.
pub fn print(curves: &[PacketCurve], scale: Scale) {
    println!(
        "# Fig 4: execution time (us) vs packet size, matrix {}",
        matrix_size(scale)
    );
    print!("{:>10}", "pkt(B)");
    for c in curves {
        print!("{:>12}", format!("{}GB/s", c.bandwidth_gbps));
    }
    println!();
    for (i, &p) in PACKET_SIZES.iter().enumerate() {
        print!("{p:>10}");
        for c in curves {
            print!("{:>12.1}", c.points[i].1 / 1000.0);
        }
        println!();
    }
    for c in curves {
        println!(
            "# {} GB/s: optimum {} B, 64 B +{:.0}%, 4096 B +{:.0}%",
            c.bandwidth_gbps,
            c.optimum(),
            c.overhead_at(64) * 100.0,
            c.overhead_at(4096) * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_curve_is_convex_ish_at_16gbps() {
        // One bandwidth, three sizes: the extremes must beat neither the
        // middle; this is the cheap smoke version of the figure.
        let matrix = 256;
        let t64 = measure(16.0, 64, matrix);
        let t256 = measure(16.0, 256, matrix);
        let t4096 = measure(16.0, 4096, matrix);
        assert!(
            t64 > t256,
            "64B ({t64}) should be slower than 256B ({t256})"
        );
        assert!(
            t4096 > t256,
            "4096B ({t4096}) should be slower than 256B ({t256})"
        );
    }
}
