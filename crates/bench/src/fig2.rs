//! Fig. 2 — roofline of the accelerator system: normalized execution
//! time vs systolic-array compute time at a fixed 8 GB/s PCIe link.
//! The paper reports a compute-bound plateau below ≈1500 ns per tile and
//! a memory-bound linear region above it.

use crate::cli::Cli;
use crate::Scale;
use accesys::analytic::{roofline_knee, RooflinePoint};
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// Compute times swept, in ns per output tile (full-k reduction).
pub const COMPUTE_NS: [f64; 10] = [
    100.0, 250.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0, 3000.0, 4500.0, 6000.0,
];

/// Matrix size at each scale (paper: 1024).
pub fn matrix_size(scale: Scale) -> u32 {
    scale.pick(256, 1024)
}

/// Measure one roofline point.
pub fn measure(compute_ns: f64, matrix: u32) -> RooflinePoint {
    let cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4).with_compute_override_ns(compute_ns);
    let mut sim = Simulation::new(cfg).expect("valid config");
    let exec_ns = sim
        .run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns();
    RooflinePoint {
        compute_ns,
        exec_ns,
    }
}

/// The figure as a declarative experiment over [`COMPUTE_NS`].
pub fn experiment(scale: Scale) -> impl Experiment<Point = f64, Out = RooflinePoint> {
    let matrix = matrix_size(scale);
    Grid::new("fig2", COMPUTE_NS).sweep(move |&c| measure(c, matrix))
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<RooflinePoint> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<RooflinePoint> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(cli.scale), |r| {
        print(
            &r.points.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the figure's series.
pub fn run_and_print(scale: Scale) -> Vec<RooflinePoint> {
    let points = run(scale);
    print(&points, scale);
    points
}

/// Print the figure's series.
pub fn print(points: &[RooflinePoint], scale: Scale) {
    let min = points
        .iter()
        .map(|p| p.exec_ns)
        .fold(f64::INFINITY, f64::min);
    println!(
        "# Fig 2: roofline, matrix {}, PCIe 8 GB/s",
        matrix_size(scale)
    );
    println!(
        "{:>14} {:>14} {:>12}",
        "compute(ns)", "exec(us)", "normalized"
    );
    for p in points {
        println!(
            "{:>14.0} {:>14.1} {:>12.3}",
            p.compute_ns,
            p.exec_ns / 1000.0,
            p.exec_ns / min
        );
    }
    if let Some(knee) = roofline_knee(points, 0.05) {
        println!("# memory-bound/compute-bound knee at ~{knee:.0} ns (paper: ~1500 ns)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_has_plateau_then_linear_region() {
        // Matrix 256 at 8 GB/s: each k-chunk moves 256 KiB (32 us), so
        // per-chunk compute of 64 tiles stays memory-bound up to
        // ~500 ns/tile — both points sit on the plateau.
        let fast = measure(100.0, 256);
        let mid = measure(250.0, 256);
        let slow = measure(6000.0, 256);
        let plateau_ratio = mid.exec_ns / fast.exec_ns;
        assert!(plateau_ratio < 1.15, "plateau ratio {plateau_ratio}");
        // Far right: compute dominates and scales roughly linearly.
        assert!(slow.exec_ns > 2.0 * fast.exec_ns);
    }
}
