//! Fig. 2 — roofline of the accelerator system: normalized execution
//! time vs systolic-array compute time at a fixed 8 GB/s PCIe link.
//! The paper reports a compute-bound plateau below ≈1500 ns per tile and
//! a memory-bound linear region above it.
//!
//! The testbed, matrix sizes and swept axis all lower from the
//! committed `specs/paper_baseline.spec`; this module only measures.

use crate::cli::Cli;
use crate::{specs, Scale};
use accesys::analytic::{roofline_knee, RooflinePoint};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_spec::{RooflineScenario, SystemSpec};
use accesys_workload::GemmSpec;

/// The committed scenario this figure lowers from.
pub fn scenario() -> &'static RooflineScenario {
    specs::roofline()
}

/// Matrix size at each scale (paper: 1024).
pub fn matrix_size(scale: Scale) -> u32 {
    scenario().matrix.pick(scale)
}

/// Measure one roofline point on the committed testbed.
pub fn measure(compute_ns: f64, matrix: u32) -> RooflinePoint {
    measure_on(&scenario().system, compute_ns, matrix)
}

/// Measure one roofline point on `system`.
pub fn measure_on(system: &SystemSpec, compute_ns: f64, matrix: u32) -> RooflinePoint {
    let mut sim = system
        .host_simulation(compute_ns)
        .expect("validated spec testbed builds");
    let exec_ns = sim
        .run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns();
    RooflinePoint {
        compute_ns,
        exec_ns,
    }
}

/// The figure as a declarative experiment over the scenario's swept
/// compute times.
pub fn experiment(scale: Scale) -> impl Experiment<Point = f64, Out = RooflinePoint> {
    experiment_for(scenario(), scale)
}

/// `sc` as a declarative experiment (the `accesys run` entry point).
pub fn experiment_for(
    sc: &RooflineScenario,
    scale: Scale,
) -> impl Experiment<Point = f64, Out = RooflinePoint> {
    let matrix = sc.matrix.pick(scale);
    let system = sc.system.clone();
    Grid::new(sc.name.clone(), sc.compute_ns.clone())
        .sweep(move |&c| measure_on(&system, c, matrix))
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<RooflinePoint> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<RooflinePoint> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    run_cli_for(scenario(), cli)
}

/// [`run_cli`] against an arbitrary loaded scenario.
pub fn run_cli_for(sc: &RooflineScenario, cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment_for(sc, cli.scale), |r| {
        print_for(
            sc,
            &r.points.iter().map(|(_, p)| *p).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the figure's series.
pub fn run_and_print(scale: Scale) -> Vec<RooflinePoint> {
    let points = run(scale);
    print(&points, scale);
    points
}

/// Print the figure's series.
pub fn print(points: &[RooflinePoint], scale: Scale) {
    print_for(scenario(), points, scale)
}

/// Print the series of an arbitrary roofline scenario.
pub fn print_for(sc: &RooflineScenario, points: &[RooflinePoint], scale: Scale) {
    let min = points
        .iter()
        .map(|p| p.exec_ns)
        .fold(f64::INFINITY, f64::min);
    println!(
        "# {}: roofline, matrix {}, PCIe {} GB/s",
        sc.name,
        sc.matrix.pick(scale),
        sc.system.link_gbps
    );
    println!(
        "{:>14} {:>14} {:>12}",
        "compute(ns)", "exec(us)", "normalized"
    );
    for p in points {
        println!(
            "{:>14.0} {:>14.1} {:>12.3}",
            p.compute_ns,
            p.exec_ns / 1000.0,
            p.exec_ns / min
        );
    }
    if let Some(knee) = roofline_knee(points, 0.05) {
        println!("# memory-bound/compute-bound knee at ~{knee:.0} ns (paper: ~1500 ns)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_has_plateau_then_linear_region() {
        // Matrix 256 at 8 GB/s: each k-chunk moves 256 KiB (32 us), so
        // per-chunk compute of 64 tiles stays memory-bound up to
        // ~500 ns/tile — both points sit on the plateau.
        let fast = measure(100.0, 256);
        let mid = measure(250.0, 256);
        let slow = measure(6000.0, 256);
        let plateau_ratio = mid.exec_ns / fast.exec_ns;
        assert!(plateau_ratio < 1.15, "plateau ratio {plateau_ratio}");
        // Far right: compute dominates and scales roughly linearly.
        assert!(slow.exec_ns > 2.0 * fast.exec_ns);
    }

    #[test]
    fn the_committed_spec_pins_the_paper_testbed() {
        let sc = scenario();
        assert_eq!(sc.name, "fig2");
        assert_eq!(sc.system.link_gbps, 8.0);
        assert_eq!(sc.matrix.pick(Scale::Quick), 256);
        assert_eq!(sc.matrix.pick(Scale::Paper), 1024);
        assert_eq!(sc.compute_ns.len(), 10);
    }
}
