//! # accesys-bench
//!
//! The experiment harness of the Gem5-AcceSys reproduction: one module
//! per table/figure of the paper's evaluation (Section V). Each module
//! exposes a `run(scale)` function returning typed data plus a
//! `run_and_print(scale)` that emits the same rows/series the paper
//! reports. Binaries under `src/bin` wrap them; Criterion benches under
//! `benches/` time scaled-down versions.
//!
//! Workload sizes are scaled by default so the whole suite regenerates in
//! minutes; set `ACCESYS_FULL=1` (or pass [`Scale::Paper`]) to run the
//! paper's exact sizes.
//!
//! Every driver routes its sweep through the shared
//! [`accesys_exp::Experiment`]/[`accesys_exp::Grid`] engine, so all the
//! bins accept `--jobs N` (parallel sweep workers, default all cores)
//! and `--json` (machine-readable output) — see [`cli`]. Sweep outputs
//! are collected in point order and are byte-identical regardless of
//! the worker count.
#![warn(missing_docs)]

pub mod ablations;
pub mod cli;
pub mod cluster;
pub mod cxl;
pub mod decode;
pub mod energy;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig9;
pub mod fleet;
pub mod graph;
pub mod scale;
pub mod serve;
pub mod specs;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod topo;

pub use scale::Scale;
