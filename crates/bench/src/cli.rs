//! Shared command-line interface of the experiment binaries.
//!
//! The parsing itself lives in [`accesys_exp::cli`] — one typed
//! `--jobs/--json/--full` front-end shared by every bin in the
//! workspace (including the `accesys` spec runner) instead of the
//! per-crate copies the drivers used to carry. This module re-exports
//! it so `crate::cli::Cli` keeps working for the driver modules.

pub use accesys_exp::cli::{emit_json, note_wall, run_sweep_cli, usage, Cli, CliError};
