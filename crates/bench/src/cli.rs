//! Shared command-line interface of the experiment binaries.
//!
//! Every bin accepts the same flags:
//!
//! * `--jobs N` / `-j N` — worker threads for the sweep (default:
//!   `ACCESYS_JOBS`, else all cores),
//! * `--json` — emit the machine-readable sweep result on stdout instead
//!   of the human table,
//! * `--full` — paper-scale workload sizes (same as `ACCESYS_FULL=1`).
//!
//! Wall-clock notes always go to **stderr**, so stdout stays
//! byte-identical between `--jobs 1` and `--jobs N` runs.

use crate::Scale;
use accesys_exp::{Experiment, Jobs, SweepResult};

/// Parsed command-line options shared by every experiment bin.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Workload scale.
    pub scale: Scale,
    /// Sweep worker count.
    pub jobs: Jobs,
    /// Emit JSON on stdout instead of the human-readable table.
    pub json: bool,
}

impl Cli {
    /// Options for library callers: given scale and jobs, table output.
    pub fn new(scale: Scale, jobs: Jobs) -> Cli {
        Cli {
            scale,
            jobs,
            json: false,
        }
    }

    /// Parse `std::env::args`, honouring `ACCESYS_FULL` / `ACCESYS_JOBS`
    /// as defaults. Prints usage and exits on `--help` or a bad flag.
    pub fn from_env(bin: &str) -> Cli {
        match Cli::parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(ParseOutcome::Help) => {
                println!("{}", usage(bin));
                std::process::exit(0);
            }
            Err(ParseOutcome::Bad(msg)) => {
                eprintln!("{bin}: {msg}\n\n{}", usage(bin));
                std::process::exit(2);
            }
        }
    }

    fn parse(args: impl Iterator<Item = String>) -> Result<Cli, ParseOutcome> {
        let mut cli = Cli {
            scale: Scale::from_env(),
            jobs: Jobs::from_env(),
            json: false,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--help" | "-h" => return Err(ParseOutcome::Help),
                "--json" => cli.json = true,
                "--full" => cli.scale = Scale::Paper,
                "--jobs" | "-j" => {
                    let value = args
                        .next()
                        .ok_or_else(|| ParseOutcome::Bad(format!("{arg} needs a value")))?;
                    cli.jobs = parse_jobs(&value)?;
                }
                other => {
                    if let Some(value) = other.strip_prefix("--jobs=") {
                        cli.jobs = parse_jobs(value)?;
                    } else {
                        return Err(ParseOutcome::Bad(format!("unknown argument `{other}`")));
                    }
                }
            }
        }
        Ok(cli)
    }
}

enum ParseOutcome {
    Help,
    Bad(String),
}

fn parse_jobs(value: &str) -> Result<Jobs, ParseOutcome> {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => Ok(Jobs::new(n)),
        _ => Err(ParseOutcome::Bad(format!(
            "--jobs needs a positive integer, got `{value}`"
        ))),
    }
}

fn usage(bin: &str) -> String {
    format!(
        "usage: {bin} [--jobs N] [--json] [--full]\n\
         \n\
         --jobs N, -j N  run the sweep on N worker threads\n\
         \x20                (default: ACCESYS_JOBS, else all cores)\n\
         --json          emit the machine-readable sweep result on stdout\n\
         --full          paper-scale workload sizes where applicable\n\
         \x20                (same as ACCESYS_FULL=1; scale-independent\n\
         \x20                bins such as probe/table2/table3 ignore it)\n\
         --help, -h      show this help"
    )
}

/// Run `exp` at the CLI's settings: note wall-clock on stderr, invoke
/// `print` with the result unless `--json`, and return the
/// machine-readable sweep value — the shared shape of every
/// single-sweep driver's `run_cli`.
pub fn run_sweep_cli<E>(
    cli: &Cli,
    exp: &E,
    print: impl FnOnce(&SweepResult<E::Point, E::Out>),
) -> serde::Value
where
    E: Experiment,
    E::Point: serde::Serialize,
    E::Out: serde::Serialize,
{
    let result = exp.run(cli.jobs);
    note_wall(&result);
    if !cli.json {
        print(&result);
    }
    serde::Serialize::to_value(&result)
}

/// Report a finished sweep's wall-clock on stderr (never stdout, so
/// table/JSON output stays byte-identical across worker counts).
pub fn note_wall<P, O>(result: &SweepResult<P, O>) {
    eprintln!(
        "# {}: {} points in {:.2}s (jobs={})",
        result.name,
        result.points.len(),
        result.wall_secs(),
        result.jobs
    );
}

/// Print `value` as indented JSON on stdout.
pub fn emit_json(value: &serde::Value) {
    println!(
        "{}",
        serde_json::to_string_pretty(value).expect("sweep results serialize")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        match Cli::parse(args.iter().map(|s| s.to_string())) {
            Ok(cli) => cli,
            Err(_) => panic!("args {args:?} must parse"),
        }
    }

    #[test]
    fn flags_parse() {
        let cli = parse(&["--jobs", "3", "--json", "--full"]);
        assert_eq!(cli.jobs.get(), 3);
        assert!(cli.json);
        assert_eq!(cli.scale, Scale::Paper);
    }

    #[test]
    fn jobs_equals_form_parses() {
        assert_eq!(parse(&["--jobs=7"]).jobs.get(), 7);
        assert_eq!(parse(&["-j", "2"]).jobs.get(), 2);
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(Cli::parse(["--nope".to_string()].into_iter()).is_err());
        assert!(Cli::parse(["--jobs".to_string()].into_iter()).is_err());
        assert!(Cli::parse(["--jobs".to_string(), "zero".to_string()].into_iter()).is_err());
    }
}
