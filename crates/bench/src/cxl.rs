//! Extension experiment — PCIe hierarchy vs a CXL.mem flit link.
//!
//! The paper's title promises exploration of *standard interconnects*;
//! its evaluation covers PCIe. This experiment extends the same
//! framework to the next standard interconnect: the accelerator attached
//! point-to-point over a CXL.mem-style flit link (no switch hop, 25 ns
//! host bridge, 68 B flits) versus PCIe hierarchies of equal and higher
//! bandwidth. Expected shape: CXL wins clearly on small (latency-bound)
//! jobs and converges toward the equal-bandwidth PCIe curve as jobs grow
//! bandwidth-bound.

use crate::cli::Cli;
use crate::Scale;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// One matrix-size row of the comparison.
#[derive(Clone, Debug, serde::Serialize)]
pub struct CxlRow {
    /// Square matrix dimension.
    pub matrix: u32,
    /// CXL ×8 execution time, ns.
    pub cxl_ns: f64,
    /// PCIe at the same effective bandwidth, ns.
    pub pcie_equal_ns: f64,
    /// The paper's 2 GB/s PCIe baseline, ns.
    pub pcie_2gb_ns: f64,
}

/// Matrix sizes at each scale.
pub fn matrix_sizes(scale: Scale) -> Vec<u32> {
    match scale {
        Scale::Quick => vec![32, 64, 128, 256],
        Scale::Paper => vec![64, 128, 256, 512, 1024, 2048],
    }
}

fn time_of(cfg: SystemConfig, matrix: u32) -> f64 {
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns()
}

/// The comparison as a declarative experiment over matrix sizes; each
/// point measures CXL, bandwidth-matched PCIe, and the 2 GB/s baseline.
pub fn experiment(scale: Scale) -> impl Experiment<Point = u32, Out = CxlRow> {
    let cxl_bw = SystemConfig::cxl_host(8, MemTech::Ddr4)
        .cxl_link
        .payload_bandwidth_gbps();
    Grid::new("cxl", matrix_sizes(scale)).sweep(move |&matrix| CxlRow {
        matrix,
        cxl_ns: time_of(SystemConfig::cxl_host(8, MemTech::Ddr4), matrix),
        pcie_equal_ns: time_of(SystemConfig::pcie_host(cxl_bw, MemTech::Ddr4), matrix),
        pcie_2gb_ns: time_of(SystemConfig::pcie_host(2.0, MemTech::Ddr4), matrix),
    })
}

/// Run the comparison on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<CxlRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the comparison at `scale` (worker count from the environment).
pub fn run(scale: Scale) -> Vec<CxlRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    let result = experiment(cli.scale).run(cli.jobs);
    crate::cli::note_wall(&result);
    if !cli.json {
        print(
            &result
                .points
                .iter()
                .map(|(_, r)| r.clone())
                .collect::<Vec<_>>(),
        );
    }
    serde::Serialize::to_value(&result)
}

/// Run and print the comparison table.
pub fn run_and_print(scale: Scale) -> Vec<CxlRow> {
    let rows = run(scale);
    print(&rows);
    rows
}

/// Print the comparison table.
pub fn print(rows: &[CxlRow]) {
    println!("# CXL vs PCIe (extension): GEMM execution time, DDR4 host memory");
    println!(
        "{:>8} {:>12} {:>14} {:>12} {:>10}",
        "matrix", "CXLx8 (µs)", "PCIe=bw (µs)", "PCIe2GB (µs)", "cxl gain"
    );
    for r in rows {
        println!(
            "{:>8} {:>12.1} {:>14.1} {:>12.1} {:>9.2}x",
            r.matrix,
            r.cxl_ns / 1000.0,
            r.pcie_equal_ns / 1000.0,
            r.pcie_2gb_ns / 1000.0,
            r.pcie_equal_ns / r.cxl_ns
        );
    }
    println!("# expected shape: CXL ≥ PCIe at equal bandwidth, gap widest on small jobs");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cxl_gain_shrinks_as_jobs_grow_bandwidth_bound() {
        let rows = run(Scale::Quick);
        let gain = |r: &CxlRow| r.pcie_equal_ns / r.cxl_ns;
        let first = gain(&rows[0]);
        let last = gain(rows.last().unwrap());
        assert!(first > 1.0, "CXL should win small jobs: {first:.2}");
        assert!(
            last < first,
            "latency advantage should dilute: {first:.2} -> {last:.2}"
        );
    }
}
