//! Extension experiment — accelerator-cluster scaling behind the switch.
//!
//! Section III of the paper describes "a single accelerator or
//! accelerator cluster" and a switch "supporting multiple connections
//! and enhancing scalability". This experiment populates 1–8 switch
//! ports with MatrixFlow instances and shards one GEMM row-wise across
//! them. Expected shape: near-linear scaling while compute-bound, then
//! saturation once the shared PCIe uplink (or host memory) becomes the
//! bottleneck.

use crate::cli::Cli;
use crate::Scale;
use accesys::topology::switch_tree;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// One cluster-size measurement.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ClusterRow {
    /// Cluster members.
    pub accels: u32,
    /// Compute-bound sharded time, ns (slow array override).
    pub compute_bound_ns: f64,
    /// Transfer-bound sharded time, ns (fast array, 8 GB/s link).
    pub transfer_bound_ns: f64,
}

/// Cluster sizes swept.
pub const CLUSTER_SIZES: [u32; 4] = [1, 2, 4, 8];

/// Matrix size at each scale.
pub fn matrix_size(scale: Scale) -> u32 {
    scale.pick(256, 2048)
}

fn sharded_time(cfg: SystemConfig, cluster: u32, matrix: u32) -> f64 {
    // The cluster is the depth-1 topology preset: one switch level with
    // `cluster` endpoints (exactly the Fig. 1 shape, sized up).
    let spec = switch_tree(&cfg, &[cluster]).expect("cluster sizes are valid trees");
    let mut sim = Simulation::from_topology(cfg, &spec).expect("valid topology");
    sim.run_gemm_sharded(GemmSpec::square(matrix))
        .expect("sharded gemm completes")
        .total_time_ns()
}

/// The scaling sweep as a declarative experiment over [`CLUSTER_SIZES`].
pub fn experiment(scale: Scale) -> impl Experiment<Point = u32, Out = ClusterRow> {
    let matrix = matrix_size(scale);
    Grid::new("cluster", CLUSTER_SIZES).sweep(move |&n| {
        // Compute-bound: artificially slow array, ample bandwidth.
        let mut compute =
            SystemConfig::pcie_host(64.0, MemTech::Hbm2).with_compute_override_ns(20_000.0);
        compute.smmu = None;
        // Transfer-bound: default array on a modest shared link.
        let transfer = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
        ClusterRow {
            accels: n,
            compute_bound_ns: sharded_time(compute, n, matrix),
            transfer_bound_ns: sharded_time(transfer, n, matrix),
        }
    })
}

/// Run the scaling sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<ClusterRow> {
    experiment(scale).run(jobs).into_outputs()
}

/// Run the scaling sweep at `scale` (worker count from the environment).
pub fn run(scale: Scale) -> Vec<ClusterRow> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(cli.scale), |r| {
        print(
            &r.points.iter().map(|(_, c)| c.clone()).collect::<Vec<_>>(),
            cli.scale,
        )
    })
}

/// Run and print the scaling table.
pub fn run_and_print(scale: Scale) -> Vec<ClusterRow> {
    let rows = run(scale);
    print(&rows, scale);
    rows
}

/// Print the scaling table.
pub fn print(rows: &[ClusterRow], scale: Scale) {
    let base_c = rows[0].compute_bound_ns;
    let base_t = rows[0].transfer_bound_ns;
    println!(
        "# Cluster scaling (extension): sharded GEMM, matrix {}",
        matrix_size(scale)
    );
    println!(
        "{:>7} {:>16} {:>10} {:>17} {:>10}",
        "accels", "compute-bnd (µs)", "speedup", "transfer-bnd (µs)", "speedup"
    );
    for r in rows {
        println!(
            "{:>7} {:>16.1} {:>9.2}x {:>17.1} {:>9.2}x",
            r.accels,
            r.compute_bound_ns / 1000.0,
            base_c / r.compute_bound_ns,
            r.transfer_bound_ns / 1000.0,
            base_t / r.transfer_bound_ns
        );
    }
    println!("# expected: near-linear compute-bound scaling; transfer-bound saturates on the shared uplink");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_bound_scaling_is_near_linear_to_four() {
        let rows = run(Scale::Quick);
        let r1 = rows.iter().find(|r| r.accels == 1).unwrap();
        let r4 = rows.iter().find(|r| r.accels == 4).unwrap();
        let speedup = r1.compute_bound_ns / r4.compute_bound_ns;
        assert!(speedup > 3.0, "compute-bound 4-way speedup {speedup:.2}");
    }

    #[test]
    fn transfer_bound_scaling_saturates() {
        let rows = run(Scale::Quick);
        let r1 = rows.iter().find(|r| r.accels == 1).unwrap();
        let r8 = rows.iter().find(|r| r.accels == 8).unwrap();
        let speedup = r1.transfer_bound_ns / r8.transfer_bound_ns;
        assert!(
            speedup < 6.0,
            "shared-uplink run should not scale linearly to 8: {speedup:.2}"
        );
    }
}
