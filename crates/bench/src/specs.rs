//! The committed scenario library: the `specs/*.spec` files at the
//! repo root, embedded at compile time and loaded once per kind.
//!
//! The text files are the single source of truth for every driver's
//! presets — [`crate::fig2`], [`crate::topo`], [`crate::graph`],
//! [`crate::serve`] and [`crate::decode`] all lower their testbeds,
//! workloads and sweep axes from here instead of carrying Rust-side
//! constants. A committed spec that fails to load is a build defect,
//! so the accessors panic with the loader's diagnostic rather than
//! propagating it.

use accesys_spec::{
    DecodeScenario, FleetScenario, PipelineScenario, RooflineScenario, Scenario, ServingScenario,
    Spec, TopoScenario,
};
use std::sync::OnceLock;

/// The committed scenario files, embedded: `(stem, text)`, in the
/// order the `accesys list` subcommand shows them.
pub const LIBRARY: &[(&str, &str)] = &[
    (
        "paper_baseline",
        include_str!("../../../specs/paper_baseline.spec"),
    ),
    (
        "switch_trees",
        include_str!("../../../specs/switch_trees.spec"),
    ),
    (
        "pipelined_encoder",
        include_str!("../../../specs/pipelined_encoder.spec"),
    ),
    (
        "two_tenant_mix",
        include_str!("../../../specs/two_tenant_mix.spec"),
    ),
    ("llm_decode", include_str!("../../../specs/llm_decode.spec")),
    (
        "kv_pressure",
        include_str!("../../../specs/kv_pressure.spec"),
    ),
    ("fleet_1k", include_str!("../../../specs/fleet_1k.spec")),
];

/// Load a committed spec by file stem.
pub fn load(stem: &str) -> Spec {
    let (_, text) = LIBRARY
        .iter()
        .find(|(s, _)| *s == stem)
        .unwrap_or_else(|| panic!("no committed spec `{stem}`"));
    accesys_spec::load_str(text).unwrap_or_else(|e| panic!("specs/{stem}.spec: {e}"))
}

macro_rules! committed {
    ($fn_name:ident, $stem:literal, $variant:ident, $ty:ty) => {
        /// The committed scenario of that kind (loaded once).
        pub fn $fn_name() -> &'static $ty {
            static SCENARIO: OnceLock<$ty> = OnceLock::new();
            SCENARIO.get_or_init(|| match load($stem).scenario {
                Scenario::$variant(s) => s,
                other => panic!(
                    concat!("specs/", $stem, ".spec: expected kind `{}`, got `{}`"),
                    stringify!($variant),
                    other.kind()
                ),
            })
        }
    };
}

committed!(roofline, "paper_baseline", Roofline, RooflineScenario);
committed!(topo, "switch_trees", Topo, TopoScenario);
committed!(pipeline, "pipelined_encoder", Pipeline, PipelineScenario);
committed!(serving, "two_tenant_mix", Serving, ServingScenario);
committed!(decode, "llm_decode", Decode, DecodeScenario);
committed!(fleet, "fleet_1k", Fleet, FleetScenario);

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_exp::Scale;

    #[test]
    fn every_committed_spec_loads_and_dry_builds() {
        for (stem, _) in LIBRARY {
            let spec = load(stem);
            spec.dry_build(Scale::Quick)
                .unwrap_or_else(|e| panic!("specs/{stem}.spec: {e}"));
        }
    }

    #[test]
    fn the_drivers_find_their_kinds() {
        assert_eq!(roofline().name, "fig2");
        assert_eq!(topo().name, "topo_scaling");
        assert_eq!(pipeline().name, "graph_scaling");
        assert_eq!(serving().name, "serve_scaling");
        assert_eq!(decode().name, "decode_scaling");
        assert_eq!(fleet().name, "fleet_scaling");
    }
}
