//! Fig. 3 — execution time under varying per-lane bandwidth and lane
//! count. The paper reports consistent gains with bandwidth until the
//! system turns compute-bound at 16 lanes, with the best configuration
//! up to ~11× faster than the worst.

use crate::Scale;
use accesys::{Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// Lane counts swept (paper: 2, 4, 8, 16).
pub const LANES: [u32; 4] = [2, 4, 8, 16];

/// Per-lane rates in Gb/s (paper: 2 – 64).
pub const LANE_GBPS: [f64; 6] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// One curve: execution time per lane rate at a fixed lane count.
#[derive(Clone, Debug)]
pub struct LaneCurve {
    /// Number of lanes.
    pub lanes: u32,
    /// `(lane_gbps, exec_time_ns)` points.
    pub points: Vec<(f64, f64)>,
}

/// Matrix size at each scale (paper: 2048).
pub fn matrix_size(scale: Scale) -> u32 {
    scale.pick(256, 2048)
}

/// Measure one point.
pub fn measure(lanes: u32, lane_gbps: f64, matrix: u32) -> f64 {
    let mut cfg = SystemConfig::pcie_host(2.0, MemTech::Ddr4);
    cfg.pcie.link.lanes = lanes;
    cfg.pcie.link.lane_gbps = lane_gbps;
    cfg.pcie.link.encoding_efficiency = 0.8; // gen-2-style framing
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns()
}

/// Run the sweep.
pub fn run(scale: Scale) -> Vec<LaneCurve> {
    let matrix = matrix_size(scale);
    LANES
        .iter()
        .map(|&lanes| LaneCurve {
            lanes,
            points: LANE_GBPS
                .iter()
                .map(|&g| (g, measure(lanes, g, matrix)))
                .collect(),
        })
        .collect()
}

/// Best-to-worst execution-time ratio across the whole grid.
pub fn spread(curves: &[LaneCurve]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for c in curves {
        for &(_, t) in &c.points {
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    hi / lo
}

/// Run and print the figure's series.
pub fn run_and_print(scale: Scale) -> Vec<LaneCurve> {
    let curves = run(scale);
    println!(
        "# Fig 3: execution time (us) vs per-lane rate, matrix {}",
        matrix_size(scale)
    );
    print!("{:>12}", "lane Gb/s");
    for c in &curves {
        print!("{:>12}", format!("{} lanes", c.lanes));
    }
    println!();
    for (i, &g) in LANE_GBPS.iter().enumerate() {
        print!("{g:>12}");
        for c in &curves {
            print!("{:>12.1}", c.points[i].1 / 1000.0);
        }
        println!();
    }
    println!(
        "# best/worst spread: {:.1}x (paper: up to ~11x / 1109.9%)",
        spread(&curves)
    );
    curves
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_bandwidth_is_monotonically_not_worse() {
        let matrix = 128;
        let t_2x2 = measure(2, 2.0, matrix);
        let t_4x8 = measure(4, 8.0, matrix);
        let t_16x32 = measure(16, 32.0, matrix);
        assert!(t_2x2 > t_4x8, "{t_2x2} vs {t_4x8}");
        assert!(t_4x8 > t_16x32, "{t_4x8} vs {t_16x32}");
    }

    #[test]
    fn saturation_sets_in_at_high_bandwidth() {
        // Compute/memory bound: doubling an already-huge link changes
        // little.
        let matrix = 128;
        let t_16x32 = measure(16, 32.0, matrix);
        let t_16x64 = measure(16, 64.0, matrix);
        let gain = t_16x32 / t_16x64;
        assert!(gain < 1.3, "still scaling at the top: {gain}");
    }
}
