//! Fig. 3 — execution time under varying per-lane bandwidth and lane
//! count. The paper reports consistent gains with bandwidth until the
//! system turns compute-bound at 16 lanes, with the best configuration
//! up to ~11× faster than the worst.

use crate::cli::Cli;
use crate::Scale;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// Lane counts swept (paper: 2, 4, 8, 16).
pub const LANES: [u32; 4] = [2, 4, 8, 16];

/// Per-lane rates in Gb/s (paper: 2 – 64).
pub const LANE_GBPS: [f64; 6] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

/// One curve: execution time per lane rate at a fixed lane count.
#[derive(Clone, Debug)]
pub struct LaneCurve {
    /// Number of lanes.
    pub lanes: u32,
    /// `(lane_gbps, exec_time_ns)` points.
    pub points: Vec<(f64, f64)>,
}

/// Matrix size at each scale (paper: 2048).
pub fn matrix_size(scale: Scale) -> u32 {
    scale.pick(256, 2048)
}

/// Measure one point.
pub fn measure(lanes: u32, lane_gbps: f64, matrix: u32) -> f64 {
    let mut cfg = SystemConfig::pcie_host(2.0, MemTech::Ddr4);
    cfg.pcie.link.lanes = lanes;
    cfg.pcie.link.lane_gbps = lane_gbps;
    cfg.pcie.link.encoding_efficiency = 0.8; // gen-2-style framing
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("gemm completes")
        .total_time_ns()
}

/// The figure as a declarative experiment over [`LANES`] × [`LANE_GBPS`].
pub fn experiment(scale: Scale) -> impl Experiment<Point = (u32, f64), Out = f64> {
    let matrix = matrix_size(scale);
    Grid::cross2("fig3", LANES, LANE_GBPS).sweep(move |&(lanes, g)| measure(lanes, g, matrix))
}

fn curves(points: &[((u32, f64), f64)]) -> Vec<LaneCurve> {
    // cross2 is row-major: one contiguous chunk of points per lane count.
    points
        .chunks(LANE_GBPS.len())
        .map(|chunk| LaneCurve {
            lanes: chunk[0].0 .0,
            points: chunk.iter().map(|&((_, g), t)| (g, t)).collect(),
        })
        .collect()
}

/// Run the sweep on `jobs` workers.
pub fn run_jobs(scale: Scale, jobs: Jobs) -> Vec<LaneCurve> {
    curves(&experiment(scale).run(jobs).points)
}

/// Run the sweep (worker count from the environment).
pub fn run(scale: Scale) -> Vec<LaneCurve> {
    run_jobs(scale, Jobs::from_env())
}

/// Run at the CLI's settings; print the table unless `--json`; return
/// the machine-readable sweep value.
pub fn run_cli(cli: &Cli) -> serde::Value {
    crate::cli::run_sweep_cli(cli, &experiment(cli.scale), |r| {
        print(&curves(&r.points), cli.scale)
    })
}

/// Best-to-worst execution-time ratio across the whole grid.
pub fn spread(curves: &[LaneCurve]) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = 0.0f64;
    for c in curves {
        for &(_, t) in &c.points {
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    hi / lo
}

/// Run and print the figure's series.
pub fn run_and_print(scale: Scale) -> Vec<LaneCurve> {
    let curves = run(scale);
    print(&curves, scale);
    curves
}

/// Print the figure's series.
pub fn print(curves: &[LaneCurve], scale: Scale) {
    println!(
        "# Fig 3: execution time (us) vs per-lane rate, matrix {}",
        matrix_size(scale)
    );
    print!("{:>12}", "lane Gb/s");
    for c in curves {
        print!("{:>12}", format!("{} lanes", c.lanes));
    }
    println!();
    for (i, &g) in LANE_GBPS.iter().enumerate() {
        print!("{g:>12}");
        for c in curves {
            print!("{:>12.1}", c.points[i].1 / 1000.0);
        }
        println!();
    }
    println!(
        "# best/worst spread: {:.1}x (paper: up to ~11x / 1109.9%)",
        spread(curves)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_bandwidth_is_monotonically_not_worse() {
        let matrix = 128;
        let t_2x2 = measure(2, 2.0, matrix);
        let t_4x8 = measure(4, 8.0, matrix);
        let t_16x32 = measure(16, 32.0, matrix);
        assert!(t_2x2 > t_4x8, "{t_2x2} vs {t_4x8}");
        assert!(t_4x8 > t_16x32, "{t_4x8} vs {t_16x32}");
    }

    #[test]
    fn saturation_sets_in_at_high_bandwidth() {
        // Compute/memory bound: doubling an already-huge link changes
        // little.
        let matrix = 128;
        let t_16x32 = measure(16, 32.0, matrix);
        let t_16x64 = measure(16, 64.0, matrix);
        let gain = t_16x32 / t_16x64;
        assert!(gain < 1.3, "still scaling at the top: {gain}");
    }
}
