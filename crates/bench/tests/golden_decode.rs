//! LLM serving acceptance gate: a small mixed prefill/decode serve
//! under KV pressure must reproduce its pinned report **byte-for-byte**
//! on the decode testbed tree.
//!
//! `golden/decode_quick.json` pins the serialized [`LlmServeReport`] of
//! a fixed four-request trace on a two-leaf tree with a tight KV budget
//! — prefill admission, per-round decode slices, eviction/restore
//! `Transfer` lowering, TTFT and EOS retirement all feed the snapshot,
//! so any timing, ordering or serialization drift in the
//! prefill/decode pipeline shows up here as a byte diff. Regenerate
//! only for *intentional* model changes:
//! `ACCESYS_REGEN_GOLDEN=1 cargo test -p accesys-bench --test golden_decode`.
//!
//! [`LlmServeReport`]: accesys_serve::LlmServeReport

use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_serve::{serve_llm, Arrival, LlmRequestShape, LlmServeConfig, Policy};
use accesys_workload::llm::LlmSpec;

const GOLDEN: &str = include_str!("golden/decode_quick.json");
const GOLDEN_PATH: &str = "tests/golden/decode_quick.json";

#[test]
fn mixed_prefill_decode_serve_matches_the_pinned_snapshot_byte_for_byte() {
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(5_000.0);
    cfg.smmu = None;
    let spec = switch_tree_with(&cfg, &[2], |_| EndpointOptions {
        accel: None,
        dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
    })
    .expect("valid tree");
    let mut sim = Simulation::from_topology(cfg, &spec).expect("valid topology");

    let shape = LlmRequestShape {
        spec: LlmSpec::tiny(),
        prompt: 8,
        decode: 4,
    };
    // Two waves so prefill and decode mix, and a budget of 1.5
    // requests per device so the eviction path feeds the snapshot too.
    let arrivals = [
        Arrival {
            at_ns: 0,
            tenant: 0,
        },
        Arrival {
            at_ns: 0,
            tenant: 1,
        },
        Arrival {
            at_ns: 400_000,
            tenant: 0,
        },
        Arrival {
            at_ns: 400_001,
            tenant: 1,
        },
    ];
    let serve_cfg = LlmServeConfig::new(4, 16, shape.max_kv_bytes() * 3 / 2).with_slo_ns(10e6);
    let report = serve_llm(
        &mut sim,
        &shape,
        &arrivals,
        &Policy::round_robin(),
        &serve_cfg,
    )
    .expect("serve completes");
    assert_eq!(report.completed, 4, "the golden trace serves everything");
    assert!(
        report.kv.evictions > 0,
        "the golden trace exercises KV pressure"
    );

    let json = serde_json::to_string_pretty(&serde::Serialize::to_value(&report))
        .expect("reports serialize");
    if std::env::var("ACCESYS_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, format!("{json}\n")).expect("golden written");
        return;
    }
    assert_eq!(
        json.trim(),
        GOLDEN.trim(),
        "serve_llm output drifted from the pinned prefill/decode snapshot"
    );
}
