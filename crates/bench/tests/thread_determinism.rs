//! The parallel-kernel contract: one simulation must produce
//! **byte-identical** observable results no matter how many worker
//! threads execute its event loop. This is the intra-simulation sibling
//! of `determinism.rs` (which pins the sweep-level contract): here a
//! single kernel is partitioned into conservative domains and run on
//! 1, 2 and 4 threads, and the full module-counter report — every
//! counter of every module, serialized — must not drift by a byte.
//!
//! Two scenarios, chosen to cover both topology front-ends:
//!
//! * the fig2-style PCIe host GEMM (the `perf` bin's e2e workload),
//!   whose topology splits at the PCIe link into multiple domains;
//! * the golden decode-serve tree (`golden_decode.rs`'s scenario),
//!   where prefill/decode batching, KV eviction and `Transfer`
//!   lowering all run above the partitioned kernel.

use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_serve::{serve_llm, Arrival, LlmRequestShape, LlmServeConfig, Policy};
use accesys_workload::llm::LlmSpec;
use accesys_workload::GemmSpec;

const THREADS: [u32; 3] = [1, 2, 4];

fn stats_json(sim: &accesys::Simulation) -> String {
    serde_json::to_string_pretty(&serde::Serialize::to_value(&sim.stats()))
        .expect("stats serialize")
}

/// Fig2-style GEMM stats at a given worker count.
fn gemm_stats(threads: u32) -> String {
    let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    cfg.kernel_threads = threads;
    let mut sim = Simulation::new(cfg).expect("valid config");
    sim.run_gemm(GemmSpec::square(96)).expect("gemm completes");
    stats_json(&sim)
}

/// The golden decode-serve scenario's report + stats at a worker count.
fn decode_stats(threads: u32) -> (String, String) {
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(5_000.0);
    cfg.smmu = None;
    cfg.kernel_threads = threads;
    let spec = switch_tree_with(&cfg, &[2], |_| EndpointOptions {
        accel: None,
        dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
    })
    .expect("valid tree");
    let mut sim = Simulation::from_topology(cfg, &spec).expect("valid topology");

    let shape = LlmRequestShape {
        spec: LlmSpec::tiny(),
        prompt: 8,
        decode: 4,
    };
    let arrivals = [
        Arrival {
            at_ns: 0,
            tenant: 0,
        },
        Arrival {
            at_ns: 0,
            tenant: 1,
        },
        Arrival {
            at_ns: 400_000,
            tenant: 0,
        },
        Arrival {
            at_ns: 400_001,
            tenant: 1,
        },
    ];
    let serve_cfg = LlmServeConfig::new(4, 16, shape.max_kv_bytes() * 3 / 2).with_slo_ns(10e6);
    let report = serve_llm(
        &mut sim,
        &shape,
        &arrivals,
        &Policy::round_robin(),
        &serve_cfg,
    )
    .expect("serve completes");
    let report_json = serde_json::to_string_pretty(&serde::Serialize::to_value(&report))
        .expect("reports serialize");
    (report_json, stats_json(&sim))
}

#[test]
fn gemm_stats_are_byte_identical_across_kernel_threads() {
    let baseline = gemm_stats(THREADS[0]);
    for &threads in &THREADS[1..] {
        assert_eq!(
            gemm_stats(threads),
            baseline,
            "fig2-style GEMM stats drifted at kernel_threads={threads}"
        );
    }
}

#[test]
fn decode_serve_is_byte_identical_across_kernel_threads() {
    let (report1, stats1) = decode_stats(THREADS[0]);
    for &threads in &THREADS[1..] {
        let (report, stats) = decode_stats(threads);
        assert_eq!(
            report, report1,
            "decode-serve report drifted at kernel_threads={threads}"
        );
        assert_eq!(
            stats, stats1,
            "decode-serve stats drifted at kernel_threads={threads}"
        );
    }
}

#[test]
fn the_partitioned_topology_really_has_multiple_domains() {
    // Guard against the test silently degenerating into "sequential vs
    // sequential": the fig2-style topology must actually split, or the
    // byte-identity assertions above prove nothing about parallelism.
    let mut cfg = SystemConfig::pcie_host(8.0, MemTech::Ddr4);
    cfg.kernel_threads = 2;
    let sim = Simulation::new(cfg).expect("valid config");
    let (domains, lookahead, threads) = sim
        .kernel()
        .partition()
        .expect("fig2-style topology partitions");
    assert!(domains >= 2, "expected a multi-domain cut, got {domains}");
    assert!(lookahead > 0, "lookahead must be positive");
    assert_eq!(threads, 2);
}
