//! Spec front-end acceptance gate: every committed `specs/*.spec`
//! file's quick-scale `--json` sweep is pinned **byte-for-byte** by a
//! golden snapshot under `golden/spec_<stem>.json`.
//!
//! The snapshots are what `accesys run specs/<stem>.spec --jobs 1
//! --json` prints (the serialized [`accesys_exp::SweepResult`]) — so
//! any drift in the loader's lowering, the drivers' measurement, or
//! the serializer shows up here as a byte diff. `spec_paper_baseline`
//! is additionally required to match the pre-refactor `fig2_quick.json`
//! golden exactly: the text spec is byte-equivalent to the hand-wired
//! paper baseline it replaced.
//!
//! Regenerate only for *intentional* model changes:
//! `ACCESYS_REGEN_GOLDEN=1 cargo test -p accesys-bench --test golden_specs`.

use accesys_bench::specs::{load, LIBRARY};
use accesys_bench::{decode, fig2, fleet, graph, serve, topo, Scale};
use accesys_exp::{Experiment, Jobs};
use accesys_spec::{Scenario, Spec};

/// The serialized quick-scale serial sweep of `spec` — exactly the
/// value `accesys run <spec> --jobs 1 --json` emits.
fn sweep_json(spec: &Spec) -> String {
    let value = match &spec.scenario {
        Scenario::Roofline(sc) => {
            serde::Serialize::to_value(&fig2::experiment_for(sc, Scale::Quick).run(Jobs::serial()))
        }
        Scenario::Topo(sc) => {
            serde::Serialize::to_value(&topo::experiment_for(sc, Scale::Quick).run(Jobs::serial()))
        }
        Scenario::Pipeline(sc) => {
            serde::Serialize::to_value(&graph::experiment_for(sc, Scale::Quick).run(Jobs::serial()))
        }
        Scenario::Serving(sc) => {
            serde::Serialize::to_value(&serve::experiment_for(sc, Scale::Quick).run(Jobs::serial()))
        }
        Scenario::Decode(sc) => serde::Serialize::to_value(
            &decode::experiment_for(sc, Scale::Quick).run(Jobs::serial()),
        ),
        // In-process shards; byte-identical to any --fleet-workers run.
        Scenario::Fleet(sc) => serde::Serialize::to_value(
            &fleet::experiment_in_process(sc, Scale::Quick).run(Jobs::serial()),
        ),
    };
    serde_json::to_string_pretty(&value).expect("sweep results serialize")
}

#[test]
fn every_committed_spec_matches_its_pinned_golden_byte_for_byte() {
    let regen = std::env::var("ACCESYS_REGEN_GOLDEN").is_ok();
    for (stem, _) in LIBRARY {
        let json = sweep_json(&load(stem));
        let path = format!("tests/golden/spec_{stem}.json");
        if regen {
            std::fs::write(&path, format!("{json}\n")).expect("golden written");
            continue;
        }
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (regenerate with ACCESYS_REGEN_GOLDEN=1)"));
        assert_eq!(
            json.trim(),
            golden.trim(),
            "specs/{stem}.spec output drifted from {path}"
        );
    }
}

#[test]
fn the_paper_baseline_spec_reproduces_the_pre_refactor_fig2_golden() {
    // The refactor's anchor: lowering the text spec must be
    // byte-identical to the hand-wired Fig. 2 driver it replaced.
    let fig2_golden = include_str!("golden/fig2_quick.json");
    let json = sweep_json(&load("paper_baseline"));
    assert_eq!(
        json.trim(),
        fig2_golden.trim(),
        "specs/paper_baseline.spec no longer reproduces the pinned fig2 sweep"
    );
}
