//! Workload-graph-refactor acceptance gate: the chain-graph lowering of
//! the ViT encoder layer must reproduce the pre-refactor sequential
//! driver **byte-for-byte** on `SystemConfig::paper_baseline()`.
//!
//! `golden/vit_layer_quick.json` was captured from the sequential
//! `run_ops` driver (PR 4 HEAD) as the serialized `VitReport` of one
//! ViT-Base encoder layer. Any timing, phase-label or serialization
//! drift in the graph dispatcher's chain lowering shows up here as a
//! byte diff. Regenerate only for *intentional* model changes:
//! `ACCESYS_REGEN_GOLDEN=1 cargo test -p accesys-bench --test golden_vit`.

use accesys::{Simulation, SystemConfig};
use accesys_workload::VitModel;

const GOLDEN: &str = include_str!("golden/vit_layer_quick.json");
const GOLDEN_PATH: &str = "tests/golden/vit_layer_quick.json";

#[test]
fn chain_lowering_matches_pre_refactor_sequential_driver_byte_for_byte() {
    let mut sim = Simulation::new(SystemConfig::paper_baseline()).expect("valid config");
    let report = sim.run_vit_layer(VitModel::Base).expect("layer completes");
    let json = serde_json::to_string_pretty(&serde::Serialize::to_value(&report))
        .expect("reports serialize");
    if std::env::var("ACCESYS_REGEN_GOLDEN").is_ok() {
        std::fs::write(GOLDEN_PATH, format!("{json}\n")).expect("golden written");
        return;
    }
    assert_eq!(
        json.trim(),
        GOLDEN.trim(),
        "run_vit_layer output drifted from the pre-refactor sequential-driver snapshot"
    );
}
