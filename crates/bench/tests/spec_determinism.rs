//! Determinism property of the spec front-end: any *valid* spec file
//! produces a byte-identical machine-readable sweep whether it runs on
//! one worker or four — the `--jobs` flag is a wall-clock knob, never
//! an output knob. Random roofline specs (the cheapest family) are the
//! probe; the committed library's other kinds are covered by the
//! per-driver `sweep_is_deterministic_across_worker_counts` tests.

use accesys_bench::{fig2, Scale};
use accesys_exp::{Experiment, Jobs};
use accesys_spec::{load_str, Scenario};
use proptest::prelude::*;

fn roofline_text(link: u32, matrix: u32, points: &[u32]) -> String {
    let axis: Vec<String> = points.iter().map(|p| format!("{p}.0")).collect();
    format!(
        "[scenario]\nkind = \"roofline\"\nname = \"det\"\n\n\
         [topology]\nlink_gbps = {link}.0\nhost_mem = \"ddr4\"\n\n\
         [workload]\nkind = \"gemm\"\nmatrix = {matrix}\n\n\
         [sweep]\ncompute_ns = [{}]\n",
        axis.join(", ")
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_valid_specs_sweep_byte_identically_on_1_and_4_workers(
        link in 1u32..32,
        matrix in 16u32..96,
        points in proptest::collection::vec(100u32..5_000, 1..5),
    ) {
        let text = roofline_text(link, matrix, &points);
        let spec = load_str(&text).expect("generated specs are valid");
        let Scenario::Roofline(sc) = &spec.scenario else {
            panic!("generated a roofline spec");
        };
        let serial = fig2::experiment_for(sc, Scale::Quick).run(Jobs::serial());
        let parallel = fig2::experiment_for(sc, Scale::Quick).run(Jobs::new(4));
        let a = serde_json::to_string_pretty(&serde::Serialize::to_value(&serial))
            .expect("sweep results serialize");
        let b = serde_json::to_string_pretty(&serde::Serialize::to_value(&parallel))
            .expect("sweep results serialize");
        prop_assert_eq!(a, b, "worker count leaked into the sweep output");
    }
}
