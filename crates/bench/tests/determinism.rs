//! The parallel-runner contract: a sweep over real simulations must
//! produce bit-identical results — and byte-identical JSON — no matter
//! how many workers execute it. Each sweep point builds its own
//! [`accesys::Simulation`] (one isolated kernel), which is exactly the
//! isolation guarantee ARCHITECTURE.md documents.

use accesys::sim::Stats;
use accesys::{Simulation, SystemConfig};
use accesys_exp::{Experiment, Grid, Jobs};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;

/// A small but real sweep: full module-counter reports, not just times,
/// so any cross-thread nondeterminism anywhere in the stack shows up.
fn stats_experiment() -> impl Experiment<Point = (f64, u32), Out = Stats> {
    Grid::cross2("determinism", [2.0, 8.0], [64u32, 128, 256]).sweep(|&(bw, pkt)| {
        let cfg = SystemConfig::pcie_host(bw, MemTech::Ddr4).with_request_bytes(pkt);
        let mut sim = Simulation::new(cfg).expect("valid config");
        sim.run_gemm(GemmSpec::square(96)).expect("gemm completes");
        sim.stats()
    })
}

#[test]
fn sweep_stats_are_bit_identical_across_worker_counts() {
    let serial = stats_experiment().run(Jobs::serial());
    let parallel = stats_experiment().run(Jobs::new(4));
    assert_eq!(serial.points.len(), parallel.points.len());
    for ((p_ser, s_ser), (p_par, s_par)) in serial.points.iter().zip(parallel.points.iter()) {
        assert_eq!(p_ser, p_par, "point order must match");
        assert_eq!(s_ser, s_par, "stats for {p_ser:?} must be bit-identical");
    }
}

#[test]
fn sweep_json_is_byte_identical_across_worker_counts() {
    let serial = stats_experiment().run(Jobs::serial()).to_json().unwrap();
    let parallel = stats_experiment().run(Jobs::new(8)).to_json().unwrap();
    assert_eq!(serial, parallel);
}

#[test]
fn driver_output_matches_across_worker_counts() {
    // End to end through a real migrated driver.
    use accesys_bench::{fig2, Scale};
    let a = fig2::run_jobs(Scale::Quick, Jobs::serial());
    let b = fig2::run_jobs(Scale::Quick, Jobs::new(4));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.compute_ns.to_bits(), y.compute_ns.to_bits());
        assert_eq!(x.exec_ns.to_bits(), y.exec_ns.to_bits());
    }
}

#[test]
fn a_panicking_simulation_point_fails_fast_not_hangs() {
    // A panicking point must propagate out of Experiment::run.
    let sweep = Grid::new("boom", vec![1u32, 2, 3, 4, 5, 6]).sweep(|&n| {
        if n == 4 {
            panic!("config {n} is broken");
        }
        n * 10
    });
    let result = std::panic::catch_unwind(|| sweep.run(Jobs::new(3)));
    assert!(result.is_err(), "panic must reach the caller");
}
