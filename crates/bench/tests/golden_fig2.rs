//! Topology-refactor acceptance gate: `SystemConfig::paper_baseline()`
//! lowered through the topology engine must produce **byte-identical**
//! `fig2 --json` output vs the original hand-wired Fig. 1 builder.
//!
//! `golden/fig2_quick.json` was captured from the pre-refactor builder
//! (`fig2 --jobs 1 --json` at quick scale, PR 3 HEAD). Any timing or
//! serialization drift in the lowered baseline shows up here as a byte
//! diff. Regenerate the golden only for *intentional* model changes:
//! `cargo run --release -p accesys-bench --bin fig2 -- --jobs 1 --json`.

use accesys_bench::{fig2, Scale};
use accesys_exp::{Experiment, Jobs};

const GOLDEN: &str = include_str!("golden/fig2_quick.json");

#[test]
fn lowered_baseline_matches_hand_wired_fig2_output_byte_for_byte() {
    let result = fig2::experiment(Scale::Quick).run(Jobs::serial());
    let json = serde_json::to_string_pretty(&serde::Serialize::to_value(&result))
        .expect("sweep results serialize");
    assert_eq!(
        json.trim(),
        GOLDEN.trim(),
        "fig2 --json output drifted from the pre-refactor golden snapshot"
    );
}
