//! Criterion bench for Fig. 3 lane/bandwidth points (scaled sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_bandwidth");
    g.sample_size(10);
    for (lanes, gbps) in [(2u32, 2.0f64), (8, 8.0), (16, 64.0)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{lanes}x{gbps}")),
            &(lanes, gbps),
            |b, &(lanes, gbps)| b.iter(|| accesys_bench::fig3::measure(lanes, gbps, 128)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
