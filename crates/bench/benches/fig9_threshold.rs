//! Criterion bench for the Fig. 9 analytic model fit.

use accesys::analytic::{PhaseTimes, ThresholdModel};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = ThresholdModel {
        pcie: PhaseTimes {
            gemm_ns: 59228.0,
            non_gemm_ns: 5915.0,
        },
        devmem: PhaseTimes {
            gemm_ns: 6705.0,
            non_gemm_ns: 22119.0,
        },
        t_other_ns: 100.0,
    };
    c.bench_function("fig9_threshold_sweep", |b| {
        b.iter(|| {
            let s = black_box(&model).sweep(101);
            (s.len(), model.crossover_non_gemm_fraction())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
