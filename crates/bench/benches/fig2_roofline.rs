//! Criterion bench for the Fig. 2 roofline points (scaled sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_roofline");
    g.sample_size(10);
    for compute_ns in [100.0, 1500.0, 6000.0] {
        g.bench_with_input(
            BenchmarkId::from_parameter(compute_ns as u64),
            &compute_ns,
            |b, &compute_ns| b.iter(|| accesys_bench::fig2::measure(compute_ns, 128)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
