//! Criterion bench for Table IV translation measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_translation");
    g.sample_size(10);
    for matrix in [64u32, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(matrix), &matrix, |b, &m| {
            b.iter(|| accesys_bench::table4::measure(m))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
