//! Criterion bench for Fig. 6 memory bandwidth/latency points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_memory");
    g.sample_size(10);
    for bw in [8.0, 50.0, 256.0] {
        g.bench_with_input(BenchmarkId::new("bandwidth", bw as u64), &bw, |b, &bw| {
            b.iter(|| accesys_bench::fig6::measure(bw, 18.0, 128))
        });
    }
    for lat in [1.0, 36.0] {
        g.bench_with_input(BenchmarkId::new("latency", lat as u64), &lat, |b, &lat| {
            b.iter(|| accesys_bench::fig6::measure(64.0, lat, 128))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
