//! Criterion bench for Figs. 7/8: one ViT-Base layer per system.

use accesys_bench::fig7::{measure, SystemKind};
use accesys_workload::VitModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_vit");
    g.sample_size(10);
    for system in [SystemKind::Pcie8, SystemKind::DevMem] {
        g.bench_with_input(
            BenchmarkId::from_parameter(system.label()),
            &system,
            |b, &system| b.iter(|| measure(VitModel::Base, system)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
