//! Criterion bench for Fig. 4 packet-size points (scaled sizes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_packet");
    g.sample_size(10);
    for pkt in [64u32, 256, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(pkt), &pkt, |b, &pkt| {
            b.iter(|| accesys_bench::fig4::measure(16.0, pkt, 128))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
