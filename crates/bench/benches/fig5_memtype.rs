//! Criterion bench for Fig. 5 memory-location points (scaled sizes).

use accesys::{Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn run(cfg: SystemConfig) -> f64 {
    let mut sim = Simulation::new(cfg).expect("valid");
    sim.run_gemm(GemmSpec::square(128))
        .expect("runs")
        .total_time_ns()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_memtype");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("devmem_hbm2"), |b| {
        b.iter(|| run(SystemConfig::devmem(MemTech::Hbm2)))
    });
    g.bench_function(BenchmarkId::from_parameter("host_ddr4_2gb"), |b| {
        b.iter(|| run(SystemConfig::pcie_host(2.0, MemTech::Ddr4)))
    });
    g.bench_function(BenchmarkId::from_parameter("host_hbm2_64gb"), |b| {
        b.iter(|| run(SystemConfig::pcie_host(64.0, MemTech::Hbm2)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
