//! Criterion bench for the extension experiments: CXL vs PCIe, cluster
//! scaling, and DRAM energy-model overhead (scaled sizes).

use accesys::{Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_workload::GemmSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn gemm(cfg: SystemConfig, matrix: u32) -> f64 {
    let mut sim = Simulation::new(cfg).expect("valid");
    sim.run_gemm(GemmSpec::square(matrix))
        .expect("runs")
        .total_time_ns()
}

fn sharded(cfg: SystemConfig, matrix: u32) -> f64 {
    let mut sim = Simulation::new(cfg).expect("valid");
    sim.run_gemm_sharded(GemmSpec::square(matrix))
        .expect("runs")
        .total_time_ns()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_interconnect");
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter("cxl_x8"), |b| {
        b.iter(|| gemm(SystemConfig::cxl_host(8, MemTech::Ddr4), 128))
    });
    g.bench_function(BenchmarkId::from_parameter("pcie_equal_bw"), |b| {
        let bw = SystemConfig::cxl_host(8, MemTech::Ddr4)
            .cxl_link
            .payload_bandwidth_gbps();
        b.iter(|| gemm(SystemConfig::pcie_host(bw, MemTech::Ddr4), 128))
    });
    g.bench_function(BenchmarkId::from_parameter("cluster_x4_sharded"), |b| {
        b.iter(|| {
            sharded(
                SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_accel_count(4),
                128,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
