//! `accesys-fleet-worker` — one fleet host shard per request, spoken
//! over stdin/stdout. The protocol loop lives in the library
//! ([`accesys_fleet::serve_fleet_worker`]); this binary only wires it
//! to the real pipes.

fn main() {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut output = stdout.lock();
    if let Err(e) = accesys_fleet::serve_fleet_worker(&mut input, &mut output) {
        eprintln!("accesys-fleet-worker: {e}");
        std::process::exit(1);
    }
}
