//! The self-contained fleet specification: everything a worker process
//! needs to rebuild its host shard, serializable as JSON for the wire.

use crate::FleetError;
use accesys::topology::{switch_tree, switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_serve::{Arrival, ArrivalSpec, Policy, RequestShape, ServeConfig};

/// A whole fleet: `hosts` identical hosts, each carrying one switch
/// tree of accelerators, fed by one open-loop frontend over
/// latency/bandwidth-bounded network links.
///
/// The struct is deliberately closed over plain data (no handles, no
/// callbacks): a worker process receives it as JSON and reconstructs
/// its shard bit-for-bit. The vendored JSON shim round-trips `f64`
/// exactly (shortest-round-trip display, correctly rounded parse), so
/// shipping the spec across the pipe cannot perturb determinism.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetSpec {
    /// Host count (each host is one worker-process-sized shard).
    pub hosts: u32,
    /// Per-level fan-outs of every host's switch tree (the PR 4 shape
    /// string, parsed); the leaf count is capped by the per-host BAR
    /// carving ([`accesys::addrmap::MAX_ACCELS`]).
    pub shape: Vec<u32>,
    /// The per-host testbed (all hosts identical).
    pub host: HostSystem,
    /// What one request costs.
    pub request: RequestShape,
    /// The fleet-wide open-loop arrival process.
    pub traffic: FleetTraffic,
    /// Per-host admission/batching policy.
    pub policy: FleetPolicy,
    /// The frontend→host network link model.
    pub link: NetLink,
}

/// One host's system knobs (the wire form of the spec layer's
/// `[topology]` section).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HostSystem {
    /// Host PCIe link bandwidth, GB/s.
    pub link_gbps: f64,
    /// Host memory technology.
    pub host_mem: MemTech,
    /// Fixed per-job compute override, ns, if any.
    pub compute_ns: Option<f64>,
    /// Whether the SMMU is in the path.
    pub smmu: bool,
    /// Uniform per-leaf device memory, if any.
    pub devmem: Option<MemTech>,
    /// Parallel-kernel worker threads per host simulation (0 keeps the
    /// [`SystemConfig`] default). Results are byte-identical at any
    /// value — PR 9's contract, which the fleet contract stacks on.
    pub kernel_threads: u32,
}

impl HostSystem {
    /// Lower to a [`SystemConfig`].
    pub fn config(&self) -> SystemConfig {
        let mut cfg = SystemConfig::pcie_host(self.link_gbps, self.host_mem);
        if let Some(ns) = self.compute_ns {
            cfg = cfg.with_compute_override_ns(ns);
        }
        if !self.smmu {
            cfg.smmu = None;
        }
        if self.kernel_threads > 0 {
            cfg.kernel_threads = self.kernel_threads;
        }
        cfg
    }
}

/// The fleet-wide Poisson arrival process. The trace is generated once
/// from the seed (identically in every process that needs it) and
/// routed to hosts round-robin, so there is no cross-process arrival
/// stream to coordinate.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetTraffic {
    /// Offered rate over the whole fleet, requests per second.
    pub rate_rps: f64,
    /// Tenants drawn uniformly.
    pub tenants: u32,
    /// PRNG seed.
    pub seed: u64,
    /// Trace horizon in virtual ns.
    pub horizon_ns: u64,
}

impl FleetTraffic {
    /// Generate the full fleet arrival trace (sorted by time).
    pub fn arrivals(&self) -> Vec<Arrival> {
        ArrivalSpec::poisson(self.rate_rps, self.tenants, self.seed).generate(self.horizon_ns)
    }
}

/// Which batching policy each host runs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// Strict arrival order.
    Fifo,
    /// Cycle through tenants.
    RoundRobin,
    /// Weighted fair share over [`FleetPolicy::weights`].
    WeightedShare,
}

/// Per-host admission/batching policy and bounds.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetPolicy {
    /// Policy kind.
    pub kind: PolicyKind,
    /// Per-tenant weights ([`PolicyKind::WeightedShare`] only).
    pub weights: Vec<u32>,
    /// Per-host batch cap (requests folded into one round).
    pub batch_cap: u64,
    /// Per-host admission-queue bound.
    pub queue_cap: u64,
    /// End-to-end latency SLO in ns; `0` means no SLO (goodput =
    /// throughput). Zero stands in for infinity because the JSON wire
    /// has no non-finite floats.
    pub slo_ns: f64,
}

impl FleetPolicy {
    /// The serve-engine policy object.
    pub fn policy(&self) -> Policy {
        match self.kind {
            PolicyKind::Fifo => Policy::Fifo,
            PolicyKind::RoundRobin => Policy::round_robin(),
            PolicyKind::WeightedShare => Policy::weighted_share(&self.weights),
        }
    }

    /// The SLO as the engine sees it (`0` → unbounded).
    pub fn slo(&self) -> f64 {
        if self.slo_ns > 0.0 {
            self.slo_ns
        } else {
            f64::INFINITY
        }
    }
}

/// The frontend→host network link: fixed propagation latency plus a
/// serialization term at the link bandwidth, FIFO per host.
///
/// `latency_ns` doubles as the conservative-lookahead bound of the
/// cross-host cut (the fleet analogue of the PR 9 domain cut): no
/// event can cross between the frontend and a host in less than the
/// link latency, so each host can be simulated `latency_ns` ahead of
/// the frontend without risking causality. With the open-loop traffic
/// model the frontend trace is fully precomputed and each host shard
/// is causally closed over the whole horizon — the validation that
/// `latency_ns > 0` is what keeps the cut sound, and would become the
/// actual horizon limit under a future closed-loop frontend.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetLink {
    /// One-way propagation latency, ns (must be > 0: the lookahead).
    pub latency_ns: f64,
    /// Link bandwidth, Gbit/s.
    pub gbps: f64,
    /// Bytes on the wire per request (and per response — symmetric).
    pub request_bytes: u64,
}

impl NetLink {
    /// Serialization time of one request at the link rate, ns.
    /// (`gbps` is Gbit/s = bits per ns.)
    pub fn ser_ns(&self) -> f64 {
        (self.request_bytes as f64 * 8.0) / self.gbps
    }
}

impl FleetSpec {
    /// A small, fast, valid fleet for tests, examples, and docs:
    /// modest traffic on fixed-compute hosts (`hosts` hosts of the
    /// given tree shape), round-robin over two tenants.
    pub fn demo(hosts: u32, shape: &[u32]) -> FleetSpec {
        FleetSpec {
            hosts,
            shape: shape.to_vec(),
            host: HostSystem {
                link_gbps: 16.0,
                host_mem: MemTech::Ddr4,
                compute_ns: Some(5_000.0),
                smmu: false,
                devmem: None,
                kernel_threads: 0,
            },
            request: RequestShape {
                seq: 32,
                hidden: 64,
                heads: 4,
                mlp: 128,
                slices: 2,
            },
            traffic: FleetTraffic {
                rate_rps: 20_000.0,
                tenants: 2,
                seed: 7,
                horizon_ns: 2_000_000,
            },
            policy: FleetPolicy {
                kind: PolicyKind::RoundRobin,
                weights: Vec::new(),
                batch_cap: 4,
                queue_cap: 16,
                slo_ns: 5e6,
            },
            link: NetLink {
                latency_ns: 2_000.0,
                gbps: 100.0,
                request_bytes: 4096,
            },
        }
    }

    /// Leaves (accelerator endpoints) per host.
    pub fn endpoints_per_host(&self) -> u32 {
        self.shape.iter().product::<u32>()
    }

    /// Total accelerator endpoints across the fleet.
    pub fn endpoints(&self) -> u64 {
        self.hosts as u64 * self.endpoints_per_host() as u64
    }

    /// Check every cross-field constraint; the worker validates again
    /// on receive so a corrupt wire spec fails closed.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Spec`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), FleetError> {
        let bad = |msg: String| Err(FleetError::Spec(msg));
        if self.hosts == 0 || self.hosts > 4096 {
            return bad(format!("hosts must be in 1..=4096, got {}", self.hosts));
        }
        if self.shape.is_empty() || self.shape.contains(&0) {
            return bad(format!(
                "shape must list positive per-level fan-outs, got {:?}",
                self.shape
            ));
        }
        if let Err(e) = accesys::addrmap::check_accel_count(self.endpoints_per_host() as usize) {
            return bad(format!("per-host tree too large: {e}"));
        }
        if !(self.link.latency_ns > 0.0 && self.link.latency_ns.is_finite()) {
            return bad(format!(
                "link latency_ns must be positive and finite (it is the \
                 conservative lookahead of the cross-host cut), got {}",
                self.link.latency_ns
            ));
        }
        if !(self.link.gbps > 0.0 && self.link.gbps.is_finite()) {
            return bad(format!(
                "link gbps must be positive and finite, got {}",
                self.link.gbps
            ));
        }
        if self.link.request_bytes == 0 {
            return bad("link request_bytes must be >= 1".to_string());
        }
        if !(self.traffic.rate_rps >= 0.0 && self.traffic.rate_rps.is_finite()) {
            return bad(format!(
                "traffic rate_rps must be non-negative and finite, got {}",
                self.traffic.rate_rps
            ));
        }
        if self.traffic.tenants == 0 {
            return bad("traffic tenants must be >= 1".to_string());
        }
        if self.traffic.horizon_ns == 0 {
            return bad("traffic horizon_ns must be >= 1".to_string());
        }
        if self.policy.batch_cap == 0 || self.policy.queue_cap == 0 {
            return bad(format!(
                "policy batch_cap/queue_cap must be >= 1, got {}/{}",
                self.policy.batch_cap, self.policy.queue_cap
            ));
        }
        if !(self.policy.slo_ns >= 0.0 && self.policy.slo_ns.is_finite()) {
            return bad(format!(
                "policy slo_ns must be non-negative and finite (0 = no SLO), got {}",
                self.policy.slo_ns
            ));
        }
        if !(self.host.link_gbps > 0.0 && self.host.link_gbps.is_finite()) {
            return bad(format!(
                "host link_gbps must be positive and finite, got {}",
                self.host.link_gbps
            ));
        }
        if let Some(ns) = self.host.compute_ns {
            if !(ns > 0.0 && ns.is_finite()) {
                return bad(format!(
                    "host compute_ns must be positive and finite, got {ns}"
                ));
            }
        }
        if self.request.slices == 0 {
            return bad("request slices must be >= 1".to_string());
        }
        Ok(())
    }

    /// Build one host's [`Simulation`] (they are all identical).
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::Spec`] when the topology does not build.
    pub fn host_simulation(&self) -> Result<Simulation, FleetError> {
        let cfg = self.host.config();
        let spec = match self.host.devmem {
            None => switch_tree(&cfg, &self.shape),
            Some(tech) => switch_tree_with(&cfg, &self.shape, |_| EndpointOptions {
                accel: None,
                dev_mem: Some(MemBackendConfig::Dram(tech)),
            }),
        }
        .map_err(|e| FleetError::Spec(format!("host tree does not build: {e}")))?;
        Simulation::from_topology(cfg, &spec)
            .map_err(|e| FleetError::Spec(format!("host simulation does not build: {e}")))
    }

    /// The per-host serve-engine config.
    pub fn serve_config(&self) -> ServeConfig {
        ServeConfig {
            batch_cap: self.policy.batch_cap.max(1) as usize,
            queue_cap: self.policy.queue_cap.max(1) as usize,
            slo_ns: self.policy.slo(),
        }
    }
}
