//! # accesys-fleet
//!
//! The fleet layer: simulate a cluster of 1000+ accelerators by
//! sharding a fleet spec into per-host switch-tree shards and running
//! each shard in its own worker OS process.
//!
//! A single process caps out at [`accesys::addrmap::MAX_ACCELS`]
//! endpoints (the per-host BAR carving), so datacenter-scale questions
//! — "10k accelerators, how many hosts?" — need a horizontal cut. The
//! cut here is the cross-host analogue of PR 9's conservative domain
//! partition: hosts only interact with the open-loop frontend through
//! network links of strictly positive latency ([`NetLink`]), so each
//! host shard is causally closed and can be simulated independently at
//! full speed, then merged deterministically.
//!
//! * [`FleetSpec`] — the self-contained, JSON-shippable description of
//!   the fleet (hosts, per-host tree, testbed, traffic, policy, link).
//! * [`run_host`] — one host shard as a pure function: route + link
//!   model + serve + fold into a flat [`HostResult`].
//! * [`merge()`] — host-order fold of shard results into a
//!   [`FleetReport`]; order of computation never leaks into the report.
//! * [`FleetWorker`] / [`serve_fleet_worker`] — both sides of the
//!   newline-framed worker protocol (modeled on the accel layer's
//!   `matrixflow-worker`), over the deadline-guarded
//!   [`accesys_accel::transport::PipeChild`].
//! * [`FleetPool`] — N long-lived worker processes reused across sweep
//!   points; [`FleetPool::spawned`] proves the reuse.
//!
//! The determinism contract stacks on the previous layers': the merged
//! [`FleetReport`] is byte-identical at any `--fleet-workers` count
//! (including 0 = in-process), any `--jobs` count, and any
//! `[kernel] threads` count.

pub mod host;
pub mod merge;
pub mod pool;
pub mod protocol;
pub mod spec;

pub use host::{route, run_host, HostResult, HostTenant, WireHist};
pub use merge::{merge, FleetReport, FleetTenantReport};
pub use pool::{worker_binary, FleetPool};
pub use protocol::{serve_fleet_worker, FleetWorker};
pub use spec::{FleetPolicy, FleetSpec, FleetTraffic, HostSystem, NetLink, PolicyKind};

use accesys_accel::transport::TransportError;

/// Why a fleet simulation failed.
#[derive(Debug)]
pub enum FleetError {
    /// The fleet spec violates a constraint.
    Spec(String),
    /// The worker binary cannot be located or spawned.
    WorkerBinary(String),
    /// The pipe to a worker process failed (died, timed out, i/o).
    Transport(TransportError),
    /// A worker answered something the protocol does not allow.
    Protocol(String),
    /// A host shard failed to simulate.
    Host {
        /// Which host.
        host: u32,
        /// What went wrong.
        message: String,
    },
    /// Shard results do not cover the fleet exactly once.
    Merge(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Spec(msg) => write!(f, "invalid fleet spec: {msg}"),
            FleetError::WorkerBinary(msg) => write!(f, "fleet worker binary: {msg}"),
            FleetError::Transport(e) => write!(f, "fleet worker transport: {e}"),
            FleetError::Protocol(msg) => write!(f, "fleet protocol violation: {msg}"),
            FleetError::Host { host, message } => write!(f, "host {host} failed: {message}"),
            FleetError::Merge(msg) => write!(f, "fleet merge violation: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for FleetError {
    fn from(e: TransportError) -> Self {
        FleetError::Transport(e)
    }
}
