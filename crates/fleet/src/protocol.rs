//! The fleet worker wire protocol, modeled on the accel layer's
//! `matrixflow-worker` (`ChildWorker`): newline-framed commands with
//! length-prefixed JSON blocks, one request/response pair at a time.
//!
//! ```text
//! > PING                      < PONG
//! > FLEET <len>\n<len bytes>  < OK            (load + validate a FleetSpec)
//! > HOST <h>\n                < RESULT <len>\n<len bytes>   (a HostResult)
//! > EXIT                      (or EOF: exit cleanly)
//! ```
//!
//! Any failure — malformed frame, invalid spec, shard error — answers
//! `ERR <message>` on one line and keeps the worker alive for the next
//! command, so one bad sweep point cannot tear down a pooled process.
//!
//! Both sides live here: [`serve_fleet_worker`] is the entire body of
//! the `accesys-fleet-worker` binary (unit-testable in-memory), and
//! [`FleetWorker`] is the coordinator's handle over the accel layer's
//! deadline-guarded [`PipeChild`] transport — a worker that dies or
//! wedges surfaces as a typed error, never a hang.

use crate::host::{run_host, HostResult};
use crate::{FleetError, FleetSpec};
use accesys_accel::transport::PipeChild;
use std::io::{BufRead, Write};
use std::time::Duration;

/// Serve the fleet worker protocol over `input`/`output` until `EXIT`
/// or EOF — the entire `accesys-fleet-worker` binary body, kept in the
/// library so both protocol sides are testable in one place.
///
/// # Errors
///
/// Returns an error only when the pipes themselves fail; protocol and
/// spec problems answer `ERR` and continue.
pub fn serve_fleet_worker<R: BufRead, W: Write>(
    input: &mut R,
    output: &mut W,
) -> std::io::Result<()> {
    let mut spec: Option<FleetSpec> = None;
    loop {
        let mut line = String::new();
        if input.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let line = line.trim_end();
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("PING") => reply(output, "PONG")?,
            Some("EXIT") | None => return Ok(()),
            Some("FLEET") => {
                let Some(len) = parts.next().and_then(|p| p.parse::<usize>().ok()) else {
                    reply(output, "ERR bad FLEET frame")?;
                    continue;
                };
                let mut buf = vec![0u8; len];
                input.read_exact(&mut buf)?;
                match parse_spec(&buf) {
                    Ok(s) => {
                        spec = Some(s);
                        reply(output, "OK")?;
                    }
                    Err(msg) => reply(output, &format!("ERR {}", one_line(&msg)))?,
                }
            }
            Some("HOST") => {
                let Some(host) = parts.next().and_then(|p| p.parse::<u32>().ok()) else {
                    reply(output, "ERR bad HOST frame")?;
                    continue;
                };
                let Some(spec) = spec.as_ref() else {
                    reply(output, "ERR HOST before FLEET")?;
                    continue;
                };
                match run_host(spec, host) {
                    Ok(result) => {
                        let json = serde_json::to_string(&result).expect("host results serialize");
                        writeln!(output, "RESULT {}", json.len())?;
                        output.write_all(json.as_bytes())?;
                        output.flush()?;
                    }
                    Err(e) => reply(output, &format!("ERR {}", one_line(&e.to_string())))?,
                }
            }
            Some(other) => reply(output, &format!("ERR unknown command {other}"))?,
        }
    }
}

fn reply<W: Write>(output: &mut W, line: &str) -> std::io::Result<()> {
    writeln!(output, "{line}")?;
    output.flush()
}

fn parse_spec(bytes: &[u8]) -> Result<FleetSpec, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("spec is not UTF-8: {e}"))?;
    let spec: FleetSpec =
        serde_json::from_str(text).map_err(|e| format!("spec does not parse: {e}"))?;
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// Newlines would break the line framing of `ERR` replies.
fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ")
}

/// Coordinator-side handle to one spawned `accesys-fleet-worker`
/// process. Dropping it sends `EXIT`; the transport's drop contract
/// kills a worker that ignores it.
#[derive(Debug)]
pub struct FleetWorker {
    pipe: PipeChild,
}

/// Host shards at paper scale run for a while; give them a generous
/// read deadline (still bounded — a wedged worker surfaces as
/// [`FleetError::Transport`] instead of hanging the sweep).
const READ_DEADLINE: Duration = Duration::from_secs(600);

impl FleetWorker {
    /// Spawn and handshake a worker from the binary at `bin`.
    ///
    /// # Errors
    ///
    /// [`FleetError::Transport`] when the spawn or pipes fail,
    /// [`FleetError::Protocol`] when the child is not a fleet worker.
    pub fn spawn(bin: &std::path::Path) -> Result<FleetWorker, FleetError> {
        let mut pipe = PipeChild::spawn(bin).map_err(|e| {
            FleetError::WorkerBinary(format!("cannot spawn {}: {e}", bin.display()))
        })?;
        pipe.set_read_deadline(READ_DEADLINE);
        let mut worker = FleetWorker { pipe };
        worker.pipe.send_line("PING")?;
        let pong = worker.pipe.read_line()?;
        if pong != "PONG" {
            return Err(FleetError::Protocol(format!(
                "handshake expected PONG, got {pong:?}"
            )));
        }
        Ok(worker)
    }

    /// Whether the worker process is still running.
    pub fn is_alive(&mut self) -> bool {
        self.pipe.is_alive()
    }

    /// Ship a fleet spec (pre-serialized once by the pool) to the
    /// worker.
    ///
    /// # Errors
    ///
    /// [`FleetError::Transport`] on pipe failure,
    /// [`FleetError::Protocol`] when the worker rejects the spec.
    pub fn load(&mut self, spec_json: &str) -> Result<(), FleetError> {
        self.pipe.send_line(&format!("FLEET {}", spec_json.len()))?;
        self.pipe.write_all(spec_json.as_bytes())?;
        self.pipe.flush()?;
        let reply = self.pipe.read_line()?;
        if reply != "OK" {
            return Err(FleetError::Protocol(format!(
                "worker rejected spec: {reply}"
            )));
        }
        Ok(())
    }

    /// Run host shard `host` remotely and read back its result.
    ///
    /// # Errors
    ///
    /// [`FleetError::Transport`] on pipe failure (including a worker
    /// that died or timed out mid-shard), [`FleetError::Protocol`] for
    /// a malformed or `ERR` reply.
    pub fn run_host(&mut self, host: u32) -> Result<HostResult, FleetError> {
        self.pipe.send_line(&format!("HOST {host}"))?;
        let reply = self.pipe.read_line()?;
        let Some(len) = reply
            .strip_prefix("RESULT ")
            .and_then(|l| l.parse::<usize>().ok())
        else {
            return Err(FleetError::Protocol(format!(
                "HOST {host} expected RESULT, got {reply}"
            )));
        };
        let mut buf = vec![0u8; len];
        self.pipe.read_exact(&mut buf)?;
        let text = std::str::from_utf8(&buf)
            .map_err(|e| FleetError::Protocol(format!("result is not UTF-8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| FleetError::Protocol(format!("result does not parse: {e}")))
    }
}

impl Drop for FleetWorker {
    fn drop(&mut self) {
        // Polite goodbye; PipeChild's drop bounds the wait and kills a
        // worker that ignores it.
        let _ = self.pipe.send_line("EXIT");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// Drive the worker loop fully in-memory (no process spawn).
    fn roundtrip(script: &[u8]) -> Vec<u8> {
        let mut input = Cursor::new(script.to_vec());
        let mut output = Vec::new();
        serve_fleet_worker(&mut input, &mut output).expect("serve failed");
        output
    }

    fn tiny_spec() -> FleetSpec {
        FleetSpec::demo(2, &[2])
    }

    #[test]
    fn ping_pong_and_exit() {
        assert_eq!(roundtrip(b"PING\nEXIT\n"), b"PONG\n");
    }

    #[test]
    fn eof_terminates_cleanly() {
        assert!(roundtrip(b"").is_empty());
    }

    #[test]
    fn host_before_fleet_is_an_err_reply() {
        let out = roundtrip(b"HOST 0\nEXIT\n");
        assert_eq!(out, b"ERR HOST before FLEET\n");
    }

    #[test]
    fn malformed_frames_get_err_replies_and_the_loop_survives() {
        let out = roundtrip(b"FLEET zero\nHOST banana\nFROB\nPING\nEXIT\n");
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ERR bad FLEET frame");
        assert_eq!(lines[1], "ERR bad HOST frame");
        assert!(lines[2].starts_with("ERR unknown command"));
        assert_eq!(lines[3], "PONG");
    }

    #[test]
    fn invalid_spec_is_rejected_with_err() {
        let mut spec = tiny_spec();
        spec.link.latency_ns = 0.0; // zero lookahead: invalid
        let json = serde_json::to_string(&spec).unwrap();
        let mut script = format!("FLEET {}\n", json.len()).into_bytes();
        script.extend_from_slice(json.as_bytes());
        script.extend_from_slice(b"EXIT\n");
        let out = roundtrip(&script);
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("ERR invalid fleet spec"),
            "want spec rejection, got {text:?}"
        );
    }

    #[test]
    fn fleet_then_host_matches_run_host_exactly() {
        let spec = tiny_spec();
        let json = serde_json::to_string(&spec).unwrap();
        let mut script = format!("FLEET {}\n", json.len()).into_bytes();
        script.extend_from_slice(json.as_bytes());
        script.extend_from_slice(b"HOST 1\nEXIT\n");
        let out = roundtrip(&script);
        let text = String::from_utf8(out).unwrap();
        let body = text.strip_prefix("OK\n").expect("spec accepted");
        let (header, payload) = body.split_once('\n').expect("RESULT framed");
        let len: usize = header.strip_prefix("RESULT ").unwrap().parse().unwrap();
        assert_eq!(payload.len(), len);
        let remote: HostResult = serde_json::from_str(payload).unwrap();
        let local = run_host(&spec, 1).unwrap();
        assert_eq!(remote, local, "wire round-trip must be exact");
    }
}
