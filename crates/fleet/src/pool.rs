//! The fleet worker pool: N long-lived `accesys-fleet-worker`
//! processes shared across sweep points.
//!
//! Spawning a process per grid cell wastes a fork+exec (and a release
//! binary load) per point; the pool instead keeps workers alive across
//! [`FleetPool::run`] calls and re-ships the (small) spec JSON each
//! time. [`FleetPool::spawned`] counts real process spawns so callers
//! can *prove* reuse — the perf harness records it in
//! `BENCH_fleet.json`.
//!
//! Host shards are distributed dynamically: coordinator threads (one
//! per worker process) pull host indexes from a shared counter, so an
//! unlucky worker stuck with a heavy shard does not serialize the
//! rest. Results land in a slot-per-host vector and are merged in host
//! order — completion order never reaches the report, which is what
//! keeps `--fleet-workers 1` and `--fleet-workers 4` byte-identical.

use crate::host::{run_host, HostResult};
use crate::merge::{merge, FleetReport};
use crate::protocol::FleetWorker;
use crate::{FleetError, FleetSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// Locate the `accesys-fleet-worker` binary: the
/// `ACCESYS_FLEET_WORKER_BIN` env override, else a sibling of the
/// current executable (bins and the worker land in the same target
/// directory; test executables live one level down in `deps/`).
///
/// # Errors
///
/// [`FleetError::WorkerBinary`] when no candidate exists.
pub fn worker_binary() -> Result<PathBuf, FleetError> {
    if let Ok(path) = std::env::var("ACCESYS_FLEET_WORKER_BIN") {
        return Ok(PathBuf::from(path));
    }
    let name = format!("accesys-fleet-worker{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe()
        .map_err(|e| FleetError::WorkerBinary(format!("cannot locate current exe: {e}")))?;
    let mut dirs = Vec::new();
    if let Some(d) = exe.parent() {
        dirs.push(d.to_path_buf());
        if let Some(dd) = d.parent() {
            dirs.push(dd.to_path_buf());
        }
    }
    for dir in &dirs {
        let candidate = dir.join(&name);
        if candidate.is_file() {
            return Ok(candidate);
        }
    }
    Err(FleetError::WorkerBinary(format!(
        "{name} not found next to {} (set ACCESYS_FLEET_WORKER_BIN)",
        exe.display()
    )))
}

/// A pool of fleet worker processes (or the in-process fallback at
/// zero workers). Reused across [`FleetPool::run`] calls.
#[derive(Debug)]
pub struct FleetPool {
    /// Target worker process count; 0 = run shards in-process.
    workers: u32,
    /// Worker binary (resolved once; `None` in in-process mode).
    bin: Option<PathBuf>,
    /// Live worker handles.
    procs: Vec<FleetWorker>,
    /// Processes spawned over the pool's lifetime (the reuse proof).
    spawned: u64,
}

impl FleetPool {
    /// A pool that runs every shard in-process (no child processes,
    /// the 1-process baseline of the determinism contract).
    pub fn in_process() -> FleetPool {
        FleetPool {
            workers: 0,
            bin: None,
            procs: Vec::new(),
            spawned: 0,
        }
    }

    /// A pool of `workers` processes using the auto-located worker
    /// binary ([`worker_binary`]); `0` falls back to in-process.
    ///
    /// # Errors
    ///
    /// [`FleetError::WorkerBinary`] when the binary cannot be found.
    pub fn spawn(workers: u32) -> Result<FleetPool, FleetError> {
        if workers == 0 {
            return Ok(FleetPool::in_process());
        }
        Ok(FleetPool::with_binary(worker_binary()?, workers))
    }

    /// A pool of `workers` processes over an explicit binary path
    /// (tests use the `CARGO_BIN_EXE_*` path here).
    pub fn with_binary(bin: PathBuf, workers: u32) -> FleetPool {
        FleetPool {
            workers: workers.max(1),
            bin: Some(bin),
            procs: Vec::new(),
            spawned: 0,
        }
    }

    /// Target worker process count (0 = in-process).
    pub fn workers(&self) -> u32 {
        self.workers
    }

    /// Worker processes spawned over the pool's lifetime. Stays at
    /// `workers()` across any number of `run` calls when reuse works.
    pub fn spawned(&self) -> u64 {
        self.spawned
    }

    /// Simulate the whole fleet: every host shard once, merged in host
    /// order. Byte-identical output at any worker count, including 0.
    ///
    /// # Errors
    ///
    /// Spec validation errors, worker spawn/transport failures, shard
    /// errors (tagged with their host), and merge violations.
    pub fn run(&mut self, spec: &FleetSpec) -> Result<FleetReport, FleetError> {
        spec.validate()?;
        if self.workers == 0 {
            let results = (0..spec.hosts)
                .map(|h| run_host(spec, h))
                .collect::<Result<Vec<_>, _>>()?;
            return merge(spec, results);
        }

        // Keep at most one coordinator per host; prune workers that
        // died since the last run (the pool heals by respawning).
        self.procs.retain_mut(|w| w.is_alive());
        let want = (self.workers as usize).min(spec.hosts as usize).max(1);
        let bin = self.bin.clone().expect("process pools carry a binary");
        while self.procs.len() < want {
            self.procs.push(FleetWorker::spawn(&bin)?);
            self.spawned += 1;
        }

        // Ship the spec once per worker, then let coordinator threads
        // pull host indexes until the fleet is covered.
        let spec_json = serde_json::to_string(spec).expect("fleet specs serialize");
        for w in self.procs.iter_mut().take(want) {
            w.load(&spec_json)?;
        }
        let next_host = AtomicU32::new(0);
        let slots: Vec<Mutex<Option<Result<HostResult, FleetError>>>> =
            (0..spec.hosts).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for w in self.procs.iter_mut().take(want) {
                scope.spawn(|| loop {
                    let host = next_host.fetch_add(1, Ordering::Relaxed);
                    if host >= spec.hosts {
                        return;
                    }
                    let result = w.run_host(host);
                    let failed = result.is_err();
                    *slots[host as usize].lock().expect("slot lock") = Some(result);
                    if failed {
                        return; // a broken worker stops pulling work
                    }
                });
            }
        });

        let mut results = Vec::with_capacity(spec.hosts as usize);
        for (host, slot) in slots.into_iter().enumerate() {
            match slot.into_inner().expect("slot lock") {
                Some(Ok(r)) => results.push(r),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(FleetError::Host {
                        host: host as u32,
                        message: "shard was never run (worker died early?)".to_string(),
                    })
                }
            }
        }
        merge(spec, results)
    }
}
