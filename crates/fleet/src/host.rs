//! One host shard: route the fleet trace to a host over its network
//! link, serve it on that host's simulation, and fold the outcome into
//! a flat, JSON-shippable [`HostResult`].
//!
//! [`run_host`] is a pure function of `(spec, host)` — no ambient
//! state, no clocks, no randomness beyond the spec's seed — which is
//! the whole determinism argument of the fleet layer: the coordinator
//! and every worker process compute bit-identical [`HostResult`]s for
//! the same inputs, so merged fleet reports cannot depend on *where*
//! a host shard ran, only on which hosts exist.

use crate::{FleetError, FleetSpec};
use accesys_serve::{serve_traced, Arrival};
use accesys_sim::Histogram;

/// A [`Histogram`] flattened for the wire: exact bucket indexes plus
/// the exact scalar moments. Round-trips bit-identically through the
/// vendored JSON shim ([`Histogram::raw_buckets`] /
/// [`Histogram::from_raw`]).
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireHist {
    /// Non-empty `(bucket index, count)` pairs.
    pub buckets: Vec<(u32, u64)>,
    /// Exact sample sum (0 when empty).
    pub sum: f64,
    /// Exact minimum (0 when empty).
    pub min: f64,
    /// Exact maximum (0 when empty).
    pub max: f64,
}

impl WireHist {
    /// Flatten a histogram.
    pub fn of(h: &Histogram) -> WireHist {
        WireHist {
            buckets: h.raw_buckets(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
        }
    }

    /// Rebuild the histogram.
    pub fn unpack(&self) -> Histogram {
        Histogram::from_raw(&self.buckets, self.sum, self.min, self.max)
    }
}

/// One tenant's share of a host shard.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HostTenant {
    /// Tenant index.
    pub tenant: u32,
    /// Requests admitted on this host.
    pub admitted: u64,
    /// Requests rejected at this host's admission queue.
    pub rejected: u64,
    /// End-to-end latency distribution of this tenant's completions.
    pub e2e: WireHist,
}

/// Everything a host shard reports back: flat counters plus wire
/// histograms, in exactly the shape the merge consumes.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HostResult {
    /// Which host this is (0-based).
    pub host: u32,
    /// Arrivals routed to this host.
    pub offered: u64,
    /// Requests admitted past the queue bound.
    pub admitted: u64,
    /// Requests that completed all their slices.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Completions within the end-to-end SLO.
    pub within_slo: u64,
    /// Batching rounds this host executed (its round log total).
    pub rounds: u64,
    /// Idle jumps of this host's serving clock.
    pub idle_jumps: u64,
    /// Peak requests folded into one round on this host.
    pub peak_batch: u64,
    /// Host serving-clock span (delivery of first work → last host
    /// completion), ns.
    pub elapsed_ns: f64,
    /// Frontend-clock makespan: when the last response lands back at
    /// the frontend, ns (0 when nothing completed).
    pub makespan_ns: f64,
    /// End-to-end latency (frontend arrival → response back at the
    /// frontend) over every completion.
    pub e2e: WireHist,
    /// Network share of the end-to-end latency (both legs, including
    /// serialization and ingress queuing).
    pub network: WireHist,
    /// Per-tenant breakdown, dense over the spec's tenant count.
    pub tenants: Vec<HostTenant>,
}

/// Which host an arrival is routed to: round-robin over the arrival
/// index. The frontend knows nothing about host load — routing must be
/// a pure function of the trace for the shards to stay independent.
pub fn route(arrival_index: usize, hosts: u32) -> u32 {
    (arrival_index % hosts.max(1) as usize) as u32
}

/// An arrival as delivered to a host, with its network bookkeeping.
struct Delivered {
    /// Frontend arrival tick, ns.
    frontend_ns: u64,
    /// Delivery tick at the host (ingress link FIFO + latency), ns.
    host_ns: u64,
    tenant: u32,
}

/// Route `arrivals` to `host` and push them through the ingress link:
/// a FIFO serialization stage at the link rate plus fixed propagation
/// latency. Monotone in arrival order, so delivery order = trace
/// order and the host-side trace stays sorted.
fn deliver(spec: &FleetSpec, host: u32, arrivals: &[Arrival]) -> Vec<Delivered> {
    let ser_ns = spec.link.ser_ns();
    let latency_ns = spec.link.latency_ns;
    let mut busy_ns = 0.0f64;
    let mut out = Vec::new();
    for (i, a) in arrivals.iter().enumerate() {
        if route(i, spec.hosts) != host {
            continue;
        }
        let start = (a.at_ns as f64).max(busy_ns);
        busy_ns = start + ser_ns;
        // Ceil to the ns grid: a request is never available before it
        // could have fully arrived.
        let host_ns = (busy_ns + latency_ns).ceil() as u64;
        out.push(Delivered {
            frontend_ns: a.at_ns,
            host_ns,
            tenant: a.tenant,
        });
    }
    out
}

/// Simulate host `host` of the fleet from scratch: generate the fleet
/// trace, deliver this host's share over the ingress link, serve it,
/// and account end-to-end latencies (egress leg added per response).
///
/// # Errors
///
/// [`FleetError::Spec`] for an invalid spec or a host simulation that
/// does not build; [`FleetError::Host`] when the serve engine fails.
pub fn run_host(spec: &FleetSpec, host: u32) -> Result<HostResult, FleetError> {
    spec.validate()?;
    if host >= spec.hosts {
        return Err(FleetError::Host {
            host,
            message: format!("host index out of range (fleet has {})", spec.hosts),
        });
    }
    let fleet_trace = spec.traffic.arrivals();
    let delivered = deliver(spec, host, &fleet_trace);
    let host_trace: Vec<Arrival> = delivered
        .iter()
        .map(|d| Arrival {
            at_ns: d.host_ns,
            tenant: d.tenant,
        })
        .collect();

    let mut sim = spec.host_simulation()?;
    let policy = spec.policy.policy();
    let cfg = spec.serve_config();
    let (report, completions) = serve_traced(&mut sim, &spec.request, &host_trace, &policy, &cfg)
        .map_err(|e| FleetError::Host {
        host,
        message: e.to_string(),
    })?;

    // Fold completions into end-to-end terms: the response crosses the
    // link back (serialization + propagation, no egress queuing — one
    // response per request, paced by host rounds).
    let return_ns = spec.link.ser_ns() + spec.link.latency_ns;
    let slo = spec.policy.slo();
    let tenant_count = spec.traffic.tenants.max(1) as usize;
    let mut e2e = Histogram::new();
    let mut network = Histogram::new();
    let mut e2e_by_tenant = vec![Histogram::new(); tenant_count];
    let mut within_slo = 0u64;
    let mut makespan_ns = 0.0f64;
    for c in &completions {
        // The serve engine ids requests by host-trace index.
        let d = &delivered[c.id as usize];
        let back_ns = c.done_ns + return_ns;
        let e2e_ns = back_ns - d.frontend_ns as f64;
        let net_ns = (d.host_ns - d.frontend_ns) as f64 + return_ns;
        e2e.observe(e2e_ns);
        network.observe(net_ns);
        if let Some(h) = e2e_by_tenant.get_mut(c.tenant as usize) {
            h.observe(e2e_ns);
        }
        if e2e_ns <= slo {
            within_slo += 1;
        }
        makespan_ns = makespan_ns.max(back_ns);
    }

    let tenants = (0..tenant_count)
        .map(|t| HostTenant {
            tenant: t as u32,
            admitted: report.tenants.get(t).map_or(0, |r| r.admitted),
            rejected: report.tenants.get(t).map_or(0, |r| r.rejected),
            e2e: WireHist::of(&e2e_by_tenant[t]),
        })
        .collect();

    Ok(HostResult {
        host,
        offered: report.offered,
        admitted: report.admitted,
        completed: report.completed,
        rejected: report.rejected,
        within_slo,
        rounds: report.rounds,
        idle_jumps: report.idle_jumps,
        peak_batch: report.peak_batch as u64,
        elapsed_ns: report.elapsed_ns,
        makespan_ns,
        e2e: WireHist::of(&e2e),
        network: WireHist::of(&network),
        tenants,
    })
}
