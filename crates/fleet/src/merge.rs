//! Deterministic merge of per-host shard results into one fleet-level
//! report.
//!
//! The merge contract: results are sorted by host index and folded in
//! that order, so the fleet report is a function of the *set* of
//! [`HostResult`]s — never of the order worker processes finished in.
//! Histograms merge exactly (integer bucket counts, sums added in host
//! order), which is what makes the 1-vs-N-process byte-identity hold.

use crate::host::{HostResult, WireHist};
use crate::{FleetError, FleetSpec};
use accesys_serve::LatencySummary;
use accesys_sim::Histogram;

/// One tenant's slice of the fleet.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FleetTenantReport {
    /// Tenant index.
    pub tenant: u32,
    /// Requests admitted fleet-wide.
    pub admitted: u64,
    /// Requests rejected fleet-wide.
    pub rejected: u64,
    /// End-to-end latency distribution of this tenant's completions.
    pub latency: LatencySummary,
}

/// The fleet-level serve report: the cross-host analogue of the serve
/// layer's `ServeReport`, with per-host round logs preserved.
#[derive(Clone, Debug, serde::Serialize)]
pub struct FleetReport {
    /// Host count.
    pub hosts: u32,
    /// Accelerator endpoints per host.
    pub endpoints_per_host: u32,
    /// Total accelerator endpoints simulated.
    pub endpoints: u64,
    /// Arrivals offered fleet-wide.
    pub offered: u64,
    /// Requests admitted fleet-wide.
    pub admitted: u64,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Requests rejected fleet-wide.
    pub rejected: u64,
    /// Batching rounds executed across all hosts.
    pub rounds: u64,
    /// Per-host round log, indexed by host (the merged round counts —
    /// kept per host so shard imbalance stays visible).
    pub host_rounds: Vec<u64>,
    /// Idle jumps across all hosts.
    pub idle_jumps: u64,
    /// Peak single-round batch on any host.
    pub peak_batch: u64,
    /// Longest host serving-clock span, ns.
    pub elapsed_ns: f64,
    /// Frontend-clock makespan: last response back at the frontend, ns.
    pub makespan_ns: f64,
    /// Offered rate over the makespan, req/s.
    pub offered_rps: f64,
    /// Completions per second of frontend time.
    pub throughput_rps: f64,
    /// Within-SLO completions per second of frontend time.
    pub goodput_rps: f64,
    /// End-to-end latency over every completion.
    pub latency: LatencySummary,
    /// Network share of the end-to-end latency.
    pub network: LatencySummary,
    /// Per-tenant breakdown, dense over the spec's tenant count.
    pub tenants: Vec<FleetTenantReport>,
}

/// Merge one result per host into the fleet report. Order of `results`
/// does not matter; identity and completeness do.
///
/// # Errors
///
/// [`FleetError::Merge`] when a host is missing, duplicated, or out of
/// range.
pub fn merge(spec: &FleetSpec, mut results: Vec<HostResult>) -> Result<FleetReport, FleetError> {
    let hosts = spec.hosts;
    if results.len() != hosts as usize {
        return Err(FleetError::Merge(format!(
            "expected {} host results, got {}",
            hosts,
            results.len()
        )));
    }
    results.sort_by_key(|r| r.host);
    for (i, r) in results.iter().enumerate() {
        if r.host != i as u32 {
            return Err(FleetError::Merge(format!(
                "host results must cover 0..{} exactly once; slot {} holds host {}",
                hosts, i, r.host
            )));
        }
    }

    let tenant_count = spec.traffic.tenants.max(1) as usize;
    let mut e2e = Histogram::new();
    let mut network = Histogram::new();
    let mut by_tenant: Vec<(u64, u64, Histogram)> = vec![(0, 0, Histogram::new()); tenant_count];
    let mut offered = 0u64;
    let mut admitted = 0u64;
    let mut completed = 0u64;
    let mut rejected = 0u64;
    let mut within_slo = 0u64;
    let mut rounds = 0u64;
    let mut idle_jumps = 0u64;
    let mut peak_batch = 0u64;
    let mut elapsed_ns = 0.0f64;
    let mut makespan_ns = 0.0f64;
    let mut host_rounds = Vec::with_capacity(results.len());
    for r in &results {
        offered += r.offered;
        admitted += r.admitted;
        completed += r.completed;
        rejected += r.rejected;
        within_slo += r.within_slo;
        rounds += r.rounds;
        idle_jumps += r.idle_jumps;
        peak_batch = peak_batch.max(r.peak_batch);
        elapsed_ns = elapsed_ns.max(r.elapsed_ns);
        makespan_ns = makespan_ns.max(r.makespan_ns);
        host_rounds.push(r.rounds);
        merge_wire(&mut e2e, &r.e2e);
        merge_wire(&mut network, &r.network);
        for t in &r.tenants {
            if let Some((adm, rej, hist)) = by_tenant.get_mut(t.tenant as usize) {
                *adm += t.admitted;
                *rej += t.rejected;
                hist.merge(&t.e2e.unpack());
            }
        }
    }

    let per_sec = |n: u64| {
        if makespan_ns > 0.0 {
            n as f64 / (makespan_ns / 1e9)
        } else {
            0.0
        }
    };
    let tenants = by_tenant
        .into_iter()
        .enumerate()
        .map(|(t, (adm, rej, hist))| FleetTenantReport {
            tenant: t as u32,
            admitted: adm,
            rejected: rej,
            latency: LatencySummary::of(&hist),
        })
        .collect();
    Ok(FleetReport {
        hosts,
        endpoints_per_host: spec.endpoints_per_host(),
        endpoints: spec.endpoints(),
        offered,
        admitted,
        completed,
        rejected,
        rounds,
        host_rounds,
        idle_jumps,
        peak_batch,
        elapsed_ns,
        makespan_ns,
        offered_rps: per_sec(offered),
        throughput_rps: per_sec(completed),
        goodput_rps: per_sec(within_slo),
        latency: LatencySummary::of(&e2e),
        network: LatencySummary::of(&network),
        tenants,
    })
}

fn merge_wire(into: &mut Histogram, wire: &WireHist) {
    into.merge(&wire.unpack());
}
