//! The fleet determinism contract, with real worker processes: the
//! merged fleet report must be **byte-identical** no matter how many
//! `accesys-fleet-worker` OS processes compute the host shards — the
//! cross-process sibling of `crates/bench/tests/thread_determinism.rs`
//! (threads) and `determinism.rs` (sweep jobs).

use accesys_fleet::{FleetPool, FleetSpec};
use std::path::PathBuf;

fn worker_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_accesys-fleet-worker"))
}

fn report_json(pool: &mut FleetPool, spec: &FleetSpec) -> String {
    let report = pool.run(spec).expect("fleet run completes");
    serde_json::to_string_pretty(&serde::Serialize::to_value(&report))
        .expect("fleet reports serialize")
}

#[test]
fn fleet_report_is_byte_identical_across_worker_process_counts() {
    let spec = FleetSpec::demo(4, &[2]);
    let baseline = report_json(&mut FleetPool::in_process(), &spec);
    for workers in [1u32, 2, 4] {
        let mut pool = FleetPool::with_binary(worker_bin(), workers);
        assert_eq!(
            report_json(&mut pool, &spec),
            baseline,
            "fleet report drifted at fleet_workers={workers}"
        );
        assert_eq!(pool.spawned(), u64::from(workers.min(spec.hosts)));
    }
}

#[test]
fn worker_processes_are_reused_across_runs() {
    let mut pool = FleetPool::with_binary(worker_bin(), 2);
    let spec_a = FleetSpec::demo(4, &[2]);
    let mut spec_b = spec_a.clone();
    spec_b.traffic.rate_rps = 35_000.0;
    let a1 = report_json(&mut pool, &spec_a);
    let _b = report_json(&mut pool, &spec_b);
    let a2 = report_json(&mut pool, &spec_a);
    // Same spec, same pooled processes, same bytes…
    assert_eq!(a1, a2, "pooled reruns must reproduce");
    // …and the pool never spawned more than its two workers.
    assert_eq!(pool.spawned(), 2, "sweep points must reuse processes");
}

#[test]
fn the_sharding_really_is_multi_process() {
    // Guard against the byte-identity tests degenerating into
    // "in-process vs in-process": a process pool must really have
    // spawned children, and the demo fleet must really shard.
    let spec = FleetSpec::demo(4, &[2]);
    assert!(spec.hosts > 1, "demo fleet must have multiple shards");
    let mut pool = FleetPool::with_binary(worker_bin(), 4);
    let _ = pool.run(&spec).expect("fleet run completes");
    assert_eq!(pool.spawned(), 4, "expected 4 real worker processes");
}

#[cfg(unix)]
mod failure_semantics {
    use super::*;
    use accesys_fleet::FleetError;
    use std::os::unix::fs::PermissionsExt;

    /// An impostor worker that handshakes, then dies on the first real
    /// command instead of answering.
    fn dying_worker() -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("accesys-fake-fleet-worker-{}", std::process::id()));
        std::fs::write(&path, "#!/bin/sh\nread l; echo PONG; read l; exit 3\n")
            .expect("write fake worker");
        let mut perm = std::fs::metadata(&path).expect("stat").permissions();
        perm.set_mode(0o755);
        std::fs::set_permissions(&path, perm).expect("chmod");
        path
    }

    #[test]
    fn dead_worker_is_a_typed_error_not_a_hang() {
        let spec = FleetSpec::demo(2, &[2]);
        let mut pool = FleetPool::with_binary(dying_worker(), 1);
        let err = pool.run(&spec).expect_err("worker dies mid-protocol");
        assert!(
            matches!(
                err,
                FleetError::Transport(_) | FleetError::Protocol(_) | FleetError::Host { .. }
            ),
            "want a typed transport/protocol error, got {err:?} ({err})"
        );
    }
}
