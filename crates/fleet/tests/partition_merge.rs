//! Property: any partition of a valid fleet's hosts — any assignment
//! of shards to computers, finishing in any order — re-merges to
//! exactly the sequential in-process result. This is the algebraic
//! core of the fleet determinism contract, checked over random fleet
//! shapes and traffic.

use accesys_fleet::{merge, run_host, FleetSpec, HostResult};
use proptest::prelude::*;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(&serde::Serialize::to_value(value)).expect("serializes")
}

/// Deterministically "shuffle" results by rotating and interleaving:
/// enough to destroy host order without needing an RNG here.
fn scramble(mut results: Vec<HostResult>, rot: usize) -> Vec<HostResult> {
    if results.is_empty() {
        return results;
    }
    let rot = rot % results.len();
    results.rotate_left(rot);
    let (evens, odds): (Vec<_>, Vec<_>) = results
        .into_iter()
        .enumerate()
        .partition(|(i, _)| i % 2 == 0);
    odds.into_iter().chain(evens).map(|(_, r)| r).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_partitions_remerge_to_the_sequential_result(
        hosts in 1u32..6,
        fan in 1u32..5,
        seed in 0u64..1000,
        rate_scale in 1u32..4,
        rot in 0usize..8,
    ) {
        let mut spec = FleetSpec::demo(hosts, &[fan]);
        spec.traffic.seed = seed;
        spec.traffic.rate_rps *= rate_scale as f64;

        // Sequential baseline: host order, one "computer".
        let sequential: Vec<HostResult> = (0..hosts)
            .map(|h| run_host(&spec, h).expect("host shard runs"))
            .collect();
        let baseline = merge(&spec, sequential.clone()).expect("merge");

        // The same shards handed back in scrambled completion order.
        let scrambled = scramble(sequential, rot);
        let remerged = merge(&spec, scrambled).expect("merge");
        prop_assert_eq!(json(&remerged), json(&baseline));
    }
}
