//! Integration tests for the LLM serving engine: slot reuse at mixed
//! admission/retirement rounds, whole-batch EOS drains, KV-budget
//! entry errors, and byte-identical trace replay of a mixed
//! prefill/decode arrival file.

use accesys::topology::{switch_tree_with, EndpointOptions};
use accesys::{MemBackendConfig, Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_serve::{
    serve_llm, trace_from_json, Arrival, LlmRequestShape, LlmServeConfig, LlmServeError, Policy,
};
use accesys_workload::llm::LlmSpec;

/// A compute-dominated two-leaf tree with per-device local memory —
/// the smallest topology where KV homes actually differ.
fn two_leaf_sim() -> Simulation {
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(5_000.0);
    cfg.smmu = None;
    let spec = switch_tree_with(&cfg, &[2], |_| EndpointOptions {
        accel: None,
        dev_mem: Some(MemBackendConfig::Dram(MemTech::Hbm2)),
    })
    .expect("valid tree");
    Simulation::from_topology(cfg, &spec).expect("valid topology")
}

/// A tiny autoregressive request: 8-token prompt, `decode` generated
/// tokens.
fn shape(decode: u32) -> LlmRequestShape {
    LlmRequestShape {
        spec: LlmSpec::tiny(),
        prompt: 8,
        decode,
    }
}

fn at(at_ns: u64) -> Arrival {
    Arrival { at_ns, tenant: 0 }
}

#[test]
fn prefill_folds_in_the_round_a_decode_retires() {
    // Batch cap 1: request 0 occupies the only slot for 1 prefill +
    // 2 decode rounds. Request 1 arrives at t=0 too, so the round that
    // retires request 0 must hand the slot straight to request 1 —
    // no idle round in between (slot reuse at the barrier).
    let mut sim = two_leaf_sim();
    let report = serve_llm(
        &mut sim,
        &shape(2),
        &[at(0), at(0)],
        &Policy::Fifo,
        &LlmServeConfig::new(1, 16, 1 << 20),
    )
    .expect("serve completes");
    assert_eq!(report.completed, 2);
    assert_eq!(report.idle_jumps, 0, "slot reuse leaves no idle gap");
    // 2 requests × (1 prefill + 2 decode) rounds, back to back.
    assert_eq!(report.rounds, 6);
    assert_eq!(report.peak_batch, 1);
    assert_eq!(report.tokens_decoded, 4);
}

#[test]
fn whole_batch_eos_drains_without_idle_spin() {
    // Four identical requests admitted together hit EOS in the same
    // round. With no arrivals left the engine must drain immediately:
    // exactly 1 prefill round + `decode` decode rounds, zero idle
    // jumps, no spinning on an empty batch.
    let mut sim = two_leaf_sim();
    let report = serve_llm(
        &mut sim,
        &shape(3),
        &[at(0), at(0), at(0), at(0)],
        &Policy::Fifo,
        &LlmServeConfig::new(8, 16, 1 << 20),
    )
    .expect("serve completes");
    assert_eq!(report.completed, 4);
    assert_eq!(report.rounds, 4, "1 prefill + 3 decode rounds, then done");
    assert_eq!(report.idle_jumps, 0);
    assert_eq!(report.peak_batch, 4);
    // Everything decoded in lockstep: no round mixed prefill and decode.
    assert_eq!(report.mixed_rounds, 0);
}

#[test]
fn staggered_admission_mixes_prefill_and_decode_rounds() {
    // A second wave arrives while the first is mid-decode: the engine
    // must batch the newcomers' prefills into the same rounds as the
    // veterans' decode slices (continuous batching, not stop-the-world).
    let mut sim = two_leaf_sim();
    let report = serve_llm(
        &mut sim,
        &shape(6),
        &[at(0), at(1), at(200_000), at(200_001)],
        &Policy::Fifo,
        &LlmServeConfig::new(8, 16, 1 << 20),
    )
    .expect("serve completes");
    assert_eq!(report.completed, 4);
    assert!(
        report.mixed_rounds > 0,
        "staggered arrivals must produce mixed prefill/decode rounds"
    );
    // TTFT is observed for every request and is never later than EOS.
    assert_eq!(report.ttft.count, 4);
    assert!(report.ttft.mean_ns < report.latency.mean_ns);
}

#[test]
fn zero_decode_requests_retire_at_prefill() {
    let mut sim = two_leaf_sim();
    let report = serve_llm(
        &mut sim,
        &shape(0),
        &[at(0), at(0)],
        &Policy::Fifo,
        &LlmServeConfig::new(4, 16, 1 << 20),
    )
    .expect("serve completes");
    assert_eq!(report.completed, 2);
    assert_eq!(report.rounds, 1);
    assert_eq!(report.tokens_decoded, 0);
    // TTFT coincides with full latency for prefill-only requests.
    assert_eq!(report.ttft.count, 2);
    assert_eq!(report.ttft.max_ns, report.latency.max_ns);
}

#[test]
fn oversized_shapes_are_a_typed_error_before_any_simulation() {
    let mut sim = two_leaf_sim();
    let s = shape(4);
    let need = s.max_kv_bytes();
    let err = serve_llm(
        &mut sim,
        &s,
        &[at(0)],
        &Policy::Fifo,
        &LlmServeConfig::new(4, 16, need - 1),
    )
    .expect_err("budget below one request's footprint");
    match err {
        LlmServeError::ShapeExceedsKvBudget { need: n, budget } => {
            assert_eq!(n, need);
            assert_eq!(budget, need - 1);
        }
        other => panic!("expected ShapeExceedsKvBudget, got {other}"),
    }
    // And a budget beyond the streaming window is rejected too.
    let err = serve_llm(
        &mut sim,
        &s,
        &[at(0)],
        &Policy::Fifo,
        &LlmServeConfig::new(4, 16, u64::MAX),
    )
    .expect_err("budget beyond the transfer window");
    assert!(matches!(err, LlmServeError::KvBudgetTooLarge { .. }));
}

#[test]
fn tight_budgets_surface_eviction_traffic() {
    // Budget fits 1.5 requests: concurrent decoders must thrash, and
    // the thrash must be visible as eviction/restore Transfer tasks —
    // while every request still completes.
    let s = shape(4);
    let tight = LlmServeConfig::new(4, 16, s.max_kv_bytes() * 3 / 2);
    let mut sim = two_leaf_sim();
    let report = serve_llm(
        &mut sim,
        &s,
        &[at(0), at(0), at(0), at(0)],
        &Policy::Fifo,
        &tight,
    )
    .expect("serve completes under pressure");
    assert_eq!(report.completed, 4);
    assert!(report.kv.evictions > 0, "pressure must evict");
    assert!(report.kv.evicted_bytes > 0);
    assert!(report.kv.restores > 0, "evicted decoders must come back");
    assert_eq!(
        report.kv.transfer_tasks,
        report.kv.evictions + report.kv.restores,
        "every KV event becomes a Transfer task"
    );
    assert!(report.kv.peak_resident <= tight.kv_budget);
}

#[test]
fn mixed_trace_replay_is_byte_identical() {
    // A recorded mixed-tenant arrival file served twice on fresh
    // simulations must produce byte-identical reports — the whole
    // prefill/decode/KV pipeline is deterministic.
    let trace = r#"[
        {"at_ns": 0,      "tenant": 0},
        {"at_ns": 40000,  "tenant": 1},
        {"at_ns": 40000,  "tenant": 0},
        {"at_ns": 900000, "tenant": 1},
        {"at_ns": 900001, "tenant": 0},
        {"at_ns": 900002, "tenant": 1}
    ]"#;
    let arrivals = trace_from_json(trace).expect("valid trace");
    let s = shape(3);
    let cfg = LlmServeConfig::new(2, 8, s.max_kv_bytes() * 2).with_slo_ns(5e6);
    let runs: Vec<String> = (0..2)
        .map(|_| {
            let mut sim = two_leaf_sim();
            let report = serve_llm(&mut sim, &s, &arrivals, &Policy::round_robin(), &cfg)
                .expect("serve completes");
            format!("{:?}", serde::Serialize::to_value(&report))
        })
        .collect();
    assert_eq!(runs[0], runs[1], "trace replay must be byte-identical");
}
