//! Integration tests for the serving layer: batching edge cases
//! (idle gaps, over-bound bursts, boundary arrivals) and end-to-end
//! determinism of trace generation and serving.

use accesys::topology::switch_tree;
use accesys::{Simulation, SystemConfig};
use accesys_mem::MemTech;
use accesys_serve::{serve, Arrival, ArrivalSpec, Policy, RequestShape, ServeConfig};
use proptest::prelude::*;

/// A compute-dominated two-leaf tree: fixed per-op compute, no SMMU.
fn two_leaf_sim() -> Simulation {
    let mut cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(5_000.0);
    cfg.smmu = None;
    let spec = switch_tree(&cfg, &[2]).expect("valid tree");
    Simulation::from_topology(cfg, &spec).expect("valid topology")
}

/// A small encoder request: fast enough for tight test loops.
fn shape(slices: u32) -> RequestShape {
    RequestShape {
        seq: 16,
        hidden: 64,
        heads: 4,
        mlp: 128,
        slices,
    }
}

fn at(at_ns: u64) -> Arrival {
    Arrival { at_ns, tenant: 0 }
}

#[test]
fn idle_gaps_jump_the_serving_clock() {
    // Two arrivals 10 ms apart — far beyond one request's service time.
    // The engine must go idle between them (empty queue, nothing in
    // flight) and jump the serving clock instead of spinning.
    let mut sim = two_leaf_sim();
    let report = serve(
        &mut sim,
        &shape(2),
        &[at(0), at(10_000_000)],
        &Policy::Fifo,
        &ServeConfig::new(4, 16),
    )
    .expect("serve completes");
    assert_eq!(report.completed, 2);
    assert_eq!(report.idle_jumps, 1, "one idle gap, one jump");
    assert!(
        report.elapsed_ns >= 10_000_000.0,
        "serving clock must cover the gap, got {}",
        report.elapsed_ns
    );
    // The second request was served fresh: its latency is not inflated
    // by the 10 ms it spent not yet arrived.
    assert!(report.latency.max_ns < 5_000_000.0);
}

#[test]
fn bursts_past_the_admission_bound_reject_typed_not_panic() {
    // A 32-request burst at t=0 into a 4-slot queue with a 2-slot
    // batch: the overflow is a counted rejection, not a panic, and
    // everything admitted still completes.
    let arrivals: Vec<Arrival> = (0..32).map(|_| at(0)).collect();
    let mut sim = two_leaf_sim();
    let report = serve(
        &mut sim,
        &shape(1),
        &arrivals,
        &Policy::Fifo,
        &ServeConfig::new(2, 4),
    )
    .expect("serve completes despite the burst");
    assert_eq!(report.offered, 32);
    assert!(report.rejected > 0, "a 32-burst must overflow 4 slots");
    assert_eq!(report.admitted + report.rejected, report.offered);
    assert_eq!(report.completed, report.admitted);
    assert_eq!(report.tenants[0].rejected, report.rejected);
}

#[test]
fn arrival_exactly_at_a_barrier_tick_is_admitted_at_that_barrier() {
    // Discover the barrier tick: serve one single-slice request from
    // t=0 and read off when its round ends on the serving clock.
    let boundary_ns = {
        let mut sim = two_leaf_sim();
        let r = serve(
            &mut sim,
            &shape(1),
            &[at(0)],
            &Policy::Fifo,
            &ServeConfig::new(4, 16),
        )
        .expect("serve completes");
        assert_eq!(r.rounds, 1);
        r.elapsed_ns
    };
    // Arrivals are ns-granular while kernel ticks are ps, so "exactly
    // at the barrier" means the last whole nanosecond at or before it:
    // the admission comparison is inclusive, so that arrival folds in
    // at the barrier itself — no idle jump, no extra round of waiting.
    let boundary = boundary_ns.floor() as u64;
    let mut sim = two_leaf_sim();
    let on_barrier = serve(
        &mut sim,
        &shape(1),
        &[at(0), at(boundary)],
        &Policy::Fifo,
        &ServeConfig::new(4, 16),
    )
    .expect("serve completes");
    assert_eq!(on_barrier.completed, 2);
    assert_eq!(on_barrier.rounds, 2);
    assert_eq!(on_barrier.idle_jumps, 0, "on-barrier arrival needs no jump");

    // One nanosecond later misses the barrier: the system drains, goes
    // idle, and must jump to reach the straggler.
    let mut sim = two_leaf_sim();
    let past_barrier = serve(
        &mut sim,
        &shape(1),
        &[at(0), at(boundary + 1)],
        &Policy::Fifo,
        &ServeConfig::new(4, 16),
    )
    .expect("serve completes");
    assert_eq!(past_barrier.completed, 2);
    assert_eq!(past_barrier.idle_jumps, 1);
}

#[test]
fn multi_tenant_serving_reports_per_tenant_tails() {
    // Two tenants of Poisson traffic under weighted share: both appear
    // in the report with consistent counters and ordered percentiles.
    let arrivals = ArrivalSpec::poisson(3_000.0, 2, 9).generate(3_000_000);
    assert!(arrivals.len() > 4, "rate too low for the horizon");
    let mut sim = two_leaf_sim();
    let report = serve(
        &mut sim,
        &shape(2),
        &arrivals,
        &Policy::weighted_share(&[3, 1]),
        &ServeConfig::new(2, 32).with_slo_ns(2e6),
    )
    .expect("serve completes");
    assert_eq!(report.tenants.len(), 2);
    let by_tenant: u64 = report.tenants.iter().map(|t| t.admitted).sum();
    assert_eq!(by_tenant, report.admitted);
    for t in &report.tenants {
        assert!(t.latency.count > 0, "tenant {} never completed", t.tenant);
        assert!(t.latency.p50_ns <= t.latency.p99_ns);
    }
    assert!(report.goodput_rps <= report.throughput_rps);
    assert!(report.peak_batch <= 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A seeded arrival trace replayed twice is byte-identical, and so
    /// is the full serve report it produces on a fresh simulation —
    /// the end-to-end determinism contract the `serve_scaling` CI
    /// check rests on.
    #[test]
    fn seeded_serves_replay_byte_identically(
        seed in any::<u64>(),
        rps in 500u32..4_000,
        tenants in 1u32..4,
    ) {
        let spec = ArrivalSpec::poisson(f64::from(rps), tenants, seed);
        let a = spec.generate(1_000_000);
        let b = spec.generate(1_000_000);
        prop_assert_eq!(&a, &b, "trace generation must be a pure function of the seed");

        let run = || {
            let mut sim = two_leaf_sim();
            let report = serve(
                &mut sim,
                &shape(1),
                &a,
                &Policy::round_robin(),
                &ServeConfig::new(3, 16).with_slo_ns(1e6),
            )
            .expect("serve completes");
            serde_json::to_string_pretty(&report).expect("report serializes")
        };
        prop_assert_eq!(run(), run(), "same trace, same sim, different bytes");
    }
}
