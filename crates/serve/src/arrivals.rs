//! Open-loop arrival processes: deterministic, seeded request traffic.
//!
//! Everything the rest of the repo runs is closed-loop — a fixed graph
//! dispatched to completion. Serving questions start from an *arrival
//! process*: requests show up on their own clock, whether the system is
//! keeping up or not. This module generates those arrivals ahead of the
//! simulation as a plain sorted `Vec<Arrival>`, which keeps the engine
//! simple and makes determinism trivial to state: the same
//! [`ArrivalSpec`] and horizon always produce the same trace, byte for
//! byte (the PRNG is the vendored splitmix64 `StdRng`, seeded
//! explicitly; no wall clock, no OS entropy).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request arrival: when it enters the system and which tenant it
/// belongs to. Times are virtual nanoseconds on the serving clock
/// (which tiles the simulation's kernel clock across batching rounds).
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Arrival {
    /// Arrival time in virtual nanoseconds.
    pub at_ns: u64,
    /// Tenant index (dense from 0; policies key on it).
    pub tenant: u32,
}

/// A malformed arrival trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The JSON did not parse as a list of arrivals.
    Parse(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Parse(msg) => write!(f, "arrival trace did not parse: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parse a JSON arrival trace — a list of `{"at_ns": …, "tenant": …}`
/// objects — into a time-sorted arrival vector (the sort is stable, so
/// equal-tick arrivals keep their file order).
///
/// ```
/// use accesys_serve::arrivals::trace_from_json;
///
/// let trace = r#"[
///     {"at_ns": 500, "tenant": 1},
///     {"at_ns": 0,   "tenant": 0}
/// ]"#;
/// let arrivals = trace_from_json(trace).unwrap();
/// assert_eq!(arrivals.len(), 2);
/// assert_eq!(arrivals[0].at_ns, 0);
/// assert_eq!(arrivals[1].tenant, 1);
/// assert!(trace_from_json("not json").is_err());
/// ```
///
/// # Errors
///
/// Returns [`TraceError::Parse`] when the input is not a JSON list of
/// arrival objects.
pub fn trace_from_json(json: &str) -> Result<Vec<Arrival>, TraceError> {
    let mut arrivals: Vec<Arrival> =
        serde_json::from_str(json).map_err(|e| TraceError::Parse(format!("{e:?}")))?;
    arrivals.sort_by_key(|a| a.at_ns);
    Ok(arrivals)
}

/// A generator of open-loop request traffic. Construct one, then call
/// [`ArrivalSpec::generate`] with a horizon to materialize the trace.
///
/// ```
/// use accesys_serve::arrivals::ArrivalSpec;
///
/// // ~2000 requests/s of Poisson traffic over 10 ms, two tenants.
/// let spec = ArrivalSpec::poisson(2000.0, 2, 42);
/// let a = spec.generate(10_000_000);
/// let b = spec.generate(10_000_000);
/// assert_eq!(a, b, "same seed, same trace");
/// assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns), "sorted");
/// assert!(a.iter().all(|x| x.tenant < 2));
/// ```
#[derive(Clone, Debug)]
pub enum ArrivalSpec {
    /// Memoryless traffic: exponential inter-arrival gaps at a fixed
    /// mean rate, tenants drawn uniformly.
    Poisson {
        /// Mean arrival rate, requests per (virtual) second.
        rps: f64,
        /// Number of tenants to draw from (uniform).
        tenants: u32,
        /// PRNG seed; the whole trace is a function of it.
        seed: u64,
    },
    /// Bursty traffic: a two-state Markov-modulated Poisson process.
    /// The generator alternates calm and burst phases; each phase's
    /// arrivals are Poisson at that phase's rate, and after every
    /// arrival the phase flips with probability `1 / mean_phase_len`
    /// (geometric phase lengths, in arrivals).
    Bursty {
        /// Arrival rate in the calm phase, requests per second.
        calm_rps: f64,
        /// Arrival rate in the burst phase, requests per second.
        burst_rps: f64,
        /// Mean phase length in arrivals (≥ 1; both phases).
        mean_phase_len: u32,
        /// Number of tenants to draw from (uniform).
        tenants: u32,
        /// PRNG seed.
        seed: u64,
    },
    /// Replay a recorded trace verbatim (see [`trace_from_json`]);
    /// arrivals past the horizon are dropped at generation.
    Trace(
        /// The arrivals to replay (sorted by [`Arrival::at_ns`]).
        Vec<Arrival>,
    ),
}

impl ArrivalSpec {
    /// Poisson traffic at `rps` requests per second over `tenants`
    /// tenants, from `seed`.
    pub fn poisson(rps: f64, tenants: u32, seed: u64) -> ArrivalSpec {
        ArrivalSpec::Poisson { rps, tenants, seed }
    }

    /// Bursty (two-state MMPP) traffic from `seed`.
    pub fn bursty(
        calm_rps: f64,
        burst_rps: f64,
        mean_phase_len: u32,
        tenants: u32,
        seed: u64,
    ) -> ArrivalSpec {
        ArrivalSpec::Bursty {
            calm_rps,
            burst_rps,
            mean_phase_len,
            tenants,
            seed,
        }
    }

    /// Materialize the arrival trace on `[0, horizon_ns)`. Deterministic:
    /// the same spec and horizon always return the same vector.
    pub fn generate(&self, horizon_ns: u64) -> Vec<Arrival> {
        match self {
            ArrivalSpec::Poisson { rps, tenants, seed } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut out = Vec::new();
                let mut t_ns = 0.0f64;
                loop {
                    t_ns += exp_gap_ns(&mut rng, *rps);
                    if t_ns >= horizon_ns as f64 {
                        return out;
                    }
                    out.push(Arrival {
                        at_ns: t_ns as u64,
                        tenant: draw_tenant(&mut rng, *tenants),
                    });
                }
            }
            ArrivalSpec::Bursty {
                calm_rps,
                burst_rps,
                mean_phase_len,
                tenants,
                seed,
            } => {
                let mut rng = StdRng::seed_from_u64(*seed);
                let mut out = Vec::new();
                let mut t_ns = 0.0f64;
                let mut bursting = false;
                let flip = 1.0 / f64::from((*mean_phase_len).max(1));
                loop {
                    let rate = if bursting { *burst_rps } else { *calm_rps };
                    t_ns += exp_gap_ns(&mut rng, rate);
                    if t_ns >= horizon_ns as f64 {
                        return out;
                    }
                    out.push(Arrival {
                        at_ns: t_ns as u64,
                        tenant: draw_tenant(&mut rng, *tenants),
                    });
                    if rng.gen_range(0.0f64..1.0) < flip {
                        bursting = !bursting;
                    }
                }
            }
            ArrivalSpec::Trace(arrivals) => arrivals
                .iter()
                .copied()
                .filter(|a| a.at_ns < horizon_ns)
                .collect(),
        }
    }
}

/// One exponential inter-arrival gap at `rps` requests/second, in ns.
/// A non-positive rate means "no more arrivals": the gap is pushed past
/// any horizon.
fn exp_gap_ns(rng: &mut StdRng, rps: f64) -> f64 {
    if rps <= 0.0 {
        return f64::INFINITY;
    }
    // Uniform in (0, 1]: ln stays finite.
    let u: f64 = 1.0 - rng.gen_range(0.0f64..1.0);
    -u.ln() * (1e9 / rps)
}

fn draw_tenant(rng: &mut StdRng, tenants: u32) -> u32 {
    match tenants {
        0 | 1 => 0,
        n => rng.gen_range(0..n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_roughly_honoured() {
        // 10k req/s over 100 ms ⇒ ~1000 arrivals; the splitmix stream
        // should land well within ±20%.
        let n = ArrivalSpec::poisson(10_000.0, 1, 7)
            .generate(100_000_000)
            .len();
        assert!((800..1200).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn poisson_is_sorted_and_bounded_by_the_horizon() {
        let a = ArrivalSpec::poisson(5000.0, 3, 11).generate(20_000_000);
        assert!(a.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert!(a.iter().all(|x| x.at_ns < 20_000_000));
        assert!(a.iter().all(|x| x.tenant < 3));
    }

    #[test]
    fn zero_rate_generates_nothing() {
        assert!(ArrivalSpec::poisson(0.0, 1, 1).generate(1 << 30).is_empty());
    }

    #[test]
    fn bursty_bursts_are_denser_than_calm() {
        // With a 100x rate ratio the minimum observed gap must be far
        // below the calm mean gap — bursts really are bursts.
        let a = ArrivalSpec::bursty(1000.0, 100_000.0, 20, 1, 3).generate(50_000_000);
        assert!(a.len() > 100, "got {}", a.len());
        let min_gap = a.windows(2).map(|w| w[1].at_ns - w[0].at_ns).min().unwrap();
        assert!(min_gap < 100_000, "min gap {min_gap} ns is not bursty");
    }

    #[test]
    fn different_seeds_differ() {
        let a = ArrivalSpec::poisson(5000.0, 1, 1).generate(10_000_000);
        let b = ArrivalSpec::poisson(5000.0, 1, 2).generate(10_000_000);
        assert_ne!(a, b);
    }

    #[test]
    fn trace_replay_sorts_and_clips() {
        let spec = ArrivalSpec::Trace(vec![
            Arrival {
                at_ns: 900,
                tenant: 0,
            },
            Arrival {
                at_ns: 100,
                tenant: 1,
            },
            Arrival {
                at_ns: 5000,
                tenant: 0,
            },
        ]);
        // Trace is replayed as given (the JSON loader sorts); only the
        // horizon clip applies here.
        let a = spec.generate(1000);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn json_round_trip() {
        let json = r#"[{"at_ns": 10, "tenant": 0}, {"at_ns": 5, "tenant": 1}]"#;
        let a = trace_from_json(json).unwrap();
        assert_eq!(
            a,
            vec![
                Arrival {
                    at_ns: 5,
                    tenant: 1
                },
                Arrival {
                    at_ns: 10,
                    tenant: 0
                },
            ]
        );
        assert!(matches!(
            trace_from_json("[1, 2"),
            Err(TraceError::Parse(_))
        ));
    }
}
