//! Per-tenant batching policies: who gets the next free batch slot.
//!
//! When the engine has a free slot in the continuous batch it asks the
//! policy to pick one waiting request out of the admission queue. All
//! three policies are deterministic functions of the queue contents,
//! their own state, and the per-tenant admission counters — nothing
//! else — so a served trace replays byte-identically.

use crate::queue::AdmissionQueue;

/// A batching policy. Generalizes the PR 5 `two_tenant_mix` (which
/// interleaved exactly two fixed chains) into pluggable per-tenant
/// scheduling over an open-ended request stream.
///
/// ```
/// use accesys_serve::policy::Policy;
/// use accesys_serve::queue::{AdmissionQueue, Queued};
///
/// // Tenant 1 has two requests waiting, tenant 0 has one.
/// let mut q = AdmissionQueue::new(8);
/// q.offer(Queued { id: 0, tenant: 1, arrival_ns: 0 }).unwrap();
/// q.offer(Queued { id: 1, tenant: 1, arrival_ns: 1 }).unwrap();
/// q.offer(Queued { id: 2, tenant: 0, arrival_ns: 2 }).unwrap();
///
/// // FIFO ignores tenants: oldest first.
/// assert_eq!(Policy::Fifo.pick(&q, &[0, 0]), Some(0));
///
/// // Round-robin cycles tenants: 0, then 1, then 0 again…
/// let mut rr = Policy::round_robin();
/// assert_eq!(rr.pick(&q, &[0, 0]), Some(2)); // tenant 0's request
/// let mut q2 = q.clone();
/// q2.take_at(2);
/// assert_eq!(rr.pick(&q2, &[1, 0]), Some(0)); // now tenant 1's oldest
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Strict arrival order, tenants ignored.
    Fifo,
    /// Cycle through tenants: each free slot goes to the next tenant
    /// (after the last one served) that has something waiting; within a
    /// tenant, oldest first. `cursor` is the tenant to try first.
    RoundRobin {
        /// Next tenant to offer a slot to.
        cursor: u32,
    },
    /// Weighted fair share: the slot goes to the tenant with the
    /// smallest `admitted / weight` ratio among tenants with waiting
    /// requests (ties to the lower tenant id); within a tenant, oldest
    /// first. Tenants beyond the weight vector weigh 1.
    WeightedShare {
        /// Per-tenant weights (≥ 1; zeros are clamped to 1).
        weights: Vec<u32>,
    },
}

impl Policy {
    /// A fresh round-robin policy starting at tenant 0.
    pub fn round_robin() -> Policy {
        Policy::RoundRobin { cursor: 0 }
    }

    /// A weighted-share policy with the given per-tenant weights.
    pub fn weighted_share(weights: &[u32]) -> Policy {
        Policy::WeightedShare {
            weights: weights.to_vec(),
        }
    }

    /// Pick the queue index (0 = oldest) of the request to admit into
    /// the next free batch slot, or `None` when the queue is empty.
    /// `admitted_by_tenant[t]` counts requests of tenant `t` admitted
    /// so far (used by [`Policy::WeightedShare`]; shorter-than-needed
    /// slices count as 0).
    pub fn pick(&mut self, queue: &AdmissionQueue, admitted_by_tenant: &[u64]) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        match self {
            Policy::Fifo => Some(0),
            Policy::RoundRobin { cursor } => {
                // Tenants present in the queue, as a sorted dense set.
                let mut present: Vec<u32> = queue.iter().map(|q| q.tenant).collect();
                present.sort_unstable();
                present.dedup();
                // First present tenant ≥ cursor, wrapping.
                let tenant = present
                    .iter()
                    .copied()
                    .find(|&t| t >= *cursor)
                    .unwrap_or(present[0]);
                *cursor = tenant + 1;
                oldest_of(queue, tenant)
            }
            Policy::WeightedShare { weights } => {
                let weight_of = |t: u32| -> u128 {
                    u128::from(weights.get(t as usize).copied().unwrap_or(1).max(1))
                };
                let admitted_of = |t: u32| -> u128 {
                    u128::from(admitted_by_tenant.get(t as usize).copied().unwrap_or(0))
                };
                let mut present: Vec<u32> = queue.iter().map(|q| q.tenant).collect();
                present.sort_unstable();
                present.dedup();
                // Smallest admitted/weight; compare cross-multiplied to
                // stay in integers (ties: lower tenant id wins because
                // `present` is sorted and `<` is strict).
                let mut best = present[0];
                for &t in &present[1..] {
                    if admitted_of(t) * weight_of(best) < admitted_of(best) * weight_of(t) {
                        best = t;
                    }
                }
                oldest_of(queue, best)
            }
        }
    }
}

/// Queue index of `tenant`'s oldest waiting request.
fn oldest_of(queue: &AdmissionQueue, tenant: u32) -> Option<usize> {
    queue.iter().position(|q| q.tenant == tenant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Queued;

    fn queue_of(tenants: &[u32]) -> AdmissionQueue {
        let mut q = AdmissionQueue::new(64);
        for (i, &t) in tenants.iter().enumerate() {
            q.offer(Queued {
                id: i as u64,
                tenant: t,
                arrival_ns: i as u64,
            })
            .unwrap();
        }
        q
    }

    #[test]
    fn fifo_takes_the_head() {
        let q = queue_of(&[2, 0, 1]);
        assert_eq!(Policy::Fifo.pick(&q, &[]), Some(0));
    }

    #[test]
    fn empty_queue_picks_nothing() {
        let q = queue_of(&[]);
        assert_eq!(Policy::Fifo.pick(&q, &[]), None);
        assert_eq!(Policy::round_robin().pick(&q, &[]), None);
        assert_eq!(Policy::weighted_share(&[1, 2]).pick(&q, &[]), None);
    }

    #[test]
    fn round_robin_cycles_present_tenants() {
        // Queue: t0, t0, t1, t2 — RR must serve 0, 1, 2, 0.
        let mut q = queue_of(&[0, 0, 1, 2]);
        let mut rr = Policy::round_robin();
        let mut served = Vec::new();
        let admitted = [0u64; 3];
        while let Some(i) = rr.pick(&q, &admitted) {
            served.push(q.take_at(i).tenant);
        }
        assert_eq!(served, vec![0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_skips_absent_tenants() {
        // Cursor at 1 but only tenant 3 is waiting: serve 3, wrap to 4.
        let q = queue_of(&[3, 3]);
        let mut rr = Policy::RoundRobin { cursor: 1 };
        assert_eq!(rr.pick(&q, &[]), Some(0));
        assert_eq!(rr, Policy::RoundRobin { cursor: 4 });
    }

    #[test]
    fn weighted_share_follows_the_ratio() {
        // Weights 3:1 — over 4 slots tenant 0 gets 3, tenant 1 gets 1.
        let mut q = queue_of(&[0, 0, 0, 1, 1, 1]);
        let mut ws = Policy::weighted_share(&[3, 1]);
        let mut admitted = vec![0u64; 2];
        let mut served = Vec::new();
        for _ in 0..4 {
            let i = ws.pick(&q, &admitted).unwrap();
            let t = q.take_at(i).tenant;
            admitted[t as usize] += 1;
            served.push(t);
        }
        assert_eq!(served.iter().filter(|&&t| t == 0).count(), 3);
        assert_eq!(served.iter().filter(|&&t| t == 1).count(), 1);
    }

    #[test]
    fn weighted_share_clamps_zero_weights() {
        // A zero weight must not divide-by-zero or starve forever once
        // it is the only tenant waiting.
        let q = queue_of(&[1]);
        let mut ws = Policy::weighted_share(&[4, 0]);
        assert_eq!(ws.pick(&q, &[10, 10]), Some(0));
    }
}
