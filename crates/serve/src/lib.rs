//! # accesys-serve — the online serving layer
//!
//! Everything below this crate answers *closed-loop* questions: build a
//! topology, hand the dispatcher a fixed [`TaskGraph`], measure the
//! makespan. Serving questions are *open-loop*: requests arrive on
//! their own clock at some offered rate, and the quantities that matter
//! are tail latency (p50/p99/p99.9), goodput under an SLO, and what
//! happens past saturation. This crate closes that gap with three
//! pieces:
//!
//! - [`arrivals`] — deterministic open-loop traffic generators
//!   ([`ArrivalSpec::Poisson`], bursty two-state MMPP, JSON trace
//!   replay), all seeded, all materialized ahead of the simulation as a
//!   sorted arrival vector.
//! - [`queue`] + [`policy`] — a bounded [`AdmissionQueue`] (over-bound
//!   bursts are typed [`Rejected`] outcomes, never panics) and
//!   pluggable per-tenant batching policies (FIFO, round-robin,
//!   weighted share) generalizing the PR 5 `two_tenant_mix` workload.
//! - [`engine`] — the continuous-batching [`serve`] loop: in-flight
//!   requests execute one encoder slice per round on the PR 5
//!   dispatcher, and the round barrier is the admission point where
//!   arriving requests fold in and finished ones fold out
//!   (iteration-level scheduling). Per-request latency — arrival tick
//!   to host-retirement tick — lands in [`sim::hist`] histograms; the
//!   [`ServeReport`] carries percentiles, goodput, and per-tenant
//!   breakdowns.
//! - [`llm`] — the autoregressive engine mode: [`serve_llm`] batches
//!   mixed prefill/decode rounds (prefill on admission, one decode
//!   slice per round, EOS-by-length retirement) with per-request KV
//!   caches growing in per-device memory slices; capacity pressure
//!   lowers to host-memory `Transfer` traffic and is reported in
//!   [`KvReport`] next to time-to-first-token and decode-tokens/sec.
//!
//! Determinism is end to end: a seeded spec replayed twice is
//! byte-identical, and so is the report it produces — on one worker or
//! many (`serve_scaling --jobs 1` vs `--jobs N` in CI).
//!
//! ## Quickstart
//!
//! ```
//! use accesys::topology::switch_tree;
//! use accesys::{Simulation, SystemConfig};
//! use accesys_mem::MemTech;
//! use accesys_serve::{serve, ArrivalSpec, Policy, RequestShape, ServeConfig};
//!
//! let cfg = SystemConfig::pcie_host(16.0, MemTech::Ddr4).with_compute_override_ns(50_000.0);
//! let spec = switch_tree(&cfg, &[2]).unwrap();
//! let mut sim = Simulation::from_topology(cfg, &spec).unwrap();
//! let shape = RequestShape { seq: 16, hidden: 64, heads: 4, mlp: 128, slices: 2 };
//! let arrivals = ArrivalSpec::poisson(3000.0, 2, 42).generate(3_000_000);
//! let report = serve(
//!     &mut sim,
//!     &shape,
//!     &arrivals,
//!     &Policy::round_robin(),
//!     &ServeConfig::new(4, 64).with_slo_ns(5e6),
//! )
//! .unwrap();
//! assert_eq!(report.offered, report.admitted + report.rejected);
//! assert_eq!(report.completed, report.admitted); // everything admitted finishes
//! assert!(report.latency.p99_ns >= report.latency.p50_ns);
//! ```
//!
//! [`TaskGraph`]: accesys_workload::graph::TaskGraph
//! [`sim::hist`]: accesys_sim::Histogram

#![warn(missing_docs)]

pub mod arrivals;
pub mod engine;
pub mod llm;
pub mod policy;
pub mod queue;

pub use arrivals::{trace_from_json, Arrival, ArrivalSpec, TraceError};
pub use engine::{
    serve, serve_traced, Completion, LatencySummary, RequestShape, ServeConfig, ServeReport,
    TenantReport,
};
pub use llm::{
    serve_llm, KvReport, LlmRequestShape, LlmServeConfig, LlmServeError, LlmServeReport,
};
pub use policy::Policy;
pub use queue::{AdmissionQueue, Queued, Rejected};
