//! The LLM serving engine: continuous batching of mixed prefill and
//! decode rounds with KV-cache pressure.
//!
//! ## The serving model
//!
//! Where [`crate::serve`] batches fixed encoder slices, a request here
//! is autoregressive ([`LlmRequestShape`]): on admission it runs a
//! **prefill** over its prompt, then one **decode slice per round**
//! until it has generated [`LlmRequestShape::decode`] tokens
//! (EOS-by-length), then it retires and frees its batch slot — so every
//! round's [`TaskGraph`] is a *mix* of whole-prompt prefill chains and
//! skinny decode chains, generated incrementally on a
//! [`GraphSession`]: the next round's shape is only known once this
//! round's barrier has settled.
//!
//! ## KV pressure becomes transfer traffic
//!
//! Each request's KV cache grows in the `devmem` slice of the device it
//! was admitted to (the least-loaded one at admission; all its chains
//! pin there for locality). Growth goes through the
//! [`KvCache`] model against [`LlmServeConfig::kv_budget`]: when a
//! round's claims overflow the budget, the least-recently-decoded
//! *other* request's cache is offloaded to host memory — and every
//! [`KvEvent`] is lowered into the round graph as a
//! [`TaskKind::Transfer`] that the claiming request's slice depends on.
//! Capacity pressure is therefore *simulated interconnect traffic*
//! (visible in [`KvReport`] and the round's transfer tasks), not a
//! silent counter. A shape whose own cache can never fit is a typed
//! [`LlmServeError`] at entry.
//!
//! ## Determinism
//!
//! Same contract as [`crate::serve`]: the engine is a deterministic
//! function of (simulation, shape, arrivals, policy, config). KV
//! eviction decisions are BTree-ordered LRU, device assignment is
//! least-resident-then-lowest-index, and the dispatcher below is the
//! PR 5 deterministic compiler — a replayed trace is byte-identical,
//! report and all.
//!
//! [`GraphSession`]: accesys::GraphSession
//! [`TaskGraph`]: accesys_workload::graph::TaskGraph
//! [`TaskKind::Transfer`]: accesys_workload::graph::TaskKind::Transfer

use crate::arrivals::Arrival;
use crate::engine::{LatencySummary, TenantReport};
use crate::policy::Policy;
use crate::queue::{AdmissionQueue, Queued};
use accesys::{RunError, Simulation};
use accesys_sim::{units, Histogram};
use accesys_workload::graph::{append_chain, Affinity, TaskGraph, TaskId, TaskKind};
use accesys_workload::llm::{KvCache, KvError, KvEvent, LlmSpec};

/// What one autoregressive request costs: a prompt to prefill, then
/// `decode` generated tokens (one per round) before EOS.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct LlmRequestShape {
    /// Model geometry.
    pub spec: LlmSpec,
    /// Prompt tokens prefetched in one prefill round.
    pub prompt: u32,
    /// Tokens generated after prefill (EOS-by-length). `0` retires the
    /// request at its prefill round.
    pub decode: u32,
}

impl LlmRequestShape {
    /// KV bytes this request pins once fully decoded — the footprint
    /// the per-device budget must fit.
    pub fn max_kv_bytes(&self) -> u64 {
        self.spec
            .kv_bytes_per_token()
            .saturating_mul(u64::from(self.prompt.max(1)) + u64::from(self.decode))
    }
}

/// LLM engine knobs: the [`crate::ServeConfig`] bounds plus the
/// per-device KV budget.
#[derive(Copy, Clone, Debug, serde::Serialize)]
pub struct LlmServeConfig {
    /// Max requests folded into one round (clamped to ≥ 1).
    pub batch_cap: usize,
    /// Admission-queue bound (clamped to ≥ 1).
    pub queue_cap: usize,
    /// Latency SLO in virtual nanoseconds (per whole request,
    /// arrival → EOS); `f64::INFINITY` counts every completion.
    pub slo_ns: f64,
    /// Per-device KV-cache budget in bytes: the share of each device's
    /// `devmem` slice reserved for KV residency.
    pub kv_budget: u64,
}

impl LlmServeConfig {
    /// Bounds and budget with no SLO.
    pub fn new(batch_cap: usize, queue_cap: usize, kv_budget: u64) -> LlmServeConfig {
        LlmServeConfig {
            batch_cap,
            queue_cap,
            slo_ns: f64::INFINITY,
            kv_budget,
        }
    }

    /// The same bounds with a latency SLO.
    pub fn with_slo_ns(mut self, slo_ns: f64) -> LlmServeConfig {
        self.slo_ns = slo_ns;
        self
    }
}

/// Largest per-device KV budget the engine accepts: eviction and
/// restore traffic is lowered as single streaming transfers, so a
/// segment must fit the CPU activation window with room to spare.
pub const KV_BUDGET_MAX: u64 = accesys::addrmap::ACT_SPLIT / 4;

/// Why an LLM serve cannot run (or failed mid-flight).
#[derive(Debug)]
pub enum LlmServeError {
    /// The dispatcher failed (invalid graph, window overflow,
    /// simulation error).
    Run(RunError),
    /// The KV-cache model rejected a claim.
    Kv(KvError),
    /// The request shape's full KV footprint exceeds the per-device
    /// budget: no request could ever finish, so the serve refuses to
    /// start instead of erroring on the first decode.
    ShapeExceedsKvBudget {
        /// Bytes one fully decoded request pins.
        need: u64,
        /// The configured per-device budget.
        budget: u64,
    },
    /// The configured budget exceeds [`KV_BUDGET_MAX`].
    KvBudgetTooLarge {
        /// The configured budget.
        budget: u64,
        /// The largest supported budget.
        max: u64,
    },
}

impl std::fmt::Display for LlmServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LlmServeError::Run(e) => write!(f, "dispatch failed: {e}"),
            LlmServeError::Kv(e) => write!(f, "KV cache rejected a claim: {e}"),
            LlmServeError::ShapeExceedsKvBudget { need, budget } => write!(
                f,
                "request shape pins {need} KV bytes but the per-device budget is {budget}"
            ),
            LlmServeError::KvBudgetTooLarge { budget, max } => {
                write!(f, "KV budget {budget} exceeds the supported maximum {max}")
            }
        }
    }
}

impl std::error::Error for LlmServeError {}

impl From<RunError> for LlmServeError {
    fn from(e: RunError) -> Self {
        LlmServeError::Run(e)
    }
}

impl From<KvError> for LlmServeError {
    fn from(e: KvError) -> Self {
        LlmServeError::Kv(e)
    }
}

/// The KV-pressure story of a serve: how full the slices ran and how
/// much eviction/restore traffic the budget forced.
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct KvReport {
    /// The per-device budget served under.
    pub budget: u64,
    /// Peak resident bytes observed on any single device.
    pub peak_resident: u64,
    /// Cache evictions (requests offloaded to host memory).
    pub evictions: u64,
    /// Bytes offloaded to host memory.
    pub evicted_bytes: u64,
    /// Cache restores (offloaded requests brought back).
    pub restores: u64,
    /// Bytes restored from host memory.
    pub restored_bytes: u64,
    /// `Transfer` tasks the pressure added to round graphs
    /// (evictions + restores — the observable traffic).
    pub transfer_tasks: u64,
}

/// What an LLM serve produced: request counts and tails like
/// [`crate::ServeReport`], plus token throughput, time-to-first-token,
/// and the KV-pressure story.
#[derive(Clone, Debug, serde::Serialize)]
pub struct LlmServeReport {
    /// Arrivals offered by the generator.
    pub offered: u64,
    /// Requests admitted past the queue bound.
    pub admitted: u64,
    /// Requests that prefetched and decoded to EOS.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Batching rounds executed.
    pub rounds: u64,
    /// Rounds that mixed at least one prefill with at least one decode
    /// slice (the continuous-batching signature).
    pub mixed_rounds: u64,
    /// Idle jumps (serving clock advanced to the next arrival).
    pub idle_jumps: u64,
    /// Peak requests folded into one round.
    pub peak_batch: usize,
    /// Decode tokens generated across all requests.
    pub tokens_decoded: u64,
    /// Serving-clock span from engine start to last completion, ns.
    pub elapsed_ns: f64,
    /// Arrival rate actually offered over the elapsed span, req/s.
    pub offered_rps: f64,
    /// Completions per second of serving time.
    pub throughput_rps: f64,
    /// Completions within the SLO per second of serving time.
    pub goodput_rps: f64,
    /// Decode tokens per second of serving time.
    pub decode_tps: f64,
    /// Arrival → EOS latency distribution.
    pub latency: LatencySummary,
    /// Arrival → end-of-prefill (time-to-first-token) distribution.
    pub ttft: LatencySummary,
    /// KV-cache pressure counters.
    pub kv: KvReport,
    /// Per-tenant breakdown, indexed by tenant id.
    pub tenants: Vec<TenantReport>,
}

/// One in-flight autoregressive request.
struct Active {
    id: u64,
    tenant: u32,
    arrival_ns: u64,
    /// KV home device; every chain of this request pins here.
    device: usize,
    /// Whether the prefill round has run.
    prefilled: bool,
    /// Decode tokens generated so far.
    decoded: u32,
}

/// Serve autoregressive `arrivals` on `sim` to completion: prefill on
/// admission, one decode slice per round with KV growth, retirement on
/// EOS-by-length. See the module docs for the model.
///
/// # Errors
///
/// [`LlmServeError::ShapeExceedsKvBudget`] / [`KvBudgetTooLarge`]
/// before any simulation, or a dispatch/KV error mid-serve.
///
/// [`KvBudgetTooLarge`]: LlmServeError::KvBudgetTooLarge
pub fn serve_llm(
    sim: &mut Simulation,
    shape: &LlmRequestShape,
    arrivals: &[Arrival],
    policy: &Policy,
    cfg: &LlmServeConfig,
) -> Result<LlmServeReport, LlmServeError> {
    if cfg.kv_budget > KV_BUDGET_MAX {
        return Err(LlmServeError::KvBudgetTooLarge {
            budget: cfg.kv_budget,
            max: KV_BUDGET_MAX,
        });
    }
    if shape.max_kv_bytes() > cfg.kv_budget {
        return Err(LlmServeError::ShapeExceedsKvBudget {
            need: shape.max_kv_bytes(),
            budget: cfg.kv_budget,
        });
    }
    let prefill_ops = shape.spec.prefill_ops(shape.prompt);
    let kv_per_token = shape.spec.kv_bytes_per_token();
    let batch_cap = cfg.batch_cap.max(1);
    let tenant_count = arrivals
        .iter()
        .map(|a| a.tenant as usize + 1)
        .max()
        .unwrap_or(1);

    let devices = sim.accel_count();
    let mut kv = KvCache::new(devices, cfg.kv_budget);
    let mut policy = policy.clone();
    let mut queue = AdmissionQueue::new(cfg.queue_cap);
    let mut active: Vec<Active> = Vec::new();
    let mut admitted_by_tenant = vec![0u64; tenant_count];
    let mut overall = Histogram::new();
    let mut ttft_hist = Histogram::new();
    let mut by_tenant = vec![Histogram::new(); tenant_count];

    let mut session = sim.graph_session();
    let clock_start_ns = units::to_ns(session.opened_at());
    let mut clock_ns = clock_start_ns;
    let mut next_arrival = 0usize;
    let mut completed = 0u64;
    let mut within_slo = 0u64;
    let mut mixed_rounds = 0u64;
    let mut idle_jumps = 0u64;
    let mut peak_batch = 0usize;
    let mut tokens_decoded = 0u64;
    let mut kv_transfer_tasks = 0u64;

    loop {
        // 1. Admission (identical to the encoder engine): arrivals at or
        // before the serving clock enter the bounded queue.
        while next_arrival < arrivals.len() && arrivals[next_arrival].at_ns as f64 <= clock_ns {
            let a = arrivals[next_arrival];
            let _ = queue.offer(Queued {
                id: next_arrival as u64,
                tenant: a.tenant,
                arrival_ns: a.at_ns,
            });
            next_arrival += 1;
        }

        // 2. Batch refill: each admitted request gets the device with
        // the least resident KV (ties to the lowest index) as its KV
        // home — its prefill and every decode slice pin there.
        while active.len() < batch_cap {
            let Some(index) = policy.pick(&queue, &admitted_by_tenant) else {
                break;
            };
            let q = queue.take_at(index);
            admitted_by_tenant[q.tenant as usize] += 1;
            let device = (0..devices)
                .min_by_key(|&d| (kv.resident_on(d), d))
                .unwrap_or(0);
            active.push(Active {
                id: q.id,
                tenant: q.tenant,
                arrival_ns: q.arrival_ns,
                device,
                prefilled: false,
                decoded: 0,
            });
        }

        if active.is_empty() {
            let Some(a) = arrivals.get(next_arrival) else {
                break; // drained: queue empty, nothing in flight
            };
            clock_ns = clock_ns.max(a.at_ns as f64);
            idle_jumps += 1;
            continue;
        }
        peak_batch = peak_batch.max(active.len());

        // 3. Build the round: per request, claim this round's KV growth
        // (prefill claims the whole prompt, decode claims one token),
        // lower any eviction/restore events as Transfer tasks the slice
        // depends on, then append the slice chain pinned to the KV home.
        let round = session.rounds();
        let mut graph = TaskGraph::new();
        let mut tails = Vec::with_capacity(active.len());
        let mut prefills = 0usize;
        let mut decodes = 0usize;
        for r in &active {
            let (ops, tag, tokens) = if r.prefilled {
                (
                    shape.spec.decode_ops(shape.prompt.max(1) + r.decoded),
                    format!("d{}", r.decoded),
                    1u64,
                )
            } else {
                (
                    prefill_ops.clone(),
                    "p".to_string(),
                    u64::from(shape.prompt.max(1)),
                )
            };
            if r.prefilled {
                decodes += 1;
            } else {
                prefills += 1;
            }
            let events = kv.claim(r.id, r.device, tokens.saturating_mul(kv_per_token), round)?;
            let mut prev: Option<TaskId> = None;
            for ev in events {
                let (name, bytes) = match ev {
                    KvEvent::Evicted { request, bytes, .. } => {
                        (format!("r{}.kv.evict.r{request}", r.id), bytes)
                    }
                    KvEvent::Restored { request, bytes, .. } => {
                        (format!("r{}.kv.restore.r{request}", r.id), bytes)
                    }
                };
                kv_transfer_tasks += 1;
                let deps = prev.into_iter().collect();
                prev =
                    Some(graph.add(name, TaskKind::Transfer { bytes }, Affinity::AnyAccel, deps));
            }
            let tail = append_chain(
                &mut graph,
                &ops,
                Affinity::Pinned(r.device),
                prev,
                &format!("r{}.{tag}", r.id),
            )
            .expect("llm op lists are non-empty");
            // Completion labels: the tail of the retiring slice carries
            // the request id; a prefill that is not the last slice
            // carries `t<id>` for time-to-first-token.
            let retires = if r.prefilled {
                r.decoded + 1 >= shape.decode
            } else {
                shape.decode == 0
            };
            if retires {
                graph.set_completion(tail, r.id.to_string());
            } else if !r.prefilled {
                graph.set_completion(tail, format!("t{}", r.id));
            }
            tails.push(tail);
        }
        graph.add("round", TaskKind::Barrier, Affinity::AnyAccel, tails);
        if prefills > 0 && decodes > 0 {
            mixed_rounds += 1;
        }

        let run = session.extend(&graph)?;
        let skew_ns = clock_ns - units::to_ns(run.start);
        clock_ns = units::to_ns(run.end) + skew_ns;

        // 4. Retire and advance: completion marks place TTFT and EOS on
        // the serving clock; retired requests free their KV and slot.
        for (label, tick) in &run.completions {
            let (is_ttft, id_str) = match label.strip_prefix('t') {
                Some(rest) => (true, rest),
                None => (false, label.as_str()),
            };
            let id: u64 = id_str.parse().expect("completion labels are request ids");
            let r = active
                .iter()
                .find(|r| r.id == id)
                .expect("completion for an in-flight request");
            let latency_ns = (units::to_ns(*tick) + skew_ns) - r.arrival_ns as f64;
            if is_ttft {
                ttft_hist.observe(latency_ns);
            } else {
                // EOS: for zero-decode shapes the prefill tail is also
                // the first token, so TTFT coincides with the latency.
                if !r.prefilled {
                    ttft_hist.observe(latency_ns);
                }
                overall.observe(latency_ns);
                by_tenant[r.tenant as usize].observe(latency_ns);
                completed += 1;
                if latency_ns <= cfg.slo_ns {
                    within_slo += 1;
                }
            }
        }
        for r in &mut active {
            if r.prefilled {
                r.decoded += 1;
                tokens_decoded += 1;
            } else {
                r.prefilled = true;
            }
        }
        active.retain(|r| {
            let done = r.decoded >= shape.decode;
            if done {
                kv.release(r.id);
            }
            !done
        });
    }

    let rounds = session.rounds();
    let elapsed_ns = clock_ns - clock_start_ns;
    let per_sec = |n: u64| {
        if elapsed_ns > 0.0 {
            n as f64 / (elapsed_ns / 1e9)
        } else {
            0.0
        }
    };
    let tenants = (0..tenant_count)
        .map(|t| TenantReport {
            tenant: t as u32,
            admitted: admitted_by_tenant[t],
            rejected: queue
                .rejected_by_tenant()
                .get(t)
                .copied()
                .unwrap_or_default(),
            latency: LatencySummary::of(&by_tenant[t]),
        })
        .collect();
    Ok(LlmServeReport {
        offered: arrivals.len() as u64,
        admitted: admitted_by_tenant.iter().sum(),
        completed,
        rejected: queue.rejected(),
        rounds,
        mixed_rounds,
        idle_jumps,
        peak_batch,
        tokens_decoded,
        elapsed_ns,
        offered_rps: per_sec(arrivals.len() as u64),
        throughput_rps: per_sec(completed),
        goodput_rps: per_sec(within_slo),
        decode_tps: per_sec(tokens_decoded),
        latency: LatencySummary::of(&overall),
        ttft: LatencySummary::of(&ttft_hist),
        kv: KvReport {
            budget: cfg.kv_budget,
            peak_resident: kv.peak_resident(),
            evictions: kv.evictions(),
            evicted_bytes: kv.evicted_bytes(),
            restores: kv.restores(),
            restored_bytes: kv.restored_bytes(),
            transfer_tasks: kv_transfer_tasks,
        },
        tenants,
    })
}
