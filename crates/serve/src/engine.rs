//! The continuous-batching serve engine: folds an open-loop arrival
//! stream into successive dispatch rounds on one [`Simulation`].
//!
//! ## The serving model
//!
//! A *request* is an encoder-shaped job: [`RequestShape::slices`]
//! encoder layers of a fixed geometry. The engine keeps a bounded
//! [`AdmissionQueue`] in front of the PR 5 dispatcher and executes the
//! in-flight set **one slice per round**: every round is a
//! [`TaskGraph`] holding one slice chain per in-flight request
//! (appended with [`append_chain`], `AnyAccel` affinity so the
//! dispatcher spreads chains over idle devices) joined by a final
//! barrier. Requests that arrive while a round simulates are admitted
//! at the next round boundary — the barrier is the admission point —
//! and finished requests leave the batch the same way. That is
//! iteration-level continuous batching: the batch composition changes
//! at every barrier without waiting for the whole batch to drain.
//!
//! ## Clocks and latency
//!
//! The engine's serving clock tiles the simulation's kernel clock:
//! round `k+1` starts at the kernel tick round `k` ended on. When the
//! system goes idle (queue empty, nothing in flight, arrivals still
//! pending) the serving clock jumps forward to the next arrival while
//! the kernel clock stays put; the constant offset between the two is
//! carried across rounds so arrival ticks and completion ticks live on
//! one timeline. Per-request completion ticks come from the
//! dispatcher's `done:` marks ([`TaskGraph::set_completion`] on each
//! request's tail task): host retirement time, not device-MSI time —
//! when a real driver would return the response. Latencies land in
//! [`Histogram`]s (one overall, one per tenant), so p50/p99/p99.9 and
//! goodput fall out of the existing percentile machinery.
//!
//! ## Determinism
//!
//! The engine is a deterministic function of (simulation, shape,
//! arrival trace, policy, config): arrivals are pre-generated from a
//! seed, policies depend only on queue contents and admission counters,
//! and the dispatcher is the PR 5 deterministic compiler. Serving the
//! same trace twice on fresh simulations produces byte-identical
//! reports — pinned by a proptest in `tests/serve_determinism.rs`.

use crate::arrivals::Arrival;
use crate::policy::Policy;
use crate::queue::{AdmissionQueue, Queued};
use accesys::{RunError, Simulation};
use accesys_sim::{units, Histogram};
use accesys_workload::encoder_ops;
use accesys_workload::graph::{append_chain, Affinity, TaskGraph, TaskKind};
use accesys_workload::Op;

/// What one request costs: an encoder of `slices` layers at a fixed
/// geometry. Slices are the batching quantum — a request occupies its
/// batch slot for `slices` rounds.
#[derive(Copy, Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RequestShape {
    /// Sequence length of each encoder layer.
    pub seq: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// MLP dimension.
    pub mlp: u32,
    /// Encoder layers per request (≥ 1; the batching quantum).
    pub slices: u32,
}

impl RequestShape {
    /// The operator list of one slice (one encoder layer).
    pub fn slice_ops(&self) -> Vec<Op> {
        encoder_ops(self.seq, self.hidden, self.heads, self.mlp)
    }
}

/// Engine knobs: batch and queue bounds, and the latency SLO.
#[derive(Copy, Clone, Debug, serde::Serialize)]
pub struct ServeConfig {
    /// Max requests folded into one round (clamped to ≥ 1). Devices ×
    /// some small factor is the useful range: more in-flight chains
    /// than devices just queue inside the dispatcher.
    pub batch_cap: usize,
    /// Admission-queue bound (clamped to ≥ 1); arrivals beyond it are
    /// rejected.
    pub queue_cap: usize,
    /// Latency SLO in virtual nanoseconds: goodput counts completions
    /// at or under it. `f64::INFINITY` (the [`ServeConfig::new`]
    /// default) counts every completion.
    pub slo_ns: f64,
}

impl ServeConfig {
    /// Bounds with no SLO (goodput = throughput).
    pub fn new(batch_cap: usize, queue_cap: usize) -> ServeConfig {
        ServeConfig {
            batch_cap,
            queue_cap,
            slo_ns: f64::INFINITY,
        }
    }

    /// The same bounds with a latency SLO.
    pub fn with_slo_ns(mut self, slo_ns: f64) -> ServeConfig {
        self.slo_ns = slo_ns;
        self
    }
}

/// Latency distribution summary (all values virtual nanoseconds,
/// percentiles as [`Histogram::percentile`] upper bounds).
#[derive(Clone, Debug, Default, serde::Serialize)]
pub struct LatencySummary {
    /// Completions observed.
    pub count: u64,
    /// Mean latency.
    pub mean_ns: f64,
    /// Median upper bound.
    pub p50_ns: f64,
    /// 99th-percentile upper bound.
    pub p99_ns: f64,
    /// 99.9th-percentile upper bound.
    pub p999_ns: f64,
    /// Largest observed latency (exact).
    pub max_ns: f64,
}

impl LatencySummary {
    /// Summarize a latency [`Histogram`] (count, mean, p50/p99/p99.9
    /// upper bounds, exact max). Public so layered engines — the fleet
    /// merge being the first — can summarize histograms they built from
    /// completion traces.
    pub fn of(h: &Histogram) -> LatencySummary {
        LatencySummary {
            count: h.count(),
            mean_ns: h.mean(),
            p50_ns: h.percentile(50.0),
            p99_ns: h.percentile(99.0),
            p999_ns: h.percentile(99.9),
            max_ns: h.max(),
        }
    }
}

/// One tenant's slice of the serve: admissions, rejections, latency.
#[derive(Clone, Debug, serde::Serialize)]
pub struct TenantReport {
    /// Tenant index.
    pub tenant: u32,
    /// Requests admitted (batched at least once).
    pub admitted: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Latency distribution of this tenant's completions.
    pub latency: LatencySummary,
}

/// What a serve produced: counts, rates, and latency distributions.
#[derive(Clone, Debug, serde::Serialize)]
pub struct ServeReport {
    /// Arrivals offered by the generator.
    pub offered: u64,
    /// Requests admitted past the queue bound.
    pub admitted: u64,
    /// Requests that completed all their slices.
    pub completed: u64,
    /// Requests rejected at admission (offered − admitted).
    pub rejected: u64,
    /// Batching rounds executed.
    pub rounds: u64,
    /// Idle jumps: rounds where the engine had nothing in flight and
    /// advanced the serving clock to the next arrival instead.
    pub idle_jumps: u64,
    /// Peak requests folded into one round.
    pub peak_batch: usize,
    /// Serving-clock span from engine start to last completion, ns.
    pub elapsed_ns: f64,
    /// Arrival rate actually offered over the elapsed span, req/s.
    pub offered_rps: f64,
    /// Completions per second of serving time.
    pub throughput_rps: f64,
    /// Completions within the SLO per second of serving time (equals
    /// [`ServeReport::throughput_rps`] when no SLO is set).
    pub goodput_rps: f64,
    /// Latency distribution over every completion.
    pub latency: LatencySummary,
    /// Per-tenant breakdown, indexed by tenant id.
    pub tenants: Vec<TenantReport>,
}

/// One retired request on the serving clock — the raw material for
/// cross-layer latency accounting. The fleet layer adds network legs on
/// top of [`Completion::latency_ns`] before summarizing, so the trace
/// carries exact per-request numbers rather than bucketed summaries.
#[derive(Copy, Clone, Debug, PartialEq, serde::Serialize)]
pub struct Completion {
    /// Request id (= index into the arrival trace given to the engine).
    pub id: u64,
    /// Tenant the request belonged to.
    pub tenant: u32,
    /// Arrival tick on the serving clock, ns.
    pub arrival_ns: u64,
    /// Retirement tick on the serving clock, ns.
    pub done_ns: f64,
    /// Arrival→retirement latency, ns (`done_ns − arrival_ns`).
    pub latency_ns: f64,
}

/// One in-flight request: a batch slot holder across rounds.
struct Active {
    id: u64,
    tenant: u32,
    arrival_ns: u64,
    slices_left: u32,
}

/// Serve `arrivals` on `sim` to completion: every admitted request is
/// batched, sliced, and retired; the report carries the percentile and
/// goodput story. See the module docs for the model.
///
/// # Errors
///
/// Returns any [`RunError`] the dispatcher raises (invalid slice graph,
/// activation-window overflow, simulation failure). The arrival trace
/// itself cannot fail — over-bound bursts are counted rejections, not
/// errors.
pub fn serve(
    sim: &mut Simulation,
    shape: &RequestShape,
    arrivals: &[Arrival],
    policy: &Policy,
    cfg: &ServeConfig,
) -> Result<ServeReport, RunError> {
    serve_traced(sim, shape, arrivals, policy, cfg).map(|(report, _)| report)
}

/// [`serve`], additionally returning the per-request [`Completion`]
/// trace in retirement order (the order latencies were observed into
/// the report's histograms — replaying the trace reproduces them
/// byte-identically, which the fleet layer's 1-vs-N-process
/// determinism contract leans on).
///
/// # Errors
///
/// Same as [`serve`].
pub fn serve_traced(
    sim: &mut Simulation,
    shape: &RequestShape,
    arrivals: &[Arrival],
    policy: &Policy,
    cfg: &ServeConfig,
) -> Result<(ServeReport, Vec<Completion>), RunError> {
    let slice_ops = shape.slice_ops();
    let slices = shape.slices.max(1);
    let batch_cap = cfg.batch_cap.max(1);
    let tenant_count = arrivals
        .iter()
        .map(|a| a.tenant as usize + 1)
        .max()
        .unwrap_or(1);

    let mut policy = policy.clone();
    let mut queue = AdmissionQueue::new(cfg.queue_cap);
    let mut active: Vec<Active> = Vec::new();
    let mut admitted_by_tenant = vec![0u64; tenant_count];
    let mut overall = Histogram::new();
    let mut by_tenant = vec![Histogram::new(); tenant_count];
    let mut trace: Vec<Completion> = Vec::new();

    // Rounds extend one incremental dispatch session: the session pins
    // the monotone-clock contract the serving clock tiles over.
    let mut session = sim.graph_session();
    // The serving clock starts on the kernel clock and stays a constant
    // offset ahead of it between idle jumps.
    let clock_start_ns = units::to_ns(session.opened_at());
    let mut clock_ns = clock_start_ns;
    let mut next_arrival = 0usize;
    let mut completed = 0u64;
    let mut within_slo = 0u64;
    let mut idle_jumps = 0u64;
    let mut peak_batch = 0usize;

    loop {
        // 1. Admission: every arrival at or before the serving clock
        // enters the bounded queue (or is counted rejected). An arrival
        // exactly on a round boundary is admitted at that boundary.
        while next_arrival < arrivals.len() && arrivals[next_arrival].at_ns as f64 <= clock_ns {
            let a = arrivals[next_arrival];
            let _ = queue.offer(Queued {
                id: next_arrival as u64,
                tenant: a.tenant,
                arrival_ns: a.at_ns,
            });
            next_arrival += 1;
        }

        // 2. Batch refill: free slots go to the policy's picks.
        while active.len() < batch_cap {
            let Some(index) = policy.pick(&queue, &admitted_by_tenant) else {
                break;
            };
            let q = queue.take_at(index);
            admitted_by_tenant[q.tenant as usize] += 1;
            active.push(Active {
                id: q.id,
                tenant: q.tenant,
                arrival_ns: q.arrival_ns,
                slices_left: slices,
            });
        }

        if active.is_empty() {
            let Some(a) = arrivals.get(next_arrival) else {
                break; // drained: queue empty, nothing in flight
            };
            // Empty-queue idle tick: jump the serving clock to the next
            // arrival; the kernel clock stays put and the offset between
            // the two grows by the gap.
            clock_ns = clock_ns.max(a.at_ns as f64);
            idle_jumps += 1;
            continue;
        }
        peak_batch = peak_batch.max(active.len());

        // 3. One round: one slice chain per in-flight request, joined
        // at a barrier (the next admission point). Tail slices carry
        // the request id as a completion label.
        let mut graph = TaskGraph::new();
        let mut tails = Vec::with_capacity(active.len());
        for r in &active {
            let slice_index = slices - r.slices_left;
            let tail = append_chain(
                &mut graph,
                &slice_ops,
                Affinity::AnyAccel,
                None,
                &format!("r{}.s{}", r.id, slice_index),
            )
            .expect("encoder slices are non-empty");
            if r.slices_left == 1 {
                graph.set_completion(tail, r.id.to_string());
            }
            tails.push(tail);
        }
        graph.add("round", TaskKind::Barrier, Affinity::AnyAccel, tails);

        let run = session.extend(&graph)?;
        // Serving-clock offset over the kernel clock, constant within a
        // round (grows only at idle jumps).
        let skew_ns = clock_ns - units::to_ns(run.start);
        clock_ns = units::to_ns(run.end) + skew_ns;

        // 4. Retire: completion marks place each finishing request on
        // the kernel clock; latency is arrival→retirement on the
        // serving clock.
        for (label, tick) in &run.completions {
            let id: u64 = label.parse().expect("completion labels are request ids");
            let r = active
                .iter()
                .find(|r| r.id == id)
                .expect("completion for an in-flight request");
            let done_ns = units::to_ns(*tick) + skew_ns;
            let latency_ns = done_ns - r.arrival_ns as f64;
            overall.observe(latency_ns);
            by_tenant[r.tenant as usize].observe(latency_ns);
            trace.push(Completion {
                id,
                tenant: r.tenant,
                arrival_ns: r.arrival_ns,
                done_ns,
                latency_ns,
            });
            completed += 1;
            if latency_ns <= cfg.slo_ns {
                within_slo += 1;
            }
        }
        for r in &mut active {
            r.slices_left -= 1;
        }
        active.retain(|r| r.slices_left > 0);
    }

    let rounds = session.rounds();
    let elapsed_ns = clock_ns - clock_start_ns;
    let per_sec = |n: u64| {
        if elapsed_ns > 0.0 {
            n as f64 / (elapsed_ns / 1e9)
        } else {
            0.0
        }
    };
    let tenants = (0..tenant_count)
        .map(|t| TenantReport {
            tenant: t as u32,
            admitted: admitted_by_tenant[t],
            rejected: queue
                .rejected_by_tenant()
                .get(t)
                .copied()
                .unwrap_or_default(),
            latency: LatencySummary::of(&by_tenant[t]),
        })
        .collect();
    let report = ServeReport {
        offered: arrivals.len() as u64,
        admitted: admitted_by_tenant.iter().sum(),
        completed,
        rejected: queue.rejected(),
        rounds,
        idle_jumps,
        peak_batch,
        elapsed_ns,
        offered_rps: per_sec(arrivals.len() as u64),
        throughput_rps: per_sec(completed),
        goodput_rps: per_sec(within_slo),
        latency: LatencySummary::of(&overall),
        tenants,
    };
    Ok((report, trace))
}
