//! The bounded admission queue between the arrival process and the
//! batching engine.
//!
//! Admission is where an open-loop system sheds load: arrivals beyond
//! the bound are *rejected* — a typed, counted outcome, never a panic
//! and never unbounded memory. Rejected requests are the difference
//! between offered load and goodput once the system saturates.

use std::collections::VecDeque;

/// A request sitting in the admission queue, waiting to be batched.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Queued {
    /// Dense request id (assigned at arrival, in arrival order).
    pub id: u64,
    /// Tenant the request belongs to.
    pub tenant: u32,
    /// Arrival time on the serving clock, virtual nanoseconds.
    pub arrival_ns: u64,
}

/// A request turned away at admission: the queue was at its bound.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Rejected {
    /// The request that was turned away.
    pub request: Queued,
    /// The bound it hit.
    pub capacity: usize,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request {} (tenant {}) rejected: admission queue at capacity {}",
            self.request.id, self.request.tenant, self.capacity
        )
    }
}

impl std::error::Error for Rejected {}

/// A FIFO admission queue with a hard bound and rejection counters.
///
/// ```
/// use accesys_serve::queue::{AdmissionQueue, Queued};
///
/// let mut q = AdmissionQueue::new(1);
/// let r0 = Queued { id: 0, tenant: 0, arrival_ns: 0 };
/// let r1 = Queued { id: 1, tenant: 1, arrival_ns: 5 };
/// assert!(q.offer(r0).is_ok());
/// let err = q.offer(r1).unwrap_err(); // full: typed rejection, no panic
/// assert_eq!(err.request.id, 1);
/// assert_eq!(q.rejected(), 1);
/// assert_eq!(q.take_at(0), r0);
/// assert!(q.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    items: VecDeque<Queued>,
    capacity: usize,
    rejected: u64,
    rejected_by_tenant: Vec<u64>,
}

impl AdmissionQueue {
    /// An empty queue admitting at most `capacity` waiting requests
    /// (`capacity` is clamped to ≥ 1).
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            items: VecDeque::new(),
            capacity: capacity.max(1),
            rejected: 0,
            rejected_by_tenant: Vec::new(),
        }
    }

    /// Waiting requests.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Requests rejected per tenant (indexed by tenant id; tenants past
    /// the end have rejected none).
    pub fn rejected_by_tenant(&self) -> &[u64] {
        &self.rejected_by_tenant
    }

    /// Offer a request: enqueued in FIFO position, or — when the queue
    /// is at its bound — counted and returned as a typed [`Rejected`].
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when the queue is full; the queue itself is
    /// unchanged.
    pub fn offer(&mut self, request: Queued) -> Result<(), Rejected> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            let t = request.tenant as usize;
            if self.rejected_by_tenant.len() <= t {
                self.rejected_by_tenant.resize(t + 1, 0);
            }
            self.rejected_by_tenant[t] += 1;
            return Err(Rejected {
                request,
                capacity: self.capacity,
            });
        }
        self.items.push_back(request);
        Ok(())
    }

    /// The waiting requests in FIFO order (index 0 is the oldest).
    pub fn iter(&self) -> impl Iterator<Item = &Queued> {
        self.items.iter()
    }

    /// Remove and return the request at `index` (0 = oldest). Policies
    /// pick the index; the queue just keeps order.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn take_at(&mut self, index: usize) -> Queued {
        self.items
            .remove(index)
            .expect("policy picked an in-range queue index")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64, tenant: u32) -> Queued {
        Queued {
            id,
            tenant,
            arrival_ns: id * 10,
        }
    }

    #[test]
    fn fifo_order_is_kept() {
        let mut queue = AdmissionQueue::new(8);
        for i in 0..4 {
            queue.offer(q(i, 0)).unwrap();
        }
        assert_eq!(queue.take_at(0).id, 0);
        assert_eq!(queue.take_at(1).id, 2); // 1 stays, 2 removed
        assert_eq!(queue.len(), 2);
    }

    #[test]
    fn bursts_past_the_bound_reject_typed_and_counted() {
        let mut queue = AdmissionQueue::new(2);
        assert!(queue.offer(q(0, 0)).is_ok());
        assert!(queue.offer(q(1, 1)).is_ok());
        // A 3-request burst over a 2-slot bound: the tail is rejected.
        let err = queue.offer(q(2, 1)).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(err.request.id, 2);
        assert_eq!(queue.rejected(), 1);
        assert_eq!(queue.rejected_by_tenant(), &[0, 1]);
        // The queue is intact.
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.take_at(0).id, 0);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let mut queue = AdmissionQueue::new(0);
        assert!(queue.offer(q(0, 0)).is_ok());
        assert!(queue.offer(q(1, 0)).is_err());
    }
}
