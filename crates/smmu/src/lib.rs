//! # accesys-smmu
//!
//! The System MMU the paper adds between the MemBus and the PCIe root
//! complex: accelerator DMA carries *virtual* addresses; the SMMU
//! translates them through a micro-TLB backed by a multi-level page-table
//! walker whose walks are real memory reads on the host fabric.
//!
//! The module records every statistic of the paper's Table IV:
//! translation count and mean latency, page-table-walk count and mean
//! latency, µTLB lookups and misses — which the framework turns into the
//! translation-overhead percentages of the address-translation study.

mod smmu;

pub use smmu::{Smmu, SmmuConfig, SmmuStats};
