//! SMMU: µTLB + page-table walker.

use accesys_sim::FxHashMap;
use accesys_sim::{
    streams, units, Ctx, MemCmd, Module, ModuleId, Msg, Packet, PacketBox, Stats, Tick,
};
use std::collections::VecDeque;

/// Configuration of an [`Smmu`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SmmuConfig {
    /// µTLB capacity in entries (fully associative, LRU).
    pub tlb_entries: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// µTLB lookup / pass-through latency in nanoseconds.
    pub tlb_latency_ns: f64,
    /// Page-table levels walked on a µTLB miss.
    pub walk_levels: u32,
    /// Walk-cache capacity (caches the penultimate level, skipping all but
    /// the final read on a hit). 0 disables it.
    pub walk_cache_entries: u32,
    /// Maximum concurrent page-table walks.
    pub max_walks: u32,
    /// Base physical address of the page tables in host memory.
    pub pt_base: u64,
    /// Base of the virtual address space presented to the accelerator.
    pub va_base: u64,
    /// Physical base the virtual space maps to (linear mapping).
    pub pa_base: u64,
}

impl Default for SmmuConfig {
    fn default() -> Self {
        SmmuConfig {
            tlb_entries: 32,
            page_bytes: 4096,
            tlb_latency_ns: 1.0,
            walk_levels: 3,
            walk_cache_entries: 16,
            max_walks: 4,
            pt_base: 0xE000_0000,
            va_base: 0x4_0000_0000,
            pa_base: 0x1000_0000,
        }
    }
}

/// Aggregated SMMU statistics (the rows of the paper's Table IV).
#[derive(Copy, Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SmmuStats {
    /// Number of completed translations.
    pub translations: u64,
    /// Sum of per-translation latency in nanoseconds.
    pub trans_time_sum_ns: f64,
    /// Number of page-table walks performed.
    pub ptw_count: u64,
    /// Sum of per-walk latency in nanoseconds.
    pub ptw_time_sum_ns: f64,
    /// µTLB lookups.
    pub utlb_lookups: u64,
    /// µTLB misses.
    pub utlb_misses: u64,
}

impl SmmuStats {
    /// Mean translation latency in nanoseconds (0 when idle).
    pub fn trans_mean_ns(&self) -> f64 {
        if self.translations == 0 {
            0.0
        } else {
            self.trans_time_sum_ns / self.translations as f64
        }
    }

    /// Mean page-table-walk latency in nanoseconds (0 when idle).
    pub fn ptw_mean_ns(&self) -> f64 {
        if self.ptw_count == 0 {
            0.0
        } else {
            self.ptw_time_sum_ns / self.ptw_count as f64
        }
    }

    /// µTLB miss rate (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.utlb_lookups == 0 {
            0.0
        } else {
            self.utlb_misses as f64 / self.utlb_lookups as f64
        }
    }
}

struct Walk {
    vpn: u64,
    level: u32,
    started: Tick,
    waiting: Vec<(PacketBox, Tick)>,
}

/// The System MMU.
///
/// Sits between the root complex and the MemBus. Requests with
/// [`Packet::virt`] set are translated (µTLB, then a walk of
/// `walk_levels` sequential 64-byte reads into the page tables in host
/// memory); other packets pass through with the lookup latency.
/// Responses pass through untouched via the route stack.
pub struct Smmu {
    name: String,
    cfg: SmmuConfig,
    downstream: ModuleId,
    /// vpn -> lru tick.
    tlb: FxHashMap<u64, u64>,
    lru_clock: u64,
    /// key: vpn of the penultimate-level table page group.
    walk_cache: FxHashMap<u64, u64>,
    walks: FxHashMap<u32, Walk>,
    walk_queue: VecDeque<(PacketBox, Tick)>,
    /// vpn -> walk tag, to coalesce concurrent misses on one page.
    walking_vpns: FxHashMap<u64, u32>,
    next_walk_tag: u32,
    stats: SmmuStats,
}

impl Smmu {
    /// Create an SMMU forwarding translated traffic to `downstream`.
    pub fn new(name: &str, cfg: SmmuConfig, downstream: ModuleId) -> Self {
        assert!(cfg.page_bytes.is_power_of_two());
        assert!(cfg.walk_levels >= 1 && cfg.max_walks >= 1);
        Smmu {
            name: name.to_string(),
            cfg,
            downstream,
            tlb: FxHashMap::default(),
            lru_clock: 0,
            walk_cache: FxHashMap::default(),
            walks: FxHashMap::default(),
            walk_queue: VecDeque::new(),
            walking_vpns: FxHashMap::default(),
            next_walk_tag: 0,
            stats: SmmuStats::default(),
        }
    }

    /// The configuration this SMMU was built with.
    pub fn config(&self) -> SmmuConfig {
        self.cfg
    }

    /// Snapshot of Table IV statistics.
    pub fn smmu_stats(&self) -> SmmuStats {
        self.stats
    }

    /// The linear VA→PA mapping the page tables encode.
    pub fn translate(&self, va: u64) -> u64 {
        debug_assert!(va >= self.cfg.va_base, "VA below the translated window");
        self.cfg.pa_base + (va - self.cfg.va_base)
    }

    fn vpn_of(&self, va: u64) -> u64 {
        (va - self.cfg.va_base) / self.cfg.page_bytes
    }

    fn tlb_hit(&mut self, vpn: u64) -> bool {
        if self.tlb.contains_key(&vpn) {
            self.lru_clock += 1;
            self.tlb.insert(vpn, self.lru_clock);
            true
        } else {
            false
        }
    }

    fn tlb_install(&mut self, vpn: u64) {
        if self.tlb.len() >= self.cfg.tlb_entries as usize && !self.tlb.contains_key(&vpn) {
            // Tie-break equal LRU stamps by key: map iteration order must
            // never pick the victim (see walk_cache_install).
            if let Some((&victim, _)) = self.tlb.iter().min_by_key(|&(&vpn, &lru)| (lru, vpn)) {
                self.tlb.remove(&victim);
            }
        }
        self.lru_clock += 1;
        self.tlb.insert(vpn, self.lru_clock);
    }

    fn walk_cache_key(&self, vpn: u64) -> u64 {
        // The penultimate level covers 512 pages (9 index bits).
        vpn >> 9
    }

    fn walk_cache_hit(&mut self, vpn: u64) -> bool {
        if self.cfg.walk_cache_entries == 0 {
            return false;
        }
        let key = self.walk_cache_key(vpn);
        if self.walk_cache.contains_key(&key) {
            self.lru_clock += 1;
            self.walk_cache.insert(key, self.lru_clock);
            true
        } else {
            false
        }
    }

    fn walk_cache_install(&mut self, vpn: u64) {
        if self.cfg.walk_cache_entries == 0 {
            return;
        }
        let key = self.walk_cache_key(vpn);
        if self.walk_cache.len() >= self.cfg.walk_cache_entries as usize
            && !self.walk_cache.contains_key(&key)
        {
            // Tie-break equal LRU stamps by key: HashMap iteration order
            // is process-random and must not pick the victim.
            if let Some((&victim, _)) = self
                .walk_cache
                .iter()
                .min_by_key(|&(&key, &lru)| (lru, key))
            {
                self.walk_cache.remove(&victim);
            }
        }
        self.lru_clock += 1;
        self.walk_cache.insert(key, self.lru_clock);
    }

    /// Physical address of the page-table entry read at `level` for `vpn`.
    fn pte_addr(&self, vpn: u64, level: u32) -> u64 {
        let shift = 9 * (self.cfg.walk_levels - 1 - level);
        let index = (vpn >> shift) & 0x1FF;
        // Each level's tables live in their own region; entries are 8 B,
        // reads are line-aligned.
        let entry = self.cfg.pt_base + u64::from(level) * 0x40_0000 + index * 8 + (vpn >> 9) * 64;
        entry & !63
    }

    fn forward_translated(&mut self, mut pkt: PacketBox, ctx: &mut Ctx) {
        pkt.addr = self.translate(pkt.addr);
        pkt.virt = false;
        pkt.route.push(ctx.self_id());
        ctx.send(
            self.downstream,
            units::ns(self.cfg.tlb_latency_ns),
            Msg::Packet(pkt),
        );
    }

    fn start_walk(&mut self, pkt: PacketBox, arrived: Tick, ctx: &mut Ctx) {
        let vpn = self.vpn_of(pkt.addr);
        if let Some(&tag) = self.walking_vpns.get(&vpn) {
            // Coalesce with the in-flight walk for this page.
            self.walks
                .get_mut(&tag)
                .expect("walking vpn without walk state")
                .waiting
                .push((pkt, arrived));
            return;
        }
        if self.walks.len() >= self.cfg.max_walks as usize {
            self.walk_queue.push_back((pkt, arrived));
            return;
        }
        let start_level = if self.walk_cache_hit(vpn) {
            self.cfg.walk_levels - 1
        } else {
            0
        };
        let tag = self.next_walk_tag;
        self.next_walk_tag = self.next_walk_tag.wrapping_add(1);
        self.walking_vpns.insert(vpn, tag);
        self.walks.insert(
            tag,
            Walk {
                vpn,
                level: start_level,
                started: ctx.now(),
                waiting: vec![(pkt, arrived)],
            },
        );
        self.issue_walk_step(tag, vpn, start_level, ctx);
    }

    fn issue_walk_step(&mut self, tag: u32, vpn: u64, level: u32, ctx: &mut Ctx) {
        let mut rd = Packet::request(
            ctx.alloc_pkt_id(),
            MemCmd::ReadReq,
            self.pte_addr(vpn, level),
            64,
            ctx.now(),
        );
        rd.stream = streams::PTW;
        rd.tag = tag;
        rd.route.push(ctx.self_id());
        ctx.send(self.downstream, 0, Msg::packet(rd));
    }

    fn finish_walk(&mut self, tag: u32, ctx: &mut Ctx) {
        let walk = self.walks.remove(&tag).expect("unknown walk finished");
        self.walking_vpns.remove(&walk.vpn);
        self.stats.ptw_count += 1;
        self.stats.ptw_time_sum_ns += units::to_ns(ctx.now() - walk.started);
        self.tlb_install(walk.vpn);
        self.walk_cache_install(walk.vpn);
        for (pkt, arrived) in walk.waiting {
            self.stats.translations += 1;
            self.stats.trans_time_sum_ns +=
                units::to_ns(ctx.now() - arrived) + self.cfg.tlb_latency_ns;
            self.forward_translated(pkt, ctx);
        }
        // Admit queued walk requests now that a slot freed up. Entries
        // that hit the TLB by now are forwarded immediately and do not
        // consume the slot, so keep draining until one starts a walk.
        while let Some((pkt, arrived)) = self.walk_queue.pop_front() {
            let vpn = self.vpn_of(pkt.addr);
            if self.tlb_hit(vpn) {
                self.stats.translations += 1;
                self.stats.trans_time_sum_ns +=
                    units::to_ns(ctx.now() - arrived) + self.cfg.tlb_latency_ns;
                self.forward_translated(pkt, ctx);
            } else {
                self.start_walk(pkt, arrived, ctx);
                break;
            }
        }
    }
}

impl Module for Smmu {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        let mut pkt = match msg {
            Msg::Packet(p) => p,
            _ => return,
        };
        if pkt.cmd.is_request() {
            if !pkt.virt {
                // Untranslated traffic passes straight through.
                pkt.route.push(ctx.self_id());
                ctx.send(
                    self.downstream,
                    units::ns(self.cfg.tlb_latency_ns),
                    Msg::Packet(pkt),
                );
                return;
            }
            self.stats.utlb_lookups += 1;
            let vpn = self.vpn_of(pkt.addr);
            if self.tlb_hit(vpn) {
                self.stats.translations += 1;
                self.stats.trans_time_sum_ns += self.cfg.tlb_latency_ns;
                self.forward_translated(pkt, ctx);
            } else {
                self.stats.utlb_misses += 1;
                self.start_walk(pkt, ctx.now(), ctx);
            }
        } else if pkt.stream == streams::PTW && pkt.cmd == MemCmd::ReadResp {
            // A walk step returned.
            let tag = pkt.tag;
            let Some(walk) = self.walks.get_mut(&tag) else {
                return;
            };
            if walk.level + 1 >= self.cfg.walk_levels {
                self.finish_walk(tag, ctx);
            } else {
                walk.level += 1;
                let (vpn, level) = (walk.vpn, walk.level);
                self.issue_walk_step(tag, vpn, level, ctx);
            }
        } else {
            // Data response passing back toward the device.
            if let Some(next) = pkt.route.pop() {
                ctx.send(next, 0, Msg::Packet(pkt));
            }
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("translations", self.stats.translations as f64);
        out.add("trans_time_sum_ns", self.stats.trans_time_sum_ns);
        out.add("ptw_count", self.stats.ptw_count as f64);
        out.add("ptw_time_sum_ns", self.stats.ptw_time_sum_ns);
        out.add("utlb_lookups", self.stats.utlb_lookups as f64);
        out.add("utlb_misses", self.stats.utlb_misses as f64);
        out.add("trans_mean_ns", self.stats.trans_mean_ns());
        out.add("ptw_mean_ns", self.stats.ptw_mean_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_mem::{SimpleMemory, SimpleMemoryConfig};
    use accesys_sim::Kernel;

    const VA: u64 = 0x4_0000_0000;

    /// Issues virtual-address reads through the SMMU and records the
    /// translated physical addresses seen at memory.
    struct Issuer {
        smmu: ModuleId,
        vas: Vec<u64>,
        next: usize,
        serial: bool,
        done: Vec<(u64, Tick)>,
    }
    impl Issuer {
        fn issue(&mut self, ctx: &mut Ctx) {
            let va = self.vas[self.next];
            self.next += 1;
            let mut p = Packet::request(ctx.alloc_pkt_id(), MemCmd::ReadReq, va, 64, ctx.now());
            p.virt = true;
            p.stream = streams::DMA_BASE;
            p.route.push(ctx.self_id());
            ctx.send(self.smmu, 0, Msg::packet(p));
        }
    }
    impl Module for Issuer {
        fn name(&self) -> &str {
            "iss"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            match msg {
                Msg::Timer(_) => {
                    if self.serial {
                        self.issue(ctx);
                    } else {
                        while self.next < self.vas.len() {
                            self.issue(ctx);
                        }
                    }
                }
                Msg::Packet(p) => {
                    self.done.push((p.addr, ctx.now()));
                    if self.serial && self.next < self.vas.len() {
                        self.issue(ctx);
                    }
                }
                _ => {}
            }
        }
    }

    fn build(cfg: SmmuConfig, vas: Vec<u64>, serial: bool) -> (Kernel, ModuleId, ModuleId) {
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new(
            "mem",
            SimpleMemoryConfig {
                latency_ns: 60.0,
                bandwidth_gbps: 12.8,
            },
        )));
        let smmu = k.add_module(Box::new(Smmu::new("smmu", cfg, mem)));
        let iss = k.add_module(Box::new(Issuer {
            smmu,
            vas,
            next: 0,
            serial,
            done: vec![],
        }));
        k.schedule(0, iss, Msg::Timer(0));
        (k, smmu, iss)
    }

    #[test]
    fn miss_walks_then_hits() {
        let cfg = SmmuConfig::default();
        let (mut k, smmu, iss) = build(cfg, vec![VA + 0x100, VA + 0x140], true);
        k.run_until_idle().unwrap();
        let s = k.module::<Smmu>(smmu).unwrap().smmu_stats();
        assert_eq!(s.utlb_lookups, 2);
        assert_eq!(s.utlb_misses, 1);
        assert_eq!(s.ptw_count, 1);
        assert_eq!(s.translations, 2);
        // The walk is 3 memory reads: the first translation is much
        // slower than the second (TLB hit).
        let done = &k.module::<Issuer>(iss).unwrap().done;
        let t0 = done[0].1;
        let t1 = done[1].1 - done[0].1;
        assert!(t0 > 3 * units::ns(60.0), "walk too fast: {t0}");
        assert!(t1 < t0 / 2, "hit not faster: {t1} vs {t0}");
    }

    #[test]
    fn translation_is_linear_mapping() {
        let cfg = SmmuConfig::default();
        let (mut k, _smmu, iss) = build(cfg, vec![VA + 0x12345], true);
        k.run_until_idle().unwrap();
        let done = &k.module::<Issuer>(iss).unwrap().done;
        assert_eq!(done[0].0, cfg.pa_base + 0x12345);
    }

    #[test]
    fn concurrent_misses_on_one_page_share_a_walk() {
        let cfg = SmmuConfig::default();
        let (mut k, smmu, _) = build(cfg, vec![VA, VA + 64, VA + 128, VA + 192], false);
        k.run_until_idle().unwrap();
        let s = k.module::<Smmu>(smmu).unwrap().smmu_stats();
        assert_eq!(s.utlb_misses, 4);
        assert_eq!(s.ptw_count, 1, "misses on one page must coalesce");
        assert_eq!(s.translations, 4);
    }

    #[test]
    fn tlb_capacity_causes_thrash() {
        let cfg = SmmuConfig {
            tlb_entries: 4,
            walk_cache_entries: 0,
            ..SmmuConfig::default()
        };
        // Touch 16 pages twice; with 4 entries the second round misses too.
        let mut vas: Vec<u64> = (0..16u64).map(|p| VA + p * 4096).collect();
        vas.extend((0..16u64).map(|p| VA + p * 4096));
        let (mut k, smmu, _) = build(cfg, vas, true);
        k.run_until_idle().unwrap();
        let s = k.module::<Smmu>(smmu).unwrap().smmu_stats();
        assert_eq!(s.utlb_lookups, 32);
        assert_eq!(s.utlb_misses, 32, "LRU over 16 pages with 4 entries");
    }

    #[test]
    fn walk_cache_skips_upper_levels() {
        let with = SmmuConfig {
            tlb_entries: 1, // force a walk per page
            ..SmmuConfig::default()
        };
        let mut without = with;
        without.walk_cache_entries = 0;
        // Pages share the same penultimate-level group (within 512 pages).
        let vas: Vec<u64> = (0..8u64).map(|p| VA + p * 4096).collect();
        let (mut k1, s1, _) = build(with, vas.clone(), true);
        k1.run_until_idle().unwrap();
        let (mut k2, s2, _) = build(without, vas, true);
        k2.run_until_idle().unwrap();
        let with_stats = k1.module::<Smmu>(s1).unwrap().smmu_stats();
        let without_stats = k2.module::<Smmu>(s2).unwrap().smmu_stats();
        assert_eq!(with_stats.ptw_count, without_stats.ptw_count);
        assert!(
            with_stats.ptw_mean_ns() < 0.6 * without_stats.ptw_mean_ns(),
            "walk cache should cut walk latency: {} vs {}",
            with_stats.ptw_mean_ns(),
            without_stats.ptw_mean_ns()
        );
    }

    #[test]
    fn non_virtual_traffic_passes_through_untranslated() {
        let cfg = SmmuConfig::default();
        let mut k = Kernel::new();
        let mem = k.add_module(Box::new(SimpleMemory::new(
            "mem",
            SimpleMemoryConfig::default(),
        )));
        let smmu = k.add_module(Box::new(Smmu::new("smmu", cfg, mem)));
        let iss = k.add_module(Box::new(Issuer {
            smmu,
            vas: vec![],
            next: 0,
            serial: true,
            done: vec![],
        }));
        let mut p = Packet::request(7, MemCmd::ReadReq, 0x8000, 64, 0);
        p.route.push(iss);
        k.schedule(0, smmu, Msg::packet(p));
        k.run_until_idle().unwrap();
        let done = &k.module::<Issuer>(iss).unwrap().done;
        assert_eq!(done[0].0, 0x8000);
        let s = k.module::<Smmu>(smmu).unwrap().smmu_stats();
        assert_eq!(s.utlb_lookups, 0);
    }
}
