//! Store-and-forward PCIe switch.

use crate::AddrRange;
use accesys_sim::{units, Ctx, Module, ModuleId, Msg, Stats, Tick};

/// One downstream port of a [`PcieSwitch`].
#[derive(Clone, Debug)]
pub struct SwitchPort {
    /// Egress link toward the device.
    pub egress_link: ModuleId,
    /// The module directly below this port — a [`crate::PcieEndpoint`],
    /// or another [`PcieSwitch`] in a cascaded tree. Responses whose
    /// route-stack next hop is this module leave through `egress_link`.
    pub endpoint: ModuleId,
    /// Address ranges claimed by the whole subtree behind this port: a
    /// single device BAR for a leaf, or the aggregated claims of every
    /// device below a cascaded switch.
    pub ranges: Vec<AddrRange>,
}

impl SwitchPort {
    /// A port claiming the aggregate of `ranges` (see
    /// [`aggregate_ranges`]) — the general form used for cascaded
    /// switch trees, where one port fronts many devices.
    pub fn aggregated(
        egress_link: ModuleId,
        endpoint: ModuleId,
        ranges: impl IntoIterator<Item = AddrRange>,
    ) -> Self {
        SwitchPort {
            egress_link,
            endpoint,
            ranges: aggregate_ranges(ranges.into_iter().collect()),
        }
    }
}

/// Merge overlapping and exactly-adjacent address ranges into a minimal
/// sorted set.
///
/// Switch port range computation generalized for trees: a port fronting
/// a whole subtree claims the union of every BAR below it, and carved
/// per-device BARs are contiguous, so the aggregate usually collapses to
/// one range per port — keeping by-address request routing O(ports), not
/// O(devices).
pub fn aggregate_ranges(mut ranges: Vec<AddrRange>) -> Vec<AddrRange> {
    ranges.sort_by_key(|r| (r.base, r.size));
    let mut out: Vec<AddrRange> = Vec::new();
    for r in ranges {
        match out.last_mut() {
            Some(last) if r.base <= last.end() => {
                let end = last.end().max(r.end());
                last.size = end - last.base;
            }
            _ => out.push(r),
        }
    }
    out
}

/// Configuration of a [`PcieSwitch`].
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PcieSwitchConfig {
    /// Store-and-forward latency per TLP in nanoseconds (paper: 50 ns).
    pub latency_ns: f64,
    /// Pipelined per-TLP processing occupancy in nanoseconds — the
    /// switch's TLP rate limit (1/`tlp_proc_ns` TLPs per ns).
    pub tlp_proc_ns: f64,
}

impl Default for PcieSwitchConfig {
    fn default() -> Self {
        PcieSwitchConfig {
            latency_ns: 50.0,
            tlp_proc_ns: 2.0,
        }
    }
}

/// A PCIe switch routing TLPs between one upstream port (toward the root
/// complex) and one or more downstream device ports.
///
/// Requests are routed by address (device BAR ranges → downstream,
/// everything else → upstream); responses follow the packet route stack.
/// The switch never returns credits itself: a packet's ingress buffer is
/// freed when the egress [`crate::PcieLink`] puts it on the wire, so
/// backpressure propagates hop by hop.
pub struct PcieSwitch {
    name: String,
    cfg: PcieSwitchConfig,
    up_link: ModuleId,
    ports: Vec<SwitchPort>,
    proc_free: Tick,
    // stats
    up_tlps: u64,
    down_tlps: u64,
    proc_stall_ns: f64,
}

impl PcieSwitch {
    /// Create a switch with its upstream egress link; add device ports
    /// with [`PcieSwitch::add_port`].
    pub fn new(name: &str, cfg: PcieSwitchConfig, up_link: ModuleId) -> Self {
        PcieSwitch {
            name: name.to_string(),
            cfg,
            up_link,
            ports: Vec::new(),
            proc_free: 0,
            up_tlps: 0,
            down_tlps: 0,
            proc_stall_ns: 0.0,
        }
    }

    /// Attach a downstream device port.
    pub fn add_port(&mut self, port: SwitchPort) {
        self.ports.push(port);
    }

    /// Builder-style [`PcieSwitch::add_port`].
    pub fn with_port(mut self, port: SwitchPort) -> Self {
        self.add_port(port);
        self
    }

    /// Number of downstream ports (the paper's scalability feature).
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    fn egress_for_request(&self, addr: u64) -> (ModuleId, bool) {
        for port in &self.ports {
            if port.ranges.iter().any(|r| r.contains(addr)) {
                return (port.egress_link, true);
            }
        }
        (self.up_link, false)
    }

    fn egress_for_response(&self, next_hop: ModuleId) -> (ModuleId, bool) {
        for port in &self.ports {
            if port.endpoint == next_hop {
                return (port.egress_link, true);
            }
        }
        (self.up_link, false)
    }
}

impl Module for PcieSwitch {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        let mut pkt = match msg {
            Msg::Packet(p) => p,
            _ => return,
        };
        // Pipelined TLP-rate limit.
        let proc_start = self.proc_free.max(ctx.now());
        self.proc_free = proc_start + units::ns(self.cfg.tlp_proc_ns);
        self.proc_stall_ns += units::to_ns(proc_start - ctx.now());
        let out_at = proc_start + units::ns(self.cfg.latency_ns);

        let (egress, down) = if pkt.cmd.is_request() {
            pkt.route.push(ctx.self_id());
            self.egress_for_request(pkt.addr)
        } else {
            let next = pkt
                .route
                .pop()
                .expect("response reached switch with empty route");
            self.egress_for_response(next)
        };
        if down {
            self.down_tlps += 1;
        } else {
            self.up_tlps += 1;
        }
        ctx.send_at(egress, out_at, Msg::Packet(pkt));
    }

    fn report(&self, out: &mut Stats) {
        out.add("up_tlps", self.up_tlps as f64);
        out.add("down_tlps", self.down_tlps as f64);
        out.add("proc_stall_ns", self.proc_stall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_sim::{Kernel, MemCmd, Packet};

    /// Terminal that records arrivals.
    struct Term {
        name: &'static str,
        got: Vec<(Tick, u64)>,
    }
    impl Module for Term {
        fn name(&self) -> &str {
            self.name
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(p) = msg {
                self.got.push((ctx.now(), p.addr));
            }
        }
    }

    #[test]
    fn requests_route_by_bar_and_add_latency() {
        let mut k = Kernel::new();
        let up = k.add_module(Box::new(Term {
            name: "up",
            got: vec![],
        }));
        let down = k.add_module(Box::new(Term {
            name: "down",
            got: vec![],
        }));
        let ep = k.add_module(Box::new(Term {
            name: "ep",
            got: vec![],
        }));
        let sw = k.add_module(Box::new(
            PcieSwitch::new("sw", PcieSwitchConfig::default(), up).with_port(SwitchPort {
                egress_link: down,
                endpoint: ep,
                ranges: vec![AddrRange::new(0x1_0000_0000, 0x1000_0000)],
            }),
        ));
        // Device-addressed request goes down; host-addressed goes up.
        let p1 = Packet::request(0, MemCmd::WriteReq, 0x1_0000_0040, 64, 0);
        let p2 = Packet::request(1, MemCmd::ReadReq, 0x4000, 64, 0);
        k.schedule(0, sw, Msg::packet(p1));
        k.schedule(0, sw, Msg::packet(p2));
        k.run_until_idle().unwrap();
        let down_got = &k.module::<Term>(down).unwrap().got;
        let up_got = &k.module::<Term>(up).unwrap().got;
        assert_eq!(down_got.len(), 1);
        assert_eq!(up_got.len(), 1);
        // First TLP: 50 ns; second pipelines tlp_proc_ns = 2 ns behind.
        assert_eq!(down_got[0].0, units::ns(50.0));
        assert_eq!(up_got[0].0, units::ns(52.0));
    }

    #[test]
    fn responses_follow_route_stack() {
        let mut k = Kernel::new();
        let up = k.add_module(Box::new(Term {
            name: "up",
            got: vec![],
        }));
        let down = k.add_module(Box::new(Term {
            name: "down",
            got: vec![],
        }));
        let ep = k.add_module(Box::new(Term {
            name: "ep",
            got: vec![],
        }));
        let sw = k.add_module(Box::new(
            PcieSwitch::new("sw", PcieSwitchConfig::default(), up).with_port(SwitchPort {
                egress_link: down,
                endpoint: ep,
                ranges: vec![],
            }),
        ));
        // A completion whose next hop is the endpoint must leave on the
        // downstream egress; one for anything else goes upstream.
        let mut cpl = Packet::request(0, MemCmd::ReadReq, 0, 64, 0).to_response();
        cpl.route.push(ep);
        k.schedule(0, sw, Msg::packet(cpl));
        let mut cpl2 = Packet::request(1, MemCmd::ReadReq, 0, 64, 0).to_response();
        cpl2.route.push(up); // some host-side module
        k.schedule(0, sw, Msg::packet(cpl2));
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Term>(down).unwrap().got.len(), 1);
        assert_eq!(k.module::<Term>(up).unwrap().got.len(), 1);
    }

    #[test]
    fn aggregate_ranges_merges_adjacent_and_overlapping() {
        let carved: Vec<AddrRange> = (0..4)
            .map(|i| AddrRange::new(0x1000_0000 + i * 0x100_0000, 0x100_0000))
            .collect();
        // Contiguous carved BARs collapse to one claim.
        assert_eq!(
            aggregate_ranges(carved),
            vec![AddrRange::new(0x1000_0000, 0x400_0000)]
        );
        // Disjoint claims stay separate and come out sorted.
        let gappy = vec![
            AddrRange::new(0x9000, 0x100),
            AddrRange::new(0x1000, 0x100),
            AddrRange::new(0x1080, 0x200), // overlaps the second
        ];
        assert_eq!(
            aggregate_ranges(gappy),
            vec![AddrRange::new(0x1000, 0x280), AddrRange::new(0x9000, 0x100)]
        );
    }

    #[test]
    fn cascaded_switches_route_requests_down_and_responses_up() {
        // root switch → child switch → endpoint: requests descend by the
        // aggregated subtree claim, responses retrace the route stack
        // with the child switch as the root port's `endpoint`.
        let mut k = Kernel::new();
        let up = k.add_module(Box::new(Term {
            name: "up",
            got: vec![],
        }));
        let ep = k.add_module(Box::new(Term {
            name: "ep",
            got: vec![],
        }));
        let child_down = k.add_module(Box::new(Term {
            name: "child_down",
            got: vec![],
        }));
        let child_up = k.add_module(Box::new(Term {
            name: "child_up",
            got: vec![],
        }));
        let bar = AddrRange::new(0x1_0000_0000, 0x1000_0000);
        let child = k.add_module(Box::new(
            PcieSwitch::new("child", PcieSwitchConfig::default(), child_up)
                .with_port(SwitchPort::aggregated(child_down, ep, [bar])),
        ));
        let root_down = k.add_module(Box::new(Term {
            name: "root_down",
            got: vec![],
        }));
        let root = k.add_module(Box::new(
            PcieSwitch::new("root", PcieSwitchConfig::default(), up).with_port(
                // The root port fronts the whole child subtree.
                SwitchPort::aggregated(root_down, child, [bar]),
            ),
        ));
        // A device-addressed request at the root leaves on the subtree port.
        let req = Packet::request(0, MemCmd::WriteReq, bar.base + 0x40, 64, 0);
        k.schedule(0, root, Msg::packet(req));
        // A response whose next hop is the child switch also goes down...
        let mut cpl = Packet::request(1, MemCmd::ReadReq, 0x4000, 64, 0).to_response();
        cpl.route.push(child);
        k.schedule(0, root, Msg::packet(cpl));
        // ...while a device-originated request at the child heads upstream.
        let host_req = Packet::request(2, MemCmd::ReadReq, 0x4000, 64, 0);
        k.schedule(0, child, Msg::packet(host_req));
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Term>(root_down).unwrap().got.len(), 2);
        assert_eq!(k.module::<Term>(child_up).unwrap().got.len(), 1);
        assert!(k.module::<Term>(up).unwrap().got.is_empty());
    }

    #[test]
    fn tlp_rate_limit_spaces_back_to_back_tlps() {
        let mut k = Kernel::new();
        let up = k.add_module(Box::new(Term {
            name: "up",
            got: vec![],
        }));
        let cfg = PcieSwitchConfig {
            latency_ns: 50.0,
            tlp_proc_ns: 8.0,
        };
        let sw = k.add_module(Box::new(PcieSwitch::new("sw", cfg, up)));
        for i in 0..4 {
            let p = Packet::request(i, MemCmd::ReadReq, 0x100, 64, 0);
            k.schedule(0, sw, Msg::packet(p));
        }
        k.run_until_idle().unwrap();
        let got = &k.module::<Term>(up).unwrap().got;
        let times: Vec<Tick> = got.iter().map(|&(t, _)| t).collect();
        assert_eq!(
            times,
            vec![
                units::ns(50.0),
                units::ns(58.0),
                units::ns(66.0),
                units::ns(74.0)
            ]
        );
    }
}
