//! CXL.mem-style flit-based link — the framework's "standard
//! interconnects" extension beyond PCIe.
//!
//! CXL runs on the PCIe PHY but replaces the transaction layer's variable
//! TLPs with fixed 68-byte flits (64 B slot + header/CRC) and cuts the
//! per-hop protocol latency: no Root-Complex transaction layer, no
//! store-and-forward switch on the direct-attach path. A [`FlitLink`]
//! models one direction of such a port. The paper evaluates PCIe only;
//! this module implements the natural next interconnect its title points
//! at, and the `cxl_vs_pcie` bench compares the two.

use accesys_sim::{units, CreditClass, Ctx, Module, ModuleId, Msg, Packet, PacketBox, Stats, Tick};
use std::collections::VecDeque;

/// How a terminal receiver (root complex / endpoint) counts the ingress
/// credits it returns to the link that delivered a packet.
///
/// PCIe links pool credits in wire bytes (header + payload); flit links
/// pool them in flits. A receiver wired behind a [`FlitLink`] must return
/// flit-unit credits or the pool drifts.
#[derive(Copy, Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CreditUnit {
    /// PCIe TLP wire bytes with a 24-byte header (default).
    #[default]
    PcieBytes,
    /// Fixed-size flits of `payload_per_flit` data bytes each.
    Flits {
        /// Payload capacity of one flit in bytes (CXL: 64).
        payload_per_flit: u32,
    },
}

impl CreditUnit {
    /// The credit quantity to return for `pkt`.
    pub fn credit_for(&self, pkt: &Packet) -> u32 {
        match *self {
            CreditUnit::PcieBytes => pkt.wire_bytes(24),
            CreditUnit::Flits { payload_per_flit } => {
                if pkt.cmd.carries_data() {
                    pkt.size.div_ceil(payload_per_flit).max(1)
                } else {
                    1
                }
            }
        }
    }
}

/// Configuration of one [`FlitLink`] direction.
#[derive(Copy, Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FlitLinkConfig {
    /// Number of lanes.
    pub lanes: u32,
    /// Raw line rate per lane in GT/s.
    pub lane_gbps: f64,
    /// Line-encoding efficiency (CXL 2.0 on Gen5: 128b/130b).
    pub encoding_efficiency: f64,
    /// Total flit size on the wire, in bytes (CXL: 68).
    pub flit_bytes: u32,
    /// Payload capacity of one flit, in bytes (CXL: 64).
    pub payload_per_flit: u32,
    /// Wire propagation + port latency in nanoseconds. Much lower than a
    /// PCIe RC + switch path: CXL.mem targets tens of ns port-to-port.
    pub prop_delay_ns: f64,
    /// Receiver buffer in flits (single credit pool — CXL.mem has no
    /// posted/non-posted split for memory traffic).
    pub credit_flits: u32,
}

impl FlitLinkConfig {
    /// CXL 2.0 over PCIe Gen5 ×`lanes`: 32 GT/s per lane, 68 B flits.
    pub fn cxl2(lanes: u32) -> Self {
        FlitLinkConfig {
            lanes,
            lane_gbps: 32.0,
            encoding_efficiency: 128.0 / 130.0,
            flit_bytes: 68,
            payload_per_flit: 64,
            prop_delay_ns: 12.0,
            credit_flits: 256,
        }
    }

    /// Effective raw bandwidth in GB/s (before flit framing overhead).
    pub fn raw_bandwidth_gbps(&self) -> f64 {
        units::link_gb_per_s(self.lanes, self.lane_gbps, self.encoding_efficiency)
    }

    /// Effective *payload* bandwidth in GB/s (after flit framing).
    pub fn payload_bandwidth_gbps(&self) -> f64 {
        self.raw_bandwidth_gbps() * f64::from(self.payload_per_flit) / f64::from(self.flit_bytes)
    }

    /// Number of flits a packet occupies.
    pub fn flits_of(&self, pkt: &Packet) -> u32 {
        if pkt.cmd.carries_data() {
            pkt.size.div_ceil(self.payload_per_flit).max(1)
        } else {
            // Requests and dataless completions ride in one header slot.
            1
        }
    }
}

/// One direction of a flit-based (CXL.mem-class) link.
///
/// Serializes packets as fixed-size flits at the link's raw bandwidth,
/// with a single flit-granular credit pool. Compared to [`crate::PcieLink`]
/// there is no per-TLP header penalty and — used point-to-point — none of
/// the RC/switch hierarchy latency, which is exactly the trade the
/// `cxl_vs_pcie` experiment measures.
pub struct FlitLink {
    name: String,
    cfg: FlitLinkConfig,
    dst: ModuleId,
    credit_flits: i64,
    queue: VecDeque<PacketBox>,
    tx_free: Tick,
    // stats
    packets: u64,
    flits: u64,
    payload_bytes: u64,
    credit_stalls: u64,
    busy: Tick,
}

impl FlitLink {
    /// Create a link direction that delivers to `dst`.
    pub fn new(name: &str, cfg: FlitLinkConfig, dst: ModuleId) -> Self {
        assert!(cfg.lanes > 0 && cfg.lane_gbps > 0.0);
        assert!(cfg.payload_per_flit > 0 && cfg.flit_bytes >= cfg.payload_per_flit);
        FlitLink {
            name: name.to_string(),
            cfg,
            dst,
            credit_flits: i64::from(cfg.credit_flits),
            queue: VecDeque::new(),
            tx_free: 0,
            packets: 0,
            flits: 0,
            payload_bytes: 0,
            credit_stalls: 0,
            busy: 0,
        }
    }

    /// The configuration this link was built with.
    pub fn config(&self) -> FlitLinkConfig {
        self.cfg
    }

    fn pump(&mut self, ctx: &mut Ctx) {
        while let Some(front) = self.queue.front() {
            let flits = i64::from(self.cfg.flits_of(front));
            if self.credit_flits < flits {
                break;
            }
            let mut pkt = self.queue.pop_front().expect("front exists");
            self.credit_flits -= flits;
            let wire_bytes = flits as u64 * u64::from(self.cfg.flit_bytes);
            let ser = units::transfer_time(wire_bytes, self.cfg.raw_bandwidth_gbps());
            let tx_start = self.tx_free.max(ctx.now());
            let tx_end = tx_start + ser;
            self.tx_free = tx_end;
            self.busy += ser;
            self.packets += 1;
            self.flits += flits as u64;
            if pkt.cmd.carries_data() {
                self.payload_bytes += u64::from(pkt.size);
            }
            let arrive = tx_end + units::ns(self.cfg.prop_delay_ns);
            if pkt.ingress_link.is_valid() {
                // Free the upstream hop's buffer once we own the flits.
                ctx.send_at(
                    pkt.ingress_link,
                    tx_end,
                    Msg::Credit {
                        class: CreditClass::Posted,
                        bytes: flits as u32,
                    },
                );
            }
            pkt.ingress_link = ctx.self_id();
            ctx.send_at(self.dst, arrive, Msg::Packet(pkt));
        }
    }
}

impl Module for FlitLink {
    fn name(&self) -> &str {
        &self.name
    }

    fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
        match msg {
            Msg::Packet(pkt) => {
                let flits = i64::from(self.cfg.flits_of(&pkt));
                if self.credit_flits < flits || !self.queue.is_empty() {
                    self.credit_stalls += 1;
                }
                self.queue.push_back(pkt);
                self.pump(ctx);
            }
            Msg::Credit { bytes, .. } => {
                // `bytes` carries a flit count on this link class.
                self.credit_flits += i64::from(bytes);
                debug_assert!(
                    self.credit_flits <= i64::from(self.cfg.credit_flits),
                    "flit credit overflow on {}",
                    self.name
                );
                self.pump(ctx);
            }
            Msg::Timer(_) => self.pump(ctx),
            _ => {}
        }
    }

    fn report(&self, out: &mut Stats) {
        out.add("packets", self.packets as f64);
        out.add("flits", self.flits as f64);
        out.add("payload_bytes", self.payload_bytes as f64);
        out.add("credit_stalls", self.credit_stalls as f64);
        out.add("busy_ns", units::to_ns(self.busy));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accesys_sim::{Kernel, MemCmd};

    struct Sink {
        got: Vec<(Tick, u32)>,
        return_credits: bool,
    }
    impl Module for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn handle(&mut self, msg: Msg, ctx: &mut Ctx) {
            if let Msg::Packet(pkt) = msg {
                self.got.push((ctx.now(), pkt.size));
                if self.return_credits {
                    let cfg = FlitLinkConfig::cxl2(8);
                    ctx.send(
                        pkt.ingress_link,
                        0,
                        Msg::Credit {
                            class: CreditClass::Posted,
                            bytes: cfg.flits_of(&pkt),
                        },
                    );
                }
            }
        }
    }

    fn run_writes(cfg: FlitLinkConfig, count: u32, size: u32) -> (Vec<(Tick, u32)>, Stats) {
        let mut k = Kernel::new();
        let sink = k.add_module(Box::new(Sink {
            got: vec![],
            return_credits: true,
        }));
        let link = k.add_module(Box::new(FlitLink::new("cxl", cfg, sink)));
        for i in 0..count {
            let pkt = Packet::request(u64::from(i), MemCmd::WriteReq, 0x1000, size, 0);
            k.schedule(0, link, Msg::packet(pkt));
        }
        k.run_until_idle().unwrap();
        (k.module::<Sink>(sink).unwrap().got.clone(), k.stats())
    }

    #[test]
    fn one_write_occupies_ceil_size_over_64_flits() {
        let cfg = FlitLinkConfig::cxl2(8);
        let (_, stats) = run_writes(cfg, 1, 256);
        assert_eq!(stats.get_or_zero("cxl.flits"), 4.0);
        let (_, stats) = run_writes(cfg, 1, 100);
        assert_eq!(stats.get_or_zero("cxl.flits"), 2.0);
    }

    #[test]
    fn reads_ride_in_a_single_flit() {
        let cfg = FlitLinkConfig::cxl2(8);
        let mut k = Kernel::new();
        let sink = k.add_module(Box::new(Sink {
            got: vec![],
            return_credits: false,
        }));
        let link = k.add_module(Box::new(FlitLink::new("cxl", cfg, sink)));
        let pkt = Packet::request(0, MemCmd::ReadReq, 0, 4096, 0);
        k.schedule(0, link, Msg::packet(pkt));
        k.run_until_idle().unwrap();
        assert_eq!(k.stats().get_or_zero("cxl.flits"), 1.0);
    }

    #[test]
    fn delivery_time_is_serialization_plus_prop() {
        // ×8 Gen5: raw 31.5 GB/s; one 64 B write = 68 B wire ≈ 2.159 ns.
        let cfg = FlitLinkConfig::cxl2(8);
        let (got, _) = run_writes(cfg, 1, 64);
        let expect =
            units::transfer_time(68, cfg.raw_bandwidth_gbps()) + units::ns(cfg.prop_delay_ns);
        assert_eq!(got[0].0, expect);
    }

    #[test]
    fn stream_throughput_matches_payload_bandwidth() {
        let cfg = FlitLinkConfig::cxl2(8);
        let (got, _) = run_writes(cfg, 512, 256);
        let end_ns = units::to_ns(got.last().unwrap().0);
        let gbps = 512.0 * 256.0 / end_ns;
        let payload_bw = cfg.payload_bandwidth_gbps();
        assert!(
            gbps > 0.9 * payload_bw && gbps <= payload_bw * 1.01,
            "streamed {gbps:.1} GB/s vs payload bw {payload_bw:.1}"
        );
    }

    #[test]
    fn credit_exhaustion_stalls_until_returned() {
        let mut cfg = FlitLinkConfig::cxl2(8);
        cfg.credit_flits = 4; // one 256 B write's worth
        let mut k = Kernel::new();
        let sink = k.add_module(Box::new(Sink {
            got: vec![],
            return_credits: false, // never return → only one packet passes
        }));
        let link = k.add_module(Box::new(FlitLink::new("cxl", cfg, sink)));
        for i in 0..4u32 {
            let pkt = Packet::request(u64::from(i), MemCmd::WriteReq, 0, 256, 0);
            k.schedule(0, link, Msg::packet(pkt));
        }
        k.run_until_idle().unwrap();
        assert_eq!(k.module::<Sink>(sink).unwrap().got.len(), 1);
        assert!(k.stats().get_or_zero("cxl.credit_stalls") >= 3.0);
    }

    #[test]
    fn flit_framing_overhead_is_visible_in_payload_bandwidth() {
        let cfg = FlitLinkConfig::cxl2(16);
        assert!(cfg.payload_bandwidth_gbps() < cfg.raw_bandwidth_gbps());
        let ratio = cfg.payload_bandwidth_gbps() / cfg.raw_bandwidth_gbps();
        assert!((ratio - 64.0 / 68.0).abs() < 1e-9);
    }
}
